//! Shows how to bring your *own* application to the framework: define a
//! guest program, implement [`certa::fault::Target`], analyze it, and run a
//! protection-on vs. protection-off campaign — the full methodology of the
//! paper on a new workload (a checksummed moving-average filter).
//!
//! Run with: `cargo run --release --example custom_workload`

use certa::asm::Asm;
use certa::core::analyze;
use certa::fault::{run_campaign, CampaignConfig, Protection, Target};
use certa::isa::reg::{S0, S1, S2, S3, T0, T1, T2, T3};
use certa::isa::Program;
use certa::sim::Machine;

/// A 3-tap moving-average filter over 64 byte samples.
struct FilterWorkload {
    program: Program,
    out_len_addr: u32,
    out_addr: u32,
}

const N: usize = 64;

impl FilterWorkload {
    fn new() -> Self {
        let input: Vec<u8> = (0..N).map(|i| (128.0 + 100.0 * (i as f64 / 5.0).sin()) as u8).collect();
        let mut a = Asm::new();
        let in_addr = a.data_bytes(&input);
        let out_len_addr = a.data_zero(4);
        let out_addr = a.data_zero(N);

        a.func("filter", true); // the error-tolerant kernel
        a.la(S0, in_addr);
        a.la(S1, out_addr);
        a.li(S2, 1);
        a.label("loop");
        // out[i] = (in[i-1] + in[i] + in[i+1]) / 3
        a.add(T0, S0, S2);
        a.lbu(T1, -1, T0);
        a.lbu(T2, 0, T0);
        a.add(T1, T1, T2);
        a.lbu(T2, 1, T0);
        a.add(T1, T1, T2);
        a.li(T3, 3);
        a.divu(T1, T1, T3);
        a.add(T0, S1, S2);
        a.sb(T1, 0, T0);
        a.addi(S2, S2, 1);
        a.slti(T0, S2, (N - 1) as i32);
        a.bnez(T0, "loop");
        a.ret();
        a.endfunc();

        a.func("main", false);
        a.call("filter");
        a.la(T0, out_len_addr);
        a.li(T1, N as i32);
        a.sw(T1, 0, T0);
        a.halt();
        a.endfunc();
        let _ = S3;

        FilterWorkload {
            program: a.assemble().expect("assembles"),
            out_len_addr,
            out_addr,
        }
    }
}

impl Target for FilterWorkload {
    fn program(&self) -> &Program {
        &self.program
    }

    fn prepare(&self, _machine: &mut Machine<'_>) {}

    fn extract(&self, machine: &Machine<'_>) -> Option<Vec<u8>> {
        let len = machine.read_word(self.out_len_addr).ok()?;
        if len != N as u32 {
            return None;
        }
        machine.read_bytes(self.out_addr, len).ok()
    }
}

fn main() {
    let w = FilterWorkload::new();
    let tags = analyze(w.program());
    let stats = tags.stats();
    println!(
        "filter kernel: {}/{} instructions low-reliability",
        stats.low_reliability, stats.total
    );

    for protection in [Protection::ControlOnly, Protection::None] {
        let result = run_campaign(
            &w,
            &tags,
            &CampaignConfig {
                trials: 100,
                errors: 4,
                protection,
                ..CampaignConfig::default()
            },
        );
        let corrupted = result
            .completed_outputs()
            .filter(|o| *o != &result.golden.output[..])
            .count();
        println!(
            "protection {:?}: {:.0}% catastrophic failures, {corrupted} of {} completed runs had degraded output",
            protection,
            result.failure_rate() * 100.0,
            result.trials.len()
        );
    }
    println!("\nWith protection ON the filter only ever degrades its output;");
    println!("with protection OFF the same faults crash or hang the program.");
}

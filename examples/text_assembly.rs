//! Demonstrates the text-format assembler: assemble a program from
//! conventional MIPS-flavoured source, analyze it, and execute it.
//!
//! Run with: `cargo run --example text_assembly`

use certa::asm::parse_program;
use certa::core::analyze;
use certa::isa::reg::V0;
use certa::sim::{Machine, MachineConfig, Outcome};

const SOURCE: &str = r"
# dot product of two 4-element vectors
.data
xs:  .word 1, 2, 3, 4
ys:  .word 10, 20, 30, 40
.text
.func dot eligible
dot:
    la   $t0, xs
    la   $t1, ys
    li   $t2, 0          # i
    li   $v0, 0          # acc
loop:
    slli $t3, $t2, 2
    add  $t5, $t0, $t3
    lw   $t6, ($t5)
    add  $t5, $t1, $t3
    lw   $t7, ($t5)
    mul  $t6, $t6, $t7
    add  $v0, $v0, $t6
    addi $t2, $t2, 1
    slti $t3, $t2, 4
    bnez $t3, loop
    ret
.endfunc
.func main
main:
    jal  dot
    halt
.endfunc
";

fn main() {
    let program = parse_program(SOURCE).expect("source assembles");
    println!("{}", program.disassemble());

    let tags = analyze(&program);
    let stats = tags.stats();
    println!(
        "analysis: {} low-reliability, {} control-protected, {} ineligible",
        stats.low_reliability, stats.control, stats.ineligible
    );

    let mut machine = Machine::new(&program, &MachineConfig::default());
    let result = machine.run_simple();
    assert_eq!(result.outcome, Outcome::Halted);
    println!(
        "dot product = {} in {} instructions",
        machine.reg(V0),
        result.instructions
    );
    assert_eq!(machine.reg(V0), 10 + 2 * 20 + 3 * 30 + 4 * 40);
}

//! Quickstart: write a tiny guest program, run the paper's static analysis
//! on it, inspect the tags, and inject a single fault.
//!
//! Run with: `cargo run --example quickstart`

use certa::asm::Asm;
use certa::core::{analyze, annotate_listing};
use certa::fault::{FaultPlan, Injector, Protection};
use certa::isa::reg::{T0, T1, T2, V0};
use certa::sim::{Machine, MachineConfig, Outcome};

fn main() {
    // A kernel that sums squares 1..=10 while counting iterations. The
    // accumulator is pure data; the loop counter feeds the branch.
    let mut a = Asm::new();
    a.func("kernel", true); // eligible for low-reliability tagging
    a.li(T0, 1); // i
    a.li(T1, 10); // bound
    a.li(V0, 0); // accumulator
    a.label("loop");
    a.mul(T2, T0, T0); // i*i       <- data
    a.add(V0, V0, T2); // acc += .. <- data
    a.addi(T0, T0, 1); // i++       <- control (feeds the branch)
    a.ble(T0, T1, "loop");
    a.halt();
    a.endfunc();
    let program = a.assemble().expect("assembles");

    println!("== disassembly ==\n{}", program.disassemble());

    // The paper's backward CVar analysis; `*` marks taggable data.
    let tags = analyze(&program);
    println!("== tags ==\n{}", annotate_listing(&program, &tags));
    let stats = tags.stats();
    println!(
        "\n{} of {} instructions are low-reliability (taggable data)",
        stats.low_reliability, stats.total
    );

    // Fault-free run.
    let mut machine = Machine::new(&program, &MachineConfig::default());
    let golden = machine.run_simple();
    assert_eq!(golden.outcome, Outcome::Halted);
    println!("\ngolden result: sum of squares = {}", machine.reg(V0));

    // Flip bit 3 of the 5th eligible writeback: the sum changes, but the
    // program still terminates correctly — that is the paper's thesis.
    let plan = FaultPlan::from_pairs(&[(5, 3)]);
    let mut machine = Machine::new(&program, &MachineConfig::default());
    let mut injector = Injector::new(&program, &tags, Protection::ControlOnly, plan);
    let outcome = machine.run(&mut injector);
    println!(
        "faulty result: sum of squares = {} ({}, {} fault injected)",
        machine.reg(V0),
        outcome.outcome,
        injector.injected()
    );
    assert_eq!(outcome.outcome, Outcome::Halted);
}

//! Reproduces the Susan experiment interactively: sweeps the error count
//! with static analysis ON and OFF and prints the PSNR fidelity curve of
//! the paper's Figure 1.
//!
//! Run with: `cargo run --release --example edge_detection_sweep`

use certa::core::analyze;
use certa::fault::{mean, run_campaign, CampaignConfig, Protection, Target};
use certa::workloads::{FidelityDetail, SusanWorkload, Workload};

fn main() {
    let susan = SusanWorkload::new();
    let tags = analyze(susan.program());
    let stats = tags.stats();
    println!(
        "susan: {} instructions, {} tagged low-reliability ({:.1}% static)",
        stats.total,
        stats.low_reliability,
        stats.low_reliability_fraction() * 100.0
    );
    println!(
        "\n{:>8} {:>14} {:>14} {:>12} {:>12}",
        "errors", "PSNR ON (dB)", "PSNR OFF (dB)", "% fail ON", "% fail OFF"
    );

    for errors in [50u64, 200, 800, 1600, 2400] {
        let mut cells = Vec::new();
        for protection in [Protection::ControlOnly, Protection::None] {
            let result = run_campaign(
                &susan,
                &tags,
                &CampaignConfig {
                    trials: 20,
                    errors,
                    protection,
                    ..CampaignConfig::default()
                },
            );
            let psnrs: Vec<f64> = result
                .completed_outputs()
                .map(|out| {
                    match susan.evaluate(&result.golden.output, Some(out)).detail {
                        FidelityDetail::Psnr { db } => db.min(60.0),
                        other => unreachable!("susan yields PSNR, got {other:?}"),
                    }
                })
                .collect();
            cells.push((mean(&psnrs), result.failure_rate() * 100.0));
        }
        println!(
            "{errors:>8} {:>14.2} {:>14.2} {:>11.1}% {:>11.1}%",
            cells[0].0, cells[1].0, cells[0].1, cells[1].1
        );
    }
    println!("\n(the paper's fidelity threshold is 10 dB PSNR)");
}

//! # certa
//!
//! Reproduction of **"Characterization of Error-Tolerant Applications when
//! Protecting Control Data"** (Thaker et al., IISWC 2006) as a Rust
//! workspace.
//!
//! This facade crate re-exports the whole stack:
//!
//! * [`isa`] — the MIPS-like instruction set with def/use metadata.
//! * [`aot`] — tier-4 ahead-of-time Rust code generation from CFGs, plus
//!   the shared guest programs the differential suite and benches compile.
//! * [`asm`] — the macro-assembler (builder DSL + text dialect).
//! * [`sim`] — the functional simulator with fault-injection hooks.
//! * [`core`] — **the paper's contribution**: the backward CVar dataflow
//!   analysis that tags instructions as low-reliability vs. protected.
//! * [`fault`] — Monte-Carlo single-bit-flip campaigns.
//! * [`dist`] — the distributed campaign service: a crash-tolerant
//!   coordinator/worker split of the campaign over lease-based trial
//!   chunks on localhost TCP.
//! * [`fidelity`] — the application fidelity measures of Table 1.
//! * [`workloads`] — the seven benchmark guests with golden references.
//!
//! ## Quickstart
//!
//! ```
//! use certa::core::analyze;
//! use certa::fault::{run_campaign, CampaignConfig, Protection};
//! use certa::fault::Target;
//! use certa::workloads::{SusanWorkload, Workload};
//!
//! let susan = SusanWorkload::new();
//! let tags = analyze(susan.program());
//! let result = run_campaign(
//!     &susan,
//!     &tags,
//!     &CampaignConfig {
//!         trials: 4,
//!         errors: 10,
//!         protection: Protection::ControlOnly,
//!         ..CampaignConfig::default()
//!     },
//! );
//! assert_eq!(result.failure_rate(), 0.0); // control protection holds
//! for output in result.completed_outputs() {
//!     let fidelity = susan.evaluate(&result.golden.output, Some(output));
//!     assert!(fidelity.score > 0.0);
//! }
//! ```

pub use certa_aot as aot;
pub use certa_asm as asm;
pub use certa_core as core;
pub use certa_dist as dist;
pub use certa_fault as fault;
pub use certa_fidelity as fidelity;
pub use certa_isa as isa;
pub use certa_sim as sim;
pub use certa_workloads as workloads;

//! Tier-4 differential suite: the AOT native tier must be observationally
//! identical to the reference tree-walker, the fused dispatch, and the
//! superblock dispatch — outcome, dynamic instruction counts,
//! value-producing counts, per-instruction `exec_counts`, register files,
//! memory, and extracted outputs — for every paper workload, for the
//! seeded random programs precompiled by `build.rs`, and across
//! pause/resume and snapshot/restore landing at *every* instruction
//! boundary of a nested-loop lap (satellite: mid-superblock and
//! mid-AOT-region capture).
#![cfg(feature = "aot")]

use std::sync::Arc;

use certa_aot::progs::{nested_loop_program, AOT_RANDOM_SEEDS, RANDOM_BUF_LEN};
use certa_bench::aot_workloads;
use certa_isa::{Program, Reg};
use certa_sim::{
    AotProgram, BoundedRun, DecodedProgram, Machine, MachineConfig, NoHook, Outcome, RunResult,
    SuperblockPolicy, WritebackHook, DATA_BASE,
};
use certa_workloads::all_workloads;

/// Watchdog for the random programs (they always halt far below this;
/// tampered or truncated runs are caught instead of spinning).
const WATCHDOG: u64 = 1 << 20;

/// The four execution tiers under differential comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tier {
    Reference,
    Fused,
    Superblock,
    Aot,
}

const ALL_TIERS: [Tier; 4] = [Tier::Reference, Tier::Fused, Tier::Superblock, Tier::Aot];

fn config(mem_size: u32) -> MachineConfig {
    MachineConfig {
        mem_size,
        max_instructions: WATCHDOG,
        profile: true,
    }
}

/// Everything the campaign (and the fault injector) can observe of a run.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    result: RunResult,
    regs: Vec<u32>,
    fregs: Vec<u64>,
    exec_counts: Vec<u64>,
    mem: Vec<u8>,
}

fn fingerprint(m: &Machine<'_>, result: RunResult, mem_probe: u32) -> Fingerprint {
    Fingerprint {
        result,
        regs: (0..32).map(|i| m.reg(Reg::new(i))).collect(),
        fregs: (0..32)
            .map(|i| m.freg(certa_isa::FReg::new(i)).to_bits())
            .collect(),
        exec_counts: m.exec_counts().to_vec(),
        mem: m.read_bytes(DATA_BASE, mem_probe).unwrap_or_default(),
    }
}

fn run_tier(
    p: &Program,
    aot: &AotProgram,
    tier: Tier,
    cfg: &MachineConfig,
    mem_probe: u32,
) -> (Fingerprint, u64) {
    let decoded = match tier {
        Tier::Fused => Arc::new(DecodedProgram::with_policy(p, &SuperblockPolicy::disabled())),
        _ => Arc::new(DecodedProgram::new(p)),
    };
    let mut m = Machine::try_new_with_decoded(p, &decoded, cfg).expect("valid config");
    let result = match tier {
        Tier::Reference => m.run_reference(&mut NoHook),
        Tier::Fused | Tier::Superblock => m.run_simple(),
        Tier::Aot => m.run_aot(&mut NoHook, aot),
    };
    let native = m.aot_instructions();
    (fingerprint(&m, result, mem_probe), native)
}

/// All seven paper workloads: the AOT golden run must match every
/// interpreter tier on every observable, including extracted output.
#[test]
fn workload_golden_runs_agree_across_all_four_tiers() {
    for w in all_workloads() {
        let aot = aot_workloads::lookup(w.name()).expect("workload is precompiled");
        let cfg = MachineConfig {
            mem_size: w.mem_size(),
            profile: true,
            ..MachineConfig::default()
        };
        let mut reference = None;
        for tier in ALL_TIERS {
            let decoded = match tier {
                Tier::Fused => Arc::new(DecodedProgram::with_policy(
                    w.program(),
                    &SuperblockPolicy::disabled(),
                )),
                _ => Arc::new(DecodedProgram::new(w.program())),
            };
            let mut m =
                Machine::try_new_with_decoded(w.program(), &decoded, &cfg).expect("valid config");
            w.prepare(&mut m);
            let result = match tier {
                Tier::Reference => m.run_reference(&mut NoHook),
                Tier::Fused | Tier::Superblock => m.run_simple(),
                Tier::Aot => m.run_aot(&mut NoHook, aot),
            };
            assert_eq!(result.outcome, Outcome::Halted, "{} {tier:?}", w.name());
            let fp = (result.clone(), m.exec_counts().to_vec(), w.extract(&m));
            if tier == Tier::Aot {
                // The native tier must actually carry the bulk of the run.
                let native = m.aot_instructions();
                assert!(
                    native * 2 > fp.0.instructions,
                    "{}: only {native} of {} instructions ran natively",
                    w.name(),
                    result.instructions
                );
            }
            match &reference {
                None => reference = Some(fp),
                Some(r) => assert_eq!(r, &fp, "{} {tier:?} diverged", w.name()),
            }
        }
    }
}

/// The precompiled random programs (same seeds as `build.rs`): all four
/// tiers agree on every observable — including crash pcs/icounts for the
/// seeds whose wild accesses fault — and under a halved watchdog the
/// native tier reports the identical `InfiniteRun` boundary.
#[test]
fn random_programs_agree_across_all_four_tiers() {
    let mut halted = 0u32;
    let mut crashed = 0u32;
    let mut native_total = 0u64;
    for seed in AOT_RANDOM_SEEDS {
        let p = certa_aot::progs::random_program(seed);
        let aot = aot_workloads::lookup(&format!("random_{seed}")).expect("seed is precompiled");
        let cfg = config(1 << 20);
        let (expected, _) = run_tier(&p, aot, Tier::Reference, &cfg, RANDOM_BUF_LEN);
        for tier in [Tier::Fused, Tier::Superblock, Tier::Aot] {
            let (got, native) = run_tier(&p, aot, tier, &cfg, RANDOM_BUF_LEN);
            assert_eq!(expected, got, "seed {seed} {tier:?} diverged");
            if tier == Tier::Aot {
                native_total += native;
            }
        }
        match expected.result.outcome {
            Outcome::Halted => halted += 1,
            Outcome::Crashed(_) => crashed += 1,
            Outcome::InfiniteRun => {}
        }
        // A tight watchdog must cut the native run at the identical point.
        let short = MachineConfig {
            max_instructions: (expected.result.instructions / 2).max(1),
            ..cfg
        };
        let (expected_short, _) = run_tier(&p, aot, Tier::Reference, &short, RANDOM_BUF_LEN);
        let (got_short, _) = run_tier(&p, aot, Tier::Aot, &short, RANDOM_BUF_LEN);
        assert_eq!(expected_short, got_short, "seed {seed} watchdog diverged");
    }
    assert!(halted >= 5, "random corpus lost its halting majority");
    assert!(crashed >= 1, "random corpus no longer covers crash parity");
    assert!(native_total > 1_000, "native tier barely executed");
}

/// A hook that must observe every writeback (here: counting them) forces
/// [`Machine::run_aot`] off the native path entirely — the run equals the
/// interpreter tiers bit-for-bit and retires zero native instructions.
#[test]
fn hooked_runs_fall_back_to_the_interpreter() {
    #[derive(Default)]
    struct Counter {
        ints: u64,
        floats: u64,
    }
    impl WritebackHook for Counter {
        fn int_writeback(&mut self, _i: usize, v: u32) -> u32 {
            self.ints += 1;
            v
        }
        fn float_writeback(&mut self, _i: usize, v: f64) -> f64 {
            self.floats += 1;
            v
        }
    }

    let p = nested_loop_program();
    let aot = aot_workloads::lookup("nested-loop").expect("precompiled");
    let cfg = config(1 << 20);

    let decoded = Arc::new(DecodedProgram::new(&p));
    let mut mi = Machine::try_new_with_decoded(&p, &decoded, &cfg).expect("valid config");
    let mut hi = Counter::default();
    let ri = mi.run(&mut hi);

    let mut ma = Machine::try_new_with_decoded(&p, &decoded, &cfg).expect("valid config");
    let mut ha = Counter::default();
    let ra = ma.run_aot(&mut ha, aot);

    assert_eq!(ri, ra);
    assert_eq!((hi.ints, hi.floats), (ha.ints, ha.floats));
    assert_eq!(ha.ints, ra.value_producing, "hook saw every writeback");
    assert_eq!(ma.aot_instructions(), 0, "hooked run must not go native");
    assert_eq!(
        fingerprint(&mi, ri, 64),
        fingerprint(&ma, ra, 64),
        "hooked fallback diverged"
    );
}

/// Satellite: mid-superblock / mid-AOT-region capture. Pause the native
/// run at *every* instruction boundary of the nested-loop kernel (pauses
/// land inside unrolled laps and inside compiled regions), snapshot at
/// the boundary, and prove that (a) the pause is exact, (b) resuming
/// natively finishes bit-identically, and (c) a fresh machine restored
/// from the snapshot finishes bit-identically on every other tier.
#[test]
fn every_pause_point_snapshots_and_resumes_bit_identically_across_tiers() {
    let p = nested_loop_program();
    let aot = aot_workloads::lookup("nested-loop").expect("precompiled");
    let cfg = config(1 << 20);
    let decoded = Arc::new(DecodedProgram::new(&p));
    let fused = Arc::new(DecodedProgram::with_policy(&p, &SuperblockPolicy::disabled()));

    let mut straight = Machine::try_new_with_decoded(&p, &decoded, &cfg).expect("valid config");
    let expected_result = straight.run_reference(&mut NoHook);
    assert_eq!(expected_result.outcome, Outcome::Halted);
    let expected = fingerprint(&straight, expected_result, 64);

    for pause in 1..expected.result.instructions {
        // (a) native run pauses exactly at the boundary...
        let mut m = Machine::try_new_with_decoded(&p, &decoded, &cfg).expect("valid config");
        match m.run_until_aot(&mut NoHook, aot, pause) {
            BoundedRun::Paused => assert_eq!(m.instructions(), pause, "pause point {pause}"),
            BoundedRun::Finished(r) => panic!("finished early at {pause}: {r:?}"),
        }
        let snap = m.snapshot();

        // (b) ...and resuming natively completes bit-identically.
        let r = m.run_aot(&mut NoHook, aot);
        assert_eq!(fingerprint(&m, r, 64), expected, "native resume at {pause}");

        // (c) a machine restored from the mid-region snapshot agrees on
        // every tier (resume pcs here are mid-block for most boundaries).
        // Snapshots deliberately exclude `exec_counts`, so restored runs
        // are compared against a restored *reference* baseline — which
        // must itself match the straight run on everything but the
        // profile of the pre-pause prefix.
        let mut baseline = None;
        for tier in ALL_TIERS {
            let dec = if tier == Tier::Fused { &fused } else { &decoded };
            let mut n = Machine::from_snapshot_with_decoded(&p, dec, &snap, &cfg)
                .expect("snapshot restores");
            let rn = match tier {
                Tier::Reference => n.run_reference(&mut NoHook),
                Tier::Fused | Tier::Superblock => n.run_simple(),
                Tier::Aot => n.run_aot(&mut NoHook, aot),
            };
            let fp = fingerprint(&n, rn, 64);
            match &baseline {
                None => {
                    assert_eq!(fp.result, expected.result, "restored result at {pause}");
                    assert_eq!(fp.regs, expected.regs, "restored registers at {pause}");
                    assert_eq!(fp.mem, expected.mem, "restored memory at {pause}");
                    baseline = Some(fp);
                }
                Some(b) => assert_eq!(&fp, b, "restored {tier:?} at {pause}"),
            }
        }
    }
}

/// Chopping a native run into uneven bounded slices is invisible: the
/// final fingerprint equals the straight reference run for every
/// precompiled random program.
#[test]
fn sliced_native_runs_match_straight_reference_runs() {
    for seed in AOT_RANDOM_SEEDS {
        let p = certa_aot::progs::random_program(seed);
        let aot = aot_workloads::lookup(&format!("random_{seed}")).expect("precompiled");
        let cfg = config(1 << 20);
        let (expected, _) = run_tier(&p, aot, Tier::Reference, &cfg, RANDOM_BUF_LEN);

        let decoded = Arc::new(DecodedProgram::new(&p));
        let mut m = Machine::try_new_with_decoded(&p, &decoded, &cfg).expect("valid config");
        // Uneven, prime-ish slices land pauses mid-region and mid-pair.
        let slice = (expected.result.instructions / 7).max(1) | 1;
        let mut target = 0u64;
        let result = loop {
            target += slice;
            match m.run_until_aot(&mut NoHook, aot, target) {
                BoundedRun::Finished(r) => break r,
                BoundedRun::Paused => {
                    assert_eq!(m.instructions(), target, "seed {seed} pause point");
                }
            }
        };
        assert_eq!(
            fingerprint(&m, result, RANDOM_BUF_LEN),
            expected,
            "seed {seed} sliced native run diverged"
        );
    }
}

/// The paper-scale ring-threshold kernel (the `campaign_paper` golden
/// run) is precompiled and bit-identical to the reference interpreter.
#[test]
fn ring_threshold_paper_kernel_agrees() {
    let (p, input_addr, _) = certa_aot::progs::ring_threshold_program(
        certa_aot::progs::PAPER_RING,
        certa_aot::progs::PAPER_ITERS,
    );
    let aot = aot_workloads::lookup("ring-threshold-paper").expect("precompiled");
    let cfg = MachineConfig {
        mem_size: 1 << 20,
        profile: true,
        ..MachineConfig::default()
    };
    let decoded = Arc::new(DecodedProgram::new(&p));
    let stage = |m: &mut Machine<'_>| {
        let bytes: Vec<u8> = (0..certa_aot::progs::PAPER_RING)
            .map(|i| (i * 151 + 43) as u8)
            .collect();
        m.write_bytes(input_addr, &bytes).expect("stage input");
    };

    let mut mr = Machine::try_new_with_decoded(&p, &decoded, &cfg).expect("valid config");
    stage(&mut mr);
    let rr = mr.run_reference(&mut NoHook);
    assert_eq!(rr.outcome, Outcome::Halted);

    let mut ma = Machine::try_new_with_decoded(&p, &decoded, &cfg).expect("valid config");
    stage(&mut ma);
    let ra = ma.run_aot(&mut NoHook, aot);
    let native = ma.aot_instructions();
    assert!(
        native * 2 > ra.instructions,
        "paper kernel barely ran natively"
    );
    assert_eq!(fingerprint(&ma, ra, 8192), fingerprint(&mr, rr, 8192));
}

/// The campaign seam the tentpole exists for: a session whose golden run
/// and checkpoint capture executed on tier-4 native code must be
/// indistinguishable from one built on the hooked interpreter — same
/// session fingerprint, same golden observables (including the
/// eligible-writeback population recovered from the execution profile),
/// and bit-identical trial records end to end.
#[test]
fn native_golden_campaigns_match_interpreted_campaigns() {
    use certa_core::analyze;
    use certa_fault::{
        run_campaign, run_campaign_with_aot, CampaignConfig, CampaignSession, Protection,
    };

    let workloads = all_workloads();
    let w = workloads
        .iter()
        .min_by_key(|w| w.program().code.len())
        .expect("at least one workload");
    let aot = aot_workloads::lookup(w.name()).expect("workload is precompiled");
    let tags = analyze(w.program());
    let config = CampaignConfig {
        trials: 24,
        errors: 1,
        protection: Protection::ControlOnly,
        threads: 2,
        seed: 0xA07_601D,
        ..CampaignConfig::default()
    };

    let interpreted = CampaignSession::new(&**w, &tags, &config);
    let native = CampaignSession::new_with_aot(&**w, &tags, &config, Some(aot));
    assert_eq!(
        interpreted.fingerprint(),
        native.fingerprint(),
        "{}: session fingerprints diverge",
        w.name()
    );
    let (gi, gn) = (interpreted.golden(), native.golden());
    assert_eq!(gi.output, gn.output, "{}: golden output", w.name());
    assert_eq!(gi.instructions, gn.instructions);
    assert_eq!(
        gi.eligible_population, gn.eligible_population,
        "{}: profile-derived eligible population diverges from the hook's",
        w.name()
    );
    assert_eq!(gi.exec_counts, gn.exec_counts);

    let ri = run_campaign(&**w, &tags, &config);
    let rn = run_campaign_with_aot(&**w, &tags, &config, Some(aot));
    assert_eq!(ri.trials, rn.trials, "{}: trial records diverge", w.name());
    assert!(ri.trials.iter().any(|t| t.result().is_some()));
}

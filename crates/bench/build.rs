//! Build script for the `aot` feature: generates tier-4 native code for
//! every shared guest program into `$OUT_DIR/aot_workloads.rs`, which the
//! library includes as the `aot_workloads` module.
//!
//! The generated set is exactly what the parity tests and benches
//! exercise: the seven paper workloads, the differential suite's seeded
//! random programs, the nested-loop lap kernel, and the paper-scale
//! ring-threshold campaign kernel. Generation is gated at *runtime* on
//! `CARGO_FEATURE_AOT` (build-dependencies cannot be feature-gated), so
//! plain `cargo test -q` pays nothing beyond compiling this script.

use std::env;
use std::fs;
use std::path::PathBuf;

fn main() {
    println!("cargo:rerun-if-changed=build.rs");
    if env::var_os("CARGO_FEATURE_AOT").is_none() {
        return;
    }
    let mut owned: Vec<(String, certa_isa::Program)> = Vec::new();
    for w in certa_workloads::all_workloads() {
        owned.push((w.name().to_string(), w.program().clone()));
    }
    for seed in certa_aot::progs::AOT_RANDOM_SEEDS {
        owned.push((format!("random_{seed}"), certa_aot::progs::random_program(seed)));
    }
    owned.push((
        "nested-loop".to_string(),
        certa_aot::progs::nested_loop_program(),
    ));
    let (paper, _, _) = certa_aot::progs::ring_threshold_program(
        certa_aot::progs::PAPER_RING,
        certa_aot::progs::PAPER_ITERS,
    );
    owned.push(("ring-threshold-paper".to_string(), paper));

    let entries: Vec<(&str, &certa_isa::Program)> =
        owned.iter().map(|(n, p)| (n.as_str(), p)).collect();
    let src = certa_aot::generate_module(&entries);
    let out = PathBuf::from(env::var("OUT_DIR").expect("OUT_DIR is set by cargo"));
    fs::write(out.join("aot_workloads.rs"), src).expect("write generated AOT module");
}

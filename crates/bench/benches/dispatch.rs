//! Criterion bench: raw interpreter throughput per workload across the
//! three execution tiers — the CFG-derived superblock dispatch (the
//! default [`Machine::run`] configuration), the fused per-op dispatch
//! ([`SuperblockPolicy::disabled`]), and the reference `Instr`
//! tree-walking interpreter ([`Machine::run_reference`]) — all unprofiled
//! and hook-free (the campaign's hot configuration).
//!
//! Prints MIPS (millions of simulated instructions per second) for each
//! workload and three geometric-mean speedups (acceptance targets:
//! superblock ≥ 1.3× over fused, ≥ 2.8× over reference), and emits a
//! `BENCH_dispatch.json` summary for the CI artifact trail; the
//! `bench_trajectory` binary gates CI on the headline geomean.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use certa_bench::{geomean, time_tiers, write_bench_json, TierRounds};
use certa_sim::{
    DecodedProgram, Machine, MachineConfig, NoHook, Outcome, RunResult, SuperblockPolicy,
};
use certa_workloads::{all_workloads, Workload};

/// Which execution tier a sample times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tier {
    /// Tree-walking `Instr` interpreter.
    Reference,
    /// Predecoded micro-op dispatch with pair fusion, superblocks off.
    Fused,
    /// Superblock trace dispatch (the default pipeline).
    Superblock,
}

impl Tier {
    const ALL: [Tier; 3] = [Tier::Reference, Tier::Fused, Tier::Superblock];

    fn name(self) -> &'static str {
        match self {
            Tier::Reference => "reference",
            Tier::Fused => "fused",
            Tier::Superblock => "superblock",
        }
    }
}

fn machine_config(w: &dyn Workload) -> MachineConfig {
    MachineConfig {
        mem_size: w.mem_size(),
        ..MachineConfig::default()
    }
}

/// The two decoded forms every sample reuses (lowering excluded from the
/// timed section, like machine construction and input staging).
struct Lowered {
    fused: Arc<DecodedProgram>,
    superblock: Arc<DecodedProgram>,
}

impl Lowered {
    fn new(w: &dyn Workload) -> Self {
        Lowered {
            fused: Arc::new(DecodedProgram::with_policy(
                w.program(),
                &SuperblockPolicy::disabled(),
            )),
            superblock: Arc::new(DecodedProgram::new(w.program())),
        }
    }
}

/// One timed sample of the chosen tier: `reps` back-to-back golden runs
/// (machine construction and input staging excluded from the timed
/// sections), long enough that the sample is not aliased by host clock
/// stepping.
fn time_golden_reps(
    w: &dyn Workload,
    lowered: &Lowered,
    tier: Tier,
    reps: usize,
) -> (Duration, RunResult) {
    let config = machine_config(w);
    let decoded = match tier {
        Tier::Fused => &lowered.fused,
        _ => &lowered.superblock,
    };
    let mut total = Duration::ZERO;
    let mut result = None;
    for _ in 0..reps {
        let mut m = Machine::try_new_with_decoded(w.program(), decoded, &config)
            .expect("bench machine config is valid");
        w.prepare(&mut m);
        let start = Instant::now();
        let r = match tier {
            Tier::Reference => m.run_reference(&mut NoHook),
            Tier::Fused | Tier::Superblock => m.run_simple(),
        };
        total += start.elapsed();
        assert_eq!(r.outcome, Outcome::Halted, "{} golden run", w.name());
        result = Some(r);
    }
    (total, result.expect("at least one rep"))
}

/// Times the three tiers through the shared round-based harness
/// ([`certa_bench::time_tiers`]): each sampler returns seconds per
/// simulated instruction over a rep-accumulated run, and per-round
/// ratios survive host clock drift. Also returns the (tier-agreeing)
/// run result for throughput annotations.
fn time_golden_rounds(w: &dyn Workload, lowered: &Lowered, rounds: usize) -> (TierRounds, RunResult) {
    // Size reps so each sample spans ≥ ~20M simulated instructions.
    let (_, probe) = time_golden_reps(w, lowered, Tier::Superblock, 1);
    let reps = (20_000_000 / probe.instructions.max(1)).clamp(1, 2_000) as usize;
    let spi_of = |tier: Tier| {
        let (t, r) = time_golden_reps(w, lowered, tier, reps);
        t.as_secs_f64() / (r.instructions * reps as u64) as f64
    };
    let timing = time_tiers(
        rounds,
        &mut [
            &mut || spi_of(Tier::Reference),
            &mut || spi_of(Tier::Fused),
            &mut || spi_of(Tier::Superblock),
        ],
    );
    (timing, probe)
}

fn bench_dispatch_throughput(c: &mut Criterion) {
    let workloads = all_workloads();
    let lowered: Vec<Lowered> = workloads.iter().map(|w| Lowered::new(&**w)).collect();

    // Warmup sweep: every tier over every workload before any timing, so
    // page cache, branch predictors, and clock governors reach steady
    // state (single-core CI machines ramp noticeably).
    for (w, l) in workloads.iter().zip(&lowered) {
        for tier in Tier::ALL {
            let _ = time_golden_reps(&**w, l, tier, 1);
        }
    }

    let mut rows = String::new();
    let mut sb_vs_ref = Vec::new();
    let mut fused_vs_ref = Vec::new();
    let mut sb_vs_fused = Vec::new();
    println!(
        "{:<10} {:>14} {:>10} {:>11} {:>11} {:>9} {:>9}",
        "workload", "instructions", "ref MIPS", "fused MIPS", "sb MIPS", "sb/ref", "sb/fused"
    );
    for (w, l) in workloads.iter().zip(&lowered) {
        let (timing, result) = time_golden_rounds(&**w, l, 5);
        let to_mips = |spi: f64| 1.0 / spi / 1e6;
        let (ref_mips, fused_mips, sb_mips) = (
            to_mips(timing.best[0]),
            to_mips(timing.best[1]),
            to_mips(timing.best[2]),
        );
        // Ratios are medians of within-round comparisons: reference(0),
        // fused(1), superblock(2); numerator is the slower tier's s/i.
        let (w_sb_ref, w_fused_ref, w_sb_fused) = (
            timing.median_ratio(0, 2),
            timing.median_ratio(0, 1),
            timing.median_ratio(1, 2),
        );
        sb_vs_ref.push(w_sb_ref);
        fused_vs_ref.push(w_fused_ref);
        sb_vs_fused.push(w_sb_fused);
        println!(
            "{:<10} {:>14} {:>10.1} {:>11.1} {:>11.1} {:>8.2}x {:>8.2}x",
            w.name(),
            result.instructions,
            ref_mips,
            fused_mips,
            sb_mips,
            w_sb_ref,
            w_sb_fused,
        );
        let _ = write!(
            rows,
            "{}{{\"name\":\"{}\",\"instructions\":{},\"reference_mips\":{:.3},\
             \"fused_mips\":{:.3},\"superblock_mips\":{:.3},\"speedup\":{:.3},\
             \"speedup_vs_fused\":{:.3}}}",
            if rows.is_empty() { "" } else { "," },
            w.name(),
            result.instructions,
            ref_mips,
            fused_mips,
            sb_mips,
            w_sb_ref,
            w_sb_fused,
        );
    }
    let geo_sb_ref = geomean(&sb_vs_ref);
    let geo_fused_ref = geomean(&fused_vs_ref);
    let geo_sb_fused = geomean(&sb_vs_fused);
    println!(
        "dispatch geomeans: superblock/reference {geo_sb_ref:.2}x (target ≥ 2.8x), \
         fused/reference {geo_fused_ref:.2}x, superblock/fused {geo_sb_fused:.2}x \
         (target ≥ 1.3x)"
    );

    let json = format!(
        "{{\"bench\":\"dispatch\",\"geomean_speedup\":{geo_sb_ref:.3},\
         \"geomean_fused_speedup\":{geo_fused_ref:.3},\
         \"geomean_superblock_vs_fused\":{geo_sb_fused:.3},\"workloads\":[{rows}]}}\n"
    );
    match write_bench_json("dispatch", &json) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_dispatch.json: {e}"),
    }

    // Criterion entries for the trajectory: every tier on every workload,
    // throughput-annotated with the dynamic instruction count.
    let mut group = c.benchmark_group("dispatch_throughput");
    group.sample_size(5);
    for (w, l) in workloads.iter().zip(&lowered) {
        let config = machine_config(&**w);
        let mut probe =
            Machine::try_new_with_decoded(w.program(), &l.superblock, &config).expect("probe");
        w.prepare(&mut probe);
        let instructions = probe.run_simple().instructions;
        group.throughput(Throughput::Elements(instructions));
        for tier in Tier::ALL {
            group.bench_function(BenchmarkId::new(tier.name(), w.name()), |b| {
                b.iter(|| {
                    let decoded = match tier {
                        Tier::Fused => &l.fused,
                        _ => &l.superblock,
                    };
                    let mut m = Machine::try_new_with_decoded(w.program(), decoded, &config)
                        .expect("bench machine config is valid");
                    w.prepare(&mut m);
                    match tier {
                        Tier::Reference => std::hint::black_box(m.run_reference(&mut NoHook)),
                        Tier::Fused | Tier::Superblock => std::hint::black_box(m.run_simple()),
                    }
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_dispatch_throughput);
criterion_main!(benches);

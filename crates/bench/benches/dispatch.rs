//! Criterion bench: raw interpreter throughput per workload — the
//! predecoded micro-op dispatch ([`Machine::run`]) against the reference
//! `Instr` tree-walking interpreter ([`Machine::run_reference`]), both
//! unprofiled and hook-free (the campaign's hot configuration).
//!
//! Prints MIPS (millions of simulated instructions per second) for each
//! workload and the geometric-mean speedup (acceptance target ≥ 2×), and
//! emits a `BENCH_dispatch.json` summary for the CI artifact trail.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use certa_bench::{geomean, write_bench_json};
use certa_sim::{Machine, MachineConfig, NoHook, Outcome, RunResult};
use certa_workloads::{all_workloads, Workload};

fn machine_config(w: &dyn Workload) -> MachineConfig {
    MachineConfig {
        mem_size: w.mem_size(),
        ..MachineConfig::default()
    }
}

/// One timed golden run (machine construction and input staging excluded
/// from the timed section).
fn time_golden_once(w: &dyn Workload, reference: bool) -> (Duration, RunResult) {
    let config = machine_config(w);
    let mut m = Machine::new(w.program(), &config);
    w.prepare(&mut m);
    let start = Instant::now();
    let r = if reference {
        m.run_reference(&mut NoHook)
    } else {
        m.run_simple()
    };
    let elapsed = start.elapsed();
    assert_eq!(r.outcome, Outcome::Halted, "{} golden run", w.name());
    (elapsed, r)
}

/// Best-of-N wall-clock per pipeline, samples interleaved
/// (reference/decoded alternating) so clock-frequency drift and cache
/// warmup hit both pipelines evenly.
fn time_golden_interleaved(
    w: &dyn Workload,
    samples: usize,
) -> (Duration, RunResult, Duration, RunResult) {
    let mut best_ref = Duration::MAX;
    let mut best_dec = Duration::MAX;
    let mut ref_result = None;
    let mut dec_result = None;
    for _ in 0..samples {
        let (t, r) = time_golden_once(w, true);
        best_ref = best_ref.min(t);
        ref_result = Some(r);
        let (t, r) = time_golden_once(w, false);
        best_dec = best_dec.min(t);
        dec_result = Some(r);
    }
    (
        best_ref,
        ref_result.expect("at least one sample"),
        best_dec,
        dec_result.expect("at least one sample"),
    )
}

fn mips(instructions: u64, elapsed: Duration) -> f64 {
    instructions as f64 / elapsed.as_secs_f64() / 1e6
}

fn bench_dispatch_throughput(c: &mut Criterion) {
    let workloads = all_workloads();

    // Warmup sweep: both pipelines over every workload before any timing,
    // so page cache, branch predictors, and clock governors reach steady
    // state (single-core CI machines ramp noticeably).
    for w in &workloads {
        let _ = time_golden_once(&**w, true);
        let _ = time_golden_once(&**w, false);
    }

    let mut rows = String::new();
    let mut speedups = Vec::new();
    println!(
        "{:<10} {:>14} {:>12} {:>12} {:>9}",
        "workload", "instructions", "ref MIPS", "decoded MIPS", "speedup"
    );
    for w in &workloads {
        let (ref_time, ref_result, dec_time, dec_result) = time_golden_interleaved(&**w, 5);
        assert_eq!(
            ref_result, dec_result,
            "{}: pipelines must agree before being compared",
            w.name()
        );
        let ref_mips = mips(ref_result.instructions, ref_time);
        let dec_mips = mips(dec_result.instructions, dec_time);
        let speedup = dec_mips / ref_mips;
        speedups.push(speedup);
        println!(
            "{:<10} {:>14} {:>12.1} {:>12.1} {:>8.2}x",
            w.name(),
            ref_result.instructions,
            ref_mips,
            dec_mips,
            speedup
        );
        let _ = write!(
            rows,
            "{}{{\"name\":\"{}\",\"instructions\":{},\"reference_mips\":{:.3},\"decoded_mips\":{:.3},\"speedup\":{:.3}}}",
            if rows.is_empty() { "" } else { "," },
            w.name(),
            ref_result.instructions,
            ref_mips,
            dec_mips,
            speedup
        );
    }
    let geo = geomean(&speedups);
    println!("dispatch throughput geomean speedup: {geo:.2}x (target ≥ 2x)");

    let json = format!(
        "{{\"bench\":\"dispatch\",\"geomean_speedup\":{geo:.3},\"workloads\":[{rows}]}}\n"
    );
    match write_bench_json("dispatch", &json) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_dispatch.json: {e}"),
    }

    // Criterion entries for the trajectory: decoded vs reference on every
    // workload, throughput-annotated with the dynamic instruction count.
    let mut group = c.benchmark_group("dispatch_throughput");
    group.sample_size(5);
    for w in &workloads {
        let config = machine_config(&**w);
        let mut probe = Machine::new(w.program(), &config);
        w.prepare(&mut probe);
        let instructions = probe.run_simple().instructions;
        group.throughput(Throughput::Elements(instructions));
        group.bench_function(BenchmarkId::new("decoded", w.name()), |b| {
            b.iter(|| {
                let mut m = Machine::new(w.program(), &config);
                w.prepare(&mut m);
                std::hint::black_box(m.run_simple())
            });
        });
        group.bench_function(BenchmarkId::new("reference", w.name()), |b| {
            b.iter(|| {
                let mut m = Machine::new(w.program(), &config);
                w.prepare(&mut m);
                std::hint::black_box(m.run_reference(&mut NoHook))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dispatch_throughput);
criterion_main!(benches);

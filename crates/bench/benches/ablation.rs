//! Criterion bench: the analysis-variant ablation (address protection,
//! mask chain-breaking, load tagging) across all workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use certa_core::analyze_with;
use certa_workloads::all_workloads;

fn bench_ablation_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis_variants");
    let workloads = all_workloads();
    let mpeg = workloads
        .iter()
        .find(|w| w.name() == "mpeg")
        .expect("mpeg workload");
    let program = mpeg.program().clone();
    for (name, opts) in certa_bench::ablation_variants() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &opts, |b, opts| {
            b.iter(|| analyze_with(std::hint::black_box(&program), opts));
        });
    }
    group.finish();
}

fn bench_ablation_campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_campaign");
    group.sample_size(10);
    group.bench_function("all_variants_small", |b| {
        b.iter(|| std::hint::black_box(certa_bench::ablation(2, 4, 0x0AB1)));
    });
    group.finish();
}

criterion_group!(benches, bench_ablation_variants, bench_ablation_campaign);
criterion_main!(benches);

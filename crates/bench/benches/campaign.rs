//! Criterion bench: fault-campaign throughput with checkpoint acceleration
//! on vs. off.
//!
//! The workload is a synthetic ring-threshold kernel sized so its golden
//! run exceeds 10M dynamic instructions — long enough that re-executing
//! every trial from instruction zero dominates campaign cost. The bench
//! prints the measured wall-clock speedup; the checkpointing acceptance
//! target is ≥ 3×.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use certa_asm::Asm;
use certa_core::analyze;
use certa_fault::{golden_run, run_campaign, CampaignConfig, Protection, Target};
use certa_isa::{reg, Program};
use certa_sim::Machine;

/// Ring buffer size (bytes); each slot is rewritten every `RING` iterations,
/// which is what lets corrupted outputs heal and trials reconverge with the
/// golden run — the behavior checkpointing exploits.
const RING: usize = 4096;
/// Loop iterations; ~12 instructions each puts the golden run past 12M.
const ITERS: i32 = 1 << 20;

/// Threshold-classifies a transformed byte stream into a ring buffer:
/// `out[i % RING] = ((in[i % RING] * 3 + 7) & 0xff) < 128`.
struct RingThresholdTarget {
    program: Program,
    input_addr: u32,
    output_addr: u32,
}

impl RingThresholdTarget {
    fn new() -> Self {
        let mut a = Asm::new();
        let input_addr = a.data_zero(RING);
        let output_addr = a.data_zero(RING);
        a.func("threshold", true);
        a.la(reg::T0, input_addr);
        a.la(reg::T4, output_addr);
        a.li(reg::T1, 0);
        a.label("loop");
        a.andi(reg::T5, reg::T1, (RING - 1) as i32);
        a.add(reg::T3, reg::T0, reg::T5);
        a.lbu(reg::T3, 0, reg::T3);
        a.muli(reg::T3, reg::T3, 3);
        a.addi(reg::T3, reg::T3, 7);
        a.andi(reg::T3, reg::T3, 255);
        a.slti(reg::T3, reg::T3, 128);
        a.add(reg::T6, reg::T4, reg::T5);
        a.sb(reg::T3, 0, reg::T6);
        a.addi(reg::T1, reg::T1, 1);
        a.slti(reg::T6, reg::T1, ITERS);
        a.bnez(reg::T6, "loop");
        a.ret();
        a.endfunc();
        a.func("main", false);
        a.call("threshold");
        a.halt();
        a.endfunc();
        RingThresholdTarget {
            program: a.assemble().unwrap(),
            input_addr,
            output_addr,
        }
    }
}

impl Target for RingThresholdTarget {
    fn program(&self) -> &Program {
        &self.program
    }

    fn prepare(&self, machine: &mut Machine<'_>) {
        let input: Vec<u8> = (0..RING).map(|i| (i * 151 + 43) as u8).collect();
        machine.write_bytes(self.input_addr, &input).unwrap();
    }

    fn extract(&self, machine: &Machine<'_>) -> Option<Vec<u8>> {
        machine
            .read_bytes(self.output_addr, RING as u32)
            .ok()
    }
}

fn campaign_config(checkpointing: bool) -> CampaignConfig {
    CampaignConfig {
        trials: 24,
        errors: 1,
        protection: Protection::ControlOnly,
        seed: 0xBE11C,
        checkpointing,
        ..CampaignConfig::default()
    }
}

fn bench_campaign_throughput(c: &mut Criterion) {
    let target = RingThresholdTarget::new();
    let tags = analyze(target.program());

    let golden = golden_run(&target, &tags, Protection::ControlOnly, u64::MAX / 2);
    assert!(
        golden.instructions >= 10_000_000,
        "bench workload must exceed 10M golden instructions, got {}",
        golden.instructions
    );
    println!(
        "golden run: {} instructions, {} eligible injection points",
        golden.instructions, golden.eligible_population
    );

    // Warmup pass for both modes: primes the page cache and the big
    // checkpoint allocations, and double-checks the determinism contract.
    let fast = run_campaign(&target, &tags, &campaign_config(true));
    let slow = run_campaign(&target, &tags, &campaign_config(false));
    for (i, (a, b)) in fast.trials.iter().zip(&slow.trials).enumerate() {
        assert_eq!(a, b, "trial {i} record must match");
    }

    // Restore-path breakdown of the warmup's checkpointed run: how many
    // trial restores took the dirty-page fast path, the checkpoint-hop
    // page-diff path (and how many of those hop unions came from the
    // bounded cache), and the full-image fallback.
    let rs = fast.restore_stats;
    println!(
        "campaign restores: {} dirty-page, {} diff-hop ({} hop-union cache hits), {} full-image",
        rs.dirty_page, rs.diff_hop, rs.diff_union_cache_hits, rs.full_image
    );
    assert_eq!(
        slow.restore_stats,
        certa_fault::RestoreStats::default(),
        "scratch campaigns never restore checkpoints"
    );

    // Headline number: one warm timed campaign per mode.
    let start = Instant::now();
    let timed = std::hint::black_box(run_campaign(&target, &tags, &campaign_config(true)));
    let with_checkpoints = start.elapsed();
    let start = Instant::now();
    std::hint::black_box(run_campaign(&target, &tags, &campaign_config(false)));
    let from_scratch = start.elapsed();
    let speedup = from_scratch.as_secs_f64() / with_checkpoints.as_secs_f64();
    println!(
        "campaign wall-clock: checkpointing on {:.3} s, off {:.3} s → {:.1}x speedup (target ≥ 3x)",
        with_checkpoints.as_secs_f64(),
        from_scratch.as_secs_f64(),
        speedup
    );
    // MIPS-style throughput: the campaign simulates trials × golden-length
    // instructions (an upper bound for checkpointed runs, which skip
    // prefixes/suffixes — making the effective rate look even higher).
    let campaign_instructions = golden.instructions * campaign_config(true).trials as u64;
    let on_mips = campaign_instructions as f64 / with_checkpoints.as_secs_f64() / 1e6;
    let off_mips = campaign_instructions as f64 / from_scratch.as_secs_f64() / 1e6;
    println!(
        "campaign throughput: checkpointing on {on_mips:.1} MIPS, off {off_mips:.1} MIPS \
         ({campaign_instructions} simulated instructions per campaign)"
    );
    let trs = timed.restore_stats;
    println!(
        "campaign rates: {:.1} trials/s checkpointed, {} checkpoint capture bytes \
         (copy-on-write: only pages written between checkpoints are materialized)",
        timed.trials_per_second(),
        timed.checkpoint_capture_bytes
    );
    let json = format!(
        "{{\"bench\":\"campaign\",\"golden_instructions\":{},\"trials\":{},\
         \"checkpointing_on_secs\":{:.6},\"checkpointing_off_secs\":{:.6},\
         \"speedup\":{:.3},\"checkpointing_on_mips\":{:.3},\"checkpointing_off_mips\":{:.3},\
         \"trials_per_second\":{:.3},\"checkpoint_capture_bytes\":{},\
         \"restores_dirty_page\":{},\"restores_diff_hop\":{},\
         \"restores_diff_union_cache_hits\":{},\"restores_full_image\":{}}}\n",
        golden.instructions,
        campaign_config(true).trials,
        with_checkpoints.as_secs_f64(),
        from_scratch.as_secs_f64(),
        speedup,
        on_mips,
        off_mips,
        timed.trials_per_second(),
        timed.checkpoint_capture_bytes,
        trs.dirty_page,
        trs.diff_hop,
        trs.diff_union_cache_hits,
        trs.full_image
    );
    match certa_bench::write_bench_json("campaign", &json) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_campaign.json: {e}"),
    }

    let mut group = c.benchmark_group("campaign_throughput");
    group.sample_size(3);
    group.throughput(Throughput::Elements(
        golden.instructions * campaign_config(true).trials as u64,
    ));
    group.bench_function("checkpointing_on", |b| {
        b.iter(|| std::hint::black_box(run_campaign(&target, &tags, &campaign_config(true))));
    });
    group.bench_function("checkpointing_off", |b| {
        b.iter(|| std::hint::black_box(run_campaign(&target, &tags, &campaign_config(false))));
    });
    group.finish();
}

criterion_group!(benches, bench_campaign_throughput);
criterion_main!(benches);

//! Criterion bench: functional-simulator throughput (golden runs of each
//! workload, instructions per second).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use certa_sim::{Machine, MachineConfig, Outcome};
use certa_workloads::all_workloads;

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_golden_run");
    group.sample_size(10);
    for w in all_workloads() {
        // measure instruction count once for throughput reporting
        let config = MachineConfig::default();
        let mut m = Machine::new(w.program(), &config);
        w.prepare(&mut m);
        let r = m.run_simple();
        assert_eq!(r.outcome, Outcome::Halted);
        group.throughput(Throughput::Elements(r.instructions));
        group.bench_function(BenchmarkId::from_parameter(w.name()), |b| {
            b.iter(|| {
                let mut m = Machine::new(w.program(), &config);
                w.prepare(&mut m);
                std::hint::black_box(m.run_simple())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);

//! Criterion bench: speed of the paper's static analysis (CFG + backward
//! CVar dataflow) on every workload program.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use certa_core::analyze;
use certa_workloads::all_workloads;

fn bench_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("static_analysis");
    for w in all_workloads() {
        let program = w.program().clone();
        group.bench_with_input(
            BenchmarkId::from_parameter(w.name()),
            &program,
            |b, program| b.iter(|| analyze(std::hint::black_box(program))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);

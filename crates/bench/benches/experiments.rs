//! Criterion benches: one per table/figure of the paper. Each bench runs a
//! reduced-trial version of the same measurement path the `repro_*`
//! binaries use, so `cargo bench` exercises every experiment end-to-end.

use criterion::{criterion_group, criterion_main, Criterion};

use certa_bench::{figure, table2, table3, FigureSpec};

const BENCH_TRIALS: usize = 3;
const SEED: u64 = 0xBE7C;

fn bench_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    group.bench_function("table2", |b| {
        b.iter(|| std::hint::black_box(table2(BENCH_TRIALS, SEED)));
    });
    group.bench_function("table3", |b| {
        b.iter(|| std::hint::black_box(table3()));
    });
    group.finish();
}

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    for spec in FigureSpec::all() {
        // Trim each sweep to its endpoints for the perf bench; the repro
        // binaries run the full sweep.
        let reduced = FigureSpec {
            errors: vec![
                *spec.errors.first().expect("non-empty sweep"),
                *spec.errors.last().expect("non-empty sweep"),
            ],
            ..spec
        };
        group.bench_function(reduced.id, |b| {
            b.iter(|| std::hint::black_box(figure(&reduced, BENCH_TRIALS, SEED)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tables, bench_figures);
criterion_main!(benches);

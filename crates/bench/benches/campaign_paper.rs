//! Paper-scale fault-campaign bench: 1024 trials (Table-2 order of
//! magnitude) against a medium golden run, checkpointing on vs. off.
//!
//! The 24-trial `campaign` bench measures restore mechanics but spreads
//! its trials too thin to exercise the checkpoint-hop union cache the way
//! a real table-scale campaign does; this bench runs enough trials that
//! every checkpoint group is revisited by many workers and the hop-union
//! MRU must serve repeated hops from cache. The trajectory gate
//! (`bench_trajectory`) tracks the headline speedup *and* fails if the
//! cache-hit counter reads zero — the MRU path can never silently rot
//! into dead code.
//!
//! `CERTA_PAPER_TRIALS` overrides the trial count (CI uses a short-trial
//! variant to bound runtime; the acceptance numbers are recorded at the
//! default 1024).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use certa_aot::progs::{ring_threshold_program, PAPER_ITERS, PAPER_RING};
use certa_core::analyze;
use certa_fault::{
    run_campaign, run_campaign_with_aot, CampaignConfig, CampaignSession, Protection, Target,
};
use certa_isa::Program;
use certa_sim::{AotProgram, Machine};

/// Default trial count (Table-2 scale).
const DEFAULT_TRIALS: usize = 1024;

/// Same ring-threshold kernel as the `campaign` bench, scaled down:
/// `out[i % RING] = ((in[i % RING] * 3 + 7) & 0xff) < 128`, built by
/// [`certa_aot::progs::ring_threshold_program`] — the same source
/// `build.rs` compiles into the tier-4 `ring-threshold-paper` native
/// region. Each slot is rewritten every [`PAPER_RING`] iterations, which
/// lets corrupted outputs heal and trials reconverge with the golden run
/// (the behavior checkpointing exploits), and [`PAPER_ITERS`] ~12-
/// instruction iterations put the golden run near 1.6M — long enough
/// that from-scratch re-execution dominates the off-mode campaign, short
/// enough that 1024 off-mode trials stay benchable.
struct RingThresholdTarget {
    program: Program,
    input_addr: u32,
    output_addr: u32,
}

impl RingThresholdTarget {
    fn new() -> Self {
        let (program, input_addr, output_addr) = ring_threshold_program(PAPER_RING, PAPER_ITERS);
        RingThresholdTarget {
            program,
            input_addr,
            output_addr,
        }
    }
}

/// The precompiled tier-4 region for the paper kernel when this bench is
/// built with the `aot` feature; `None` otherwise (campaign golden runs
/// then execute on the interpreter, exactly as before tier 4 existed).
fn paper_aot() -> Option<&'static AotProgram> {
    #[cfg(feature = "aot")]
    {
        certa_bench::aot_workloads::lookup("ring-threshold-paper")
    }
    #[cfg(not(feature = "aot"))]
    {
        None
    }
}

impl Target for RingThresholdTarget {
    fn program(&self) -> &Program {
        &self.program
    }

    fn prepare(&self, machine: &mut Machine<'_>) {
        let input: Vec<u8> = (0..PAPER_RING).map(|i| (i * 151 + 43) as u8).collect();
        machine.write_bytes(self.input_addr, &input).unwrap();
    }

    fn extract(&self, machine: &Machine<'_>) -> Option<Vec<u8>> {
        machine.read_bytes(self.output_addr, PAPER_RING as u32).ok()
    }
}

fn trial_count() -> usize {
    std::env::var("CERTA_PAPER_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_TRIALS)
}

fn campaign_config(checkpointing: bool) -> CampaignConfig {
    CampaignConfig {
        trials: trial_count(),
        errors: 1,
        protection: Protection::ControlOnly,
        seed: 0x7AB1E2,
        checkpointing,
        // Pinned worker count (not the core count): paper-scale campaigns
        // are a multi-worker workload, and the hop-union MRU is a *shared*
        // cache — each worker sweeps every checkpoint group, so adjacent
        // hops recur across workers and all but the first come from
        // cache. Pinning also makes the speedup comparable across
        // machines; both modes are equally affected.
        threads: 4,
        ..CampaignConfig::default()
    }
}

fn bench_campaign_paper(c: &mut Criterion) {
    let target = RingThresholdTarget::new();
    let tags = analyze(target.program());
    let trials = trial_count();
    let aot = paper_aot();
    println!(
        "paper-scale campaign: {trials} trials (CERTA_PAPER_TRIALS overrides), golden runs {}",
        if aot.is_some() {
            "native (tier 4)"
        } else {
            "interpreted (build with --features aot for tier 4)"
        }
    );

    // Warmup + determinism spot-check on a small prefix of the trial
    // space: the full determinism contract is covered by the workspace
    // property suite; here we only want warm caches and a sanity check —
    // and, with the aot feature on, a live cross-tier check (the fast
    // campaign's golden run is native, the slow one's interpreted; their
    // trial records must still match bit for bit).
    let warm_cfg = CampaignConfig {
        trials: trials.min(64),
        ..campaign_config(true)
    };
    let warm_scratch_cfg = CampaignConfig {
        checkpointing: false,
        ..warm_cfg.clone()
    };
    let fast = run_campaign_with_aot(&target, &tags, &warm_cfg, aot);
    let slow = run_campaign(&target, &tags, &warm_scratch_cfg);
    for (i, (a, b)) in fast.trials.iter().zip(&slow.trials).enumerate() {
        assert_eq!(a, b, "trial {i} record must match");
    }

    // Golden-phase margin, measured on its own: session construction is
    // the golden run plus checkpoint capture and plan sampling, so the
    // interpreted-vs-native build-time ratio is the honest measure of
    // what tier 4 buys the campaign's serial prefix (with the feature
    // off, both builds are interpreted and the ratio reads ~1).
    let start = Instant::now();
    std::hint::black_box(CampaignSession::new(&target, &tags, &campaign_config(true)));
    let session_interpreted = start.elapsed();
    let start = Instant::now();
    std::hint::black_box(CampaignSession::new_with_aot(
        &target,
        &tags,
        &campaign_config(true),
        aot,
    ));
    let session_native = start.elapsed();
    let golden_speedup = session_interpreted.as_secs_f64() / session_native.as_secs_f64().max(1e-9);

    // Headline: one timed campaign per mode at full scale.
    let start = Instant::now();
    let timed = std::hint::black_box(run_campaign_with_aot(
        &target,
        &tags,
        &campaign_config(true),
        aot,
    ));
    let with_checkpoints = start.elapsed();
    let start = Instant::now();
    std::hint::black_box(run_campaign_with_aot(
        &target,
        &tags,
        &campaign_config(false),
        aot,
    ));
    let from_scratch = start.elapsed();
    let speedup = from_scratch.as_secs_f64() / with_checkpoints.as_secs_f64();

    let golden_instructions = timed.golden.instructions;
    let rs = timed.restore_stats;
    println!(
        "paper campaign wall-clock: checkpointing on {:.3} s, off {:.3} s → {:.1}x speedup \
         (target ≥ 5x)",
        with_checkpoints.as_secs_f64(),
        from_scratch.as_secs_f64(),
        speedup
    );
    println!(
        "paper campaign rates: {:.1} trials/s, {} checkpoint capture bytes, golden {} instructions",
        timed.trials_per_second(),
        timed.checkpoint_capture_bytes,
        golden_instructions
    );
    println!(
        "paper campaign golden phase (session build): interpreted {:.3} s, {} {:.3} s → {:.2}x",
        session_interpreted.as_secs_f64(),
        if aot.is_some() { "native" } else { "interpreted (aot off)" },
        session_native.as_secs_f64(),
        golden_speedup
    );
    println!(
        "paper campaign restores: {} dirty-page, {} diff-hop ({} hop-union cache hits), \
         {} full-image",
        rs.dirty_page, rs.diff_hop, rs.diff_union_cache_hits, rs.full_image
    );
    assert!(
        rs.diff_union_cache_hits > 0,
        "a {trials}-trial campaign must revisit checkpoint hops often enough to hit the \
         hop-union cache; zero hits means the MRU path regressed to dead code"
    );

    let json = format!(
        "{{\"bench\":\"campaign_paper\",\"golden_instructions\":{},\"trials\":{},\
         \"checkpointing_on_secs\":{:.6},\"checkpointing_off_secs\":{:.6},\
         \"speedup\":{:.3},\"trials_per_second\":{:.3},\"checkpoint_capture_bytes\":{},\
         \"restores_dirty_page\":{},\"restores_diff_hop\":{},\
         \"restores_diff_union_cache_hits\":{},\"restores_full_image\":{},\
         \"aot_golden\":{},\"session_build_secs_interpreted\":{:.6},\
         \"session_build_secs_native\":{:.6},\"golden_session_speedup\":{:.3}}}\n",
        golden_instructions,
        trials,
        with_checkpoints.as_secs_f64(),
        from_scratch.as_secs_f64(),
        speedup,
        timed.trials_per_second(),
        timed.checkpoint_capture_bytes,
        rs.dirty_page,
        rs.diff_hop,
        rs.diff_union_cache_hits,
        rs.full_image,
        aot.is_some(),
        session_interpreted.as_secs_f64(),
        session_native.as_secs_f64(),
        golden_speedup
    );
    match certa_bench::write_bench_json("campaign_paper", &json) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_campaign_paper.json: {e}"),
    }

    // One criterion entry (checkpointed mode only: the off mode at this
    // scale is minutes, and the headline above already timed it once).
    let mut group = c.benchmark_group("campaign_paper_throughput");
    group.sample_size(2);
    group.throughput(Throughput::Elements(trials as u64));
    group.bench_function("checkpointing_on", |b| {
        b.iter(|| {
            std::hint::black_box(run_campaign_with_aot(
                &target,
                &tags,
                &campaign_config(true),
                aot,
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_campaign_paper);
criterion_main!(benches);

//! Criterion bench: tier-4 AOT native golden-run throughput per workload
//! against the reference tree-walker and the superblock dispatch — all
//! unprofiled and hook-free (the golden-run configuration fault campaigns
//! accelerate with native code).
//!
//! Before any timing, every workload's AOT run is checked for parity with
//! the reference interpreter (outcome, dynamic instruction count,
//! value-producing count, extracted output) — a bench must never publish
//! a speedup for code that diverges. Prints MIPS per workload plus the
//! fraction of dynamic instructions retired inside native regions, and
//! emits `BENCH_aot.json` with the headline `geomean_aot_vs_reference`
//! (acceptance target ≥ 2.8×) for the `bench_trajectory` CI gate.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use certa_bench::{aot_workloads, geomean, time_tiers, write_bench_json};
use certa_sim::{AotProgram, Machine, MachineConfig, NoHook, Outcome, RunResult};
use certa_workloads::{all_workloads, Workload};

/// Which execution path a sample times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tier {
    /// Tree-walking `Instr` interpreter.
    Reference,
    /// Superblock trace dispatch (the fastest interpreter tier).
    Superblock,
    /// AOT native regions with interpreter fallback.
    Aot,
}

impl Tier {
    const ALL: [Tier; 3] = [Tier::Reference, Tier::Superblock, Tier::Aot];
}

fn machine_config(w: &dyn Workload) -> MachineConfig {
    MachineConfig {
        mem_size: w.mem_size(),
        ..MachineConfig::default()
    }
}

/// One timed sample: `reps` back-to-back golden runs with construction
/// and input staging excluded. Returns the run result and, for the AOT
/// tier, the native-retired instruction count of the last rep.
fn time_golden_reps(
    w: &dyn Workload,
    aot: &'static AotProgram,
    tier: Tier,
    reps: usize,
) -> (Duration, RunResult, u64) {
    let config = machine_config(w);
    let mut total = Duration::ZERO;
    let mut result = None;
    let mut native = 0;
    for _ in 0..reps {
        let mut m = Machine::new(w.program(), &config);
        w.prepare(&mut m);
        let start = Instant::now();
        let r = match tier {
            Tier::Reference => m.run_reference(&mut NoHook),
            Tier::Superblock => m.run_simple(),
            Tier::Aot => m.run_aot(&mut NoHook, aot),
        };
        total += start.elapsed();
        assert_eq!(r.outcome, Outcome::Halted, "{} golden run", w.name());
        native = m.aot_instructions();
        result = Some(r);
    }
    (total, result.expect("at least one rep"), native)
}

/// Asserts the AOT golden run is observationally identical to the
/// reference interpreter for this workload.
fn assert_parity(w: &dyn Workload, aot: &'static AotProgram) {
    let config = machine_config(w);
    let mut mr = Machine::new(w.program(), &config);
    w.prepare(&mut mr);
    let rr = mr.run_reference(&mut NoHook);
    let mut ma = Machine::new(w.program(), &config);
    w.prepare(&mut ma);
    let ra = ma.run_aot(&mut NoHook, aot);
    assert_eq!(rr, ra, "{}: AOT run result diverges", w.name());
    assert_eq!(
        w.extract(&mr),
        w.extract(&ma),
        "{}: AOT output diverges",
        w.name()
    );
}

fn bench_aot_throughput(c: &mut Criterion) {
    let workloads = all_workloads();
    let aots: Vec<&'static AotProgram> = workloads
        .iter()
        .map(|w| aot_workloads::lookup(w.name()).expect("workload is precompiled"))
        .collect();

    // Parity first, then a warmup sweep so clock governors settle.
    for (w, aot) in workloads.iter().zip(&aots) {
        assert_parity(&**w, aot);
        for tier in Tier::ALL {
            let _ = time_golden_reps(&**w, aot, tier, 1);
        }
    }

    let mut rows = String::new();
    let mut aot_vs_ref = Vec::new();
    let mut aot_vs_sb = Vec::new();
    println!(
        "{:<10} {:>14} {:>10} {:>9} {:>9} {:>8} {:>8} {:>9}",
        "workload", "instructions", "ref MIPS", "sb MIPS", "aot MIPS", "aot/ref", "aot/sb", "native %"
    );
    for (w, aot) in workloads.iter().zip(&aots) {
        // Size reps so each sample spans ≥ ~20M simulated instructions.
        let (_, probe, native) = time_golden_reps(&**w, aot, Tier::Aot, 1);
        let reps = (20_000_000 / probe.instructions.max(1)).clamp(1, 2_000) as usize;
        let spi_of = |tier: Tier| {
            let (t, r, _) = time_golden_reps(&**w, aot, tier, reps);
            t.as_secs_f64() / (r.instructions * reps as u64) as f64
        };
        let timing = time_tiers(
            5,
            &mut [
                &mut || spi_of(Tier::Reference),
                &mut || spi_of(Tier::Superblock),
                &mut || spi_of(Tier::Aot),
            ],
        );
        let to_mips = |spi: f64| 1.0 / spi / 1e6;
        let (ref_mips, sb_mips, aot_mips) = (
            to_mips(timing.best[0]),
            to_mips(timing.best[1]),
            to_mips(timing.best[2]),
        );
        let (w_ref, w_sb) = (timing.median_ratio(0, 2), timing.median_ratio(1, 2));
        let coverage = native as f64 / probe.instructions.max(1) as f64;
        aot_vs_ref.push(w_ref);
        aot_vs_sb.push(w_sb);
        println!(
            "{:<10} {:>14} {:>10.1} {:>9.1} {:>9.1} {:>7.2}x {:>7.2}x {:>8.1}%",
            w.name(),
            probe.instructions,
            ref_mips,
            sb_mips,
            aot_mips,
            w_ref,
            w_sb,
            coverage * 100.0,
        );
        let _ = write!(
            rows,
            "{}{{\"name\":\"{}\",\"instructions\":{},\"reference_mips\":{:.3},\
             \"superblock_mips\":{:.3},\"aot_mips\":{:.3},\"speedup\":{:.3},\
             \"speedup_vs_superblock\":{:.3},\"aot_coverage\":{:.4}}}",
            if rows.is_empty() { "" } else { "," },
            w.name(),
            probe.instructions,
            ref_mips,
            sb_mips,
            aot_mips,
            w_ref,
            w_sb,
            coverage,
        );
    }
    let geo_ref = geomean(&aot_vs_ref);
    let geo_sb = geomean(&aot_vs_sb);
    println!(
        "aot geomeans: aot/reference {geo_ref:.2}x (target ≥ 2.8x), \
         aot/superblock {geo_sb:.2}x"
    );

    let json = format!(
        "{{\"bench\":\"aot\",\"geomean_aot_vs_reference\":{geo_ref:.3},\
         \"geomean_aot_vs_superblock\":{geo_sb:.3},\"workloads\":[{rows}]}}\n"
    );
    match write_bench_json("aot", &json) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_aot.json: {e}"),
    }

    // Criterion entries: the AOT tier on every workload, throughput-
    // annotated (the interpreter tiers are covered by the dispatch bench).
    let mut group = c.benchmark_group("aot_throughput");
    group.sample_size(5);
    for (w, aot) in workloads.iter().zip(&aots) {
        let config = machine_config(&**w);
        let mut probe = Machine::new(w.program(), &config);
        w.prepare(&mut probe);
        let instructions = probe.run_aot(&mut NoHook, aot).instructions;
        group.throughput(Throughput::Elements(instructions));
        group.bench_function(BenchmarkId::new("aot", w.name()), |b| {
            b.iter(|| {
                let mut m = Machine::new(w.program(), &config);
                w.prepare(&mut m);
                std::hint::black_box(m.run_aot(&mut NoHook, aot))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_aot_throughput);
criterion_main!(benches);

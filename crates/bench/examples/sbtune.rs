//! Superblock policy tuning harness: prints per-workload trace statistics,
//! dynamic trace coverage, the tier-4 AOT-region coverage fraction (when
//! built with `--features aot`; `-` otherwise), and carefully timed MIPS
//! for the three interpreter tiers (reference tree-walker, fused
//! dispatch, superblock traces), using the same clock-drift-resistant
//! measurement harness as the `dispatch` bench
//! ([`certa_bench::time_tiers`]: rep-accumulated samples, median of
//! within-round tier ratios).
//!
//! ```text
//! cargo run --release -p certa-bench --example sbtune -- [min_len] [max_len] [rounds]
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use certa_bench::time_tiers;
use certa_sim::{chain_census, DecodedProgram, Machine, MachineConfig, NoHook, SuperblockPolicy};
use certa_workloads::{all_workloads, Workload};

fn time_runs(
    w: &dyn Workload,
    decoded: &Arc<DecodedProgram>,
    reference: bool,
    reps: usize,
) -> (Duration, u64) {
    let config = MachineConfig {
        mem_size: w.mem_size(),
        ..MachineConfig::default()
    };
    let mut total = Duration::ZERO;
    let mut instructions = 0;
    for _ in 0..reps {
        let mut m = Machine::try_new_with_decoded(w.program(), decoded, &config).unwrap();
        w.prepare(&mut m);
        let start = Instant::now();
        let r = if reference {
            m.run_reference(&mut NoHook)
        } else {
            m.run_simple()
        };
        total += start.elapsed();
        instructions = r.instructions;
    }
    (total, instructions * reps as u64)
}

/// Percentage of a golden run's dynamic instructions retired inside
/// tier-4 native regions — measured live when this example is built with
/// the `aot` feature, `None` otherwise (and for any program `build.rs`
/// did not precompile).
fn aot_coverage(w: &dyn Workload) -> Option<f64> {
    #[cfg(feature = "aot")]
    {
        let aot = certa_bench::aot_workloads::lookup(w.name())?;
        let config = MachineConfig {
            mem_size: w.mem_size(),
            ..MachineConfig::default()
        };
        let mut m = Machine::new(w.program(), &config);
        w.prepare(&mut m);
        let r = m.run_aot(&mut NoHook, aot);
        Some(m.aot_instructions() as f64 / r.instructions.max(1) as f64 * 100.0)
    }
    #[cfg(not(feature = "aot"))]
    {
        let _ = w;
        None
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let min_len: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2);
    let max_len: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(64);
    let rounds: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(7);
    let policy = SuperblockPolicy {
        min_len,
        max_len,
        ..SuperblockPolicy::default()
    };
    println!("policy: min_len={min_len} max_len={max_len} rounds={rounds}");

    // Dynamic chain census across the study: the measurement that decides
    // which concrete 2-/3-op sequences earn specialized handlers.
    let mut census_all: std::collections::HashMap<String, u64> = std::collections::HashMap::new();
    for w in all_workloads() {
        let config = MachineConfig {
            mem_size: w.mem_size(),
            profile: true,
            ..MachineConfig::default()
        };
        let mut m = Machine::new(w.program(), &config);
        w.prepare(&mut m);
        m.run_simple();
        for (name, weight) in chain_census(w.program(), Some(m.exec_counts())) {
            *census_all.entry(name).or_default() += weight;
        }
    }
    let mut census: Vec<(String, u64)> = census_all.into_iter().collect();
    census.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    println!("top dynamic chains (aggregated over all workloads):");
    for (name, weight) in census.iter().take(12) {
        println!("  {name:<28} {weight}");
    }

    println!(
        "{:<10} {:>5} {:>7} {:>7} {:>6} {:>6} {:>8} {:>10} {:>10} {:>10} {:>9}",
        "workload", "sbs", "elems", "avg", "spec", "cov", "aot cov", "ref MIPS", "fus MIPS",
        "sb MIPS", "sb/fused"
    );
    let mut ratios = Vec::new();
    for w in all_workloads() {
        let fused = Arc::new(DecodedProgram::with_policy(
            w.program(),
            &SuperblockPolicy::disabled(),
        ));
        let sb = Arc::new(DecodedProgram::with_policy(w.program(), &policy));
        // Warmup + rep sizing so every sample is long enough to time.
        let _ = time_runs(&*w, &fused, false, 1);
        let reps = (20_000_000 / time_runs(&*w, &sb, false, 1).1).max(1) as usize;
        let spi = |decoded: &Arc<DecodedProgram>, reference: bool| {
            let (t, n) = time_runs(&*w, decoded, reference, reps);
            t.as_secs_f64() / n as f64
        };
        let timing = time_tiers(
            rounds,
            &mut [
                &mut || spi(&fused, true),
                &mut || spi(&fused, false),
                &mut || spi(&sb, false),
            ],
        );
        let med_ratio = timing.median_ratio(1, 2);
        let mips = |s: f64| 1.0 / s / 1e6;
        // Dynamic trace coverage probe.
        let config = MachineConfig {
            mem_size: w.mem_size(),
            ..MachineConfig::default()
        };
        let mut probe = Machine::try_new_with_decoded(w.program(), &sb, &config).unwrap();
        w.prepare(&mut probe);
        let pr = probe.run_simple();
        let cov = probe.superblock_instructions() as f64 / pr.instructions as f64 * 100.0;
        let count = sb.superblock_count();
        let elems = sb.superblock_ops();
        ratios.push(med_ratio);
        let aot_cov = aot_coverage(&*w)
            .map_or_else(|| "-".to_string(), |c| format!("{c:.1}%"));
        println!(
            "{:<10} {:>5} {:>7} {:>7.1} {:>5.1}% {:>5.1}% {:>8} {:>10.1} {:>10.1} {:>10.1} {:>8.2}x",
            w.name(),
            count,
            elems,
            elems as f64 / count.max(1) as f64,
            sb.superblock_specialized() as f64 / elems.max(1) as f64 * 100.0,
            cov,
            aot_cov,
            mips(timing.best[0]),
            mips(timing.best[1]),
            mips(timing.best[2]),
            med_ratio,
        );
    }
    let geo = ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64;
    println!("geomean sb/fused (median-of-rounds): {:.3}x", geo.exp());
}

//! A campaign worker process: connects to a `campaign_dist` (or any
//! `certa-dist`) coordinator, resolves the advertised workload from the
//! study's workload set, and runs leased trial chunks until the campaign
//! drains.
//!
//! Usage: `campaign_worker --connect HOST:PORT [--name NAME]`
//!
//! Environment:
//! * `CERTA_WORKER_THROTTLE_MS` — artificial per-chunk delay, so a bench
//!   driver can designate a slow victim that provably holds a lease when
//!   it gets SIGKILLed.
//! * `CERTA_WORKER_HEARTBEAT_MS` — heartbeat period override.
//! * `CERTA_WORKER_CHAOS_SEED` — wrap every connection this worker dials
//!   in the adversarial [`certa_dist::ChaosConfig`] schedule for that
//!   seed (and raise the reconnect budget to survive it).
//! * `CERTA_WORKER_SECRET` — shared secret for the Hello/Welcome
//!   challenge/response.

use std::net::{SocketAddr, ToSocketAddrs};
use std::process::ExitCode;
use std::time::Duration;

use certa_dist::{run_worker, Chaos, ChaosConfig, WorkerOptions};
use certa_fault::Target;
use certa_workloads::all_workloads;

fn env_ms(key: &str) -> Option<Duration> {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .map(Duration::from_millis)
}

fn resolve(name: &str) -> Option<Box<dyn Target>> {
    all_workloads()
        .into_iter()
        .find(|w| w.name() == name)
        .map(|w| w as Box<dyn Target>)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let mut connect: Option<String> = None;
    let mut name = format!("worker-{}", std::process::id());
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--connect" if i + 1 < args.len() => {
                connect = Some(args[i + 1].clone());
                i += 2;
            }
            "--name" if i + 1 < args.len() => {
                name = args[i + 1].clone();
                i += 2;
            }
            other => {
                eprintln!("campaign_worker: unknown argument {other:?}");
                eprintln!("usage: campaign_worker --connect HOST:PORT [--name NAME]");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(connect) = connect else {
        eprintln!("campaign_worker: missing --connect HOST:PORT");
        return ExitCode::FAILURE;
    };
    let addr: SocketAddr = match connect.to_socket_addrs().ok().and_then(|mut a| a.next()) {
        Some(addr) => addr,
        None => {
            eprintln!("campaign_worker: cannot resolve {connect:?}");
            return ExitCode::FAILURE;
        }
    };

    let mut opts = WorkerOptions {
        name: name.clone(),
        // Distinct per-process seeds keep reconnect storms de-synchronized.
        backoff_seed: u64::from(std::process::id()),
        ..WorkerOptions::default()
    };
    if let Some(throttle) = env_ms("CERTA_WORKER_THROTTLE_MS") {
        opts.throttle_per_chunk = throttle;
    }
    if let Some(heartbeat) = env_ms("CERTA_WORKER_HEARTBEAT_MS") {
        opts.heartbeat_interval = heartbeat;
    }
    if let Some(seed) = std::env::var("CERTA_WORKER_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        opts.chaos = Some(Chaos::new(ChaosConfig::adversarial(seed)));
        opts.connect_attempts = opts.connect_attempts.max(50);
    }
    if let Ok(secret) = std::env::var("CERTA_WORKER_SECRET") {
        opts.secret = Some(secret);
    }

    match run_worker(addr, &resolve, &opts) {
        Ok(report) => {
            eprintln!(
                "campaign_worker: {name} done — {} chunks, {} trials, {} stale, {} reconnects, \
                 {} corrupt frames dropped, {} duplicate frames absorbed, {} faults injected",
                report.chunks_completed,
                report.trials_completed,
                report.stale_acks,
                report.reconnects,
                report.corrupt_frames,
                report.duplicate_frames,
                report.chaos.injected()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("campaign_worker: {name} failed: {e}");
            ExitCode::FAILURE
        }
    }
}

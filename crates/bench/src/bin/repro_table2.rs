//! Regenerates the paper's Table 2 (% catastrophic failures with/without
//! control protection). Usage: `repro_table2 [--trials N] [--seed S]`.
fn main() {
    let (trials, seed) = certa_bench::parse_cli(40);
    let rows = certa_bench::table2(trials, seed);
    print!("{}", certa_bench::render_table2(&rows));
}

//! Bench trajectory gate: compares the freshly written `BENCH_*.json`
//! summaries against the committed baselines under `baselines/` and fails
//! (non-zero exit) when a headline geomean regresses by more than the
//! threshold — closing ROADMAP's "bench trajectory tracking" loop in CI.
//!
//! Usage:
//!
//! ```text
//! bench_trajectory            # compare fresh results against baselines
//! bench_trajectory --update   # copy fresh results over the baselines
//! ```
//!
//! Metrics are dimensionless speedup ratios (tier-vs-tier on the same
//! machine and the same run), which transfer across machines far better
//! than absolute MIPS; the threshold still leaves 10% headroom for CI
//! noise, per the acceptance criteria.

use std::path::Path;
use std::process::ExitCode;

use certa_bench::{json_number, json_workload_names, json_workload_number, workspace_root};

/// Allowed relative regression of a tracked geomean before CI fails.
const THRESHOLD: f64 = 0.10;

/// Allowed relative regression of a single workload's dispatch ratio —
/// looser than the geomean gate, because per-workload ratios carry the
/// full brunt of link-time layout luck that the geomean averages away.
const WORKLOAD_THRESHOLD: f64 = 0.25;

/// One tracked benchmark artifact: file stem and headline metric key.
const TRACKED: &[(&str, &str)] = &[
    ("dispatch", "geomean_speedup"),
    ("dispatch", "geomean_superblock_vs_fused"),
    ("campaign", "speedup"),
    ("campaign_paper", "speedup"),
    ("aot", "geomean_aot_vs_reference"),
];

/// Per-workload dispatch ratios gated at [`WORKLOAD_THRESHOLD`]: the
/// drift-resistant tier-vs-tier ratios, not absolute MIPS.
const WORKLOAD_KEYS: &[&str] = &["speedup", "speedup_vs_fused"];

fn read_metric(path: &Path, key: &str) -> Result<f64, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    json_number(&text, key)
        .ok_or_else(|| format!("{} has no numeric \"{key}\"", path.display()))
}

fn main() -> ExitCode {
    let update = std::env::args().any(|a| a == "--update");
    let root = match workspace_root() {
        Ok(root) => root,
        Err(e) => {
            eprintln!("bench_trajectory: cannot resolve workspace root: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline_dir = root.join("baselines");
    let mut failed = false;
    if update {
        let mut done: Vec<&str> = Vec::new();
        for &(name, _) in TRACKED {
            if done.contains(&name) {
                continue;
            }
            done.push(name);
            let fresh_path = root.join(format!("BENCH_{name}.json"));
            let baseline_path = baseline_dir.join(format!("BENCH_{name}.json"));
            match std::fs::create_dir_all(&baseline_dir)
                .and_then(|()| std::fs::copy(&fresh_path, &baseline_path))
            {
                Ok(_) => println!("updated {}", baseline_path.display()),
                Err(e) => {
                    eprintln!("bench_trajectory: cannot update {name} baseline: {e}");
                    failed = true;
                }
            }
        }
        return if failed {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }
    for &(name, key) in TRACKED {
        let fresh_path = root.join(format!("BENCH_{name}.json"));
        let baseline_path = baseline_dir.join(format!("BENCH_{name}.json"));
        let fresh = match read_metric(&fresh_path, key) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("bench_trajectory: {e} (run the {name} bench first)");
                failed = true;
                continue;
            }
        };
        let baseline = match read_metric(&baseline_path, key) {
            Ok(v) => v,
            Err(e) => {
                println!("bench_trajectory: {e} — no baseline, skipping {name} (run with --update to record one)");
                continue;
            }
        };
        let ratio = fresh / baseline;
        let verdict = if ratio < 1.0 - THRESHOLD {
            failed = true;
            "REGRESSION"
        } else if ratio > 1.0 + THRESHOLD {
            "improved (consider --update)"
        } else {
            "ok"
        };
        println!(
            "{name}: {key} fresh {fresh:.3} vs baseline {baseline:.3} ({:+.1}%) — {verdict}",
            (ratio - 1.0) * 100.0
        );
    }

    // Per-workload dispatch gates: every workload present in the baseline
    // must still be present fresh, and its tier-vs-tier ratios may not
    // regress past the (looser) per-workload threshold. Catches a single
    // workload cratering while the geomean stays inside its band.
    let fresh_path = root.join("BENCH_dispatch.json");
    let baseline_path = baseline_dir.join("BENCH_dispatch.json");
    if let (Ok(fresh_json), Ok(baseline_json)) = (
        std::fs::read_to_string(&fresh_path),
        std::fs::read_to_string(&baseline_path),
    ) {
        for workload in json_workload_names(&baseline_json) {
            for &key in WORKLOAD_KEYS {
                let Some(base) = json_workload_number(&baseline_json, &workload, key) else {
                    continue;
                };
                let Some(fresh) = json_workload_number(&fresh_json, &workload, key) else {
                    eprintln!(
                        "bench_trajectory: {workload} missing from fresh BENCH_dispatch.json"
                    );
                    failed = true;
                    continue;
                };
                let ratio = fresh / base;
                if ratio < 1.0 - WORKLOAD_THRESHOLD {
                    eprintln!(
                        "dispatch/{workload}: {key} fresh {fresh:.3} vs baseline {base:.3} \
                         ({:+.1}%) — WORKLOAD REGRESSION",
                        (ratio - 1.0) * 100.0
                    );
                    failed = true;
                } else {
                    println!(
                        "dispatch/{workload}: {key} fresh {fresh:.3} vs baseline {base:.3} \
                         ({:+.1}%) — ok",
                        (ratio - 1.0) * 100.0
                    );
                }
            }
        }
    }
    // Liveness gate on the paper-scale campaign's hop-union MRU cache: a
    // table-scale trial count must revisit checkpoint hops often enough to
    // hit the cache, so a zero hit counter means the cached path silently
    // regressed to dead code (exactly the failure mode that shipped
    // unnoticed when the 24-trial bench was the only campaign artifact).
    let paper_path = root.join("BENCH_campaign_paper.json");
    match read_metric(&paper_path, "restores_diff_union_cache_hits") {
        Ok(hits) if hits > 0.0 => {
            println!("campaign_paper: restores_diff_union_cache_hits {hits:.0} — ok");
        }
        Ok(_) => {
            eprintln!(
                "campaign_paper: restores_diff_union_cache_hits is ZERO — the hop-union \
                 MRU cache path is dead"
            );
            failed = true;
        }
        Err(e) => {
            eprintln!("bench_trajectory: {e} (run the campaign_paper bench first)");
            failed = true;
        }
    }

    if failed {
        eprintln!(
            "bench_trajectory: a tracked metric regressed past its threshold (geomean {:.0}%, \
             per-workload {:.0}%) against committed baselines, or a liveness gate failed — \
             see the lines above",
            THRESHOLD * 100.0,
            WORKLOAD_THRESHOLD * 100.0
        );
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

//! Bench trajectory gate: compares the freshly written `BENCH_*.json`
//! summaries against the committed baselines under `baselines/` and fails
//! (non-zero exit) when a headline geomean regresses by more than the
//! threshold — closing ROADMAP's "bench trajectory tracking" loop in CI.
//!
//! Usage:
//!
//! ```text
//! bench_trajectory            # compare fresh results against baselines
//! bench_trajectory --update   # copy fresh results over the baselines
//! ```
//!
//! Metrics are dimensionless speedup ratios (tier-vs-tier on the same
//! machine and the same run), which transfer across machines far better
//! than absolute MIPS; the threshold still leaves 10% headroom for CI
//! noise, per the acceptance criteria.

use std::path::Path;
use std::process::ExitCode;

use certa_bench::{json_number, workspace_root};

/// Allowed relative regression of a tracked geomean before CI fails.
const THRESHOLD: f64 = 0.10;

/// One tracked benchmark artifact: file stem and headline metric key.
const TRACKED: &[(&str, &str)] = &[
    ("dispatch", "geomean_speedup"),
    ("campaign", "speedup"),
];

fn read_metric(path: &Path, key: &str) -> Result<f64, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    json_number(&text, key)
        .ok_or_else(|| format!("{} has no numeric \"{key}\"", path.display()))
}

fn main() -> ExitCode {
    let update = std::env::args().any(|a| a == "--update");
    let root = match workspace_root() {
        Ok(root) => root,
        Err(e) => {
            eprintln!("bench_trajectory: cannot resolve workspace root: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline_dir = root.join("baselines");
    let mut failed = false;
    for &(name, key) in TRACKED {
        let fresh_path = root.join(format!("BENCH_{name}.json"));
        let baseline_path = baseline_dir.join(format!("BENCH_{name}.json"));
        if update {
            match std::fs::create_dir_all(&baseline_dir)
                .and_then(|()| std::fs::copy(&fresh_path, &baseline_path))
            {
                Ok(_) => println!("updated {}", baseline_path.display()),
                Err(e) => {
                    eprintln!("bench_trajectory: cannot update {name} baseline: {e}");
                    failed = true;
                }
            }
            continue;
        }
        let fresh = match read_metric(&fresh_path, key) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("bench_trajectory: {e} (run the {name} bench first)");
                failed = true;
                continue;
            }
        };
        let baseline = match read_metric(&baseline_path, key) {
            Ok(v) => v,
            Err(e) => {
                println!("bench_trajectory: {e} — no baseline, skipping {name} (run with --update to record one)");
                continue;
            }
        };
        let ratio = fresh / baseline;
        let verdict = if ratio < 1.0 - THRESHOLD {
            failed = true;
            "REGRESSION"
        } else if ratio > 1.0 + THRESHOLD {
            "improved (consider --update)"
        } else {
            "ok"
        };
        println!(
            "{name}: {key} fresh {fresh:.3} vs baseline {baseline:.3} ({:+.1}%) — {verdict}",
            (ratio - 1.0) * 100.0
        );
    }
    if failed {
        eprintln!(
            "bench_trajectory: geomean regressed more than {:.0}% against committed baselines",
            THRESHOLD * 100.0
        );
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

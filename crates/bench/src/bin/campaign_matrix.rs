//! Regime-matrix fault campaign: every workload × every protection regime
//! (register faults) plus the memory-cell fault model, each trial
//! classified into the six-way verdict taxonomy and aggregated into
//! `ToleranceProfile` rows with Wilson 95% intervals.
//!
//! This table *is* the reproduction: the separation between error-tolerant
//! data (masked/tolerable under `control_only`) and must-protect control
//! state (crashes/hangs under `none` and `data_only`) is the paper's
//! claim, stated per workload with confidence intervals.
//!
//! Writes `BENCH_matrix.json` at the workspace root. The JSON carries no
//! timing, so for a fixed seed and trial count it is byte-deterministic —
//! CI uploads it as an artifact and diffs are meaningful.
//!
//! Usage: `campaign_matrix [--trials N] [--seed N]`; the `CERTA_MATRIX_TRIALS`
//! environment variable overrides the trial count (CI sets 256).
//!
//! Exits non-zero unless at least one workload's register-fault rows show
//! the full spread — masked, tolerable, and detected all nonzero — which
//! is the smoke signal that the taxonomy actually discriminates.

use std::fmt::Write as _;
use std::process::ExitCode;

use certa_bench::{harness_json, parse_cli, write_bench_json, AsTarget};
use certa_core::analyze;
use certa_fault::{
    run_campaign, CampaignConfig, FaultTarget, HarnessStats, Protection, ToleranceProfile,
};
use certa_fidelity::verdict::VerdictCounts;
use certa_workloads::{all_workloads, Workload};

/// Errors injected per trial: fixed across the whole matrix so cells are
/// comparable along both axes (the per-application error sweeps live in
/// the figure reproductions, not here).
const ERRORS: u64 = 2;

fn run_cell(
    workload: &dyn Workload,
    target: FaultTarget,
    regime: Protection,
    trials: usize,
    seed: u64,
) -> (ToleranceProfile, HarnessStats) {
    let tags = analyze(workload.program());
    let config = CampaignConfig {
        trials,
        errors: ERRORS,
        protection: regime,
        target,
        seed,
        ..CampaignConfig::default()
    };
    let result = run_campaign(workload.as_target(), &tags, &config);
    let mut counts = VerdictCounts::default();
    for record in &result.trials {
        counts.record(&workload.classify_trial(&record.status, &result.golden.output));
    }
    let profile = ToleranceProfile {
        workload: workload.name().to_string(),
        regime,
        target,
        errors: ERRORS,
        counts,
    };
    (profile, result.harness_stats)
}

fn main() -> ExitCode {
    let (cli_trials, seed) = parse_cli(64);
    let trials = std::env::var("CERTA_MATRIX_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(cli_trials);

    let mut rows: Vec<ToleranceProfile> = Vec::new();
    let mut harness = HarnessStats::default();
    for w in all_workloads() {
        for regime in Protection::all() {
            eprintln!(
                "campaign_matrix: {} registers/{} ({trials} trials)",
                w.name(),
                regime.label()
            );
            let (row, cell_harness) =
                run_cell(&*w, FaultTarget::Registers, regime, trials, seed);
            rows.push(row);
            harness.merge(&cell_harness);
        }
        // Memory-cell faults hit stored state, which carries no
        // instruction tag — one regime-independent row per workload.
        eprintln!("campaign_matrix: {} memory_cells ({trials} trials)", w.name());
        let (row, cell_harness) = run_cell(
            &*w,
            FaultTarget::MemoryCells,
            Protection::None,
            trials,
            seed,
        );
        rows.push(row);
        harness.merge(&cell_harness);
    }

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\"bench\":\"campaign_matrix\",\"trials\":{trials},\"errors\":{ERRORS},\"seed\":{seed},\"harness\":{},\"rows\":[",
        harness_json(&harness)
    );
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&row.to_json());
    }
    json.push_str("]}");

    println!(
        "{:<10} {:<13} {:<13} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "workload", "target", "regime", "masked", "toler", "silent", "crash", "hang", "check", "herr"
    );
    for row in &rows {
        let c = &row.counts;
        println!(
            "{:<10} {:<13} {:<13} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
            row.workload,
            row.target.label(),
            row.regime.label(),
            c.masked,
            c.tolerable,
            c.silent_corruption,
            c.detected_crash,
            c.hang,
            c.detected_by_check,
            c.harness_error
        );
    }

    match write_bench_json("matrix", &json) {
        Ok(path) => eprintln!("campaign_matrix: wrote {}", path.display()),
        Err(e) => {
            eprintln!("campaign_matrix: cannot write BENCH_matrix.json: {e}");
            return ExitCode::FAILURE;
        }
    }

    // Smoke gate: the taxonomy must actually discriminate — at least one
    // workload's register-fault rows must populate masked, tolerable, and
    // detected buckets.
    let discriminates = all_workloads().iter().any(|w| {
        let mut agg = VerdictCounts::default();
        for row in rows
            .iter()
            .filter(|r| r.workload == w.name() && r.target == FaultTarget::Registers)
        {
            let c = &row.counts;
            agg.masked += c.masked;
            agg.tolerable += c.tolerable;
            agg.silent_corruption += c.silent_corruption;
            agg.detected_crash += c.detected_crash;
            agg.hang += c.hang;
            agg.detected_by_check += c.detected_by_check;
        }
        agg.masked > 0 && agg.tolerable > 0 && agg.detected() > 0
    });
    if !discriminates {
        eprintln!(
            "campaign_matrix: FAIL — no workload shows masked, tolerable, and detected all nonzero"
        );
        return ExitCode::FAILURE;
    }
    eprintln!("campaign_matrix: verdict spread OK");
    ExitCode::SUCCESS
}

//! Distributed-campaign benchmark and robustness gate: drives the
//! `certa-dist` coordinator against real `campaign_worker` OS processes
//! on localhost, and proves the service's two core claims end to end:
//!
//! 1. **Determinism under distribution and loss** — the per-trial record
//!    table of an in-process campaign, a 1-worker distributed campaign,
//!    and an N-worker campaign whose slowest worker is SIGKILLed
//!    mid-lease are all identical, and global reconciliation holds in
//!    every case (the coordinator checks it before returning).
//! 2. **Throughput scaling** — trials/s for 1 vs N workers, reported
//!    per-worker and end-to-end in `BENCH_dist.json`. The ≥2× speedup
//!    gate is enforced only where the host actually has the cores for N
//!    workers; on smaller machines the numbers are still reported, with
//!    the gate recorded as not enforced.
//! 3. **Coordinator durability** — a `campaign_coordinator` subprocess
//!    running the same campaign durably is SIGKILLed *provably*
//!    mid-campaign (its stdout reports accepted chunks; it dies with
//!    `1 ≤ done < total`), a fresh incarnation resumes from the
//!    write-ahead journal with fresh workers, and the recovered record
//!    table must be byte-identical to the inline baseline with at least
//!    one chunk replayed from the journal rather than re-executed.
//! 4. **Wire chaos** — an N-worker campaign whose every connection (both
//!    sides) runs under the adversarial fault-injection schedule
//!    (resets, stalls, bit corruption, duplicate frames, delays) with
//!    secret-authenticated Hellos still converges byte-identically, with
//!    nonzero injected-fault and frame-recovery counters persisted to
//!    `BENCH_dist.json`.
//!
//! Usage: `campaign_dist [--trials N] [--seed N]`; environment overrides:
//! `CERTA_DIST_TRIALS`, `CERTA_DIST_WORKERS` (default 4),
//! `CERTA_DIST_WORKLOAD` (default `susan`).
//!
//! Exits non-zero if any record table diverges, any campaign fails
//! reconciliation, or the speedup gate (where enforced) fails.

use std::fmt::Write as _;
use std::io::BufRead as _;
use std::process::{Child, Command, ExitCode, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use certa_bench::{harness_json, parse_cli, write_bench_json, AsTarget};
use certa_core::analyze;
use certa_dist::{ChaosConfig, Coordinator, DistConfig, DistProgress, DistResult};
use certa_fault::wire::{encode_trial_record, ByteWriter};
use certa_fault::{run_campaign, CampaignConfig, CampaignSession, TrialRecord};
use certa_workloads::{all_workloads, Workload};

const ERRORS: u64 = 2;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn config(trials: usize, seed: u64) -> CampaignConfig {
    CampaignConfig {
        trials,
        errors: ERRORS,
        seed,
        threads: 1,
        ..CampaignConfig::default()
    }
}

fn dist_config() -> DistConfig {
    DistConfig {
        lease_ttl: Duration::from_secs(2),
        fallback_inline: false,
        chunk_parts: 16,
        worker_threads: 1,
        drain_timeout: Duration::from_secs(300),
        ..DistConfig::default()
    }
}

fn worker_exe() -> std::io::Result<std::path::PathBuf> {
    let me = std::env::current_exe()?;
    Ok(me.with_file_name(format!(
        "campaign_worker{}",
        std::env::consts::EXE_SUFFIX
    )))
}

fn spawn_worker(
    exe: &std::path::Path,
    addr: &str,
    name: &str,
    throttle_ms: Option<u64>,
) -> std::io::Result<Child> {
    spawn_worker_env(exe, addr, name, throttle_ms, &[])
}

fn spawn_worker_env(
    exe: &std::path::Path,
    addr: &str,
    name: &str,
    throttle_ms: Option<u64>,
    env: &[(&str, String)],
) -> std::io::Result<Child> {
    let mut cmd = Command::new(exe);
    cmd.args(["--connect", addr, "--name", name])
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if let Some(ms) = throttle_ms {
        cmd.env("CERTA_WORKER_THROTTLE_MS", ms.to_string());
    }
    for (key, value) in env {
        cmd.env(key, value);
    }
    cmd.spawn()
}

struct DistRun {
    result: DistResult,
    seconds: f64,
    victim_killed: bool,
}

/// Shared secret for the chaos phase — the point is to exercise the
/// authenticated Hello/Welcome path in real subprocesses, not to hide
/// anything.
const CHAOS_SECRET: &str = "campaign-dist-chaos";

/// Runs one distributed campaign with `workers` subprocess workers. With
/// `kill_victim`, worker 0 is throttled (so it provably holds leases) and
/// SIGKILLed as soon as the campaign is demonstrably mid-flight. With
/// `chaos_seed`, every connection on both sides runs under the
/// adversarial fault schedule for that seed and the Hello/Welcome
/// exchange is secret-authenticated.
fn run_dist(
    workload: &dyn Workload,
    trials: usize,
    seed: u64,
    workers: usize,
    kill_victim: bool,
    chaos_seed: Option<u64>,
) -> Result<DistRun, String> {
    let tags = analyze(workload.program());
    let cfg = config(trials, seed);
    let session = CampaignSession::new(workload.as_target(), &tags, &cfg);
    let coordinator = Coordinator::bind("127.0.0.1:0").map_err(|e| e.to_string())?;
    let addr = coordinator.local_addr().map_err(|e| e.to_string())?.to_string();
    let exe = worker_exe().map_err(|e| e.to_string())?;

    let mut dist = dist_config();
    if let Some(chaos) = chaos_seed {
        dist.chaos = Some(ChaosConfig::adversarial(chaos));
        dist.secret = Some(CHAOS_SECRET.into());
        dist.io_timeout = Duration::from_secs(2);
    }

    let mut children: Vec<Child> = Vec::new();
    let mut victim: Option<Mutex<Child>> = None;
    for w in 0..workers {
        let name = format!("worker-{w}");
        let throttle = (kill_victim && w == 0).then_some(150);
        let mut env: Vec<(&str, String)> = Vec::new();
        if let Some(chaos) = chaos_seed {
            env.push(("CERTA_WORKER_CHAOS_SEED", (chaos ^ (w as u64 + 1)).to_string()));
            env.push(("CERTA_WORKER_SECRET", CHAOS_SECRET.into()));
        }
        let child = spawn_worker_env(&exe, &addr, &name, throttle, &env)
            .map_err(|e| format!("cannot spawn {name}: {e}"))?;
        if kill_victim && w == 0 {
            victim = Some(Mutex::new(child));
        } else {
            children.push(child);
        }
    }

    let progress = DistProgress::default();
    let done = AtomicBool::new(false);
    let victim_killed = AtomicBool::new(false);
    let mut outcome: Option<Result<DistResult, String>> = None;
    let started = Instant::now();
    std::thread::scope(|scope| {
        if let Some(victim) = &victim {
            scope.spawn(|| {
                // SIGKILL the victim once at least one chunk has landed —
                // the campaign is then provably mid-flight, and the
                // throttled victim is either holding a lease or about to.
                while !done.load(Ordering::SeqCst) {
                    if progress.chunks_done() >= 1 {
                        if victim.lock().unwrap().kill().is_ok() {
                            victim_killed.store(true, Ordering::SeqCst);
                        }
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
            });
        }
        outcome = Some(
            coordinator
                .run_with_progress(&session, workload.name(), &dist, &progress)
                .map_err(|e| e.to_string()),
        );
        done.store(true, Ordering::SeqCst);
    });
    let seconds = started.elapsed().as_secs_f64();

    for mut child in children {
        let _ = child.wait();
    }
    if let Some(victim) = victim {
        let mut child = victim.into_inner().unwrap();
        let _ = child.kill();
        let _ = child.wait();
    }

    outcome.unwrap().map(|result| DistRun {
        result,
        seconds,
        victim_killed: victim_killed.load(Ordering::SeqCst),
    })
}

/// What the coordinator crash/resume phase measured.
struct DurableStats {
    /// Accepted chunks at the instant the first coordinator was killed.
    killed_at_chunks: usize,
    /// Total chunks in the campaign plan.
    total_chunks: usize,
    /// Parsed from the second incarnation's `RESUME` line.
    resumed: bool,
    epoch: u64,
    replayed_chunks: u64,
    replayed_trials: u64,
    /// Completions the resumed incarnation rejected as carrying the dead
    /// incarnation's epoch (0 here is normal: the first incarnation's
    /// workers are killed with it, so usually nothing is left to fence).
    stale_epoch_completions: u64,
    /// Recovered record table byte-identical to the inline baseline.
    records_match: bool,
}

/// The final record table in the campaign wire encoding — the same
/// bytes `campaign_coordinator --records-out` writes.
fn encode_records(trials: &[TrialRecord]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u32(trials.len() as u32);
    for record in trials {
        encode_trial_record(&mut w, record);
    }
    w.finish()
}

fn coordinator_exe() -> std::io::Result<std::path::PathBuf> {
    let me = std::env::current_exe()?;
    Ok(me.with_file_name(format!(
        "campaign_coordinator{}",
        std::env::consts::EXE_SUFFIX
    )))
}

fn spawn_coordinator(
    workload: &str,
    trials: usize,
    seed: u64,
    journal: &std::path::Path,
    records_out: &std::path::Path,
) -> Result<Child, String> {
    let exe = coordinator_exe().map_err(|e| e.to_string())?;
    Command::new(&exe)
        .args([
            "--workload",
            workload,
            "--trials",
            &trials.to_string(),
            "--seed",
            &seed.to_string(),
            "--errors",
            &ERRORS.to_string(),
            "--chunk-parts",
            "16",
            "--journal",
            &journal.display().to_string(),
            "--records-out",
            &records_out.display().to_string(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .map_err(|e| format!("cannot spawn {}: {e}", exe.display()))
}

fn kill_all(children: &mut Vec<Child>) {
    for child in children.iter_mut() {
        let _ = child.kill();
    }
    for mut child in children.drain(..) {
        let _ = child.wait();
    }
}

/// Reads the coordinator subprocess's stdout until its `ADDR` line.
fn read_addr(lines: &mut impl Iterator<Item = std::io::Result<String>>) -> Result<String, String> {
    for line in lines {
        let line = line.map_err(|e| e.to_string())?;
        if let Some(addr) = line.strip_prefix("ADDR ") {
            return Ok(addr.to_string());
        }
    }
    Err("coordinator exited before printing ADDR".into())
}

/// Phase 3: SIGKILL a durable coordinator provably mid-campaign, resume
/// from its journal, gate the recovered record table against the inline
/// baseline.
fn run_durable_crash(
    workload: &str,
    trials: usize,
    seed: u64,
    workers: usize,
    inline_records: &[u8],
) -> Result<DurableStats, String> {
    let pid = std::process::id();
    let journal = std::env::temp_dir().join(format!("certa-dist-crash-{pid}.wal"));
    let records_out = std::env::temp_dir().join(format!("certa-dist-crash-{pid}.records"));
    let _ = std::fs::remove_file(&journal);
    let worker_exe = worker_exe().map_err(|e| e.to_string())?;
    let mut children: Vec<Child> = Vec::new();

    let outcome = (|| {
        // Incarnation 1: throttled workers stretch the campaign so the
        // kill window (1 ≤ done < total) is wide; its stdout proves the
        // kill landed mid-flight.
        let mut coordinator = spawn_coordinator(workload, trials, seed, &journal, &records_out)?;
        let stdout = coordinator.stdout.take().expect("piped stdout");
        let mut lines = std::io::BufReader::new(stdout).lines();
        let addr = match read_addr(&mut lines) {
            Ok(addr) => addr,
            Err(e) => {
                let _ = coordinator.kill();
                let _ = coordinator.wait();
                return Err(e);
            }
        };
        for w in 0..workers {
            children.push(
                spawn_worker(&worker_exe, &addr, &format!("mortal-{w}"), Some(100))
                    .map_err(|e| format!("cannot spawn worker: {e}"))?,
            );
        }
        let mut killed_at: Option<(usize, usize)> = None;
        for line in &mut lines {
            let line = line.map_err(|e| e.to_string())?;
            let Some(progress) = line.strip_prefix("PROGRESS ") else {
                continue;
            };
            let mut parts = progress.split_whitespace();
            let done: usize = parts.next().and_then(|v| v.parse().ok()).unwrap_or(0);
            let total: usize = parts.next().and_then(|v| v.parse().ok()).unwrap_or(0);
            if done >= 1 && done < total {
                let _ = coordinator.kill();
                killed_at = Some((done, total));
                break;
            }
        }
        let _ = coordinator.wait();
        let Some((killed_at_chunks, total_chunks)) = killed_at else {
            return Err("campaign finished before a mid-flight kill was possible".into());
        };
        // The orphaned workers would only burn reconnect budget against a
        // dead port; incarnation 2 gets a fresh crew on a fresh port.
        kill_all(&mut children);

        // Incarnation 2: same journal, fresh everything else.
        let mut coordinator = spawn_coordinator(workload, trials, seed, &journal, &records_out)?;
        let stdout = coordinator.stdout.take().expect("piped stdout");
        let mut lines = std::io::BufReader::new(stdout).lines();
        let addr = match read_addr(&mut lines) {
            Ok(addr) => addr,
            Err(e) => {
                let _ = coordinator.kill();
                let _ = coordinator.wait();
                return Err(e);
            }
        };
        for w in 0..workers {
            children.push(
                spawn_worker(&worker_exe, &addr, &format!("fresh-{w}"), None)
                    .map_err(|e| format!("cannot spawn worker: {e}"))?,
            );
        }
        let mut resume_line: Option<String> = None;
        for line in &mut lines {
            let line = line.map_err(|e| e.to_string())?;
            if line.starts_with("RESUME ") {
                resume_line = Some(line);
            }
        }
        let status = coordinator.wait().map_err(|e| e.to_string())?;
        if !status.success() {
            return Err(format!("resumed coordinator exited with {status}"));
        }
        let resume_line =
            resume_line.ok_or("resumed coordinator finished without a RESUME line")?;
        let field = |key: &str| -> Option<u64> {
            resume_line
                .split_whitespace()
                .find_map(|kv| kv.strip_prefix(&format!("{key}=")))
                .and_then(|v| v.parse().ok())
        };
        let resumed = resume_line.contains("resumed=true");
        let recovered = std::fs::read(&records_out)
            .map_err(|e| format!("cannot read {}: {e}", records_out.display()))?;

        Ok(DurableStats {
            killed_at_chunks,
            total_chunks,
            resumed,
            epoch: field("epoch").unwrap_or(0),
            replayed_chunks: field("replayed_chunks").unwrap_or(0),
            replayed_trials: field("replayed_trials").unwrap_or(0),
            stale_epoch_completions: field("stale_epoch").unwrap_or(0),
            records_match: recovered == inline_records,
        })
    })();

    kill_all(&mut children);
    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(&records_out);
    outcome
}

fn main() -> ExitCode {
    let (cli_trials, seed) = parse_cli(256);
    let trials = env_usize("CERTA_DIST_TRIALS", cli_trials);
    let workers = env_usize("CERTA_DIST_WORKERS", 4).max(2);
    let workload_name =
        std::env::var("CERTA_DIST_WORKLOAD").unwrap_or_else(|_| "susan".into());
    let Some(workload) = all_workloads()
        .into_iter()
        .find(|w| w.name() == workload_name)
    else {
        eprintln!("campaign_dist: unknown workload {workload_name:?}");
        return ExitCode::FAILURE;
    };
    let workload = &*workload;
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    // Inline baseline: the ordinary in-process campaign.
    eprintln!("campaign_dist: inline baseline ({trials} trials of {workload_name})");
    let tags = analyze(workload.program());
    let inline_started = Instant::now();
    let inline = run_campaign(workload.as_target(), &tags, &config(trials, seed));
    let inline_seconds = inline_started.elapsed().as_secs_f64();

    eprintln!("campaign_dist: 1 worker process");
    let one = match run_dist(workload, trials, seed, 1, false, None) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("campaign_dist: 1-worker run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("campaign_dist: {workers} worker processes, SIGKILLing one mid-run");
    let multi = match run_dist(workload, trials, seed, workers, true, None) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("campaign_dist: {workers}-worker run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("campaign_dist: durable coordinator, SIGKILLed mid-campaign and resumed");
    let inline_records = encode_records(&inline.trials);
    let durable = match run_durable_crash(&workload_name, trials, seed, workers, &inline_records) {
        Ok(stats) => stats,
        Err(e) => {
            eprintln!("campaign_dist: durable crash/resume phase failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    eprintln!("campaign_dist: {workers} worker processes under adversarial wire chaos");
    let chaos_seed = seed ^ 0xc4a05;
    let chaos = match run_dist(workload, trials, seed, workers, false, Some(chaos_seed)) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("campaign_dist: chaos run failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let one_matches = one.result.campaign.trials == inline.trials;
    let multi_matches = multi.result.campaign.trials == inline.trials;
    let chaos_matches = chaos.result.campaign.trials == inline.trials;
    let chaos_injected = chaos.result.chaos.injected();
    // Wire-recovery evidence at the coordinator: corrupt frames it
    // dropped and duplicates it absorbed both originate from the
    // *workers'* chaos domains, so nonzero counts prove the subprocess
    // env hooks took effect end to end.
    let chaos_recovered =
        chaos.result.wire.corrupt_frames + chaos.result.wire.duplicate_frames;
    let tps = |seconds: f64| trials as f64 / seconds.max(1e-9);
    let inline_tps = tps(inline_seconds);
    let one_tps = tps(one.seconds);
    let multi_tps = tps(multi.seconds);
    let speedup = multi_tps / one_tps.max(1e-9);
    // The ≥2× gate needs the cores to exist: N workers plus the
    // coordinator cannot beat one worker on a single-core host, and
    // pretending otherwise would just make the gate flake. Report the
    // measured numbers either way.
    let gate_enforced = cores >= workers;

    let mut per_worker = String::new();
    for (i, w) in multi.result.workers.iter().enumerate() {
        if i > 0 {
            per_worker.push(',');
        }
        let _ = write!(
            per_worker,
            "{{\"name\":{:?},\"leases\":{},\"chunks\":{},\"trials\":{},\"stale\":{},\"heartbeats\":{},\"trials_per_sec\":{:.3}}}",
            w.name,
            w.leases,
            w.chunks_completed,
            w.trials_completed,
            w.stale_completions,
            w.heartbeats,
            w.trials_completed as f64 / multi.seconds.max(1e-9)
        );
    }

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\"bench\":\"campaign_dist\",\"workload\":{workload_name:?},\"trials\":{trials},\"errors\":{ERRORS},\"seed\":{seed},\"cores\":{cores},\
\"inline\":{{\"seconds\":{inline_seconds:.3},\"trials_per_sec\":{inline_tps:.3}}},\
\"one_worker\":{{\"seconds\":{:.3},\"trials_per_sec\":{one_tps:.3},\"redeliveries\":{},\"harness\":{}}},\
\"multi_worker\":{{\"workers\":{workers},\"seconds\":{:.3},\"trials_per_sec\":{multi_tps:.3},\"redeliveries\":{},\"victim_killed\":{},\"harness\":{},\"per_worker\":[{per_worker}]}},\
\"durable\":{{\"killed_at_chunks\":{},\"total_chunks\":{},\"resumed\":{},\"epoch\":{},\"replayed_chunks\":{},\"replayed_trials\":{},\"stale_epoch_completions\":{},\"records_match\":{}}},\
\"chaos\":{{\"seed\":{chaos_seed},\"seconds\":{:.3},\"injected\":{chaos_injected},\"resets\":{},\"stalls\":{},\"payload_corruptions\":{},\"length_corruptions\":{},\"duplicates\":{},\"delays\":{},\"corrupt_frames\":{},\"duplicate_frames\":{},\"auth_rejects\":{},\"redeliveries\":{},\"records_match\":{chaos_matches}}},\
\"speedup_multi_over_one\":{speedup:.3},\"speedup_gate_enforced\":{gate_enforced},\"records_match\":{}}}",
        one.seconds,
        one.result.redeliveries,
        harness_json(&one.result.campaign.harness_stats),
        multi.seconds,
        multi.result.redeliveries,
        multi.victim_killed,
        harness_json(&multi.result.campaign.harness_stats),
        durable.killed_at_chunks,
        durable.total_chunks,
        durable.resumed,
        durable.epoch,
        durable.replayed_chunks,
        durable.replayed_trials,
        durable.stale_epoch_completions,
        durable.records_match,
        chaos.seconds,
        chaos.result.chaos.resets,
        chaos.result.chaos.stalls,
        chaos.result.chaos.payload_corruptions,
        chaos.result.chaos.length_corruptions,
        chaos.result.chaos.duplicates,
        chaos.result.chaos.delays,
        chaos.result.wire.corrupt_frames,
        chaos.result.wire.duplicate_frames,
        chaos.result.wire.auth_rejects,
        chaos.result.redeliveries,
        one_matches && multi_matches && chaos_matches,
    );

    println!(
        "{:<14} {:>9} {:>12} {:>13}",
        "run", "seconds", "trials/s", "redeliveries"
    );
    println!("{:<14} {:>9.3} {:>12.1} {:>13}", "inline", inline_seconds, inline_tps, "-");
    println!(
        "{:<14} {:>9.3} {:>12.1} {:>13}",
        "1 worker", one.seconds, one_tps, one.result.redeliveries
    );
    println!(
        "{:<14} {:>9.3} {:>12.1} {:>13}",
        format!("{workers} workers"),
        multi.seconds,
        multi_tps,
        multi.result.redeliveries
    );
    println!(
        "{:<14} {:>9.3} {:>12.1} {:>13}",
        "chaos",
        chaos.seconds,
        tps(chaos.seconds),
        chaos.result.redeliveries
    );
    eprintln!(
        "campaign_dist: speedup {speedup:.2}x on {cores} core(s); victim killed: {}",
        multi.victim_killed
    );
    eprintln!(
        "campaign_dist: chaos run injected {chaos_injected} faults (coordinator side); \
         {} corrupt frames dropped, {} duplicate frames absorbed, {} redeliveries",
        chaos.result.wire.corrupt_frames,
        chaos.result.wire.duplicate_frames,
        chaos.result.redeliveries
    );
    eprintln!(
        "campaign_dist: coordinator killed at {}/{} chunks; resume epoch {} replayed {} chunks ({} trials)",
        durable.killed_at_chunks,
        durable.total_chunks,
        durable.epoch,
        durable.replayed_chunks,
        durable.replayed_trials
    );

    match write_bench_json("dist", &json) {
        Ok(path) => eprintln!("campaign_dist: wrote {}", path.display()),
        Err(e) => {
            eprintln!("campaign_dist: cannot write BENCH_dist.json: {e}");
            return ExitCode::FAILURE;
        }
    }

    if !one_matches || !multi_matches || !chaos_matches {
        eprintln!(
            "campaign_dist: FAIL — record tables diverge (1-worker match: {one_matches}, {workers}-worker match: {multi_matches}, chaos match: {chaos_matches})"
        );
        return ExitCode::FAILURE;
    }
    if chaos_injected == 0 || chaos_recovered == 0 {
        eprintln!(
            "campaign_dist: FAIL — chaos run proved nothing (injected: {chaos_injected}, \
             corrupt+duplicate frames handled: {chaos_recovered})"
        );
        return ExitCode::FAILURE;
    }
    if !durable.records_match {
        eprintln!(
            "campaign_dist: FAIL — record table recovered from the journal diverges from the inline baseline"
        );
        return ExitCode::FAILURE;
    }
    if !durable.resumed || durable.replayed_chunks == 0 {
        eprintln!(
            "campaign_dist: FAIL — resumed coordinator replayed nothing (resumed: {}, replayed_chunks: {}); the kill landed at {}/{} chunks so the journal cannot have been empty",
            durable.resumed, durable.replayed_chunks, durable.killed_at_chunks, durable.total_chunks
        );
        return ExitCode::FAILURE;
    }
    if gate_enforced && speedup < 2.0 {
        eprintln!(
            "campaign_dist: FAIL — {workers} workers reached only {speedup:.2}x over 1 worker on {cores} cores"
        );
        return ExitCode::FAILURE;
    }
    if !gate_enforced {
        eprintln!(
            "campaign_dist: speedup gate not enforced ({cores} core(s) < {workers} workers) — determinism gates still applied"
        );
    }
    eprintln!(
        "campaign_dist: record tables identical across inline, 1-worker, {workers}-worker-with-kill, coordinator-crash-resume, and wire-chaos runs"
    );
    ExitCode::SUCCESS
}

//! A durable campaign coordinator process: the killable half of the
//! `campaign_dist` crash-recovery gate. It binds a listener, runs one
//! distributed campaign with a write-ahead journal, and narrates enough
//! on stdout for a driver to (a) point workers at it, (b) SIGKILL it
//! *provably* mid-campaign, and (c) check what a restarted incarnation
//! recovered.
//!
//! Stdout protocol (one record per line, flushed):
//! * `ADDR {host:port}` — once, after binding.
//! * `PROGRESS {done} {total}` — whenever the accepted-chunk count
//!   changes (~25 ms cadence).
//! * `RESUME resumed={bool} epoch={n} replayed_chunks={n}
//!   replayed_trials={n} duplicates={n} torn_tail_bytes={n}
//!   stale_epoch={n} corrupt={n} dup_frames={n} auth_rejects={n}` —
//!   once, on successful completion (the last three report wire
//!   integrity: corrupt frames dropped, duplicate frames absorbed,
//!   shared-secret rejections).
//!
//! On success the final record table is written to `--records-out` in
//! the campaign wire encoding (`u32` count, then one
//! `certa_fault::wire::encode_trial_record` per trial in id order) so
//! the driver can compare it byte-for-byte against an inline baseline.
//!
//! Usage: `campaign_coordinator --journal PATH --records-out PATH
//! [--listen HOST:PORT] [--workload NAME] [--trials N] [--seed N]
//! [--errors N] [--chunk-parts N] [--secret SECRET]`

use std::io::Write as _;
use std::process::ExitCode;
use std::time::Duration;

use certa_bench::AsTarget;
use certa_core::analyze;
use certa_dist::{Coordinator, DistConfig, DistProgress, DistResult};
use certa_fault::wire::{encode_trial_record, ByteWriter};
use certa_fault::{CampaignConfig, CampaignSession, TrialRecord};
use certa_workloads::all_workloads;

struct Args {
    listen: String,
    workload: String,
    trials: usize,
    seed: u64,
    errors: u64,
    journal: String,
    chunk_parts: usize,
    records_out: String,
    secret: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        listen: "127.0.0.1:0".into(),
        workload: "susan".into(),
        trials: 256,
        seed: 42,
        errors: 2,
        journal: String::new(),
        chunk_parts: 16,
        records_out: String::new(),
        secret: None,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        let (flag, value) = (argv[i].as_str(), argv.get(i + 1));
        let value = value.ok_or_else(|| format!("{flag} needs a value"))?;
        match flag {
            "--listen" => args.listen = value.clone(),
            "--workload" => args.workload = value.clone(),
            "--trials" => args.trials = value.parse().map_err(|e| format!("--trials: {e}"))?,
            "--seed" => args.seed = value.parse().map_err(|e| format!("--seed: {e}"))?,
            "--errors" => args.errors = value.parse().map_err(|e| format!("--errors: {e}"))?,
            "--journal" => args.journal = value.clone(),
            "--chunk-parts" => {
                args.chunk_parts = value.parse().map_err(|e| format!("--chunk-parts: {e}"))?;
            }
            "--records-out" => args.records_out = value.clone(),
            "--secret" => args.secret = Some(value.clone()),
            other => return Err(format!("unknown argument {other:?}")),
        }
        i += 2;
    }
    if args.journal.is_empty() {
        return Err("missing --journal PATH".into());
    }
    if args.records_out.is_empty() {
        return Err("missing --records-out PATH".into());
    }
    Ok(args)
}

fn encode_records(trials: &[TrialRecord]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u32(trials.len() as u32);
    for record in trials {
        encode_trial_record(&mut w, record);
    }
    w.finish()
}

fn run(args: &Args) -> Result<DistResult, String> {
    // Leaked so the classifier closure (which must be `'static` per
    // `VerdictClassifier`) can capture it; the process exits right after.
    let workload: &'static dyn certa_workloads::Workload = Box::leak(
        all_workloads()
            .into_iter()
            .find(|w| w.name() == args.workload)
            .ok_or_else(|| format!("unknown workload {:?}", args.workload))?,
    );
    let tags = analyze(workload.program());
    let config = CampaignConfig {
        trials: args.trials,
        errors: args.errors,
        seed: args.seed,
        threads: 1,
        ..CampaignConfig::default()
    };
    let session = CampaignSession::new(workload.as_target(), &tags, &config);
    let golden = session.golden().output.clone();
    let classify =
        move |record: &TrialRecord| workload.classify_trial(&record.status, &golden);

    let dist = DistConfig {
        lease_ttl: Duration::from_secs(2),
        fallback_inline: false,
        chunk_parts: args.chunk_parts,
        worker_threads: 1,
        drain_timeout: Duration::from_secs(300),
        secret: args.secret.clone(),
        ..DistConfig::default()
    };

    let coordinator = Coordinator::bind(&args.listen).map_err(|e| format!("bind: {e}"))?;
    let addr = coordinator.local_addr().map_err(|e| format!("local_addr: {e}"))?;
    println!("ADDR {addr}");
    let _ = std::io::stdout().flush();

    let progress = DistProgress::default();
    let mut outcome: Option<Result<DistResult, String>> = None;
    std::thread::scope(|scope| {
        let progress = &progress;
        let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
        scope.spawn(move || {
            let mut last = usize::MAX;
            loop {
                let done = progress.chunks_done();
                if done != last {
                    println!("PROGRESS {done} {}", progress.chunks_total());
                    let _ = std::io::stdout().flush();
                    last = done;
                }
                match done_rx.recv_timeout(Duration::from_millis(25)) {
                    Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
                    _ => return,
                }
            }
        });
        outcome = Some(
            coordinator
                .run_durable(
                    &session,
                    &args.workload,
                    &dist,
                    progress,
                    std::path::Path::new(&args.journal),
                    Some(&classify),
                )
                .map_err(|e| e.to_string()),
        );
        drop(done_tx);
    });
    outcome.unwrap()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("campaign_coordinator: {e}");
            eprintln!(
                "usage: campaign_coordinator --journal PATH --records-out PATH \
                 [--listen HOST:PORT] [--workload NAME] [--trials N] [--seed N] \
                 [--errors N] [--chunk-parts N] [--secret SECRET]"
            );
            return ExitCode::FAILURE;
        }
    };
    let result = match run(&args) {
        Ok(result) => result,
        Err(e) => {
            eprintln!("campaign_coordinator: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(&args.records_out, encode_records(&result.campaign.trials)) {
        eprintln!("campaign_coordinator: cannot write {}: {e}", args.records_out);
        return ExitCode::FAILURE;
    }
    let r = &result.resume;
    println!(
        "RESUME resumed={} epoch={} replayed_chunks={} replayed_trials={} duplicates={} \
         torn_tail_bytes={} stale_epoch={} corrupt={} dup_frames={} auth_rejects={}",
        r.resumed,
        r.epoch,
        r.replayed_chunks,
        r.replayed_trials,
        r.journal_duplicates,
        r.torn_tail_bytes,
        r.stale_epoch_completions,
        result.wire.corrupt_frames,
        result.wire.duplicate_frames,
        result.wire.auth_rejects
    );
    let _ = std::io::stdout().flush();
    eprintln!(
        "campaign_coordinator: {} trials done ({} workers, {} redeliveries)",
        result.campaign.trials.len(),
        result.workers.len(),
        result.redeliveries
    );
    ExitCode::SUCCESS
}

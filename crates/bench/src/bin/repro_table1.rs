//! Regenerates the paper's Table 1 (application/fidelity inventory).
fn main() {
    print!("{}", certa_bench::table1());
}

//! Ablation of the analysis design choices (address protection, mask
//! chain-breaking, load tagging). Usage: `repro_ablation [--trials N]`.
fn main() {
    let (trials, seed) = certa_bench::parse_cli(24);
    let rows = certa_bench::ablation(trials, 4, seed);
    print!("{}", certa_bench::render_ablation(&rows));
}

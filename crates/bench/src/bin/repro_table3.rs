//! Regenerates the paper's Table 3 (% dynamic low-reliability instructions).
fn main() {
    print!("{}", certa_bench::render_table3(&certa_bench::table3()));
}

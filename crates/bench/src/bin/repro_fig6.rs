//! Regenerates the paper's Figure 6 (art sweep).
//! Usage: `repro_fig6 [--trials N] [--seed S]`.
fn main() {
    let (trials, seed) = certa_bench::parse_cli(40);
    let spec = certa_bench::FigureSpec::art();
    let points = certa_bench::figure(&spec, trials, seed);
    print!("{}", certa_bench::render_figure(&spec, &points));
}

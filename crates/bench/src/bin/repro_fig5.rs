//! Regenerates the paper's Figure 5 (gsm sweep).
//! Usage: `repro_fig5 [--trials N] [--seed S]`.
fn main() {
    let (trials, seed) = certa_bench::parse_cli(40);
    let spec = certa_bench::FigureSpec::gsm();
    let points = certa_bench::figure(&spec, trials, seed);
    print!("{}", certa_bench::render_figure(&spec, &points));
}

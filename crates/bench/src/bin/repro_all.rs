//! Regenerates every table and figure of the paper in one run.
//! Usage: `repro_all [--trials N] [--seed S]`.
fn main() {
    let (trials, seed) = certa_bench::parse_cli(40);
    println!("=== certa: full reproduction (trials = {trials}) ===\n");
    println!("{}", certa_bench::table1());
    let rows = certa_bench::table2(trials, seed);
    println!("{}", certa_bench::render_table2(&rows));
    println!("{}", certa_bench::render_table3(&certa_bench::table3()));
    for spec in certa_bench::FigureSpec::all() {
        let points = certa_bench::figure(&spec, trials, seed);
        println!("{}", certa_bench::render_figure(&spec, &points));
    }
    let rows = certa_bench::ablation(trials.min(24), 4, seed);
    print!("{}", certa_bench::render_ablation(&rows));
}

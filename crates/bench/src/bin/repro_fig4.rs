//! Regenerates the paper's Figure 4 (blowfish sweep).
//! Usage: `repro_fig4 [--trials N] [--seed S]`.
fn main() {
    let (trials, seed) = certa_bench::parse_cli(40);
    let spec = certa_bench::FigureSpec::blowfish();
    let points = certa_bench::figure(&spec, trials, seed);
    print!("{}", certa_bench::render_figure(&spec, &points));
}

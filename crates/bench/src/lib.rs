//! # certa-bench
//!
//! The experiment harness: one function per table/figure of the paper, each
//! returning printable rows so that the `repro_*` binaries and the criterion
//! benches share the exact same measurement path.
//!
//! | Paper artifact | Function | Binary | Criterion bench |
//! |---|---|---|---|
//! | Table 1 | [`table1`] | `repro_table1` | `experiments` |
//! | Table 2 | [`table2`] | `repro_table2` | `experiments` |
//! | Table 3 | [`table3`] | `repro_table3` | `experiments` |
//! | Figure 1 (Susan) | [`figure`] with [`FigureSpec::susan`] | `repro_fig1` | `experiments` |
//! | Figure 2 (MPEG) | [`figure`] with [`FigureSpec::mpeg`] | `repro_fig2` | `experiments` |
//! | Figure 3 (MCF) | [`figure`] with [`FigureSpec::mcf`] | `repro_fig3` | `experiments` |
//! | Figure 4 (Blowfish) | [`figure`] with [`FigureSpec::blowfish`] | `repro_fig4` | `experiments` |
//! | Figure 5 (GSM) | [`figure`] with [`FigureSpec::gsm`] | `repro_fig5` | `experiments` |
//! | Figure 6 (ART) | [`figure`] with [`FigureSpec::art`] | `repro_fig6` | `experiments` |
//! | Address-protection ablation | [`ablation`] | `repro_ablation` | `ablation` |

/// Tier-4 native code for every shared guest program, generated at build
/// time by `build.rs` via `certa-aot` (feature `aot` only). Exposes one
/// `AOT_*` static per program plus `lookup(name)` and `ALL`; the parity
/// tests and the `aot`/`campaign_paper` benches consume it.
#[cfg(feature = "aot")]
#[allow(
    unused_variables,
    unused_mut,
    unused_assignments,
    unused_parens,
    clippy::all,
    clippy::pedantic,
    clippy::nursery
)]
pub mod aot_workloads {
    include!(concat!(env!("OUT_DIR"), "/aot_workloads.rs"));
}

use std::fmt::Write as _;

use certa_core::{analyze, analyze_with, AnalysisOptions, TagMap};
use certa_fault::{run_campaign, CampaignConfig, Protection};
use certa_workloads::{all_workloads, FidelityDetail, Workload};

/// One measured point of a campaign sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointStats {
    /// Errors injected per trial.
    pub errors: u64,
    /// Trials executed.
    pub trials: usize,
    /// % of trials ending in catastrophic failure (crash or infinite run).
    pub failure_pct: f64,
    /// Mean normalized fidelity score over completed trials.
    pub mean_score: f64,
    /// % of all trials whose output clears the workload's fidelity
    /// threshold (failures count as unacceptable).
    pub acceptable_pct: f64,
    /// Workload-specific scalar (mean PSNR dB, % bad frames, % optimal
    /// schedules, % bytes correct, SNR loss dB, % recognized).
    pub detail: f64,
}

fn detail_scalar(d: &FidelityDetail) -> f64 {
    match *d {
        FidelityDetail::Psnr { db } => db.min(60.0),
        FidelityDetail::BadFrames { fraction } => fraction * 100.0,
        FidelityDetail::Schedule(v) => {
            if v == certa_fidelity::schedule::ScheduleFidelity::Optimal {
                100.0
            } else {
                0.0
            }
        }
        FidelityDetail::ByteSimilarity { fraction } => fraction * 100.0,
        FidelityDetail::SnrLoss { db } => db.min(60.0),
        FidelityDetail::Confidence { recognized, .. } => {
            if recognized {
                100.0
            } else {
                0.0
            }
        }
    }
}

/// Runs one campaign point and aggregates workload fidelity over it.
#[must_use]
pub fn measure_point(
    workload: &dyn Workload,
    tags: &TagMap,
    protection: Protection,
    errors: u64,
    trials: usize,
    seed: u64,
) -> PointStats {
    let config = CampaignConfig {
        trials,
        errors,
        protection,
        seed,
        ..CampaignConfig::default()
    };
    let result = run_campaign(workload.as_target(), tags, &config);
    let mut scores = Vec::new();
    let mut details = Vec::new();
    let mut acceptable = 0usize;
    for trial in result.completed() {
        if trial.is_catastrophic() {
            continue;
        }
        let f = workload.evaluate(&result.golden.output, trial.output.as_deref());
        scores.push(f.score);
        details.push(detail_scalar(&f.detail));
        if f.acceptable {
            acceptable += 1;
        }
    }
    PointStats {
        errors,
        trials,
        failure_pct: result.failure_rate() * 100.0,
        mean_score: certa_fault::mean(&scores),
        acceptable_pct: if trials == 0 {
            0.0
        } else {
            acceptable as f64 / trials as f64 * 100.0
        },
        detail: certa_fault::mean(&details),
    }
}

/// Object-safe helper: a `&dyn Workload` is also usable as `&dyn Target`.
pub trait AsTarget {
    /// Upcasts to the fault-injection target view.
    fn as_target(&self) -> &dyn certa_fault::Target;
}

impl AsTarget for dyn Workload + '_ {
    fn as_target(&self) -> &dyn certa_fault::Target {
        self
    }
}

// ---------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------

/// Regenerates Table 1: the application/fidelity-measure inventory.
#[must_use]
pub fn table1() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 1: applications and their fidelity measures");
    let _ = writeln!(out, "{:<10} {:<55} measure", "app", "description");
    for w in all_workloads() {
        let _ = writeln!(
            out,
            "{:<10} {:<55} {}",
            w.name(),
            w.description(),
            w.fidelity_measure()
        );
    }
    out
}

// ---------------------------------------------------------------------
// Table 2
// ---------------------------------------------------------------------

/// One Table 2 row.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Application name.
    pub app: &'static str,
    /// Errors injected per trial.
    pub errors: u64,
    /// Golden dynamic instruction count.
    pub instructions: u64,
    /// % catastrophic failures with control protection.
    pub with_protection_pct: f64,
    /// % catastrophic failures without protection.
    pub without_protection_pct: f64,
}

/// The paper's Table 2 error levels per application (low, high).
#[must_use]
pub fn table2_error_levels(app: &str) -> Vec<u64> {
    match app {
        "susan" => vec![2200],
        "mpeg" => vec![20, 120],
        "mcf" => vec![1, 340],
        "blowfish" => vec![2, 20],
        "gsm" => vec![10, 40],
        "art" => vec![4],
        "adpcm" => vec![3, 56],
        _ => vec![1],
    }
}

/// Regenerates Table 2: % catastrophic failures with and without control
/// protection, at the paper's per-application error counts.
#[must_use]
pub fn table2(trials: usize, seed: u64) -> Vec<Table2Row> {
    let mut rows = Vec::new();
    for w in all_workloads() {
        let tags = analyze(w.program());
        for errors in table2_error_levels(w.name()) {
            let with = measure_point(&*w, &tags, Protection::ControlOnly, errors, trials, seed);
            let without = measure_point(&*w, &tags, Protection::None, errors, trials, seed ^ 1);
            let golden = certa_fault::run_campaign(
                w.as_target(),
                &tags,
                &CampaignConfig {
                    trials: 0,
                    ..CampaignConfig::default()
                },
            )
            .golden;
            rows.push(Table2Row {
                app: w.name(),
                errors,
                instructions: golden.instructions,
                with_protection_pct: with.failure_pct,
                without_protection_pct: without.failure_pct,
            });
        }
    }
    rows
}

/// Renders Table 2 rows in the paper's layout.
#[must_use]
pub fn render_table2(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 2: % catastrophic failures (infinite runs or crashes)"
    );
    let _ = writeln!(
        out,
        "{:<10} {:>8} {:>14} {:>18} {:>20}",
        "app", "errors", "instructions", "% fail (with)", "% fail (without)"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<10} {:>8} {:>14} {:>17.1}% {:>19.1}%",
            r.app, r.errors, r.instructions, r.with_protection_pct, r.without_protection_pct
        );
    }
    out
}

// ---------------------------------------------------------------------
// Table 3
// ---------------------------------------------------------------------

/// One Table 3 row.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Application name.
    pub app: &'static str,
    /// Golden dynamic instruction count.
    pub instructions: u64,
    /// % of dynamic instructions tagged low-reliability.
    pub low_reliability_pct: f64,
    /// % of static instructions tagged low-reliability.
    pub static_low_reliability_pct: f64,
}

/// Regenerates Table 3: dynamic instruction counts and the percentage the
/// static analysis tags as low-reliability.
#[must_use]
pub fn table3() -> Vec<Table3Row> {
    let mut rows = Vec::new();
    for w in all_workloads() {
        let tags = analyze(w.program());
        let golden = certa_fault::run_campaign(
            w.as_target(),
            &tags,
            &CampaignConfig {
                trials: 0,
                ..CampaignConfig::default()
            },
        )
        .golden;
        rows.push(Table3Row {
            app: w.name(),
            instructions: golden.instructions,
            low_reliability_pct: tags.dynamic_low_reliability_fraction(&golden.exec_counts)
                * 100.0,
            static_low_reliability_pct: tags.stats().low_reliability_fraction() * 100.0,
        });
    }
    rows
}

/// Renders Table 3 rows in the paper's layout.
#[must_use]
pub fn render_table3(rows: &[Table3Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 3: dynamic instructions identified as not leading to control"
    );
    let _ = writeln!(
        out,
        "{:<10} {:>14} {:>22} {:>21}",
        "app", "instructions", "% low-rel (dynamic)", "% low-rel (static)"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<10} {:>14} {:>21.1}% {:>20.1}%",
            r.app, r.instructions, r.low_reliability_pct, r.static_low_reliability_pct
        );
    }
    out
}

// ---------------------------------------------------------------------
// Figures 1–6
// ---------------------------------------------------------------------

/// Specification of one figure sweep.
#[derive(Debug, Clone)]
pub struct FigureSpec {
    /// Figure id in the paper ("fig1" ... "fig6").
    pub id: &'static str,
    /// Workload name.
    pub app: &'static str,
    /// Error counts swept on the x-axis.
    pub errors: Vec<u64>,
    /// Label of the workload-specific detail column.
    pub detail_label: &'static str,
    /// Whether to also sweep with static analysis OFF (Figure 1 does).
    pub include_unprotected: bool,
}

impl FigureSpec {
    /// Figure 1: Susan PSNR vs. errors, static analysis ON and OFF.
    #[must_use]
    pub fn susan() -> Self {
        FigureSpec {
            id: "fig1",
            app: "susan",
            errors: vec![100, 500, 920, 1100, 1550, 2300],
            detail_label: "mean PSNR (dB)",
            include_unprotected: true,
        }
    }

    /// Figure 2: MPEG % bad frames + % failures vs. errors.
    #[must_use]
    pub fn mpeg() -> Self {
        FigureSpec {
            id: "fig2",
            app: "mpeg",
            errors: vec![1, 2, 5, 10, 20, 50],
            detail_label: "% bad frames",
            include_unprotected: false,
        }
    }

    /// Figure 3: MCF % optimal schedules + % failures vs. errors.
    #[must_use]
    pub fn mcf() -> Self {
        FigureSpec {
            id: "fig3",
            app: "mcf",
            errors: vec![1, 5, 20, 50, 100, 200, 300],
            detail_label: "% optimal schedules",
            include_unprotected: false,
        }
    }

    /// Figure 4: Blowfish % bytes correct + % failures vs. errors.
    #[must_use]
    pub fn blowfish() -> Self {
        FigureSpec {
            id: "fig4",
            app: "blowfish",
            errors: vec![5, 10, 15, 20, 25, 30, 35, 40],
            detail_label: "% bytes correct",
            include_unprotected: false,
        }
    }

    /// Figure 5: GSM SNR loss + % failures vs. errors.
    #[must_use]
    pub fn gsm() -> Self {
        FigureSpec {
            id: "fig5",
            app: "gsm",
            errors: vec![1, 2, 5, 10, 20, 40],
            detail_label: "SNR loss (dB)",
            include_unprotected: false,
        }
    }

    /// Figure 6: ART % images recognized + % failures vs. errors.
    #[must_use]
    pub fn art() -> Self {
        FigureSpec {
            id: "fig6",
            app: "art",
            errors: vec![1, 2, 3, 4],
            detail_label: "% recognized",
            include_unprotected: false,
        }
    }

    /// All six figures in paper order.
    #[must_use]
    pub fn all() -> Vec<FigureSpec> {
        vec![
            FigureSpec::susan(),
            FigureSpec::mpeg(),
            FigureSpec::mcf(),
            FigureSpec::blowfish(),
            FigureSpec::gsm(),
            FigureSpec::art(),
        ]
    }
}

/// One figure point (protected, plus optionally unprotected).
#[derive(Debug, Clone)]
pub struct FigurePoint {
    /// Protected-run statistics.
    pub protected: PointStats,
    /// Unprotected-run statistics, when the figure includes them.
    pub unprotected: Option<PointStats>,
}

/// Runs one figure's sweep.
///
/// # Panics
///
/// Panics if the spec names an unknown workload.
#[must_use]
pub fn figure(spec: &FigureSpec, trials: usize, seed: u64) -> Vec<FigurePoint> {
    let workloads = all_workloads();
    let w = workloads
        .iter()
        .find(|w| w.name() == spec.app)
        .expect("figure spec names a known workload");
    let tags = analyze(w.program());
    spec.errors
        .iter()
        .map(|&errors| {
            let protected = measure_point(&**w, &tags, Protection::ControlOnly, errors, trials, seed);
            let unprotected = spec.include_unprotected.then(|| {
                measure_point(&**w, &tags, Protection::None, errors, trials, seed ^ 0xF)
            });
            FigurePoint {
                protected,
                unprotected,
            }
        })
        .collect()
}

/// Renders a figure sweep as the paper's series.
#[must_use]
pub fn render_figure(spec: &FigureSpec, points: &[FigurePoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{} ({}): {}", spec.id, spec.app, spec.detail_label);
    if spec.include_unprotected {
        let _ = writeln!(
            out,
            "{:>8} {:>16} {:>16} {:>12} {:>14}",
            "errors", "detail (ON)", "detail (OFF)", "% fail (ON)", "% fail (OFF)"
        );
        for p in points {
            let u = p.unprotected.as_ref().expect("figure includes OFF series");
            let _ = writeln!(
                out,
                "{:>8} {:>16.2} {:>16.2} {:>11.1}% {:>13.1}%",
                p.protected.errors, p.protected.detail, u.detail, p.protected.failure_pct,
                u.failure_pct
            );
        }
    } else {
        let _ = writeln!(
            out,
            "{:>8} {:>16} {:>12} {:>14}",
            "errors", "detail", "% fail", "% acceptable"
        );
        for p in points {
            let _ = writeln!(
                out,
                "{:>8} {:>16.2} {:>11.1}% {:>13.1}%",
                p.protected.errors, p.protected.detail, p.protected.failure_pct,
                p.protected.acceptable_pct
            );
        }
    }
    out
}

// ---------------------------------------------------------------------
// Ablation: the design choices DESIGN.md calls out
// ---------------------------------------------------------------------

/// One ablation row: tag fractions and failure rates under analysis
/// variants.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Application name.
    pub app: &'static str,
    /// Analysis variant label.
    pub variant: &'static str,
    /// % of dynamic instructions tagged low-reliability.
    pub low_reliability_pct: f64,
    /// % catastrophic failures under protection at the probe error count.
    pub failure_pct: f64,
}

/// Analysis variants studied by the ablation.
#[must_use]
pub fn ablation_variants() -> Vec<(&'static str, AnalysisOptions)> {
    vec![
        ("default", AnalysisOptions::default()),
        (
            "no-addr-protect",
            AnalysisOptions {
                protect_addresses: false,
                ..AnalysisOptions::default()
            },
        ),
        (
            "no-mask-break",
            AnalysisOptions {
                mask_breaks_address_chains: false,
                ..AnalysisOptions::default()
            },
        ),
        (
            "no-load-tagging",
            AnalysisOptions {
                tag_loads: false,
                ..AnalysisOptions::default()
            },
        ),
    ]
}

/// Runs the ablation over every workload: how each analysis design choice
/// moves the taggable fraction and the protected failure rate.
#[must_use]
pub fn ablation(trials: usize, errors: u64, seed: u64) -> Vec<AblationRow> {
    let mut rows = Vec::new();
    for w in all_workloads() {
        for (variant, opts) in ablation_variants() {
            let tags = analyze_with(w.program(), &opts);
            let point = measure_point(&*w, &tags, Protection::ControlOnly, errors, trials, seed);
            let golden = certa_fault::run_campaign(
                w.as_target(),
                &tags,
                &CampaignConfig {
                    trials: 0,
                    ..CampaignConfig::default()
                },
            )
            .golden;
            rows.push(AblationRow {
                app: w.name(),
                variant,
                low_reliability_pct: tags.dynamic_low_reliability_fraction(&golden.exec_counts)
                    * 100.0,
                failure_pct: point.failure_pct,
            });
        }
    }
    rows
}

/// Renders ablation rows.
#[must_use]
pub fn render_ablation(rows: &[AblationRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Ablation: analysis design choices vs. taggable fraction and protected failure rate"
    );
    let _ = writeln!(
        out,
        "{:<10} {:<18} {:>20} {:>12}",
        "app", "variant", "% low-rel (dyn)", "% fail"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<10} {:<18} {:>19.1}% {:>11.1}%",
            r.app, r.variant, r.low_reliability_pct, r.failure_pct
        );
    }
    out
}

// ---------------------------------------------------------------------
// Bench reporting: BENCH_*.json artifacts
// ---------------------------------------------------------------------

/// Geometric mean of strictly positive values (`0.0` for an empty slice).
/// Used by the throughput benches to aggregate per-workload speedups
/// without letting one outlier workload dominate.
#[must_use]
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

// ---------------------------------------------------------------------
// Clock-drift-resistant tier timing (shared by the dispatch bench and
// the sbtune example)
// ---------------------------------------------------------------------

/// Median of the samples (`0.0` for an empty slice).
#[must_use]
pub fn median(mut v: Vec<f64>) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

/// Per-tier timing results from [`time_tiers`].
pub struct TierRounds {
    /// Best (lowest) sample value observed per tier.
    pub best: Vec<f64>,
    /// `rounds[r][tier]`: the sample every tier produced in round `r`.
    rounds: Vec<Vec<f64>>,
}

impl TierRounds {
    /// Median over rounds of `rounds[r][num] / rounds[r][den]` — a
    /// tier-vs-tier ratio taken within each round, so it stays meaningful
    /// on hosts whose clock drifts between rounds (each round samples the
    /// tiers back-to-back at nearly one clock operating point).
    #[must_use]
    pub fn median_ratio(&self, num: usize, den: usize) -> f64 {
        median(self.rounds.iter().map(|r| r[num] / r[den]).collect())
    }
}

/// Runs `rounds` timing rounds; in each round every sampler is invoked
/// once, back-to-back, and should return a cost metric where *lower is
/// better* (e.g. seconds per simulated instruction over a rep-accumulated
/// sample long enough not to alias host clock stepping). Compare tiers
/// through [`TierRounds::median_ratio`], not across separately-timed
/// runs.
///
/// Within a round the samplers run in **rotated order** (round `r` starts
/// at sampler `r % n`): a clock regime that decays or ramps *during* a
/// round would otherwise bias whichever tier always samples last, and the
/// median over rounds cannot remove a bias that is systematic in sampler
/// position. Rotation turns position bias into symmetric noise the median
/// does absorb.
pub fn time_tiers(rounds: usize, samplers: &mut [&mut dyn FnMut() -> f64]) -> TierRounds {
    let n = samplers.len();
    let mut best = vec![f64::MAX; n];
    let mut all = Vec::with_capacity(rounds);
    for r in 0..rounds {
        let mut round = vec![0.0f64; n];
        for k in 0..n {
            let slot = (r + k) % n;
            let v = samplers[slot]();
            if v < best[slot] {
                best[slot] = v;
            }
            round[slot] = v;
        }
        all.push(round);
    }
    TierRounds { best, rounds: all }
}

/// The workspace root: the nearest ancestor of the current directory
/// holding a `Cargo.lock` (benches and bins run with the *package*
/// directory as CWD), falling back to the current directory itself.
///
/// # Errors
///
/// Propagates the underlying [`std::io::Error`] if the current directory
/// cannot be resolved.
pub fn workspace_root() -> std::io::Result<std::path::PathBuf> {
    let cwd = std::env::current_dir()?;
    for dir in cwd.ancestors() {
        if dir.join("Cargo.lock").is_file() {
            return Ok(dir.to_path_buf());
        }
    }
    Ok(cwd)
}

/// Writes `BENCH_{name}.json` into the workspace root (see
/// [`workspace_root`]), so CI can upload every `BENCH_*.json` as a build
/// artifact and track the perf trajectory across PRs. Returns the path
/// written.
///
/// # Errors
///
/// Propagates the underlying [`std::io::Error`] if the file cannot be
/// written.
pub fn write_bench_json(name: &str, json: &str) -> std::io::Result<std::path::PathBuf> {
    let path = workspace_root()?.join(format!("BENCH_{name}.json"));
    std::fs::write(&path, json)?;
    Ok(path)
}

/// Serializes [`certa_fault::HarnessStats`] as a JSON object — the
/// containment counters belong in every `BENCH_*.json` that runs
/// campaigns, so harness health (panics, timeouts, retries, rebuilds,
/// retried-out trials) is tracked across PRs alongside throughput.
#[must_use]
pub fn harness_json(stats: &certa_fault::HarnessStats) -> String {
    format!(
        "{{\"panics\":{},\"timeouts\":{},\"retries\":{},\"rebuilds\":{},\"harness_errors\":{}}}",
        stats.panics, stats.timeouts, stats.retries, stats.rebuilds, stats.harness_errors
    )
}

/// Extracts the numeric value of `"key": <number>` from a flat JSON
/// document — the `BENCH_*.json` summaries are written by this crate with
/// a known shape, so a dependency-free scan is all the trajectory checker
/// needs. Returns the first occurrence; `None` when the key is missing or
/// its value does not parse as a number.
#[must_use]
pub fn json_number(json: &str, key: &str) -> Option<f64> {
    json_number_from(json, 0, key)
}

/// Like [`json_number`], but scanning only from byte offset `from` — the
/// building block for per-record extraction in array-of-objects summaries.
#[must_use]
pub fn json_number_from(json: &str, from: usize, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let start = from + json.get(from..)?.find(&needle)? + needle.len();
    let rest = json[start..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts `key` from the workload record named `name` in a
/// `BENCH_dispatch.json`-shaped document (an array of
/// `{"name":"...", ...}` objects): finds the record's `"name"` anchor and
/// reads the first `key` after it. `None` when the workload or key is
/// missing.
#[must_use]
pub fn json_workload_number(json: &str, name: &str, key: &str) -> Option<f64> {
    let anchor = format!("\"name\":\"{name}\"");
    let start = json.find(&anchor)? + anchor.len();
    // Bound the scan at the record's closing brace: a key missing from
    // *this* record must return `None`, not the next record's value.
    let end = start + json[start..].find('}').unwrap_or(json.len() - start);
    json_number_from(&json[..end], start, key)
}

/// The workload names present in a `BENCH_dispatch.json`-shaped document,
/// in order of appearance.
#[must_use]
pub fn json_workload_names(json: &str) -> Vec<String> {
    let mut names = Vec::new();
    let mut at = 0;
    while let Some(pos) = json[at..].find("\"name\":\"") {
        let start = at + pos + "\"name\":\"".len();
        let Some(end) = json[start..].find('"') else {
            break;
        };
        names.push(json[start..start + end].to_string());
        at = start + end;
    }
    names
}

/// Parses the `--trials N` / `--seed N` CLI convention used by the
/// `repro_*` binaries. Returns `(trials, seed)`.
#[must_use]
pub fn parse_cli(default_trials: usize) -> (usize, u64) {
    let mut trials = default_trials;
    let mut seed = 0xCE27A;
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--trials" if i + 1 < args.len() => {
                trials = args[i + 1].parse().unwrap_or(default_trials);
                i += 2;
            }
            "--seed" if i + 1 < args.len() => {
                seed = args[i + 1].parse().unwrap_or(seed);
                i += 2;
            }
            _ => i += 1,
        }
    }
    (trials, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_all_apps() {
        let t = table1();
        for app in ["susan", "mpeg", "mcf", "blowfish", "gsm", "art", "adpcm"] {
            assert!(t.contains(app), "table1 missing {app}");
        }
    }

    #[test]
    fn table3_covers_all_apps_with_sane_fractions() {
        let rows = table3();
        assert_eq!(rows.len(), 7);
        for r in &rows {
            assert!(r.instructions > 1_000, "{} too small", r.app);
            assert!((0.0..=100.0).contains(&r.low_reliability_pct));
        }
        // MCF must be the least taggable (the paper's outlier)
        let mcf = rows.iter().find(|r| r.app == "mcf").expect("mcf row");
        for r in &rows {
            if r.app != "mcf" {
                assert!(
                    mcf.low_reliability_pct <= r.low_reliability_pct + 15.0,
                    "mcf ({:.1}%) should be near the bottom vs {} ({:.1}%)",
                    mcf.low_reliability_pct,
                    r.app,
                    r.low_reliability_pct
                );
            }
        }
    }

    #[test]
    fn measure_point_zero_errors_is_perfect() {
        let workloads = all_workloads();
        let w = workloads.iter().find(|w| w.name() == "adpcm").expect("adpcm");
        let tags = analyze(w.program());
        let p = measure_point(&**w, &tags, Protection::ControlOnly, 0, 3, 1);
        assert_eq!(p.failure_pct, 0.0);
        assert_eq!(p.acceptable_pct, 100.0);
        assert_eq!(p.mean_score, 1.0);
    }

    #[test]
    fn json_number_extracts_bench_metrics() {
        let json = r#"{"bench":"dispatch","geomean_speedup":2.076,"neg":-1.5e2,"workloads":[{"speedup":9.9}]}"#;
        assert_eq!(json_number(json, "geomean_speedup"), Some(2.076));
        assert_eq!(json_number(json, "neg"), Some(-150.0));
        assert_eq!(json_number(json, "speedup"), Some(9.9));
        assert_eq!(json_number(json, "missing"), None);
        assert_eq!(json_number(r#"{"bench":"x"}"#, "bench"), None);
    }

    #[test]
    fn json_workload_helpers_extract_per_record_metrics() {
        let json = r#"{"bench":"dispatch","geomean_speedup":1.5,"workloads":[
            {"name":"susan","speedup":2.1,"speedup_vs_fused":1.5},
            {"name":"mpeg","speedup":1.6,"speedup_vs_fused":1.2}]}"#;
        assert_eq!(json_workload_names(json), ["susan", "mpeg"]);
        assert_eq!(json_workload_number(json, "susan", "speedup"), Some(2.1));
        assert_eq!(
            json_workload_number(json, "mpeg", "speedup_vs_fused"),
            Some(1.2)
        );
        assert_eq!(json_workload_number(json, "mpeg", "speedup"), Some(1.6));
        assert_eq!(json_workload_number(json, "gsm", "speedup"), None);
        assert_eq!(json_workload_number(json, "susan", "missing"), None);
        assert_eq!(json_workload_names("{}"), Vec::<String>::new());
    }

    #[test]
    fn time_tiers_rotates_sampler_order() {
        // Record invocation order across rounds: with 3 samplers and 3
        // rounds, each sampler must lead exactly one round.
        let order = std::cell::RefCell::new(Vec::new());
        let mut s0 = || {
            order.borrow_mut().push(0);
            1.0
        };
        let mut s1 = || {
            order.borrow_mut().push(1);
            2.0
        };
        let mut s2 = || {
            order.borrow_mut().push(2);
            4.0
        };
        let timing = time_tiers(3, &mut [&mut s0, &mut s1, &mut s2]);
        assert_eq!(
            order.into_inner(),
            [0, 1, 2, 1, 2, 0, 2, 0, 1],
            "round r starts at sampler r % n"
        );
        assert_eq!(timing.best, [1.0, 2.0, 4.0]);
        assert!((timing.median_ratio(0, 1) - 0.5).abs() < 1e-12);
        assert!((timing.median_ratio(2, 1) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[4.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        // Order-independent.
        assert!((geomean(&[0.5, 8.0]) - geomean(&[8.0, 0.5])).abs() < 1e-12);
    }

    #[test]
    fn figure_specs_cover_the_six_figures() {
        let ids: Vec<&str> = FigureSpec::all().iter().map(|s| s.id).collect();
        assert_eq!(ids, ["fig1", "fig2", "fig3", "fig4", "fig5", "fig6"]);
    }

    #[test]
    fn render_figure_smoke() {
        let spec = FigureSpec {
            id: "fig6",
            app: "art",
            errors: vec![1],
            detail_label: "% recognized",
            include_unprotected: false,
        };
        let points = figure(&spec, 2, 9);
        let text = render_figure(&spec, &points);
        assert!(text.contains("fig6"));
        assert!(text.contains("errors"));
    }
}

//! Susan edge detection (MiBench).
//!
//! Implements the Smallest Univalue Segment Assimilating Nucleus principle
//! (paper §2): for every pixel, the brightness of each pixel inside a
//! quasi-circular mask is compared against the mask's nucleus; the number of
//! similar pixels (the USAN area `n`) is subtracted from the geometric
//! threshold `g` to produce the edge response.
//!
//! Fidelity (Table 1): PSNR of the faulty edge map against the fault-free
//! edge map — the paper uses Imagemagick's comparison with a 10 dB
//! threshold; `certa-fidelity` provides the same PSNR computation.

use certa_asm::Asm;
use certa_fault::Target;
use certa_fidelity::psnr;
use certa_isa::reg::{S0, S1, S2, S3, S4, S5, S6, S7, T0, T1, T2, T3, T4, T6};
use certa_isa::Program;
use certa_sim::Machine;

use crate::common::{emit_abs, read_output, XorShift64};
use crate::{Fidelity, FidelityDetail, Workload};

/// Image width and height (square image).
pub const SIZE: usize = 48;
/// Brightness-similarity threshold (the SUSAN `t` parameter).
pub const THRESHOLD: i32 = 20;
/// The paper's acceptability threshold: faulty output with PSNR below 10 dB
/// is bad.
pub const PSNR_THRESHOLD_DB: f64 = 10.0;

/// Quasi-circular mask offsets `(dx, dy)` with `dx² + dy² ≤ 6`, nucleus
/// excluded (20 neighbours).
fn mask_offsets() -> Vec<(i32, i32)> {
    let mut offsets = Vec::new();
    for dy in -2i32..=2 {
        for dx in -2i32..=2 {
            if (dx, dy) != (0, 0) && dx * dx + dy * dy <= 6 {
                offsets.push((dx, dy));
            }
        }
    }
    offsets
}

/// Geometric threshold `g = 3/4 · mask size`.
fn geometric_threshold(mask_len: usize) -> i32 {
    (3 * mask_len as i32) / 4
}

/// Host-side reference implementation (used to validate the guest and as
/// documentation of the exact algorithm).
#[must_use]
pub fn reference_edges(image: &[u8]) -> Vec<u8> {
    assert_eq!(image.len(), SIZE * SIZE);
    let offsets = mask_offsets();
    let g = geometric_threshold(offsets.len());
    let scale = 255 / g;
    let mut out = vec![0u8; SIZE * SIZE];
    for y in 2..SIZE - 2 {
        for x in 2..SIZE - 2 {
            let c = i32::from(image[y * SIZE + x]);
            let mut n = 0i32;
            for &(dx, dy) in &offsets {
                let p = i32::from(
                    image[((y as i32 + dy) as usize) * SIZE + (x as i32 + dx) as usize],
                );
                if (c - p).abs() <= THRESHOLD {
                    n += 1;
                }
            }
            let r = (g - n).max(0);
            out[y * SIZE + x] = (r * scale).min(255) as u8;
        }
    }
    out
}

/// Generates the synthetic test image: a gradient background, a bright
/// rectangle, a dark disc, and mild deterministic noise.
#[must_use]
pub fn test_image(seed: u64) -> Vec<u8> {
    let mut rng = XorShift64::new(seed);
    let mut img = vec![0u8; SIZE * SIZE];
    for y in 0..SIZE {
        for x in 0..SIZE {
            let mut v = 60 + (x as i32 * 2) + (y as i32 / 2);
            if (10..26).contains(&x) && (12..30).contains(&y) {
                v = 210;
            }
            let dx = x as i32 - 32;
            let dy = y as i32 - 30;
            if dx * dx + dy * dy <= 64 {
                v = 35;
            }
            v += (rng.next_below(7) as i32) - 3;
            img[y * SIZE + x] = v.clamp(0, 255) as u8;
        }
    }
    img
}

/// The Susan workload: guest program + input + fidelity evaluation.
#[derive(Debug)]
pub struct SusanWorkload {
    program: Program,
    image: Vec<u8>,
    out_len_addr: u32,
    out_addr: u32,
}

impl Default for SusanWorkload {
    fn default() -> Self {
        Self::new()
    }
}

impl SusanWorkload {
    /// Builds the workload with the default input image.
    #[must_use]
    pub fn new() -> Self {
        Self::with_seed(1)
    }

    /// Builds the workload with an input image generated from `seed`.
    #[must_use]
    #[allow(clippy::too_many_lines)]
    pub fn with_seed(seed: u64) -> Self {
        let image = test_image(seed);
        let offsets = mask_offsets();
        let g = geometric_threshold(offsets.len());
        let scale = 255 / g;
        let size = SIZE as i32;

        let mut a = Asm::new();
        let in_addr = a.data_bytes(&image);
        // linearized mask offsets: dy*SIZE + dx
        let linear: Vec<i32> = offsets.iter().map(|&(dx, dy)| dy * size + dx).collect();
        let mask_addr = a.data_words(&linear);
        let out_len_addr = a.data_zero(4);
        let out_addr = a.data_zero(SIZE * SIZE);

        // --------------------------------------------------------------
        // susan_edges: the eligible (error-tolerant) kernel
        //   s0=in, s1=out, s2=y, s3=x, s4=idx, s5=c (nucleus), s6=n,
        //   s7=k, t6=mask base, t0..t4 scratch
        // --------------------------------------------------------------
        a.func("susan_edges", true);
        a.la(S0, in_addr);
        a.la(S1, out_addr);
        a.la(T6, mask_addr);
        a.li(S2, 2); // y
        a.label("su_y");
        a.li(S3, 2); // x
        a.label("su_x");
        a.muli(S4, S2, size); // idx = y*SIZE + x
        a.add(S4, S4, S3);
        a.add(T0, S0, S4);
        a.lbu(S5, 0, T0); // c = in[idx]
        a.li(S6, 0); // n = 0
        a.li(S7, 0); // k = 0
        a.label("su_k");
        a.slli(T0, S7, 2);
        a.add(T0, T6, T0);
        a.lw(T1, 0, T0); // off = mask[k]
        a.add(T1, T1, S4); // idx + off
        a.add(T1, S0, T1);
        a.lbu(T2, 0, T1); // p = in[idx+off]
        a.sub(T3, S5, T2); // c - p
        emit_abs(&mut a, T3, T3, T4);
        a.slti(T3, T3, THRESHOLD + 1); // similar?
        a.add(S6, S6, T3); // n += similar
        a.addi(S7, S7, 1);
        a.slti(T0, S7, linear.len() as i32);
        a.bnez(T0, "su_k");
        // r = max(0, g - n) * scale
        a.li(T0, g);
        a.sub(T0, T0, S6);
        a.srai(T1, T0, 31);
        a.nor(T1, T1, certa_isa::reg::ZERO);
        a.and(T0, T0, T1); // max(0, g-n)
        a.muli(T0, T0, scale);
        a.add(T1, S1, S4);
        a.sb(T0, 0, T1); // out[idx] = r*scale
        a.addi(S3, S3, 1);
        a.slti(T0, S3, size - 2);
        a.bnez(T0, "su_x");
        a.addi(S2, S2, 1);
        a.slti(T0, S2, size - 2);
        a.bnez(T0, "su_y");
        a.ret();
        a.endfunc();

        // --------------------------------------------------------------
        // main: call the kernel, publish the output header
        // --------------------------------------------------------------
        a.func("main", false);
        a.call("susan_edges");
        a.la(T0, out_len_addr);
        a.li(T1, (SIZE * SIZE) as i32);
        a.sw(T1, 0, T0);
        a.halt();
        a.endfunc();


        SusanWorkload {
            program: a.assemble().expect("susan guest must assemble"),
            image,
            out_len_addr,
            out_addr,
        }
    }

    /// The input image baked into the guest.
    #[must_use]
    pub fn image(&self) -> &[u8] {
        &self.image
    }
}

impl Target for SusanWorkload {
    fn program(&self) -> &Program {
        &self.program
    }

    fn prepare(&self, _machine: &mut Machine<'_>) {
        // input is baked into the data segment
    }

    fn extract(&self, machine: &Machine<'_>) -> Option<Vec<u8>> {
        read_output(
            machine,
            self.out_len_addr,
            self.out_addr,
            (SIZE * SIZE) as u32,
        )
    }
}

impl Workload for SusanWorkload {
    fn name(&self) -> &'static str {
        "susan"
    }

    fn description(&self) -> &'static str {
        "SUSAN edge detection over a synthetic structured image (MiBench)"
    }

    fn fidelity_measure(&self) -> &'static str {
        "PSNR of edge map vs. fault-free edge map (threshold 10 dB)"
    }

    fn evaluate(&self, golden: &[u8], trial: Option<&[u8]>) -> Fidelity {
        let Some(out) = trial else {
            return Fidelity {
                score: 0.0,
                acceptable: false,
                detail: FidelityDetail::Psnr { db: 0.0 },
            };
        };
        if out.len() != golden.len() {
            return Fidelity {
                score: 0.0,
                acceptable: false,
                detail: FidelityDetail::Psnr { db: 0.0 },
            };
        }
        let db = psnr(golden, out);
        Fidelity {
            // score: 1 at >= 50 dB, 0 at 0 dB
            score: (db / 50.0).clamp(0.0, 1.0),
            acceptable: db >= PSNR_THRESHOLD_DB,
            detail: FidelityDetail::Psnr { db },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certa_core::analyze;
    use certa_fault::{run_campaign, CampaignConfig, Protection};
    use certa_sim::{MachineConfig, Outcome};

    #[test]
    fn guest_matches_reference() {
        let w = SusanWorkload::new();
        let mut m = Machine::new(w.program(), &MachineConfig::default());
        w.prepare(&mut m);
        let r = m.run_simple();
        assert_eq!(r.outcome, Outcome::Halted);
        let out = w.extract(&m).expect("output readable");
        assert_eq!(out, reference_edges(w.image()));
    }

    #[test]
    fn edge_map_is_nontrivial() {
        let w = SusanWorkload::new();
        let edges = reference_edges(w.image());
        let nonzero = edges.iter().filter(|&&p| p > 0).count();
        assert!(
            nonzero > 100,
            "test image must produce a real edge map, got {nonzero} edge pixels"
        );
    }

    #[test]
    fn perfect_output_evaluates_perfect() {
        let w = SusanWorkload::new();
        let golden = reference_edges(w.image());
        let f = w.evaluate(&golden, Some(&golden));
        assert!(f.acceptable);
        assert_eq!(f.score, 1.0);
    }

    #[test]
    fn missing_output_scores_zero() {
        let w = SusanWorkload::new();
        let golden = reference_edges(w.image());
        let f = w.evaluate(&golden, None);
        assert!(!f.acceptable);
        assert_eq!(f.score, 0.0);
    }

    #[test]
    fn analysis_tags_a_majority_of_dynamic_susan_instructions() {
        // Paper Table 3: susan runs 91.3% of dynamic instructions at low
        // reliability. Our reduced kernel should also be strongly
        // data-dominated.
        let w = SusanWorkload::new();
        let tags = analyze(w.program());
        let golden = certa_fault::run_campaign(
            &w,
            &tags,
            &CampaignConfig {
                trials: 0,
                ..CampaignConfig::default()
            },
        )
        .golden;
        let frac = tags.dynamic_low_reliability_fraction(&golden.exec_counts);
        assert!(
            frac > 0.4,
            "susan should be data-dominated, got {frac:.2}"
        );
    }

    #[test]
    fn protected_campaign_does_not_fail_catastrophically() {
        let w = SusanWorkload::new();
        let tags = analyze(w.program());
        let r = run_campaign(
            &w,
            &tags,
            &CampaignConfig {
                trials: 12,
                errors: 20,
                protection: Protection::ControlOnly,
                threads: 4,
                ..CampaignConfig::default()
            },
        );
        assert_eq!(r.failure_rate(), 0.0);
    }
}

//! IMA ADPCM encode/decode (MiBench, Jack Jansen's package).
//!
//! The guest converts 16-bit PCM samples to 4-bit ADPCM (4:1 compression)
//! and decodes them back, exactly like the benchmark in the paper: "ADPCM
//! encode/decode have approximately 80% integer ALU operations and fewer
//! than 10% branch operations". The quantizer is implemented with
//! mask/select arithmetic instead of data branches (as DSP implementations
//! do), so the sample datapath is visible to the static analysis as *data*;
//! the step-index chain feeds table lookups and is protected.
//!
//! Fidelity (Table 1): percent similarity of the decoded PCM with errors
//! against the decoded PCM without errors.

use certa_asm::Asm;
use certa_fault::Target;
use certa_fidelity::byte_similarity;
use certa_isa::reg::{S0, S1, S2, S3, S4, S5, S6, S7, T0, T1, T2, T3, T4, T5, T6, T7, T8, T9};
use certa_isa::Program;
use certa_sim::Machine;

use crate::common::{emit_abs, emit_max, emit_min, read_output};
use crate::{Fidelity, FidelityDetail, Workload};

/// Number of PCM samples (must be even). Sized so the golden run is a few
/// hundred thousand dynamic instructions — comparable to the other bench
/// workloads. At the original 256 samples (~34k instructions) the dispatch
/// bench's per-workload tier ratios were noise-dominated: run-to-run
/// jitter alone pushed them against the trajectory gate's 25% band.
pub const NUM_SAMPLES: usize = 2048;
/// Documented acceptability threshold (the paper defines none for ADPCM):
/// at least 90% of output bytes intact.
pub const SIMILARITY_THRESHOLD: f64 = 0.90;

/// The IMA ADPCM index-adjustment table.
pub const INDEX_TABLE: [i32; 16] = [-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8];

/// The IMA ADPCM step-size table (89 entries).
pub const STEP_TABLE: [i32; 89] = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37, 41, 45, 50, 55, 60, 66,
    73, 80, 88, 97, 107, 118, 130, 143, 157, 173, 190, 209, 230, 253, 279, 307, 337, 371, 408,
    449, 494, 544, 598, 658, 724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
    2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894, 6484, 7132, 7845, 8630,
    9493, 10442, 11487, 12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794,
    32767,
];

/// Generates the synthetic speech-like input: two tones under an envelope.
#[must_use]
pub fn test_samples(n: usize) -> Vec<i16> {
    (0..n)
        .map(|i| {
            let t = i as f64;
            let envelope = 0.4 + 0.6 * (t / n as f64 * std::f64::consts::PI).sin();
            let v = 6000.0 * (t * 2.0 * std::f64::consts::PI / 23.0).sin()
                + 3500.0 * (t * 2.0 * std::f64::consts::PI / 7.0 + 1.0).sin();
            (v * envelope) as i16
        })
        .collect()
}

/// Host-side IMA ADPCM encoder (mirrors the guest exactly).
#[must_use]
pub fn reference_encode(samples: &[i16]) -> Vec<u8> {
    let mut valpred = 0i32;
    let mut index = 0i32;
    let mut out = vec![0u8; samples.len().div_ceil(2)];
    for (i, &s) in samples.iter().enumerate() {
        let step = STEP_TABLE[index as usize];
        let mut diff = i32::from(s) - valpred;
        let sign = i32::from(diff < 0);
        diff = diff.abs();
        let mut vpdiff = step >> 3;
        let mut st = step;
        let b2 = i32::from(diff >= st);
        diff -= st * b2;
        vpdiff += st * b2;
        st >>= 1;
        let b1 = i32::from(diff >= st);
        diff -= st * b1;
        vpdiff += st * b1;
        st >>= 1;
        let b0 = i32::from(diff >= st);
        vpdiff += st * b0;
        valpred += vpdiff * (1 - 2 * sign);
        valpred = valpred.clamp(-32768, 32767);
        let delta = ((sign << 3) | (b2 << 2) | (b1 << 1) | b0) as u8;
        index += INDEX_TABLE[(delta & 15) as usize];
        index = index.clamp(0, 88);
        if i % 2 == 0 {
            out[i / 2] = delta;
        } else {
            out[i / 2] |= delta << 4;
        }
    }
    out
}

/// Host-side IMA ADPCM decoder (mirrors the guest exactly).
#[must_use]
pub fn reference_decode(adpcm: &[u8], n: usize) -> Vec<i16> {
    let mut valpred = 0i32;
    let mut index = 0i32;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let byte = adpcm[i / 2];
        let delta = i32::from(if i % 2 == 0 { byte & 15 } else { byte >> 4 });
        let step = STEP_TABLE[index as usize];
        let sign = (delta >> 3) & 1;
        let b2 = (delta >> 2) & 1;
        let b1 = (delta >> 1) & 1;
        let b0 = delta & 1;
        let vpdiff = (step >> 3) + step * b2 + (step >> 1) * b1 + (step >> 2) * b0;
        valpred += vpdiff * (1 - 2 * sign);
        valpred = valpred.clamp(-32768, 32767);
        index += INDEX_TABLE[(delta & 15) as usize];
        index = index.clamp(0, 88);
        out.push(valpred as i16);
    }
    out
}

/// The ADPCM workload.
#[derive(Debug)]
pub struct AdpcmWorkload {
    program: Program,
    samples: Vec<i16>,
    out_len_addr: u32,
    out_addr: u32,
}

impl Default for AdpcmWorkload {
    fn default() -> Self {
        Self::new()
    }
}

/// Emits `S3 = clamp(S3, -32768, 32767)` (valpred clamp), clobbering `T5`,
/// `T7`–`T9` (NOT `T6`, which holds the delta across this helper).
fn emit_valpred_clamp(a: &mut Asm) {
    a.li(T5, 32767);
    emit_min(a, T9, S3, T5, T7, T8);
    a.li(T5, -32768);
    emit_max(a, S3, T9, T5, T7, T8);
}

/// Emits the shared index update: `S4 = clamp(S4 + INDEX_TABLE[T6 & 15],
/// 0, 88)`, with the delta in `T6` and the index table base in `S6`.
/// Clobbers `T5`, `T7`–`T9`.
fn emit_index_update(a: &mut Asm) {
    a.andi(T7, T6, 15);
    a.slli(T7, T7, 2);
    a.add(T7, S6, T7);
    a.lw(T7, 0, T7);
    a.add(S4, S4, T7);
    // clamp low at 0: v & ~(v >> 31)
    a.srai(T8, S4, 31);
    a.nor(T8, T8, certa_isa::reg::ZERO);
    a.and(S4, S4, T8);
    // clamp high at 88
    a.li(T8, 88);
    emit_min(a, T9, S4, T8, T7, T5);
    a.mv(S4, T9);
}

impl AdpcmWorkload {
    /// Builds the workload with the default speech-like input.
    #[must_use]
    pub fn new() -> Self {
        Self::with_samples(&test_samples(NUM_SAMPLES))
    }

    /// Builds the workload with explicit samples (an even count).
    ///
    /// # Panics
    ///
    /// Panics if `samples.len()` is odd or zero.
    #[must_use]
    #[allow(clippy::too_many_lines)]
    pub fn with_samples(samples: &[i16]) -> Self {
        assert!(!samples.is_empty() && samples.len().is_multiple_of(2));
        let n = samples.len();
        let mut a = Asm::new();
        let in_addr = a.data_halves(samples);
        let step_addr = a.data_words(&STEP_TABLE);
        let index_addr = a.data_words(&INDEX_TABLE);
        let packed_addr = a.data_zero(n / 2);
        let out_len_addr = a.data_zero(4);
        let out_addr = a.data_zero(n * 2);

        // ------------------------------------------------------------
        // adpcm_encode (eligible, leaf)
        //   S0=in, S1=packed out, S2=i, S3=valpred, S4=index,
        //   S5=step table, S6=index table, S7=pending low nibble
        // ------------------------------------------------------------
        a.func("adpcm_encode", true);
        a.la(S0, in_addr);
        a.la(S1, packed_addr);
        a.la(S5, step_addr);
        a.la(S6, index_addr);
        a.li(S2, 0);
        a.li(S3, 0);
        a.li(S4, 0);
        a.label("enc_loop");
        // s = in[i]
        a.slli(T0, S2, 1);
        a.add(T0, S0, T0);
        a.lh(T1, 0, T0);
        // step = STEP_TABLE[index & 127]
        a.andi(T2, S4, 127);
        a.slli(T2, T2, 2);
        a.add(T2, S5, T2);
        a.lw(T2, 0, T2);
        // diff = s - valpred; sign = diff < 0; diff = |diff|
        a.sub(T3, T1, S3);
        a.slt(T4, T3, certa_isa::reg::ZERO);
        emit_abs(&mut a, T3, T3, T5);
        // vpdiff = step >> 3
        a.srai(T5, T2, 3);
        // bit 2
        a.slt(T6, T3, T2);
        a.xori(T6, T6, 1);
        a.mul(T7, T2, T6);
        a.sub(T3, T3, T7);
        a.add(T5, T5, T7);
        a.srai(T2, T2, 1);
        // bit 1
        a.slt(T8, T3, T2);
        a.xori(T8, T8, 1);
        a.mul(T7, T2, T8);
        a.sub(T3, T3, T7);
        a.add(T5, T5, T7);
        a.srai(T2, T2, 1);
        // bit 0
        a.slt(T9, T3, T2);
        a.xori(T9, T9, 1);
        a.mul(T7, T2, T9);
        a.add(T5, T5, T7);
        // delta = (sign<<3)|(b2<<2)|(b1<<1)|b0  (kept in T6)
        a.slli(T6, T6, 2);
        a.slli(T8, T8, 1);
        a.or(T6, T6, T8);
        a.or(T6, T6, T9);
        a.slli(T7, T4, 3);
        a.or(T6, T6, T7);
        // valpred += vpdiff * (1 - 2*sign); clamp
        a.slli(T7, T4, 1);
        a.li(T8, 1);
        a.sub(T7, T8, T7);
        a.mul(T7, T5, T7);
        a.add(S3, S3, T7);
        emit_valpred_clamp(&mut a);
        // index update (uses T6 = delta)
        emit_index_update(&mut a);
        // pack two deltas per byte: low nibble first
        a.andi(T7, S2, 1);
        a.bnez(T7, "enc_odd");
        a.mv(S7, T6);
        a.j("enc_next");
        a.label("enc_odd");
        a.slli(T7, T6, 4);
        a.or(T7, S7, T7);
        a.srai(T8, S2, 1);
        a.add(T8, S1, T8);
        a.sb(T7, 0, T8);
        a.label("enc_next");
        a.addi(S2, S2, 1);
        a.slti(T7, S2, n as i32);
        a.bnez(T7, "enc_loop");
        a.ret();
        a.endfunc();

        // ------------------------------------------------------------
        // adpcm_decode (eligible, leaf)
        //   S0=packed in, S1=pcm out, rest as encoder
        // ------------------------------------------------------------
        a.func("adpcm_decode", true);
        a.la(S0, packed_addr);
        a.la(S1, out_addr);
        a.la(S5, step_addr);
        a.la(S6, index_addr);
        a.li(S2, 0);
        a.li(S3, 0);
        a.li(S4, 0);
        a.label("dec_loop");
        // delta = nibble i
        a.srai(T0, S2, 1);
        a.add(T0, S0, T0);
        a.lbu(T1, 0, T0);
        a.andi(T2, S2, 1);
        a.slli(T2, T2, 2); // 0 or 4
        a.srl(T1, T1, T2);
        a.andi(T6, T1, 15); // delta in T6
        // step = STEP_TABLE[index & 127]
        a.andi(T2, S4, 127);
        a.slli(T2, T2, 2);
        a.add(T2, S5, T2);
        a.lw(T2, 0, T2);
        // vpdiff = step>>3 + step*b2 + (step>>1)*b1 + (step>>2)*b0
        a.srai(T5, T2, 3);
        a.srli(T7, T6, 2);
        a.andi(T7, T7, 1);
        a.mul(T7, T2, T7);
        a.add(T5, T5, T7);
        a.srai(T8, T2, 1);
        a.srli(T7, T6, 1);
        a.andi(T7, T7, 1);
        a.mul(T7, T8, T7);
        a.add(T5, T5, T7);
        a.srai(T8, T2, 2);
        a.andi(T7, T6, 1);
        a.mul(T7, T8, T7);
        a.add(T5, T5, T7);
        // sign
        a.srli(T4, T6, 3);
        a.andi(T4, T4, 1);
        a.slli(T7, T4, 1);
        a.li(T8, 1);
        a.sub(T7, T8, T7);
        a.mul(T7, T5, T7);
        a.add(S3, S3, T7);
        emit_valpred_clamp(&mut a);
        emit_index_update(&mut a);
        // out[i] = valpred
        a.slli(T7, S2, 1);
        a.add(T7, S1, T7);
        a.sh(S3, 0, T7);
        a.addi(S2, S2, 1);
        a.slti(T7, S2, n as i32);
        a.bnez(T7, "dec_loop");
        a.ret();
        a.endfunc();

        // main
        a.func("main", false);
        a.call("adpcm_encode");
        a.call("adpcm_decode");
        a.la(T0, out_len_addr);
        a.li(T1, (n * 2) as i32);
        a.sw(T1, 0, T0);
        a.halt();
        a.endfunc();

        AdpcmWorkload {
            program: a.assemble().expect("adpcm guest must assemble"),
            samples: samples.to_vec(),
            out_len_addr,
            out_addr,
        }
    }

    /// The PCM input samples.
    #[must_use]
    pub fn samples(&self) -> &[i16] {
        &self.samples
    }
}

impl Target for AdpcmWorkload {
    fn program(&self) -> &Program {
        &self.program
    }

    fn prepare(&self, _machine: &mut Machine<'_>) {}

    fn extract(&self, machine: &Machine<'_>) -> Option<Vec<u8>> {
        read_output(
            machine,
            self.out_len_addr,
            self.out_addr,
            (self.samples.len() * 2) as u32,
        )
    }
}

impl Workload for AdpcmWorkload {
    fn name(&self) -> &'static str {
        "adpcm"
    }

    fn description(&self) -> &'static str {
        "IMA ADPCM 4:1 speech encode + decode (MiBench adpcm)"
    }

    fn fidelity_measure(&self) -> &'static str {
        "% similarity of decoded PCM with errors vs. decoded PCM without errors"
    }

    fn evaluate(&self, golden: &[u8], trial: Option<&[u8]>) -> Fidelity {
        let Some(out) = trial else {
            return Fidelity {
                score: 0.0,
                acceptable: false,
                detail: FidelityDetail::ByteSimilarity { fraction: 0.0 },
            };
        };
        let fraction = byte_similarity(golden, out);
        Fidelity {
            score: fraction,
            acceptable: fraction >= SIMILARITY_THRESHOLD,
            detail: FidelityDetail::ByteSimilarity { fraction },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certa_core::analyze;
    use certa_fault::{run_campaign, CampaignConfig, Protection};
    use certa_sim::{MachineConfig, Outcome};

    use crate::common::i16s_to_bytes;

    #[test]
    fn reference_round_trip_tracks_the_signal() {
        let samples = test_samples(NUM_SAMPLES);
        let encoded = reference_encode(&samples);
        assert_eq!(encoded.len(), NUM_SAMPLES / 2); // 4:1 over 16-bit
        let decoded = reference_decode(&encoded, NUM_SAMPLES);
        // ADPCM is lossy but must track the waveform closely once the
        // predictor adapts
        let snr = certa_fidelity::snr_db(&samples[32..], &decoded[32..]);
        assert!(snr > 10.0, "ADPCM reconstruction SNR too low: {snr} dB");
    }

    #[test]
    fn step_table_is_monotonic() {
        for w in STEP_TABLE.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(STEP_TABLE.len(), 89);
        assert_eq!(INDEX_TABLE.len(), 16);
    }

    #[test]
    fn guest_matches_reference() {
        let w = AdpcmWorkload::new();
        let mut m = Machine::new(w.program(), &MachineConfig::default());
        let r = m.run_simple();
        assert_eq!(r.outcome, Outcome::Halted);
        let out = w.extract(&m).expect("output readable");
        let expected = i16s_to_bytes(&reference_decode(
            &reference_encode(w.samples()),
            w.samples().len(),
        ));
        assert_eq!(out, expected);
    }

    #[test]
    fn evaluate_thresholds() {
        let w = AdpcmWorkload::new();
        let golden = vec![7u8; 16];
        assert!(w.evaluate(&golden, Some(&golden)).acceptable);
        assert!(!w.evaluate(&golden, None).acceptable);
    }

    #[test]
    fn majority_of_dynamic_instructions_are_low_reliability() {
        // Paper Table 3: ADPCM 93.26% low-reliability.
        let w = AdpcmWorkload::new();
        let tags = analyze(w.program());
        let golden = certa_fault::run_campaign(
            &w,
            &tags,
            &CampaignConfig {
                trials: 0,
                ..CampaignConfig::default()
            },
        )
        .golden;
        let frac = tags.dynamic_low_reliability_fraction(&golden.exec_counts);
        assert!(frac > 0.35, "adpcm should be data-dominated, got {frac:.2}");
    }

    #[test]
    fn protected_campaign_is_stable() {
        let w = AdpcmWorkload::new();
        let tags = analyze(w.program());
        let r = run_campaign(
            &w,
            &tags,
            &CampaignConfig {
                trials: 16,
                errors: 3,
                protection: Protection::ControlOnly,
                threads: 4,
                ..CampaignConfig::default()
            },
        );
        assert_eq!(r.failure_rate(), 0.0);
    }
}

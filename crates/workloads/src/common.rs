//! Shared guest-code emission helpers and output conventions.
//!
//! The branchless helpers matter for the characterization: real media
//! kernels saturate and select with masks rather than branches, so the data
//! path stays *data* in the eyes of the static analysis. Where an algorithm
//! genuinely branches on data (shortest-path relaxation, quantizer range
//! search), the workloads keep the branch and the analysis protects it —
//! exactly the paper's distinction.

use certa_asm::Asm;
use certa_isa::Reg;
use certa_sim::Machine;

/// Emits `rd = |rs|` branchlessly (`(x ^ (x >> 31)) - (x >> 31)`).
///
/// `tmp` must differ from `rs`.
pub fn emit_abs(a: &mut Asm, rd: Reg, rs: Reg, tmp: Reg) {
    debug_assert_ne!(tmp, rs, "tmp must not alias rs");
    a.srai(tmp, rs, 31);
    a.xor(rd, rs, tmp);
    a.sub(rd, rd, tmp);
}

/// Emits `rd = cond != 0 ? if_true : if_false` branchlessly, assuming
/// `cond ∈ {0, 1}`: `rd = if_false + (if_true - if_false) * cond`.
///
/// `tmp` must differ from `cond`, `if_true` and `if_false`; `rd` may alias
/// `if_false` but not `if_true` or `cond`.
pub fn emit_select(a: &mut Asm, rd: Reg, cond: Reg, if_true: Reg, if_false: Reg, tmp: Reg) {
    debug_assert_ne!(tmp, cond);
    debug_assert_ne!(tmp, if_true);
    debug_assert_ne!(tmp, if_false);
    debug_assert_ne!(rd, if_true);
    debug_assert_ne!(rd, cond);
    a.sub(tmp, if_true, if_false);
    a.mul(tmp, tmp, cond);
    a.add(rd, if_false, tmp);
}

/// Emits `rd = clamp(rs, 0, 255)` branchlessly. Uses `t1`, `t2` as scratch;
/// all of `rd`, `t1`, `t2` must be distinct from each other and from `rs`.
pub fn emit_clamp_255(a: &mut Asm, rd: Reg, rs: Reg, t1: Reg, t2: Reg) {
    // clear negatives: v & ~(v >> 31)
    a.srai(t1, rs, 31);
    a.nor(t1, t1, certa_isa::reg::ZERO);
    a.and(rd, rs, t1);
    // saturate above 255: v | ((255 - v) >> 31 mask) then mask to 8 bits
    a.li(t1, 255);
    a.sub(t2, t1, rd); // 255 - v (negative iff v > 255)
    a.srai(t2, t2, 31); // all-ones iff v > 255
    a.or(rd, rd, t2); // v or 0xffffffff
    a.andi(rd, rd, 255);
}

/// Emits `rd = min(rs, rt)` (signed) branchlessly via `slt` + select.
/// `t1`, `t2` are scratch; all five registers must be pairwise distinct.
pub fn emit_min(a: &mut Asm, rd: Reg, rs: Reg, rt: Reg, t1: Reg, t2: Reg) {
    a.slt(t1, rs, rt); // 1 if rs < rt
    emit_select(a, rd, t1, rs, rt, t2);
}

/// Emits `rd = max(rs, rt)` (signed) branchlessly.
/// `t1`, `t2` are scratch; all five registers must be pairwise distinct.
pub fn emit_max(a: &mut Asm, rd: Reg, rs: Reg, rt: Reg, t1: Reg, t2: Reg) {
    a.slt(t1, rt, rs); // 1 if rs > rt
    emit_select(a, rd, t1, rs, rt, t2);
}

/// The standard output header used by every workload: a 4-byte length word
/// at `len_addr`, followed by the payload at `buf_addr`.
///
/// Reads and validates the header, returning the payload. `None` when the
/// recorded length is not exactly `expected_len` (a corrupted run trampled
/// the header) or the region is unreadable.
#[must_use]
pub fn read_output(
    machine: &Machine<'_>,
    len_addr: u32,
    buf_addr: u32,
    expected_len: u32,
) -> Option<Vec<u8>> {
    let len = machine.read_word(len_addr).ok()?;
    if len != expected_len {
        return None;
    }
    machine.read_bytes(buf_addr, len).ok()
}

/// Converts an `i16` slice to little-endian bytes.
#[must_use]
pub fn i16s_to_bytes(samples: &[i16]) -> Vec<u8> {
    let mut out = Vec::with_capacity(samples.len() * 2);
    for s in samples {
        out.extend_from_slice(&s.to_le_bytes());
    }
    out
}

/// Converts little-endian bytes back to `i16` samples. Returns `None` for
/// odd-length input.
#[must_use]
pub fn bytes_to_i16s(bytes: &[u8]) -> Option<Vec<i16>> {
    if !bytes.len().is_multiple_of(2) {
        return None;
    }
    Some(
        bytes
            .chunks_exact(2)
            .map(|c| i16::from_le_bytes([c[0], c[1]]))
            .collect(),
    )
}

/// A deterministic xorshift64* generator for synthetic input generation
/// (keeps `certa-workloads` reproducible without threading `rand` through
/// constructors).
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator; a zero seed is mapped to a fixed non-zero seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed },
        }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certa_asm::Asm;
    use certa_isa::reg::{T0, T1, T2, T3, T4, V0};
    use certa_sim::{Machine, MachineConfig, Outcome};

    fn run_unary(input: i32, build: impl FnOnce(&mut Asm)) -> u32 {
        let mut a = Asm::new();
        a.func("main", false);
        a.li(T0, input);
        build(&mut a);
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(&p, &MachineConfig::default());
        assert_eq!(m.run_simple().outcome, Outcome::Halted);
        m.reg(V0)
    }

    #[test]
    fn abs_is_branchless_and_correct() {
        for v in [-5i32, 0, 7, i32::MIN + 1, i32::MAX] {
            let got = run_unary(v, |a| emit_abs(a, V0, T0, T1));
            assert_eq!(got as i32, v.abs(), "abs({v})");
        }
    }

    #[test]
    fn clamp_255_matrix() {
        for (v, want) in [(-100, 0), (-1, 0), (0, 0), (128, 128), (255, 255), (256, 255), (99999, 255)] {
            let got = run_unary(v, |a| emit_clamp_255(a, V0, T0, T1, T2));
            assert_eq!(got, want as u32, "clamp({v})");
        }
    }

    #[test]
    fn select_both_arms() {
        for (c, want) in [(0i32, 20u32), (1, 10)] {
            let mut a = Asm::new();
            a.func("main", false);
            a.li(T0, c);
            a.li(T1, 10);
            a.li(T2, 20);
            emit_select(&mut a, V0, T0, T1, T2, T3);
            a.halt();
            a.endfunc();
            let p = a.assemble().unwrap();
            let mut m = Machine::new(&p, &MachineConfig::default());
            m.run_simple();
            assert_eq!(m.reg(V0), want);
        }
    }

    #[test]
    fn min_max_branchless() {
        for (x, y) in [(3i32, 9i32), (9, 3), (-5, 5), (7, 7), (-9, -2)] {
            let mut a = Asm::new();
            a.func("main", false);
            a.li(T0, x);
            a.li(T1, y);
            emit_min(&mut a, V0, T0, T1, T2, T3);
            emit_max(&mut a, T4, T0, T1, T2, T3);
            a.halt();
            a.endfunc();
            let p = a.assemble().unwrap();
            let mut m = Machine::new(&p, &MachineConfig::default());
            m.run_simple();
            assert_eq!(m.reg(V0) as i32, x.min(y), "min({x},{y})");
            assert_eq!(m.reg(T4) as i32, x.max(y), "max({x},{y})");
        }
    }

    #[test]
    fn i16_byte_round_trip() {
        let samples = vec![0i16, -1, 32767, -32768, 123];
        let bytes = i16s_to_bytes(&samples);
        assert_eq!(bytes_to_i16s(&bytes).unwrap(), samples);
        assert!(bytes_to_i16s(&[1, 2, 3]).is_none());
    }

    #[test]
    fn xorshift_is_deterministic_and_bounded() {
        let mut a = XorShift64::new(5);
        let mut b = XorShift64::new(5);
        for _ in 0..100 {
            let x = a.next_below(17);
            assert_eq!(x, b.next_below(17));
            assert!(x < 17);
        }
        // zero seed does not lock up
        let mut z = XorShift64::new(0);
        assert_ne!(z.next_u64(), 0);
    }
}

//! # certa-workloads
//!
//! The seven benchmark applications of the IISWC 2006 study (paper §2,
//! Table 1), implemented as guest programs for the `certa` simulator with
//! golden Rust references:
//!
//! | Workload | Paper origin | Fidelity measure |
//! |---|---|---|
//! | [`susan`] | MiBench susan (edge detection) | PSNR of edge map (≥ 10 dB) |
//! | [`mpeg`] | MPEG video encoding | % bad frames by I/P/B SNR loss (≤ 10%) |
//! | [`mcf`] | SPEC 2000 MCF (vehicle scheduler) | schedule optimality |
//! | [`blowfish`] | MiBench blowfish | % bytes recovered after encrypt+decrypt |
//! | [`adpcm`] | MiBench adpcm (IMA) | % similarity of decoded PCM |
//! | [`gsm`] | MiBench gsm (speech codec) | SNR loss of decoded speech (≤ 6 dB) |
//! | [`art`] | SPEC 2000 ART (neural net) | confidence-of-match error |
//!
//! Each module provides a `*Workload` type implementing both
//! [`certa_fault::Target`] (program + I/O staging) and [`Workload`]
//! (metadata + fidelity evaluation). Inputs are synthetic but structured,
//! generated deterministically at construction and baked into the guest's
//! data segment, so every trial of a campaign sees identical input.
//!
//! Guest kernels are written *branch-free over data* where real codecs are
//! data-branch-free too (masks, saturation via bit tricks), so the static
//! analysis can expose their genuine error tolerance; inherently
//! control-dependent parts (loop bounds, table indices, shortest-path
//! comparisons) remain branchy and therefore protected.

pub mod adpcm;
pub mod art;
pub mod blowfish;
pub mod common;
pub mod gsm;
pub mod mcf;
pub mod mpeg;
pub mod susan;

use certa_fault::{Target, TrialStatus};
use certa_fidelity::schedule::ScheduleFidelity;
use certa_fidelity::verdict::{
    classify, CrashCause, RawOutcome, ThresholdProfile, TrialJudgment, TrialVerdict,
};
use certa_sim::{CrashKind, Outcome};

pub use adpcm::AdpcmWorkload;
pub use art::ArtWorkload;
pub use blowfish::BlowfishWorkload;
pub use gsm::GsmWorkload;
pub use mcf::McfWorkload;
pub use mpeg::MpegWorkload;
pub use susan::SusanWorkload;

/// Workload-specific fidelity verdict for one completed trial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FidelityDetail {
    /// PSNR of the faulty output against the golden output (Susan).
    Psnr {
        /// PSNR in dB (infinite when identical).
        db: f64,
    },
    /// Fraction of bad frames (MPEG).
    BadFrames {
        /// Fraction in `[0, 1]`.
        fraction: f64,
    },
    /// Schedule verdict (MCF).
    Schedule(ScheduleFidelity),
    /// Fraction of bytes matching (Blowfish, ADPCM).
    ByteSimilarity {
        /// Fraction in `[0, 1]`.
        fraction: f64,
    },
    /// SNR loss of the decoded signal (GSM).
    SnrLoss {
        /// Loss in dB (0 = no degradation).
        db: f64,
    },
    /// Recognition outcome (ART).
    Confidence {
        /// Relative error in match confidence.
        error: f64,
        /// Whether the object was still correctly recognized.
        recognized: bool,
    },
}

/// Fidelity of one completed trial: a normalized score plus the
/// workload-specific detail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fidelity {
    /// Normalized goodness in `[0, 1]` (1 = indistinguishable from golden).
    pub score: f64,
    /// Whether the output clears the paper's (or documented) fidelity
    /// threshold for this application.
    pub acceptable: bool,
    /// Workload-specific measurement.
    pub detail: FidelityDetail,
}

/// A benchmark application: a fault-injection [`Target`] plus metadata and
/// the application-specific fidelity measure of Table 1.
pub trait Workload: Target {
    /// Short name (e.g. `"susan"`).
    fn name(&self) -> &'static str;

    /// One-line description.
    fn description(&self) -> &'static str;

    /// The fidelity measure as described in the paper's Table 1.
    fn fidelity_measure(&self) -> &'static str;

    /// Evaluates a completed trial's output against the golden output.
    /// `None` (unreadable output region) must yield a zero-score fidelity.
    fn evaluate(&self, golden: &[u8], trial: Option<&[u8]>) -> Fidelity;

    /// This workload's verdict-classification thresholds (the study's
    /// per-application acceptance floors; see
    /// [`ThresholdProfile::for_workload`]).
    fn threshold_profile(&self) -> ThresholdProfile {
        ThresholdProfile::for_workload(self.name())
    }

    /// Classifies one campaign trial record into the six-way verdict
    /// taxonomy (plus the harness bucket): simulator outcomes map onto
    /// [`RawOutcome`]s, and differing outputs are judged by this
    /// workload's own fidelity measure against
    /// [`Self::threshold_profile`]. Harness-errored trials classify as
    /// [`TrialVerdict::HarnessError`] — reported, never dropped.
    fn classify_trial(&self, status: &TrialStatus, golden: &[u8]) -> TrialVerdict {
        let trial = match status {
            TrialStatus::Completed(trial) => trial,
            TrialStatus::HarnessError(_) => return TrialVerdict::HarnessError,
        };
        let outcome = match &trial.outcome {
            Outcome::Halted => RawOutcome::Halted,
            Outcome::Crashed(kind) => RawOutcome::Crashed(match kind {
                CrashKind::MemOutOfBounds { .. } => CrashCause::MemoryAccess,
                CrashKind::Misaligned { .. } => CrashCause::Misaligned,
                CrashKind::PcOutOfRange { .. } => CrashCause::ControlFlow,
            }),
            Outcome::InfiniteRun => RawOutcome::Watchdog,
        };
        classify(
            outcome,
            trial.output.as_deref(),
            golden,
            &self.threshold_profile(),
            |bytes| {
                let fidelity = self.evaluate(golden, Some(bytes));
                TrialJudgment {
                    score: fidelity.score,
                    acceptable: fidelity.acceptable,
                    // The only application-level validity check among the
                    // measures: an MCF schedule that is not a feasible
                    // assignment is rejected outright.
                    detected: matches!(
                        fidelity.detail,
                        FidelityDetail::Schedule(ScheduleFidelity::Incomplete)
                    ),
                }
            },
        )
    }
}

/// Constructs every workload in the study, in the paper's presentation
/// order.
#[must_use]
pub fn all_workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(SusanWorkload::new()),
        Box::new(MpegWorkload::new()),
        Box::new(McfWorkload::new()),
        Box::new(BlowfishWorkload::new()),
        Box::new(GsmWorkload::new()),
        Box::new(ArtWorkload::new()),
        Box::new(AdpcmWorkload::new()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_contains_all_seven() {
        let w = all_workloads();
        assert_eq!(w.len(), 7);
        let names: Vec<&str> = w.iter().map(|w| w.name()).collect();
        assert_eq!(
            names,
            ["susan", "mpeg", "mcf", "blowfish", "gsm", "art", "adpcm"]
        );
    }

    #[test]
    fn every_program_validates_and_has_an_eligible_function() {
        for w in all_workloads() {
            let p = w.program();
            p.validate().unwrap_or_else(|e| panic!("{}: {e}", w.name()));
            assert!(
                p.functions.iter().any(|f| f.eligible),
                "{} must mark at least one eligible function",
                w.name()
            );
            assert!(!w.description().is_empty());
            assert!(!w.fidelity_measure().is_empty());
        }
    }
}

//! ART image recognition (SPEC 2000 `179.art`).
//!
//! An Adaptive-Resonance-style F1/F2 network: the net is first *trained* on
//! two object patterns (bottom-up weights normalized ART-1 style,
//! `w = p / (β + Σp)`), then a thermal image is scanned with a window the
//! size of the learned objects and each window is matched against every
//! category; the best match's confidence, category and position are the
//! result (paper §2).
//!
//! The best-match tracking is implemented with `max.d` and comparison-based
//! *selects* rather than data branches (as the vectorized SPEC code
//! effectively is), so the dot-product datapath is taggable data; loop
//! indices and addressing remain protected.
//!
//! Fidelity (Table 1): error in the confidence of the match; a trial is
//! "recognized" when it reports the golden category (and the paper's Fig. 6
//! plots % images recognized).

use certa_asm::Asm;
use certa_fault::Target;
use certa_fidelity::confidence_error;
use certa_isa::reg::{
    F0, F1, F2, F3, F4, F5, F6, S0, S1, S2, S3, S4, S5, S6, S7, T0, T1, T2, T8, T9,
};
use certa_isa::Program;
use certa_sim::Machine;

use crate::common::{emit_select, read_output, XorShift64};
use crate::{Fidelity, FidelityDetail, Workload};

/// Thermal image side length.
pub const IMG: usize = 16;
/// Learned-object window side length.
pub const WIN: usize = 8;
/// Number of trained categories.
pub const CATEGORIES: usize = 2;
/// Scan positions per axis.
pub const SCAN: usize = IMG - WIN + 1;
/// ART vigilance/normalization offset β.
pub const BETA: f64 = 0.5;
/// Output size: confidence f64 + category u32 + position u32.
pub const OUT_LEN: usize = 16;

/// The two learned object patterns (cross and square outline), row-major
/// `WIN × WIN`, binary intensities.
#[must_use]
pub fn patterns() -> [Vec<f64>; CATEGORIES] {
    let mut cross = vec![0.0f64; WIN * WIN];
    let mut square = vec![0.0f64; WIN * WIN];
    for y in 0..WIN {
        for x in 0..WIN {
            if x == 3 || x == 4 || y == 3 || y == 4 {
                cross[y * WIN + x] = 1.0;
            }
            if x == 0 || x == 7 || y == 0 || y == 7 {
                square[y * WIN + x] = 1.0;
            }
        }
    }
    [cross, square]
}

/// Generates the thermal image: low-level noise with the cross pattern
/// embedded at window position `(3, 4)` (column 3, row 4).
#[must_use]
pub fn test_image(seed: u64) -> Vec<f64> {
    let mut rng = XorShift64::new(seed);
    let mut img = vec![0.0f64; IMG * IMG];
    for v in &mut img {
        *v = 0.05 + (rng.next_below(1000) as f64) / 10000.0; // 0.05..0.15
    }
    let [cross, _] = patterns();
    let (px, py) = (3usize, 4usize);
    for wy in 0..WIN {
        for wx in 0..WIN {
            img[(py + wy) * IMG + (px + wx)] += cross[wy * WIN + wx];
        }
    }
    img
}

/// One scan result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Recognition {
    /// Best match confidence.
    pub confidence: f64,
    /// Winning category index.
    pub category: u32,
    /// Winning window position, encoded `py * SCAN + px`.
    pub position: u32,
}

impl Recognition {
    /// Decodes the guest's 16-byte output record.
    #[must_use]
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != OUT_LEN {
            return None;
        }
        Some(Recognition {
            confidence: f64::from_le_bytes(bytes[0..8].try_into().ok()?),
            category: u32::from_le_bytes(bytes[8..12].try_into().ok()?),
            position: u32::from_le_bytes(bytes[12..16].try_into().ok()?),
        })
    }

    /// Encodes into the guest's output format.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(OUT_LEN);
        out.extend_from_slice(&self.confidence.to_le_bytes());
        out.extend_from_slice(&self.category.to_le_bytes());
        out.extend_from_slice(&self.position.to_le_bytes());
        out
    }
}

/// Host-side reference (mirrors the guest bit-for-bit: IEEE f64 ops in the
/// same order).
#[must_use]
pub fn reference_recognize(image: &[f64]) -> Recognition {
    let pats = patterns();
    // training: normalized bottom-up weights
    let weights: Vec<Vec<f64>> = pats
        .iter()
        .map(|p| {
            let mut sum = 0.0f64;
            for &v in p {
                sum += v;
            }
            let denom = BETA + sum;
            p.iter().map(|&v| v / denom).collect()
        })
        .collect();
    let mut best = Recognition {
        confidence: -1.0e30,
        category: 0,
        position: 0,
    };
    for py in 0..SCAN {
        for px in 0..SCAN {
            for (c, w) in weights.iter().enumerate() {
                let mut dot = 0.0f64;
                let mut wsum = 0.0f64;
                for wy in 0..WIN {
                    for wx in 0..WIN {
                        let v = image[(py + wy) * IMG + (px + wx)];
                        dot += w[wy * WIN + wx] * v;
                        wsum += v;
                    }
                }
                let conf = dot / (BETA + wsum);
                if best.confidence < conf {
                    best = Recognition {
                        confidence: conf,
                        category: c as u32,
                        position: (py * SCAN + px) as u32,
                    };
                }
            }
        }
    }
    best
}

/// The ART workload.
#[derive(Debug)]
pub struct ArtWorkload {
    program: Program,
    image: Vec<f64>,
    out_len_addr: u32,
    out_addr: u32,
}

impl Default for ArtWorkload {
    fn default() -> Self {
        Self::new()
    }
}

impl ArtWorkload {
    /// Builds the workload with the default thermal image.
    #[must_use]
    pub fn new() -> Self {
        Self::with_seed(3)
    }

    /// Builds the workload with a thermal image generated from `seed`.
    #[must_use]
    #[allow(clippy::too_many_lines)]
    pub fn with_seed(seed: u64) -> Self {
        let image = test_image(seed);
        let pats = patterns();
        let mut a = Asm::new();
        let img_addr = a.data_f64s(&image);
        let pat0_addr = a.data_f64s(&pats[0]);
        let _pat1_addr = a.data_f64s(&pats[1]); // contiguous with pat0
        a.align(8);
        let weights_addr = a.data_zero(CATEGORIES * WIN * WIN * 8);
        a.align(8);
        let out_addr = a.data_zero(OUT_LEN); // starts with an f64: 8-aligned
        let out_len_addr = a.data_zero(4);
        let win2 = (WIN * WIN) as i32;

        // ------------------------------------------------------------
        // art_train (eligible): w[c] = p[c] / (BETA + sum(p[c]))
        //   S0=pattern base, S1=weight base, S2=c, S3=k
        // ------------------------------------------------------------
        a.func("art_train", true);
        a.la(S0, pat0_addr);
        a.la(S1, weights_addr);
        a.li(S2, 0);
        a.label("tr_cat");
        // sum
        a.fli(F1, 0.0);
        a.li(S3, 0);
        a.label("tr_sum");
        a.muli(T0, S2, win2);
        a.add(T0, T0, S3);
        a.slli(T0, T0, 3);
        a.add(T0, S0, T0);
        a.fld(F2, 0, T0);
        a.fadd(F1, F1, F2);
        a.addi(S3, S3, 1);
        a.slti(T0, S3, win2);
        a.bnez(T0, "tr_sum");
        // denom = BETA + sum
        a.fli(F3, BETA);
        a.fadd(F1, F1, F3);
        // normalize
        a.li(S3, 0);
        a.label("tr_norm");
        a.muli(T0, S2, win2);
        a.add(T0, T0, S3);
        a.slli(T0, T0, 3);
        a.add(T1, S0, T0);
        a.fld(F2, 0, T1);
        a.fdiv(F2, F2, F1);
        a.add(T1, S1, T0);
        a.fsd(F2, 0, T1);
        a.addi(S3, S3, 1);
        a.slti(T0, S3, win2);
        a.bnez(T0, "tr_norm");
        a.addi(S2, S2, 1);
        a.slti(T0, S2, CATEGORIES as i32);
        a.bnez(T0, "tr_cat");
        a.ret();
        a.endfunc();

        // ------------------------------------------------------------
        // art_scan (eligible):
        //   S0=img, S1=weights, S2=py, S3=px, S4=c, S5=wy, S6=wx,
        //   S7=best_cat, T8=best_pos, T9=pos scratch
        //   F0=best, F1=dot, F2=wsum, F3=v, F4=wgt, F5=conf, F6=BETA
        // ------------------------------------------------------------
        a.func("art_scan", true);
        a.la(S0, img_addr);
        a.la(S1, weights_addr);
        a.fli(F0, -1.0e30);
        a.fli(F6, BETA);
        a.li(S7, 0);
        a.li(T8, 0);
        a.li(S2, 0);
        a.label("sc_py");
        a.li(S3, 0);
        a.label("sc_px");
        a.li(S4, 0);
        a.label("sc_cat");
        a.fli(F1, 0.0);
        a.fli(F2, 0.0);
        a.li(S5, 0);
        a.label("sc_wy");
        a.li(S6, 0);
        a.label("sc_wx");
        // v = img[(py+wy)*IMG + px+wx]
        a.add(T0, S2, S5);
        a.muli(T0, T0, IMG as i32);
        a.add(T0, T0, S3);
        a.add(T0, T0, S6);
        a.slli(T0, T0, 3);
        a.add(T0, S0, T0);
        a.fld(F3, 0, T0);
        // wgt = w[c][wy*WIN+wx]
        a.muli(T1, S5, WIN as i32);
        a.add(T1, T1, S6);
        a.muli(T2, S4, win2);
        a.add(T1, T1, T2);
        a.slli(T1, T1, 3);
        a.add(T1, S1, T1);
        a.fld(F4, 0, T1);
        // dot += wgt*v; wsum += v
        a.fmul(F4, F4, F3);
        a.fadd(F1, F1, F4);
        a.fadd(F2, F2, F3);
        a.addi(S6, S6, 1);
        a.slti(T0, S6, WIN as i32);
        a.bnez(T0, "sc_wx");
        a.addi(S5, S5, 1);
        a.slti(T0, S5, WIN as i32);
        a.bnez(T0, "sc_wy");
        // conf = dot / (BETA + wsum)
        a.fadd(F2, F2, F6);
        a.fdiv(F5, F1, F2);
        // better = best < conf (0/1); best = max(best, conf)
        a.fcmp_lt(T0, F0, F5);
        a.fmax(F0, F0, F5);
        // best_cat = select(better, c, best_cat)
        emit_select(&mut a, T1, T0, S4, S7, T2);
        a.mv(S7, T1);
        // pos = py*SCAN + px; best_pos = select(better, pos, best_pos)
        a.muli(T9, S2, SCAN as i32);
        a.add(T9, T9, S3);
        emit_select(&mut a, T1, T0, T9, T8, T2);
        a.mv(T8, T1);
        a.addi(S4, S4, 1);
        a.slti(T0, S4, CATEGORIES as i32);
        a.bnez(T0, "sc_cat");
        a.addi(S3, S3, 1);
        a.slti(T0, S3, SCAN as i32);
        a.bnez(T0, "sc_px");
        a.addi(S2, S2, 1);
        a.slti(T0, S2, SCAN as i32);
        a.bnez(T0, "sc_py");
        // publish
        a.la(T0, out_addr);
        a.fsd(F0, 0, T0);
        a.sw(S7, 8, T0);
        a.sw(T8, 12, T0);
        a.ret();
        a.endfunc();

        // main (the entry never returns, so no prologue is needed even
        // though it makes calls)
        a.func("main", false);
        a.call("art_train");
        a.call("art_scan");
        a.la(T0, out_len_addr);
        a.li(T1, OUT_LEN as i32);
        a.sw(T1, 0, T0);
        a.halt();
        a.endfunc();

        ArtWorkload {
            program: a.assemble().expect("art guest must assemble"),
            image,
            out_len_addr,
            out_addr,
        }
    }

    /// The thermal image baked into the guest.
    #[must_use]
    pub fn image(&self) -> &[f64] {
        &self.image
    }
}

impl Target for ArtWorkload {
    fn program(&self) -> &Program {
        &self.program
    }

    fn prepare(&self, _machine: &mut Machine<'_>) {}

    fn extract(&self, machine: &Machine<'_>) -> Option<Vec<u8>> {
        read_output(machine, self.out_len_addr, self.out_addr, OUT_LEN as u32)
    }
}

impl Workload for ArtWorkload {
    fn name(&self) -> &'static str {
        "art"
    }

    fn description(&self) -> &'static str {
        "ART-style neural net: train two objects, scan a thermal image for the best match"
    }

    fn fidelity_measure(&self) -> &'static str {
        "error in confidence of match; recognized = correct category reported"
    }

    fn evaluate(&self, golden: &[u8], trial: Option<&[u8]>) -> Fidelity {
        let failed = Fidelity {
            score: 0.0,
            acceptable: false,
            detail: FidelityDetail::Confidence {
                error: f64::INFINITY,
                recognized: false,
            },
        };
        let Some(g) = Recognition::decode(golden) else {
            return failed;
        };
        let Some(out) = trial else { return failed };
        let Some(t) = Recognition::decode(out) else {
            return failed;
        };
        let error = confidence_error(g.confidence, t.confidence);
        let recognized = t.category == g.category && error.is_finite() && error < 0.5;
        Fidelity {
            score: if recognized {
                (1.0 - error).clamp(0.0, 1.0)
            } else {
                0.0
            },
            acceptable: recognized,
            detail: FidelityDetail::Confidence { error, recognized },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certa_core::analyze;
    use certa_fault::{run_campaign, CampaignConfig, Protection};
    use certa_sim::{MachineConfig, Outcome};

    #[test]
    fn reference_finds_the_embedded_cross() {
        let r = reference_recognize(&test_image(3));
        assert_eq!(r.category, 0, "cross is category 0");
        assert_eq!(r.position, 4 * SCAN as u32 + 3, "embedded at (3, 4)");
        assert!(r.confidence > 0.0);
    }

    #[test]
    fn recognition_record_round_trips() {
        let r = Recognition {
            confidence: 0.75,
            category: 1,
            position: 42,
        };
        assert_eq!(Recognition::decode(&r.encode()), Some(r));
        assert!(Recognition::decode(&[0u8; 3]).is_none());
    }

    #[test]
    fn guest_matches_reference_bit_for_bit() {
        let w = ArtWorkload::new();
        let mut m = Machine::new(w.program(), &MachineConfig::default());
        let r = m.run_simple();
        assert_eq!(r.outcome, Outcome::Halted);
        let out = w.extract(&m).expect("output readable");
        let expected = reference_recognize(w.image()).encode();
        assert_eq!(out, expected);
    }

    #[test]
    fn evaluate_judges_recognition() {
        let w = ArtWorkload::new();
        let golden = reference_recognize(w.image()).encode();
        let perfect = w.evaluate(&golden, Some(&golden));
        assert!(perfect.acceptable);
        // wrong category: not recognized
        let mut wrong = Recognition::decode(&golden).unwrap();
        wrong.category ^= 1;
        let f = w.evaluate(&golden, Some(&wrong.encode()));
        assert!(!f.acceptable);
        // distorted confidence beyond 50%: not recognized
        let mut distorted = Recognition::decode(&golden).unwrap();
        distorted.confidence *= 3.0;
        assert!(!w.evaluate(&golden, Some(&distorted.encode())).acceptable);
        assert!(!w.evaluate(&golden, None).acceptable);
    }

    #[test]
    fn protected_campaign_is_stable() {
        let w = ArtWorkload::new();
        let tags = analyze(w.program());
        let r = run_campaign(
            &w,
            &tags,
            &CampaignConfig {
                trials: 12,
                errors: 2,
                protection: Protection::ControlOnly,
                threads: 4,
                ..CampaignConfig::default()
            },
        );
        assert_eq!(r.failure_rate(), 0.0);
    }
}

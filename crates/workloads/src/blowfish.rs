//! Blowfish encryption (MiBench / Schneier 1993).
//!
//! A **complete** Blowfish: the 18-entry P-array and four 256-entry S-boxes
//! are initialized from the hexadecimal digits of π (computed at first use
//! with the Bailey–Borwein–Plouffe digit-extraction algorithm — no
//! hard-coded tables), the full key schedule (521 chained block
//! encryptions) runs **inside the guest**, and the guest then encrypts and
//! decrypts the input text through the 16-round Feistel network.
//!
//! Fidelity (Table 1): percentage of bytes of the decrypt(encrypt(input))
//! round trip that match the original plaintext.
//!
//! Byte-order convention: blocks are handled as pairs of little-endian
//! `u32` halves (the guest memory is little-endian); for 16-byte keys the
//! key schedule XORs the four *big-endian* key words cyclically, which is
//! exactly the standard algorithm's behaviour. The classic all-zero-key
//! test vector `E(0,0) = (0x4EF99745, 0x6198DD78)` is asserted in the test
//! suite, validating both the π tables and the network.

use std::sync::OnceLock;

use certa_asm::Asm;
use certa_fault::Target;
use certa_fidelity::byte_similarity;
use certa_isa::reg::{A0, A1, S0, S1, S2, S3, S4, S6, S7, T0, T1, T2, T3, T7, T8, T9, V0, V1};
use certa_isa::Program;
use certa_sim::Machine;

use crate::common::read_output;
use crate::{Fidelity, FidelityDetail, Workload};

/// Plaintext length in bytes (8 blocks).
pub const TEXT_LEN: usize = 64;
/// Documented acceptability threshold (the paper defines none for
/// Blowfish): at least 90% of bytes recovered.
pub const SIMILARITY_THRESHOLD: f64 = 0.90;

// ---------------------------------------------------------------------
// π hex digits via Bailey–Borwein–Plouffe digit extraction
// ---------------------------------------------------------------------

fn modpow(mut base: u64, mut exp: u64, m: u64) -> u64 {
    if m == 1 {
        return 0;
    }
    let mut result = 1u64;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            result = result * base % m;
        }
        base = base * base % m;
        exp >>= 1;
    }
    result
}

/// `frac( Σ_{k=0}^{d} 16^{d-k} mod (8k+j) / (8k+j) + tail )`
fn bbp_series(j: u64, d: u64) -> f64 {
    let mut s = 0.0f64;
    for k in 0..=d {
        let m = 8 * k + j;
        s += modpow(16, d - k, m) as f64 / m as f64;
        s = s.fract();
    }
    let mut t = 0.0f64;
    let mut scale = 1.0 / 16.0;
    for k in (d + 1)..=(d + 14) {
        t += scale / (8 * k + j) as f64;
        scale /= 16.0;
    }
    (s + t).fract()
}

fn pi_frac_at(d: u64) -> f64 {
    let x = 4.0 * bbp_series(1, d) - 2.0 * bbp_series(4, d) - bbp_series(5, d) - bbp_series(6, d);
    let mut f = x.fract();
    if f < 0.0 {
        f += 1.0;
    }
    f
}

/// The first `count` hexadecimal digits of the fractional part of π
/// (π = 3.243F6A88…, so the sequence starts 2, 4, 3, F, …).
#[must_use]
pub fn pi_hex_digits(count: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(count);
    let per_extraction = 8; // well within f64 precision
    let mut d = 0u64;
    while out.len() < count {
        let mut frac = pi_frac_at(d);
        for _ in 0..per_extraction {
            frac *= 16.0;
            let digit = frac.floor();
            out.push(digit as u8);
            frac -= digit;
            if out.len() == count {
                break;
            }
        }
        d += per_extraction as u64;
    }
    out
}

/// Number of 32-bit words in the initialization tables (P + 4 S-boxes).
const INIT_WORDS: usize = 18 + 4 * 256;

/// The Blowfish initialization tables derived from π, computed once.
fn init_tables() -> &'static Vec<u32> {
    static TABLES: OnceLock<Vec<u32>> = OnceLock::new();
    TABLES.get_or_init(|| {
        let digits = pi_hex_digits(INIT_WORDS * 8);
        digits
            .chunks_exact(8)
            .map(|c| c.iter().fold(0u32, |acc, &d| (acc << 4) | u32::from(d)))
            .collect()
    })
}

// ---------------------------------------------------------------------
// host reference implementation
// ---------------------------------------------------------------------

/// Host-side Blowfish reference (mirrors the guest bit-for-bit).
#[derive(Clone)]
pub struct BlowfishRef {
    p: [u32; 18],
    s: Vec<u32>, // 4 × 256, flat
}

impl std::fmt::Debug for BlowfishRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlowfishRef").field("p0", &self.p[0]).finish()
    }
}

impl BlowfishRef {
    /// Runs the key schedule for a 16-byte key.
    #[must_use]
    pub fn new(key: &[u8; 16]) -> Self {
        let tables = init_tables();
        let mut p = [0u32; 18];
        p.copy_from_slice(&tables[0..18]);
        let mut s = tables[18..].to_vec();
        // Standard cyclic key mixing: for a 16-byte key this reduces to the
        // four big-endian key words indexed by i mod 4.
        let kw: Vec<u32> = key
            .chunks_exact(4)
            .map(|c| u32::from_be_bytes(c.try_into().expect("4-byte chunk")))
            .collect();
        for (i, pi) in p.iter_mut().enumerate() {
            *pi ^= kw[i % 4];
        }
        let mut bf = BlowfishRef { p, s: Vec::new() };
        bf.s = s.clone();
        let (mut l, mut r) = (0u32, 0u32);
        for i in (0..18).step_by(2) {
            let (nl, nr) = bf.encrypt_block(l, r);
            bf.p[i] = nl;
            bf.p[i + 1] = nr;
            l = nl;
            r = nr;
        }
        for i in (0..1024).step_by(2) {
            let (nl, nr) = bf.encrypt_block(l, r);
            bf.s[i] = nl;
            bf.s[i + 1] = nr;
            l = nl;
            r = nr;
        }
        s.clear();
        bf
    }

    fn f(&self, x: u32) -> u32 {
        let a = (x >> 24) as usize;
        let b = ((x >> 16) & 0xff) as usize;
        let c = ((x >> 8) & 0xff) as usize;
        let d = (x & 0xff) as usize;
        (self.s[a].wrapping_add(self.s[256 + b]) ^ self.s[512 + c]).wrapping_add(self.s[768 + d])
    }

    /// Encrypts one block of two 32-bit halves.
    #[must_use]
    pub fn encrypt_block(&self, mut xl: u32, mut xr: u32) -> (u32, u32) {
        for i in 0..16 {
            xl ^= self.p[i];
            xr ^= self.f(xl);
            std::mem::swap(&mut xl, &mut xr);
        }
        std::mem::swap(&mut xl, &mut xr);
        xr ^= self.p[16];
        xl ^= self.p[17];
        (xl, xr)
    }

    /// Decrypts one block of two 32-bit halves.
    #[must_use]
    pub fn decrypt_block(&self, mut xl: u32, mut xr: u32) -> (u32, u32) {
        for i in (2..18).rev() {
            xl ^= self.p[i];
            xr ^= self.f(xl);
            std::mem::swap(&mut xl, &mut xr);
        }
        std::mem::swap(&mut xl, &mut xr);
        xr ^= self.p[1];
        xl ^= self.p[0];
        (xl, xr)
    }

    /// Encrypts then decrypts `text` (length a multiple of 8), as the guest
    /// does; returns the round-tripped bytes.
    ///
    /// # Panics
    ///
    /// Panics if `text.len()` is not a multiple of 8.
    #[must_use]
    pub fn round_trip(&self, text: &[u8]) -> Vec<u8> {
        assert_eq!(text.len() % 8, 0, "text must be whole blocks");
        let mut out = Vec::with_capacity(text.len());
        for block in text.chunks_exact(8) {
            let l = u32::from_le_bytes(block[0..4].try_into().expect("4 bytes"));
            let r = u32::from_le_bytes(block[4..8].try_into().expect("4 bytes"));
            let (cl, cr) = self.encrypt_block(l, r);
            let (dl, dr) = self.decrypt_block(cl, cr);
            out.extend_from_slice(&dl.to_le_bytes());
            out.extend_from_slice(&dr.to_le_bytes());
        }
        out
    }
}

// ---------------------------------------------------------------------
// the guest
// ---------------------------------------------------------------------

/// Emits the Blowfish F function: `T7 = F(A0)`, clobbering `T1`–`T3`.
/// Assumes `S7` holds the working S-box base.
fn emit_f(a: &mut Asm) {
    // S0[x >> 24]
    a.srli(T1, A0, 24);
    a.slli(T1, T1, 2);
    a.add(T1, T1, S7);
    a.lw(T2, 0, T1);
    // + S1[(x >> 16) & 0xff]
    a.srli(T1, A0, 16);
    a.andi(T1, T1, 255);
    a.slli(T1, T1, 2);
    a.add(T1, T1, S7);
    a.lw(T3, 1024, T1);
    a.add(T2, T2, T3);
    // ^ S2[(x >> 8) & 0xff]
    a.srli(T1, A0, 8);
    a.andi(T1, T1, 255);
    a.slli(T1, T1, 2);
    a.add(T1, T1, S7);
    a.lw(T3, 2048, T1);
    a.xor(T2, T2, T3);
    // + S3[x & 0xff]
    a.andi(T1, A0, 255);
    a.slli(T1, T1, 2);
    a.add(T1, T1, S7);
    a.lw(T3, 3072, T1);
    a.add(T7, T2, T3);
}

fn emit_swap_halves(a: &mut Asm) {
    a.mv(T0, A0);
    a.mv(A0, A1);
    a.mv(A1, T0);
}

/// The Blowfish workload.
#[derive(Debug)]
pub struct BlowfishWorkload {
    program: Program,
    plaintext: Vec<u8>,
    out_len_addr: u32,
    out_addr: u32,
}

impl Default for BlowfishWorkload {
    fn default() -> Self {
        Self::new()
    }
}

impl BlowfishWorkload {
    /// Builds the workload with the default plaintext and key.
    #[must_use]
    pub fn new() -> Self {
        Self::with_text(
            b"The quick brown fox jumps over the lazy dog! CERTA @ IISWC 2006!",
            b"CERTA-BLOWFISH16",
        )
    }

    /// Builds the workload with an explicit 64-byte plaintext and 16-byte
    /// key.
    #[must_use]
    #[allow(clippy::too_many_lines)]
    pub fn with_text(text: &[u8; TEXT_LEN], key: &[u8; 16]) -> Self {
        let tables = init_tables();
        let key_words: Vec<i32> = key
            .chunks_exact(4)
            .map(|c| u32::from_be_bytes(c.try_into().expect("4-byte chunk")) as i32)
            .collect();

        let mut a = Asm::new();
        let p_init = a.data_words(&tables[0..18].iter().map(|&w| w as i32).collect::<Vec<_>>());
        let s_init = a.data_words(&tables[18..].iter().map(|&w| w as i32).collect::<Vec<_>>());
        let key_addr = a.data_words(&key_words);
        let input_addr = a.data_bytes(text);
        a.align(4);
        let p_work = a.data_zero(18 * 4);
        let s_work = a.data_zero(1024 * 4);
        let cipher = a.data_zero(TEXT_LEN);
        let out_len_addr = a.data_zero(4);
        let out_addr = a.data_zero(TEXT_LEN);

        // ------------------------------------------------------------
        // bf_encrypt: (A0, A1) -> (V0, V1); S6 = P base, S7 = S base.
        // Leaf; clobbers T0-T3, T7, T8.
        // ------------------------------------------------------------
        a.func("bf_encrypt", true);
        a.li(T8, 0);
        a.label("bfe_round");
        a.slli(T0, T8, 2);
        a.add(T0, T0, S6);
        a.lw(T0, 0, T0); // P[i]
        a.xor(A0, A0, T0);
        emit_f(&mut a);
        a.xor(A1, A1, T7);
        emit_swap_halves(&mut a);
        a.addi(T8, T8, 1);
        a.slti(T0, T8, 16);
        a.bnez(T0, "bfe_round");
        emit_swap_halves(&mut a);
        a.lw(T0, 64, S6); // P[16]
        a.xor(A1, A1, T0);
        a.lw(T0, 68, S6); // P[17]
        a.xor(A0, A0, T0);
        a.mv(V0, A0);
        a.mv(V1, A1);
        a.ret();
        a.endfunc();

        // ------------------------------------------------------------
        // bf_decrypt: (A0, A1) -> (V0, V1); reversed P order.
        // ------------------------------------------------------------
        a.func("bf_decrypt", true);
        a.li(T8, 17);
        a.label("bfd_round");
        a.slli(T0, T8, 2);
        a.add(T0, T0, S6);
        a.lw(T0, 0, T0); // P[i]
        a.xor(A0, A0, T0);
        emit_f(&mut a);
        a.xor(A1, A1, T7);
        emit_swap_halves(&mut a);
        a.addi(T8, T8, -1);
        a.slti(T0, T8, 2);
        a.beqz(T0, "bfd_round");
        emit_swap_halves(&mut a);
        a.lw(T0, 4, S6); // P[1]
        a.xor(A1, A1, T0);
        a.lw(T0, 0, S6); // P[0]
        a.xor(A0, A0, T0);
        a.mv(V0, A0);
        a.mv(V1, A1);
        a.ret();
        a.endfunc();

        // ------------------------------------------------------------
        // bf_keyschedule: copies the π tables into the working arrays,
        // mixes the key, and runs the 521 chained encryptions.
        // ------------------------------------------------------------
        a.func("bf_keyschedule", true);
        a.prologue(&[], 0);
        // copy P
        a.la(T9, p_init);
        a.li(S0, 0);
        a.label("ks_copy_p");
        a.slli(T0, S0, 2);
        a.add(T1, T9, T0);
        a.lw(T2, 0, T1);
        a.add(T1, S6, T0);
        a.sw(T2, 0, T1);
        a.addi(S0, S0, 1);
        a.slti(T0, S0, 18);
        a.bnez(T0, "ks_copy_p");
        // copy S
        a.la(T9, s_init);
        a.li(S0, 0);
        a.label("ks_copy_s");
        a.slli(T0, S0, 2);
        a.add(T1, T9, T0);
        a.lw(T2, 0, T1);
        a.add(T1, S7, T0);
        a.sw(T2, 0, T1);
        a.addi(S0, S0, 1);
        a.slti(T0, S0, 1024);
        a.bnez(T0, "ks_copy_s");
        // P[i] ^= key_words[i & 3]
        a.la(T9, key_addr);
        a.li(S0, 0);
        a.label("ks_key");
        a.andi(T1, S0, 3);
        a.slli(T1, T1, 2);
        a.add(T1, T9, T1);
        a.lw(T2, 0, T1); // key word
        a.slli(T0, S0, 2);
        a.add(T0, S6, T0);
        a.lw(T3, 0, T0);
        a.xor(T3, T3, T2);
        a.sw(T3, 0, T0);
        a.addi(S0, S0, 1);
        a.slti(T0, S0, 18);
        a.bnez(T0, "ks_key");
        // chain through P
        a.li(S2, 0); // l
        a.li(S3, 0); // r
        a.li(S4, 0); // i
        a.label("ks_chain_p");
        a.mv(A0, S2);
        a.mv(A1, S3);
        a.call("bf_encrypt");
        a.mv(S2, V0);
        a.mv(S3, V1);
        a.slli(T0, S4, 2);
        a.add(T0, S6, T0);
        a.sw(S2, 0, T0);
        a.sw(S3, 4, T0);
        a.addi(S4, S4, 2);
        a.slti(T0, S4, 18);
        a.bnez(T0, "ks_chain_p");
        // chain through the flat S array
        a.li(S4, 0);
        a.label("ks_chain_s");
        a.mv(A0, S2);
        a.mv(A1, S3);
        a.call("bf_encrypt");
        a.mv(S2, V0);
        a.mv(S3, V1);
        a.slli(T0, S4, 2);
        a.add(T0, S7, T0);
        a.sw(S2, 0, T0);
        a.sw(S3, 4, T0);
        a.addi(S4, S4, 2);
        a.slti(T0, S4, 1024);
        a.bnez(T0, "ks_chain_s");
        a.epilogue(&[], 0);
        a.endfunc();

        // ------------------------------------------------------------
        // bf_run: key schedule, encrypt 8 blocks, decrypt them back.
        // ------------------------------------------------------------
        let blocks = (TEXT_LEN / 8) as i32;
        a.func("bf_run", true);
        a.prologue(&[], 0);
        a.la(S6, p_work);
        a.la(S7, s_work);
        a.call("bf_keyschedule");
        // encrypt input -> cipher
        a.la(S0, input_addr);
        a.la(S1, cipher);
        a.li(S4, 0);
        a.label("run_enc");
        a.slli(T0, S4, 3);
        a.add(T1, S0, T0);
        a.lw(A0, 0, T1);
        a.lw(A1, 4, T1);
        a.call("bf_encrypt");
        a.slli(T0, S4, 3);
        a.add(T1, S1, T0);
        a.sw(V0, 0, T1);
        a.sw(V1, 4, T1);
        a.addi(S4, S4, 1);
        a.slti(T0, S4, blocks);
        a.bnez(T0, "run_enc");
        // decrypt cipher -> out
        a.la(S0, cipher);
        a.la(S1, out_addr);
        a.li(S4, 0);
        a.label("run_dec");
        a.slli(T0, S4, 3);
        a.add(T1, S0, T0);
        a.lw(A0, 0, T1);
        a.lw(A1, 4, T1);
        a.call("bf_decrypt");
        a.slli(T0, S4, 3);
        a.add(T1, S1, T0);
        a.sw(V0, 0, T1);
        a.sw(V1, 4, T1);
        a.addi(S4, S4, 1);
        a.slti(T0, S4, blocks);
        a.bnez(T0, "run_dec");
        a.epilogue(&[], 0);
        a.endfunc();

        // ------------------------------------------------------------
        // main (not eligible)
        // ------------------------------------------------------------
        a.func("main", false);
        a.call("bf_run");
        a.la(T0, out_len_addr);
        a.li(T1, TEXT_LEN as i32);
        a.sw(T1, 0, T0);
        a.halt();
        a.endfunc();

        BlowfishWorkload {
            program: a.assemble().expect("blowfish guest must assemble"),
            plaintext: text.to_vec(),
            out_len_addr,
            out_addr,
        }
    }

    /// The plaintext baked into the guest.
    #[must_use]
    pub fn plaintext(&self) -> &[u8] {
        &self.plaintext
    }
}

impl Target for BlowfishWorkload {
    fn program(&self) -> &Program {
        &self.program
    }

    fn prepare(&self, _machine: &mut Machine<'_>) {}

    fn extract(&self, machine: &Machine<'_>) -> Option<Vec<u8>> {
        read_output(machine, self.out_len_addr, self.out_addr, TEXT_LEN as u32)
    }
}

impl Workload for BlowfishWorkload {
    fn name(&self) -> &'static str {
        "blowfish"
    }

    fn description(&self) -> &'static str {
        "Full Blowfish (16-round Feistel, in-guest key schedule) encrypt+decrypt round trip"
    }

    fn fidelity_measure(&self) -> &'static str {
        "% bytes of the round-tripped text matching the original plaintext"
    }

    fn evaluate(&self, golden: &[u8], trial: Option<&[u8]>) -> Fidelity {
        let Some(out) = trial else {
            return Fidelity {
                score: 0.0,
                acceptable: false,
                detail: FidelityDetail::ByteSimilarity { fraction: 0.0 },
            };
        };
        let fraction = byte_similarity(golden, out);
        Fidelity {
            score: fraction,
            acceptable: fraction >= SIMILARITY_THRESHOLD,
            detail: FidelityDetail::ByteSimilarity { fraction },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certa_core::analyze;
    use certa_fault::{run_campaign, CampaignConfig, Protection};
    use certa_sim::{MachineConfig, Outcome};

    #[test]
    fn pi_digits_start_correctly() {
        // π = 3.243F6A8885A308D3…
        let digits = pi_hex_digits(16);
        assert_eq!(
            digits,
            vec![0x2, 0x4, 0x3, 0xF, 0x6, 0xA, 0x8, 0x8, 0x8, 0x5, 0xA, 0x3, 0x0, 0x8, 0xD, 0x3]
        );
    }

    #[test]
    fn p_array_matches_published_constants() {
        let t = init_tables();
        assert_eq!(t[0], 0x243F_6A88);
        assert_eq!(t[1], 0x85A3_08D3);
        assert_eq!(t[2], 0x1319_8A2E);
        assert_eq!(t[3], 0x0370_7344);
        assert_eq!(t[17], 0x8979_FB1B);
        // first S-box word (published blowfish S[0][0])
        assert_eq!(t[18], 0xD131_0BA6);
    }

    #[test]
    fn zero_key_test_vector() {
        let bf = BlowfishRef::new(&[0u8; 16]);
        assert_eq!(bf.encrypt_block(0, 0), (0x4EF9_9745, 0x6198_DD78));
    }

    #[test]
    fn reference_round_trip_recovers_plaintext() {
        let bf = BlowfishRef::new(b"CERTA-BLOWFISH16");
        let text = b"0123456789abcdef";
        assert_eq!(bf.round_trip(text), text.to_vec());
        // and encryption is not the identity
        let (cl, cr) = bf.encrypt_block(0x3231_3030, 0x3635_3433);
        assert_ne!((cl, cr), (0x3231_3030, 0x3635_3433));
    }

    #[test]
    fn decrypt_inverts_encrypt_on_many_blocks() {
        let bf = BlowfishRef::new(b"0123456789ABCDEF");
        let mut x = (1u32, 2u32);
        for _ in 0..50 {
            let c = bf.encrypt_block(x.0, x.1);
            assert_eq!(bf.decrypt_block(c.0, c.1), x);
            x = c;
        }
    }

    #[test]
    fn guest_round_trips_the_plaintext() {
        let w = BlowfishWorkload::new();
        let mut m = Machine::new(w.program(), &MachineConfig::default());
        let r = m.run_simple();
        assert_eq!(r.outcome, Outcome::Halted);
        let out = w.extract(&m).expect("output readable");
        assert_eq!(out, w.plaintext(), "decrypt(encrypt(x)) must equal x");
    }

    #[test]
    fn evaluate_thresholds() {
        let w = BlowfishWorkload::new();
        let golden = w.plaintext().to_vec();
        assert!(w.evaluate(&golden, Some(&golden)).acceptable);
        let mut corrupted = golden.clone();
        for b in corrupted.iter_mut().take(32) {
            *b ^= 0xff;
        }
        let f = w.evaluate(&golden, Some(&corrupted));
        assert!(!f.acceptable);
        assert!((f.score - 0.5).abs() < 1e-12);
        assert_eq!(w.evaluate(&golden, None).score, 0.0);
    }

    #[test]
    fn protected_campaign_is_stable() {
        let w = BlowfishWorkload::new();
        let tags = analyze(w.program());
        let r = run_campaign(
            &w,
            &tags,
            &CampaignConfig {
                trials: 8,
                errors: 2,
                protection: Protection::ControlOnly,
                threads: 4,
                ..CampaignConfig::default()
            },
        );
        assert_eq!(r.failure_rate(), 0.0);
    }
}

//! MCF single-depot vehicle scheduler (SPEC 2000 `181.mcf`).
//!
//! MCF schedules vehicles for timetabled trips: every trip needs a vehicle,
//! a vehicle may serve a later trip if it can dead-head there in time, and
//! each fresh vehicle costs a pull-out fee. SPEC's solver is a network
//! simplex; this workload formulates the identical problem as a min-cost
//! flow and solves it with **successive shortest paths** (Bellman–Ford on
//! the residual network) — a standard exact algorithm for the same network
//! flow problem, substituted per `DESIGN.md`.
//!
//! The solver is almost entirely *control*: shortest-path relaxations are
//! comparisons, which is why the paper's Table 3 reports MCF as the least
//! taggable application (8.9% low-reliability instructions).
//!
//! Fidelity (Table 1/§5.2): the schedule is compared against the optimum;
//! corrupted runs produce schedules that are "not just inoptimal, but
//! incomplete" — captured by
//! [`certa_fidelity::schedule::ScheduleFidelity`].

use certa_asm::Asm;
use certa_fault::Target;
use certa_fidelity::schedule::{judge, Schedule, ScheduleFidelity};
use certa_isa::reg::{S0, S1, S2, S3, S4, S5, S6, S7, T0, T1, T2, T3, T4, T5, T6, T7, T8, T9};
use certa_isa::Program;
use certa_sim::Machine;

use crate::common::read_output;
use crate::{Fidelity, FidelityDetail, Workload};

/// Number of timetabled trips.
pub const TRIPS: usize = 12;
/// Pull-out cost of deploying one vehicle.
pub const PULLOUT: i32 = 50;
/// Minimum dead-head gap between linked trips.
pub const GAP: i32 = 5;
/// "Infinity" for Bellman–Ford distances.
const INF: i32 = 1 << 28;
/// Output bytes: i64 cost + one u32 per trip.
pub const OUT_LEN: usize = 8 + TRIPS * 4;

/// The deterministic trip timetable: `(start, end)` per trip.
#[must_use]
pub fn trips() -> Vec<(i32, i32)> {
    (0..TRIPS as i32)
        .map(|i| {
            let start = 10 * i + (i % 3) * 4;
            let dur = 18 + (i * 7) % 9;
            (start, start + dur)
        })
        .collect()
}

/// Whether a vehicle finishing trip `i` can serve trip `j`.
fn compatible(t: &[(i32, i32)], i: usize, j: usize) -> bool {
    t[i].1 + GAP <= t[j].0
}

/// Dead-head link cost from trip `i` to trip `j`.
fn link_cost(t: &[(i32, i32)], i: usize, j: usize) -> i32 {
    8 + (t[j].0 - t[i].1) / 4
}

#[derive(Debug, Clone)]
struct Network {
    /// Flat edge arrays; edge `2k+1` is the residual twin of edge `2k`.
    from: Vec<i32>,
    to: Vec<i32>,
    cost: Vec<i32>,
    cap: Vec<i32>,
    /// Links: `(forward edge index, i, j, original cost)`.
    links: Vec<(usize, usize, usize, i32)>,
    nodes: usize,
}

fn build_network() -> Network {
    let t = trips();
    let nodes = 2 + 2 * TRIPS;
    let mut n = Network {
        from: Vec::new(),
        to: Vec::new(),
        cost: Vec::new(),
        cap: Vec::new(),
        links: Vec::new(),
        nodes,
    };
    let add = |n: &mut Network, from: usize, to: usize, cost: i32| -> usize {
        let e = n.from.len();
        n.from.push(from as i32);
        n.to.push(to as i32);
        n.cost.push(cost);
        n.cap.push(1);
        n.from.push(to as i32);
        n.to.push(from as i32);
        n.cost.push(-cost);
        n.cap.push(0);
        e
    };
    for i in 0..TRIPS {
        add(&mut n, 0, 2 + i, 0); // source -> out_i
    }
    for j in 0..TRIPS {
        add(&mut n, 2 + TRIPS + j, 1, 0); // in_j -> sink
    }
    for i in 0..TRIPS {
        for j in 0..TRIPS {
            if i != j && compatible(&t, i, j) {
                let c = link_cost(&t, i, j);
                let e = add(&mut n, 2 + i, 2 + TRIPS + j, c - PULLOUT);
                n.links.push((e, i, j, c));
            }
        }
    }
    n
}

/// Host-side reference solver (mirrors the guest's algorithm exactly,
/// including iteration order and tie-breaking).
#[must_use]
pub fn reference_schedule() -> Schedule {
    let mut n = build_network();
    let edges = n.from.len();
    loop {
        let mut dist = vec![INF; n.nodes];
        let mut parent = vec![-1i32; n.nodes];
        dist[0] = 0;
        for _ in 0..n.nodes - 1 {
            for e in 0..edges {
                if n.cap[e] == 0 {
                    continue;
                }
                let u = n.from[e] as usize;
                if dist[u] >= INF {
                    continue;
                }
                let nd = dist[u] + n.cost[e];
                let w = n.to[e] as usize;
                if nd < dist[w] {
                    dist[w] = nd;
                    parent[w] = e as i32;
                }
            }
        }
        if dist[1] >= 0 {
            break;
        }
        let mut v = 1usize;
        while v != 0 {
            let e = parent[v] as usize;
            n.cap[e] -= 1;
            n.cap[e ^ 1] += 1;
            v = n.from[e] as usize;
        }
    }
    // extract successor links
    let mut succ = [-1i32; TRIPS];
    let mut pred = [-1i32; TRIPS];
    let mut link_sum = 0i64;
    for &(e, i, j, c) in &n.links {
        if n.cap[e] == 0 {
            succ[i] = j as i32;
            pred[j] = i as i32;
            link_sum += i64::from(c);
        }
    }
    // vehicle assignment by chain heads in trip order
    let mut assignment = vec![0u32; TRIPS];
    let mut vehicles = 0u32;
    for (i, &p) in pred.iter().enumerate() {
        if p < 0 {
            let mut t = i as i32;
            while t >= 0 {
                assignment[t as usize] = vehicles;
                t = succ[t as usize];
            }
            vehicles += 1;
        }
    }
    Schedule {
        assignment,
        cost: i64::from(PULLOUT) * i64::from(vehicles) + link_sum,
    }
}

/// The MCF workload.
#[derive(Debug)]
pub struct McfWorkload {
    program: Program,
    out_len_addr: u32,
    out_addr: u32,
}

impl Default for McfWorkload {
    fn default() -> Self {
        Self::new()
    }
}

impl McfWorkload {
    /// Builds the workload (the timetable is fixed and deterministic).
    #[must_use]
    #[allow(clippy::too_many_lines)]
    pub fn new() -> Self {
        let n = build_network();
        let edges = n.from.len() as i32;
        let nodes = n.nodes as i32;
        let nlinks = n.links.len() as i32;
        let ntrips = TRIPS as i32;

        let mut a = Asm::new();
        let efrom = a.data_words(&n.from);
        let eto = a.data_words(&n.to);
        let ecost = a.data_words(&n.cost);
        let ecap = a.data_words(&n.cap);
        let linkidx =
            a.data_words(&n.links.iter().map(|&(e, ..)| e as i32).collect::<Vec<_>>());
        let linkfrom =
            a.data_words(&n.links.iter().map(|&(_, i, ..)| i as i32).collect::<Vec<_>>());
        let linkto =
            a.data_words(&n.links.iter().map(|&(_, _, j, _)| j as i32).collect::<Vec<_>>());
        let linkcost =
            a.data_words(&n.links.iter().map(|&(.., c)| c).collect::<Vec<_>>());
        let dist = a.data_zero(n.nodes * 4);
        let parent = a.data_zero(n.nodes * 4);
        let succ = a.data_zero(TRIPS * 4);
        let pred = a.data_zero(TRIPS * 4);
        let out_addr = a.data_zero(OUT_LEN);
        let out_len_addr = a.data_zero(4);

        // ------------------------------------------------------------
        // mcf_solve (eligible, leaf): successive shortest paths
        // ------------------------------------------------------------
        a.func("mcf_solve", true);
        a.la(S0, efrom);
        a.la(S1, eto);
        a.la(S2, ecost);
        a.la(S3, ecap);
        a.la(S4, dist);
        a.la(S5, parent);
        a.label("aug_loop");
        // ---- init dist/parent ----
        a.li(S6, 0);
        a.label("init_loop");
        a.slli(T0, S6, 2);
        a.li(T2, INF);
        a.add(T1, S4, T0);
        a.sw(T2, 0, T1);
        a.li(T2, -1);
        a.add(T1, S5, T0);
        a.sw(T2, 0, T1);
        a.addi(S6, S6, 1);
        a.slti(T0, S6, nodes);
        a.bnez(T0, "init_loop");
        a.sw(certa_isa::reg::ZERO, 0, S4); // dist[source] = 0
        // ---- |V|-1 relaxation rounds ----
        a.li(S7, 0);
        a.label("round_loop");
        a.li(S6, 0);
        a.label("edge_loop");
        a.slli(T0, S6, 2);
        a.add(T1, S3, T0);
        a.lw(T2, 0, T1); // cap[e]
        a.beqz(T2, "edge_next");
        a.add(T1, S0, T0);
        a.lw(T3, 0, T1); // u
        a.slli(T4, T3, 2);
        a.add(T4, S4, T4);
        a.lw(T5, 0, T4); // dist[u]
        a.li(T6, INF);
        a.bge(T5, T6, "edge_next");
        a.add(T1, S2, T0);
        a.lw(T6, 0, T1); // cost[e]
        a.add(T5, T5, T6); // nd
        a.add(T1, S1, T0);
        a.lw(T7, 0, T1); // w
        a.slli(T8, T7, 2);
        a.add(T8, S4, T8);
        a.lw(T9, 0, T8); // dist[w]
        a.bge(T5, T9, "edge_next");
        a.sw(T5, 0, T8); // dist[w] = nd
        a.slli(T8, T7, 2);
        a.add(T8, S5, T8);
        a.sw(S6, 0, T8); // parent[w] = e
        a.label("edge_next");
        a.addi(S6, S6, 1);
        a.slti(T0, S6, edges);
        a.bnez(T0, "edge_loop");
        a.addi(S7, S7, 1);
        a.slti(T0, S7, nodes - 1);
        a.bnez(T0, "round_loop");
        // ---- profitable path? ----
        a.lw(T0, 4, S4); // dist[sink]
        a.bgez(T0, "aug_done");
        // ---- augment along parent chain from sink ----
        a.li(T1, 1); // v = sink
        a.label("aug_walk");
        a.slli(T2, T1, 2);
        a.add(T2, S5, T2);
        a.lw(T3, 0, T2); // e = parent[v]
        a.bltz(T3, "aug_done"); // corrupt chain guard
        a.slli(T4, T3, 2);
        a.add(T5, S3, T4);
        a.lw(T6, 0, T5);
        a.addi(T6, T6, -1);
        a.sw(T6, 0, T5); // cap[e]--
        a.xori(T7, T3, 1);
        a.slli(T7, T7, 2);
        a.add(T7, S3, T7);
        a.lw(T8, 0, T7);
        a.addi(T8, T8, 1);
        a.sw(T8, 0, T7); // cap[e^1]++
        a.add(T4, S0, T4);
        a.lw(T1, 0, T4); // v = from[e]
        a.bnez(T1, "aug_walk");
        a.j("aug_loop");
        a.label("aug_done");
        // ---- init succ/pred to -1 ----
        a.la(S4, succ);
        a.la(S5, pred);
        a.li(S6, 0);
        a.label("ps_init");
        a.slli(T0, S6, 2);
        a.li(T1, -1);
        a.add(T2, S4, T0);
        a.sw(T1, 0, T2);
        a.add(T2, S5, T0);
        a.sw(T1, 0, T2);
        a.addi(S6, S6, 1);
        a.slti(T0, S6, ntrips);
        a.bnez(T0, "ps_init");
        // ---- scan used links; accumulate link cost in S7 ----
        a.la(S0, linkidx);
        a.la(S1, linkfrom);
        a.la(S2, linkto);
        a.li(S7, 0);
        a.li(S6, 0);
        a.label("link_loop");
        a.slli(T0, S6, 2);
        a.add(T1, S0, T0);
        a.lw(T2, 0, T1); // e
        a.slli(T3, T2, 2);
        a.add(T3, S3, T3);
        a.lw(T4, 0, T3); // cap[e]
        a.bnez(T4, "link_next"); // cap 1 => unused
        a.add(T1, S1, T0);
        a.lw(T5, 0, T1); // i
        a.add(T1, S2, T0);
        a.lw(T6, 0, T1); // j
        a.slli(T7, T5, 2);
        a.add(T7, S4, T7);
        a.sw(T6, 0, T7); // succ[i] = j
        a.slli(T7, T6, 2);
        a.add(T7, S5, T7);
        a.sw(T5, 0, T7); // pred[j] = i
        a.la(T8, linkcost);
        a.add(T8, T8, T0);
        a.lw(T8, 0, T8);
        a.add(S7, S7, T8); // link cost sum
        a.label("link_next");
        a.addi(S6, S6, 1);
        a.slti(T0, S6, nlinks);
        a.bnez(T0, "link_loop");
        // ---- assignment by chain heads ----
        a.la(S0, out_addr);
        a.li(T9, 0); // vehicle counter
        a.li(S6, 0); // trip
        a.label("assign_loop");
        a.slli(T0, S6, 2);
        a.add(T1, S5, T0);
        a.lw(T2, 0, T1); // pred[i]
        a.bgez(T2, "assign_next");
        a.mv(T3, S6); // t = i
        a.label("chain_loop");
        a.slli(T4, T3, 2);
        a.add(T5, S0, T4);
        a.sw(T9, 8, T5); // assignment[t] = v
        a.add(T5, S4, T4);
        a.lw(T3, 0, T5); // t = succ[t]
        a.bgez(T3, "chain_loop");
        a.addi(T9, T9, 1);
        a.label("assign_next");
        a.addi(S6, S6, 1);
        a.slti(T0, S6, ntrips);
        a.bnez(T0, "assign_loop");
        // ---- cost = PULLOUT * vehicles + link sum (64-bit LE) ----
        a.muli(T0, T9, PULLOUT);
        a.add(T0, T0, S7);
        a.sw(T0, 0, S0);
        a.srai(T1, T0, 31);
        a.sw(T1, 4, S0);
        a.ret();
        a.endfunc();

        // main
        a.func("main", false);
        a.call("mcf_solve");
        a.la(T0, out_len_addr);
        a.li(T1, OUT_LEN as i32);
        a.sw(T1, 0, T0);
        a.halt();
        a.endfunc();

        McfWorkload {
            program: a.assemble().expect("mcf guest must assemble"),
            out_len_addr,
            out_addr,
        }
    }
}

impl Target for McfWorkload {
    fn program(&self) -> &Program {
        &self.program
    }

    fn prepare(&self, _machine: &mut Machine<'_>) {}

    fn extract(&self, machine: &Machine<'_>) -> Option<Vec<u8>> {
        read_output(machine, self.out_len_addr, self.out_addr, OUT_LEN as u32)
    }
}

impl Workload for McfWorkload {
    fn name(&self) -> &'static str {
        "mcf"
    }

    fn description(&self) -> &'static str {
        "Single-depot vehicle scheduling solved as min-cost flow (successive shortest paths)"
    }

    fn fidelity_measure(&self) -> &'static str {
        "schedule optimality vs. the optimal schedule (% extra cost; incomplete = failure)"
    }

    fn evaluate(&self, golden: &[u8], trial: Option<&[u8]>) -> Fidelity {
        let golden_schedule =
            Schedule::decode(golden, TRIPS).expect("golden schedule must decode");
        let faulty = trial.and_then(|t| Schedule::decode(t, TRIPS));
        let verdict = judge(&golden_schedule, faulty.as_ref(), TRIPS as u32);
        let (score, acceptable) = match verdict {
            ScheduleFidelity::Optimal => (1.0, true),
            ScheduleFidelity::Suboptimal { extra_cost_percent } => {
                (1.0 / (1.0 + f64::from(extra_cost_percent) / 100.0), false)
            }
            ScheduleFidelity::Incomplete => (0.0, false),
        };
        Fidelity {
            score,
            acceptable,
            detail: FidelityDetail::Schedule(verdict),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certa_core::analyze;
    use certa_fault::{run_campaign, CampaignConfig, Protection};
    use certa_sim::{MachineConfig, Outcome};

    #[test]
    fn timetable_has_compatible_pairs() {
        let t = trips();
        let n = build_network();
        assert!(
            n.links.len() > 5,
            "instance must have real linking choices, got {}",
            n.links.len()
        );
        for &(_, i, j, c) in &n.links {
            assert!(compatible(&t, i, j));
            assert!(c < PULLOUT, "links must be cheaper than a pull-out");
        }
    }

    #[test]
    fn reference_beats_naive_schedule() {
        let s = reference_schedule();
        let naive = i64::from(PULLOUT) * TRIPS as i64;
        assert!(
            s.cost < naive,
            "optimal ({}) must beat one-vehicle-per-trip ({naive})",
            s.cost
        );
        assert_eq!(s.assignment.len(), TRIPS);
        // chained trips must not overlap
        let t = trips();
        for v in 0..TRIPS as u32 {
            let mut served: Vec<usize> = (0..TRIPS).filter(|&i| s.assignment[i] == v).collect();
            served.sort_by_key(|&i| t[i].0);
            for w in served.windows(2) {
                assert!(
                    compatible(&t, w[0], w[1]),
                    "vehicle {v} serves incompatible trips {} and {}",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn guest_matches_reference() {
        let w = McfWorkload::new();
        let mut m = Machine::new(w.program(), &MachineConfig::default());
        let r = m.run_simple();
        assert_eq!(r.outcome, Outcome::Halted);
        let out = w.extract(&m).expect("output readable");
        let got = Schedule::decode(&out, TRIPS).expect("decodable");
        assert_eq!(got, reference_schedule());
    }

    #[test]
    fn evaluate_verdicts() {
        let w = McfWorkload::new();
        let golden = reference_schedule().encode();
        let perfect = w.evaluate(&golden, Some(&golden));
        assert!(perfect.acceptable);
        assert_eq!(perfect.score, 1.0);
        assert!(!w.evaluate(&golden, None).acceptable);
        // inflated cost: suboptimal
        let mut sub = reference_schedule();
        sub.cost += sub.cost / 4;
        let f = w.evaluate(&golden, Some(&sub.encode()));
        assert!(!f.acceptable);
        assert!(matches!(
            f.detail,
            FidelityDetail::Schedule(ScheduleFidelity::Suboptimal { .. })
        ));
    }

    #[test]
    fn mcf_is_control_dominated() {
        // Paper Table 3: MCF has only 8.9% low-reliability instructions —
        // by far the least taggable application.
        let w = McfWorkload::new();
        let tags = analyze(w.program());
        let golden = certa_fault::run_campaign(
            &w,
            &tags,
            &CampaignConfig {
                trials: 0,
                ..CampaignConfig::default()
            },
        )
        .golden;
        let frac = tags.dynamic_low_reliability_fraction(&golden.exec_counts);
        assert!(
            frac < 0.35,
            "mcf should be control-dominated, got {frac:.2}"
        );
    }

    #[test]
    fn protected_campaign_is_stable() {
        let w = McfWorkload::new();
        let tags = analyze(w.program());
        let r = run_campaign(
            &w,
            &tags,
            &CampaignConfig {
                trials: 16,
                errors: 1,
                protection: Protection::ControlOnly,
                threads: 4,
                ..CampaignConfig::default()
            },
        );
        assert_eq!(r.failure_rate(), 0.0);
    }
}

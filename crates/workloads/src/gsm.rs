//! GSM speech codec stand-in (MiBench gsm).
//!
//! GSM 06.10 full-rate is a predictive codec: short-term LPC prediction,
//! long-term prediction, and RPE residual quantization with per-subframe
//! scaling. This workload implements a reduced codec with the same
//! structure — a second-order predictor over reconstructed samples
//! (a *leaky* extrapolator `pred = (14·r₁ − 7·r₂)/8`, so channel/soft errors decay instead of accumulating — real predictive codecs leak for the same reason), per-frame residual scaling (the RPE "block
//! maximum" search), and 6-bit residual quantization — encoding then
//! decoding a speech-like signal, exactly the paper's experiment shape.
//! The substitution is documented in `DESIGN.md`.
//!
//! The block-maximum search and scale selection branch on data, as in real
//! GSM; the analysis consequently protects much of the encoder (the paper's
//! Table 3 reports GSM as the most control-heavy codec at only 19.6%
//! low-reliability instructions).
//!
//! Fidelity (Table 1): SNR difference between the decoded output with
//! errors in the decoder and the decoded output without errors; a 6 dB
//! loss is the recognizability threshold.

use certa_asm::Asm;
use certa_fault::Target;
use certa_fidelity::snr_loss_db;
use certa_isa::reg::{A0, A1, S0, S1, S2, S3, S4, S5, S6, S7, T0, T1, T2, T3, T4, T5, T6, T7, T8};
use certa_isa::Program;
use certa_sim::Machine;

use crate::common::{bytes_to_i16s, emit_abs, emit_max, emit_min, read_output};
use crate::{Fidelity, FidelityDetail, Workload};

/// Samples per frame (GSM 06.10 subframe-scale granularity).
pub const FRAME: usize = 40;
/// Number of frames.
pub const NUM_FRAMES: usize = 24;
/// Total samples.
pub const NUM_SAMPLES: usize = FRAME * NUM_FRAMES;
/// Bytes per encoded frame: the scale exponent plus one byte per sample.
pub const ENC_FRAME_BYTES: usize = 1 + FRAME;
/// The paper's recognizability threshold: up to 6 dB SNR loss.
pub const SNR_LOSS_THRESHOLD_DB: f64 = 6.0;

/// Generates the speech-like input signal (voiced pitch + formant + hum
/// under an amplitude envelope).
#[must_use]
pub fn test_samples(n: usize) -> Vec<i16> {
    (0..n)
        .map(|i| {
            let t = i as f64;
            let envelope = 0.35 + 0.65 * (t / n as f64 * std::f64::consts::PI).sin();
            let v = 7000.0 * (t * 2.0 * std::f64::consts::PI / 80.0).sin()
                + 2500.0 * (t * 2.0 * std::f64::consts::PI / 11.0).sin()
                + 900.0 * (t * 2.0 * std::f64::consts::PI / 3.0 + 0.7).sin();
            (v * envelope) as i16
        })
        .collect()
}

fn clamp16(v: i32) -> i32 {
    v.clamp(-32768, 32767)
}

/// Host-side encoder (mirrors the guest exactly).
///
/// # Panics
///
/// Panics if `samples.len()` is not `NUM_SAMPLES`.
#[must_use]
pub fn reference_encode(samples: &[i16]) -> Vec<u8> {
    assert_eq!(samples.len(), NUM_SAMPLES);
    let mut enc = vec![0u8; NUM_FRAMES * ENC_FRAME_BYTES];
    let (mut r1, mut r2) = (0i32, 0i32); // closed-loop reconstruction state
    let (mut o1, mut o2) = (0i32, 0i32); // open-loop original-sample state
    for f in 0..NUM_FRAMES {
        // open-loop block maximum of the prediction residual
        let mut m = 0i32;
        for &sample in &samples[f * FRAME..(f + 1) * FRAME] {
            let s = i32::from(sample);
            let pred = (14 * o1 - 7 * o2) >> 3;
            m = m.max((s - pred).abs());
            o2 = o1;
            o1 = s;
        }
        // scale selection: smallest k with (m >> k) < 32
        let mut k = 0i32;
        let mut t = m;
        while t >= 32 {
            k += 1;
            t >>= 1;
        }
        enc[f * ENC_FRAME_BYTES] = k as u8;
        // closed-loop quantization
        for (j, g) in (f * FRAME..(f + 1) * FRAME).enumerate() {
            let s = i32::from(samples[g]);
            let pred = (14 * r1 - 7 * r2) >> 3;
            let resid = s - pred;
            let q = (resid >> k).clamp(-31, 31);
            enc[f * ENC_FRAME_BYTES + 1 + j] = (q + 32) as u8;
            let rec = clamp16(pred + (q << k));
            r2 = r1;
            r1 = rec;
        }
    }
    enc
}

/// Host-side decoder (mirrors the guest exactly).
#[must_use]
pub fn reference_decode(enc: &[u8]) -> Vec<i16> {
    let mut out = Vec::with_capacity(NUM_SAMPLES);
    let (mut r1, mut r2) = (0i32, 0i32);
    for f in 0..NUM_FRAMES {
        let k = i32::from(enc[f * ENC_FRAME_BYTES]) & 15;
        for j in 0..FRAME {
            let q = i32::from(enc[f * ENC_FRAME_BYTES + 1 + j]) - 32;
            let pred = (14 * r1 - 7 * r2) >> 3;
            let rec = clamp16(pred + (q << k));
            r2 = r1;
            r1 = rec;
            out.push(rec as i16);
        }
    }
    out
}

/// Emits `T4 = clamp16(T4)` using `T5`–`T8` as scratch.
fn emit_clamp16_t4(a: &mut Asm) {
    a.li(T5, 32767);
    emit_min(a, T6, T4, T5, T7, T8);
    a.li(T5, -32768);
    emit_max(a, T4, T6, T5, T7, T8);
}

/// The GSM workload.
#[derive(Debug)]
pub struct GsmWorkload {
    program: Program,
    samples: Vec<i16>,
    out_len_addr: u32,
    out_addr: u32,
}

impl Default for GsmWorkload {
    fn default() -> Self {
        Self::new()
    }
}

impl GsmWorkload {
    /// Builds the workload with the default speech-like input.
    #[must_use]
    pub fn new() -> Self {
        Self::with_samples(&test_samples(NUM_SAMPLES))
    }

    /// Builds the workload with explicit samples (`NUM_SAMPLES` of them).
    ///
    /// # Panics
    ///
    /// Panics if `samples.len() != NUM_SAMPLES`.
    #[must_use]
    #[allow(clippy::too_many_lines)]
    pub fn with_samples(samples: &[i16]) -> Self {
        assert_eq!(samples.len(), NUM_SAMPLES);
        let mut a = Asm::new();
        let in_addr = a.data_halves(samples);
        let enc_addr = a.data_zero(NUM_FRAMES * ENC_FRAME_BYTES);
        let out_len_addr = a.data_zero(4);
        let out_addr = a.data_zero(NUM_SAMPLES * 2);
        let nframes = NUM_FRAMES as i32;
        let frame = FRAME as i32;
        let efb = ENC_FRAME_BYTES as i32;

        // ------------------------------------------------------------
        // gsm_encode (eligible, leaf)
        //   S0=in, S1=enc, S2=f, S3=r1, S4=r2, S5=g, S6=k, S7=g_end,
        //   A0=o1, A1=o2 (open-loop original state)
        // ------------------------------------------------------------
        a.func("gsm_encode", true);
        a.la(S0, in_addr);
        a.la(S1, enc_addr);
        a.li(S2, 0);
        a.li(S3, 0);
        a.li(S4, 0);
        a.li(A0, 0);
        a.li(A1, 0);
        a.label("ge_frame");
        a.muli(S5, S2, frame);
        a.addi(S7, S5, frame);
        // ---- open-loop block maximum (T6 = m) ----
        a.li(T6, 0);
        a.label("ge_ol");
        a.slli(T0, S5, 1);
        a.add(T0, S0, T0);
        a.lh(T1, 0, T0); // s[g]
        a.muli(T2, A0, 14);
        a.muli(T4, A1, 7);
        a.sub(T2, T2, T4);
        a.srai(T2, T2, 3); // pred = (14*o1 - 7*o2) >> 3 (leaky)
        a.sub(T3, T1, T2);
        emit_abs(&mut a, T3, T3, T4);
        emit_max(&mut a, T5, T6, T3, T4, T7);
        a.mv(T6, T5); // m = max(m, |resid|)
        a.mv(A1, A0);
        a.mv(A0, T1);
        a.addi(S5, S5, 1);
        a.blt(S5, S7, "ge_ol");
        // ---- scale selection (branchy, as in real GSM RPE) ----
        a.li(S6, 0);
        a.mv(T0, T6);
        a.label("ge_k");
        a.slti(T1, T0, 32);
        a.bnez(T1, "ge_k_done");
        a.addi(S6, S6, 1);
        a.srai(T0, T0, 1);
        a.j("ge_k");
        a.label("ge_k_done");
        a.muli(T0, S2, efb);
        a.add(T0, S1, T0);
        a.sb(S6, 0, T0); // enc[f*EFB] = k
        // ---- closed-loop quantization ----
        a.muli(S5, S2, frame);
        a.label("ge_cl");
        a.slli(T0, S5, 1);
        a.add(T0, S0, T0);
        a.lh(T1, 0, T0); // s
        a.muli(T2, S3, 14);
        a.muli(T4, S4, 7);
        a.sub(T2, T2, T4);
        a.srai(T2, T2, 3); // pred = (14*r1 - 7*r2) >> 3 (leaky)
        a.sub(T3, T1, T2); // resid
        a.sra(T4, T3, S6); // q = resid >> k
        // clamp q to [-31, 31]
        a.li(T5, 31);
        emit_min(&mut a, T6, T4, T5, T7, T8);
        a.li(T5, -31);
        emit_max(&mut a, T4, T6, T5, T7, T8);
        // enc byte = q + 32 at enc[f*EFB + 1 + j],  j = g - f*FRAME
        a.addi(T5, T4, 32);
        a.sub(T6, S5, S7);
        a.addi(T6, T6, frame); // j
        a.muli(T7, S2, efb);
        a.add(T7, T7, T6);
        a.addi(T7, T7, 1);
        a.add(T7, S1, T7);
        a.sb(T5, 0, T7);
        // rec = clamp16(pred + (q << k))
        a.sll(T4, T4, S6);
        a.add(T4, T2, T4);
        emit_clamp16_t4(&mut a);
        a.mv(S4, S3);
        a.mv(S3, T4);
        a.addi(S5, S5, 1);
        a.blt(S5, S7, "ge_cl");
        a.addi(S2, S2, 1);
        a.slti(T0, S2, nframes);
        a.bnez(T0, "ge_frame");
        a.ret();
        a.endfunc();

        // ------------------------------------------------------------
        // gsm_decode (eligible, leaf)
        //   S0=enc, S1=out, S2=f, S3=r1, S4=r2, S5=g, S6=k, S7=g_end
        // ------------------------------------------------------------
        a.func("gsm_decode", true);
        a.la(S0, enc_addr);
        a.la(S1, out_addr);
        a.li(S2, 0);
        a.li(S3, 0);
        a.li(S4, 0);
        a.label("gd_frame");
        a.muli(T0, S2, efb);
        a.add(T0, S0, T0);
        a.lbu(S6, 0, T0); // k
        a.andi(S6, S6, 15); // bounded shift (mirrors reference)
        a.muli(S5, S2, frame);
        a.addi(S7, S5, frame);
        a.label("gd_loop");
        // q = enc[f*EFB + 1 + j] - 32
        a.sub(T0, S5, S7);
        a.addi(T0, T0, frame); // j
        a.muli(T1, S2, efb);
        a.add(T1, T1, T0);
        a.addi(T1, T1, 1);
        a.add(T1, S0, T1);
        a.lbu(T2, 0, T1);
        a.addi(T2, T2, -32);
        // rec = clamp16(pred + (q << k))
        a.muli(T3, S3, 14);
        a.muli(T4, S4, 7);
        a.sub(T3, T3, T4);
        a.srai(T3, T3, 3); // pred (leaky)
        a.sll(T4, T2, S6);
        a.add(T4, T3, T4);
        emit_clamp16_t4(&mut a);
        a.mv(S4, S3);
        a.mv(S3, T4);
        a.slli(T5, S5, 1);
        a.add(T5, S1, T5);
        a.sh(S3, 0, T5);
        a.addi(S5, S5, 1);
        a.blt(S5, S7, "gd_loop");
        a.addi(S2, S2, 1);
        a.slti(T0, S2, nframes);
        a.bnez(T0, "gd_frame");
        a.ret();
        a.endfunc();

        // main
        a.func("main", false);
        a.call("gsm_encode");
        a.call("gsm_decode");
        a.la(T0, out_len_addr);
        a.li(T1, (NUM_SAMPLES * 2) as i32);
        a.sw(T1, 0, T0);
        a.halt();
        a.endfunc();

        GsmWorkload {
            program: a.assemble().expect("gsm guest must assemble"),
            samples: samples.to_vec(),
            out_len_addr,
            out_addr,
        }
    }

    /// The input speech samples.
    #[must_use]
    pub fn samples(&self) -> &[i16] {
        &self.samples
    }
}

impl Target for GsmWorkload {
    fn program(&self) -> &Program {
        &self.program
    }

    fn prepare(&self, _machine: &mut Machine<'_>) {}

    fn extract(&self, machine: &Machine<'_>) -> Option<Vec<u8>> {
        read_output(
            machine,
            self.out_len_addr,
            self.out_addr,
            (NUM_SAMPLES * 2) as u32,
        )
    }
}

impl Workload for GsmWorkload {
    fn name(&self) -> &'static str {
        "gsm"
    }

    fn description(&self) -> &'static str {
        "Frame-based predictive speech codec with RPE-style block scaling (GSM 06.10 stand-in)"
    }

    fn fidelity_measure(&self) -> &'static str {
        "SNR loss of decoded speech vs. fault-free decode (6 dB recognizability threshold)"
    }

    fn evaluate(&self, golden: &[u8], trial: Option<&[u8]>) -> Fidelity {
        let failed = Fidelity {
            score: 0.0,
            acceptable: false,
            detail: FidelityDetail::SnrLoss { db: f64::INFINITY },
        };
        let Some(out) = trial else { return failed };
        let Some(faulty) = bytes_to_i16s(out) else {
            return failed;
        };
        let Some(golden_dec) = bytes_to_i16s(golden) else {
            return failed;
        };
        if faulty.len() != golden_dec.len() {
            return failed;
        }
        let loss = snr_loss_db(&self.samples, &golden_dec, &faulty);
        Fidelity {
            score: (1.0 - loss / 20.0).clamp(0.0, 1.0),
            acceptable: loss <= SNR_LOSS_THRESHOLD_DB,
            detail: FidelityDetail::SnrLoss { db: loss },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certa_core::analyze;
    use certa_fault::{run_campaign, CampaignConfig, Protection};
    use certa_fidelity::snr_db;
    use certa_sim::{MachineConfig, Outcome};

    #[test]
    fn reference_codec_tracks_the_signal() {
        let samples = test_samples(NUM_SAMPLES);
        let enc = reference_encode(&samples);
        let dec = reference_decode(&enc);
        assert_eq!(dec.len(), NUM_SAMPLES);
        let snr = snr_db(&samples, &dec);
        assert!(snr > 15.0, "codec reconstruction too lossy: {snr} dB");
    }

    #[test]
    fn scale_exponent_is_bounded() {
        let samples = test_samples(NUM_SAMPLES);
        let enc = reference_encode(&samples);
        for f in 0..NUM_FRAMES {
            assert!(enc[f * ENC_FRAME_BYTES] <= 13);
        }
    }

    #[test]
    fn guest_matches_reference() {
        let w = GsmWorkload::new();
        let mut m = Machine::new(w.program(), &MachineConfig::default());
        let r = m.run_simple();
        assert_eq!(r.outcome, Outcome::Halted);
        let out = w.extract(&m).expect("output readable");
        let expected =
            crate::common::i16s_to_bytes(&reference_decode(&reference_encode(w.samples())));
        assert_eq!(out, expected);
    }

    #[test]
    fn evaluate_detects_degradation() {
        let w = GsmWorkload::new();
        let golden = crate::common::i16s_to_bytes(&reference_decode(&reference_encode(
            w.samples(),
        )));
        let perfect = w.evaluate(&golden, Some(&golden));
        assert!(perfect.acceptable);
        assert_eq!(perfect.score, 1.0);
        // heavy corruption: zero out half the samples
        let mut bad = golden.clone();
        let half = bad.len() / 2;
        for b in bad.iter_mut().take(half) {
            *b = 0;
        }
        let f = w.evaluate(&golden, Some(&bad));
        assert!(!f.acceptable);
        assert!(matches!(f.detail, FidelityDetail::SnrLoss { db } if db > 6.0));
    }

    #[test]
    fn protected_campaign_is_stable() {
        let w = GsmWorkload::new();
        let tags = analyze(w.program());
        let r = run_campaign(
            &w,
            &tags,
            &CampaignConfig {
                trials: 16,
                errors: 3,
                protection: Protection::ControlOnly,
                threads: 4,
                ..CampaignConfig::default()
            },
        );
        assert_eq!(r.failure_rate(), 0.0);
    }
}

//! MPEG video encoder (paper §2).
//!
//! A block-transform video encoder with the MPEG frame-type structure:
//! **I** frames are coded standalone (prediction from a flat mid-gray),
//! **P** frames predict from the last reference frame's reconstruction,
//! and **B** frames predict from the last reference with coarser
//! quantization and never serve as references. Each 4×4 block goes through
//! a 2-D integer Hadamard transform (the H.26x-family integer transform),
//! dead-zone quantization by the frame type's step, dequantization, and
//! inverse transform — the encoder's own reconstruction loop, which is
//! what the decoder would see. Full MPEG-2 DCT/motion search is reduced
//! per `DESIGN.md`; the I/P/B dependence structure, which is what the
//! paper's fidelity measure keys on, is preserved.
//!
//! Fidelity (Table 1): % of bad frames, where a frame is bad if its SNR
//! loss against the fault-free reconstruction exceeds 2 dB (I), 4 dB (P)
//! or 6 dB (B); the viewer-acceptability threshold is 10% bad frames.

use certa_asm::Asm;
use certa_fault::Target;
use certa_fidelity::mpeg::{bad_frame_fraction, Frame, FrameType, BAD_FRAME_THRESHOLD};
use certa_isa::reg::{
    A2, S0, S1, S2, S3, S4, S5, S6, S7, T0, T1, T2, T3, T4, T5, T6, T7, T8, T9,
};
use certa_isa::Program;
use certa_sim::Machine;

use crate::common::{emit_clamp_255, read_output, XorShift64};
use crate::{Fidelity, FidelityDetail, Workload};

/// Frame side length (square frames).
pub const DIM: usize = 32;
/// Pixels per frame.
pub const FRAME_PIXELS: usize = DIM * DIM;
/// Number of frames in the sequence.
pub const NUM_FRAMES: usize = 6;
/// The GOP pattern.
pub const GOP: [FrameType; NUM_FRAMES] = [
    FrameType::I,
    FrameType::B,
    FrameType::P,
    FrameType::B,
    FrameType::P,
    FrameType::B,
];

/// Quantization shift per frame type (B frames are quantized coarser).
#[must_use]
pub fn quant_shift(kind: FrameType) -> i32 {
    match kind {
        FrameType::I | FrameType::P => 3,
        FrameType::B => 4,
    }
}

/// Per-frame prediction source: `None` for I frames (flat mid-gray),
/// otherwise the index of the last reference (I/P) frame.
#[must_use]
pub fn pred_sources() -> [Option<usize>; NUM_FRAMES] {
    let mut out = [None; NUM_FRAMES];
    let mut last_ref: Option<usize> = None;
    for (f, &kind) in GOP.iter().enumerate() {
        out[f] = match kind {
            FrameType::I => None,
            FrameType::P | FrameType::B => last_ref,
        };
        if matches!(kind, FrameType::I | FrameType::P) {
            last_ref = Some(f);
        }
    }
    out
}

/// Generates the synthetic video: a gradient background with a bright
/// square moving two pixels per frame, plus mild per-frame noise.
#[must_use]
pub fn test_video(seed: u64) -> Vec<Vec<u8>> {
    let mut rng = XorShift64::new(seed);
    (0..NUM_FRAMES)
        .map(|f| {
            let mut frame = vec![0u8; FRAME_PIXELS];
            let sq_x = 4 + 2 * f;
            for y in 0..DIM {
                for x in 0..DIM {
                    let mut v = 40 + (x as i32) * 3 + (y as i32);
                    if (sq_x..sq_x + 8).contains(&x) && (10..18).contains(&y) {
                        v = 220;
                    }
                    v += (rng.next_below(5) as i32) - 2;
                    frame[y * DIM + x] = v.clamp(0, 255) as u8;
                }
            }
            frame
        })
        .collect()
}

/// One-dimensional 4-point Hadamard butterfly (symmetric: used for both
/// forward and inverse).
fn hadamard4(a: i32, b: i32, c: i32, d: i32) -> (i32, i32, i32, i32) {
    let u0 = a + b;
    let u1 = c + d;
    let u2 = a - b;
    let v = c - d;
    (u0 + u1, u0 - u1, u2 - v, u2 + v)
}

/// Host-side reference encoder: returns the reconstructed frames (mirrors
/// the guest exactly).
///
/// # Panics
///
/// Panics if `video` has the wrong frame count or frame size.
#[must_use]
pub fn reference_encode(video: &[Vec<u8>]) -> Vec<Vec<u8>> {
    assert_eq!(video.len(), NUM_FRAMES);
    let preds = pred_sources();
    let mut recon: Vec<Vec<u8>> = vec![vec![0u8; FRAME_PIXELS]; NUM_FRAMES];
    let flat = vec![128u8; FRAME_PIXELS];
    for f in 0..NUM_FRAMES {
        assert_eq!(video[f].len(), FRAME_PIXELS);
        let k = quant_shift(GOP[f]);
        let qmask = (1i32 << k) - 1;
        let pred: Vec<u8> = match preds[f] {
            None => flat.clone(),
            Some(r) => recon[r].clone(),
        };
        for by in 0..DIM / 4 {
            for bx in 0..DIM / 4 {
                let mut tmp = [0i32; 16];
                // forward rows
                for r in 0..4 {
                    let off = (by * 4 + r) * DIM + bx * 4;
                    let resid = |i: usize| {
                        i32::from(video[f][off + i]) - i32::from(pred[off + i])
                    };
                    let (a, b, c, d) = hadamard4(resid(0), resid(1), resid(2), resid(3));
                    tmp[r * 4] = a;
                    tmp[r * 4 + 1] = b;
                    tmp[r * 4 + 2] = c;
                    tmp[r * 4 + 3] = d;
                }
                // forward cols + quantize/dequantize
                for c in 0..4 {
                    let (a, b, cc, d) =
                        hadamard4(tmp[c], tmp[4 + c], tmp[8 + c], tmp[12 + c]);
                    for (r, h) in [a, b, cc, d].into_iter().enumerate() {
                        let bias = (h >> 31) & qmask;
                        let q = (h + bias) >> k;
                        tmp[r * 4 + c] = q << k;
                    }
                }
                // inverse rows
                for r in 0..4 {
                    let (a, b, c, d) =
                        hadamard4(tmp[r * 4], tmp[r * 4 + 1], tmp[r * 4 + 2], tmp[r * 4 + 3]);
                    tmp[r * 4] = a;
                    tmp[r * 4 + 1] = b;
                    tmp[r * 4 + 2] = c;
                    tmp[r * 4 + 3] = d;
                }
                // inverse cols, normalize, reconstruct
                for c in 0..4 {
                    let (a, b, cc, d) =
                        hadamard4(tmp[c], tmp[4 + c], tmp[8 + c], tmp[12 + c]);
                    for (r, h) in [a, b, cc, d].into_iter().enumerate() {
                        let v = (h + 8) >> 4;
                        let off = (by * 4 + r) * DIM + bx * 4 + c;
                        let pix = (v + i32::from(pred[off])).clamp(0, 255);
                        recon[f][off] = pix as u8;
                    }
                }
            }
        }
    }
    recon
}

/// Emits the Hadamard butterfly on `(T2, T3, T4, T5)`; results land in
/// `(T2, T3, T5, T4)` — note the swapped last pair. Clobbers `T6`–`T8`.
fn emit_hadamard(a: &mut Asm) {
    a.add(T6, T2, T3); // u0
    a.add(T7, T4, T5); // u1
    a.sub(T8, T2, T3); // u2
    a.sub(T4, T4, T5); // v = c - d
    a.add(T2, T6, T7); // a' = u0 + u1
    a.sub(T3, T6, T7); // b' = u0 - u1
    a.sub(T5, T8, T4); // c' = u2 - v
    a.add(T4, T8, T4); // d' = u2 + v
}

/// The MPEG workload.
#[derive(Debug)]
pub struct MpegWorkload {
    program: Program,
    video: Vec<Vec<u8>>,
    out_len_addr: u32,
    out_addr: u32,
}

impl Default for MpegWorkload {
    fn default() -> Self {
        Self::new()
    }
}

impl MpegWorkload {
    /// Builds the workload with the default synthetic video.
    #[must_use]
    pub fn new() -> Self {
        Self::with_seed(7)
    }

    /// Builds the workload with video generated from `seed`.
    #[must_use]
    #[allow(clippy::too_many_lines)]
    pub fn with_seed(seed: u64) -> Self {
        let video = test_video(seed);
        let preds = pred_sources();
        let dim = DIM as i32;

        let mut a = Asm::new();
        let flat: Vec<u8> = vec![128; FRAME_PIXELS];
        let src_addr = {
            let all: Vec<u8> = video.iter().flatten().copied().collect();
            a.data_bytes(&all)
        };
        let flat_addr = a.data_bytes(&flat);
        // per-frame params: [qshift, pred_index(-1 for I)] pairs
        let params: Vec<i32> = (0..NUM_FRAMES)
            .flat_map(|f| {
                [
                    quant_shift(GOP[f]),
                    preds[f].map_or(-1, |r| r as i32),
                ]
            })
            .collect();
        let params_addr = a.data_words(&params);
        let tmp_addr = a.data_zero(16 * 4);
        let out_addr = a.data_zero(NUM_FRAMES * FRAME_PIXELS); // recon frames
        let out_len_addr = a.data_zero(4);

        // ------------------------------------------------------------
        // mpeg_encode (eligible, leaf)
        //   S0=src frame, S1=recon frame, S2=pred base, S3=by, S4=bx,
        //   S5=qshift, S6=tmp, S7=f, A2=qmask, T9=minor loop counter
        // ------------------------------------------------------------
        a.func("mpeg_encode", true);
        a.la(S6, tmp_addr);
        a.li(S7, 0);
        a.label("mf_frame");
        a.muli(T0, S7, FRAME_PIXELS as i32);
        a.la(T1, src_addr);
        a.add(S0, T1, T0);
        a.la(T1, out_addr);
        a.add(S1, T1, T0);
        // k and pred index
        a.la(T1, params_addr);
        a.slli(T2, S7, 3);
        a.add(T1, T1, T2);
        a.lw(S5, 0, T1);
        a.lw(T3, 4, T1);
        // qmask = (1 << k) - 1
        a.li(A2, 1);
        a.sll(A2, A2, S5);
        a.addi(A2, A2, -1);
        // pred base
        a.bltz(T3, "mf_flat");
        a.muli(T4, T3, FRAME_PIXELS as i32);
        a.la(T5, out_addr);
        a.add(S2, T5, T4);
        a.j("mf_pred_done");
        a.label("mf_flat");
        a.la(S2, flat_addr);
        a.label("mf_pred_done");
        a.li(S3, 0); // by
        a.label("mf_by");
        a.li(S4, 0); // bx
        a.label("mf_bx");

        // ---- pass 1: forward rows (residual -> tmp) ----
        a.li(T9, 0);
        a.label("mf_p1");
        // off = (by*4 + r)*DIM + bx*4
        a.slli(T0, S3, 2);
        a.add(T0, T0, T9);
        a.muli(T0, T0, dim);
        a.slli(T1, S4, 2);
        a.add(T0, T0, T1);
        a.add(T1, S0, T0);
        a.lbu(T2, 0, T1);
        a.lbu(T3, 1, T1);
        a.lbu(T4, 2, T1);
        a.lbu(T5, 3, T1);
        a.add(T6, S2, T0);
        a.lbu(T7, 0, T6);
        a.sub(T2, T2, T7);
        a.lbu(T7, 1, T6);
        a.sub(T3, T3, T7);
        a.lbu(T7, 2, T6);
        a.sub(T4, T4, T7);
        a.lbu(T7, 3, T6);
        a.sub(T5, T5, T7);
        emit_hadamard(&mut a);
        a.slli(T6, T9, 4);
        a.add(T6, S6, T6);
        a.sw(T2, 0, T6);
        a.sw(T3, 4, T6);
        a.sw(T5, 8, T6);
        a.sw(T4, 12, T6);
        a.addi(T9, T9, 1);
        a.slti(T0, T9, 4);
        a.bnez(T0, "mf_p1");

        // ---- pass 2: forward cols + quantize/dequantize ----
        a.li(T9, 0);
        a.label("mf_p2");
        a.slli(T0, T9, 2);
        a.add(T0, S6, T0);
        a.lw(T2, 0, T0);
        a.lw(T3, 16, T0);
        a.lw(T4, 32, T0);
        a.lw(T5, 48, T0);
        emit_hadamard(&mut a);
        for reg in [T2, T3, T5, T4] {
            a.srai(T6, reg, 31);
            a.and(T6, T6, A2);
            a.add(reg, reg, T6);
            a.sra(reg, reg, S5);
            a.sll(reg, reg, S5);
        }
        a.sw(T2, 0, T0);
        a.sw(T3, 16, T0);
        a.sw(T5, 32, T0);
        a.sw(T4, 48, T0);
        a.addi(T9, T9, 1);
        a.slti(T1, T9, 4);
        a.bnez(T1, "mf_p2");

        // ---- pass 3: inverse rows ----
        a.li(T9, 0);
        a.label("mf_p3");
        a.slli(T0, T9, 4);
        a.add(T0, S6, T0);
        a.lw(T2, 0, T0);
        a.lw(T3, 4, T0);
        a.lw(T4, 8, T0);
        a.lw(T5, 12, T0);
        emit_hadamard(&mut a);
        a.sw(T2, 0, T0);
        a.sw(T3, 4, T0);
        a.sw(T5, 8, T0);
        a.sw(T4, 12, T0);
        a.addi(T9, T9, 1);
        a.slti(T1, T9, 4);
        a.bnez(T1, "mf_p3");

        // ---- pass 4: inverse cols, normalize, reconstruct ----
        a.li(T9, 0);
        a.label("mf_p4");
        a.slli(T0, T9, 2);
        a.add(T0, S6, T0);
        a.lw(T2, 0, T0);
        a.lw(T3, 16, T0);
        a.lw(T4, 32, T0);
        a.lw(T5, 48, T0);
        emit_hadamard(&mut a);
        // T8 = block origin = (by*4)*DIM + bx*4
        a.slli(T8, S3, 2);
        a.muli(T8, T8, dim);
        a.slli(T0, S4, 2);
        a.add(T8, T8, T0);
        // values (T2,T3,T5,T4) are rows 0..3 of column T9
        for (row, reg) in [(0i32, T2), (1, T3), (2, T5), (3, T4)] {
            a.addi(reg, reg, 8);
            a.srai(reg, reg, 4);
            // off = origin + row*DIM + c
            a.addi(T6, T8, row * dim);
            a.add(T6, T6, T9);
            a.add(T7, S2, T6);
            a.lbu(T7, 0, T7);
            a.add(reg, reg, T7);
            emit_clamp_255(&mut a, T1, reg, T7, T0);
            a.add(T7, S1, T6);
            a.sb(T1, 0, T7);
        }
        a.addi(T9, T9, 1);
        a.slti(T1, T9, 4);
        a.bnez(T1, "mf_p4");

        // ---- block/frame loop tails ----
        a.addi(S4, S4, 1);
        a.slti(T0, S4, dim / 4);
        a.bnez(T0, "mf_bx");
        a.addi(S3, S3, 1);
        a.slti(T0, S3, dim / 4);
        a.bnez(T0, "mf_by");
        a.addi(S7, S7, 1);
        a.slti(T0, S7, NUM_FRAMES as i32);
        a.bnez(T0, "mf_frame");
        a.ret();
        a.endfunc();

        // main
        a.func("main", false);
        a.call("mpeg_encode");
        a.la(T0, out_len_addr);
        a.li(T1, (NUM_FRAMES * FRAME_PIXELS) as i32);
        a.sw(T1, 0, T0);
        a.halt();
        a.endfunc();

        MpegWorkload {
            program: a.assemble().expect("mpeg guest must assemble"),
            video,
            out_len_addr,
            out_addr,
        }
    }

    /// The source frames baked into the guest.
    #[must_use]
    pub fn video(&self) -> &[Vec<u8>] {
        &self.video
    }

    fn to_frames(&self, flat: &[u8]) -> Option<Vec<Frame>> {
        if flat.len() != NUM_FRAMES * FRAME_PIXELS {
            return None;
        }
        Some(
            flat.chunks_exact(FRAME_PIXELS)
                .zip(GOP)
                .map(|(pixels, kind)| Frame {
                    kind,
                    pixels: pixels.to_vec(),
                })
                .collect(),
        )
    }
}

impl Target for MpegWorkload {
    fn program(&self) -> &Program {
        &self.program
    }

    fn prepare(&self, _machine: &mut Machine<'_>) {}

    fn extract(&self, machine: &Machine<'_>) -> Option<Vec<u8>> {
        read_output(
            machine,
            self.out_len_addr,
            self.out_addr,
            (NUM_FRAMES * FRAME_PIXELS) as u32,
        )
    }
}

impl Workload for MpegWorkload {
    fn name(&self) -> &'static str {
        "mpeg"
    }

    fn description(&self) -> &'static str {
        "Block-transform video encoder with I/P/B GOP structure and reconstruction loop"
    }

    fn fidelity_measure(&self) -> &'static str {
        "% bad frames (SNR loss > 2/4/6 dB for I/P/B); threshold 10% bad frames"
    }

    fn evaluate(&self, golden: &[u8], trial: Option<&[u8]>) -> Fidelity {
        let failed = Fidelity {
            score: 0.0,
            acceptable: false,
            detail: FidelityDetail::BadFrames { fraction: 1.0 },
        };
        let Some(out) = trial else { return failed };
        let (Some(golden_frames), Some(faulty_frames)) =
            (self.to_frames(golden), self.to_frames(out))
        else {
            return failed;
        };
        let source: Vec<Frame> = self
            .video
            .iter()
            .zip(GOP)
            .map(|(pixels, kind)| Frame {
                kind,
                pixels: pixels.clone(),
            })
            .collect();
        let fraction = bad_frame_fraction(&source, &golden_frames, &faulty_frames);
        Fidelity {
            score: 1.0 - fraction,
            acceptable: fraction <= BAD_FRAME_THRESHOLD,
            detail: FidelityDetail::BadFrames { fraction },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certa_core::analyze;
    use certa_fault::{run_campaign, CampaignConfig, Protection};
    use certa_fidelity::mpeg::frame_snr_db;
    use certa_sim::{MachineConfig, Outcome};

    #[test]
    fn gop_structure_is_sane() {
        let preds = pred_sources();
        assert_eq!(preds[0], None); // I
        assert_eq!(preds[1], Some(0)); // B from I
        assert_eq!(preds[2], Some(0)); // P from I
        assert_eq!(preds[3], Some(2)); // B from P
        assert_eq!(preds[4], Some(2)); // P from P
        assert_eq!(preds[5], Some(4)); // B from P
    }

    #[test]
    fn hadamard_is_self_inverse_up_to_16() {
        for v in [(1, 2, 3, 4), (-7, 0, 100, -100), (255, -255, 128, 1)] {
            let f = hadamard4(v.0, v.1, v.2, v.3);
            let b = hadamard4(f.0, f.1, f.2, f.3);
            assert_eq!((b.0 / 4, b.1 / 4, b.2 / 4, b.3 / 4), v);
        }
    }

    #[test]
    fn reference_reconstruction_is_high_quality() {
        let video = test_video(7);
        let recon = reference_encode(&video);
        for (f, (src, rec)) in video.iter().zip(&recon).enumerate() {
            let snr = frame_snr_db(src, rec);
            assert!(
                snr > 25.0,
                "frame {f} reconstruction too lossy: {snr:.1} dB"
            );
        }
    }

    #[test]
    fn guest_matches_reference() {
        let w = MpegWorkload::new();
        let mut m = Machine::new(w.program(), &MachineConfig::default());
        let r = m.run_simple();
        assert_eq!(r.outcome, Outcome::Halted);
        let out = w.extract(&m).expect("output readable");
        let expected: Vec<u8> = reference_encode(w.video()).into_iter().flatten().collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn evaluate_counts_bad_frames() {
        let w = MpegWorkload::new();
        let golden: Vec<u8> = reference_encode(w.video()).into_iter().flatten().collect();
        let perfect = w.evaluate(&golden, Some(&golden));
        assert!(perfect.acceptable);
        assert_eq!(perfect.score, 1.0);
        // wreck the I frame: every frame that depends on it transitively is
        // judged only by its own pixels, so exactly frame 0 turns bad here.
        let mut bad = golden.clone();
        for b in bad.iter_mut().take(FRAME_PIXELS) {
            *b = b.wrapping_add(60);
        }
        let f = w.evaluate(&golden, Some(&bad));
        assert!(matches!(
            f.detail,
            FidelityDetail::BadFrames { fraction } if fraction > 0.0
        ));
        assert!(!w.evaluate(&golden, None).acceptable);
    }

    #[test]
    fn protected_campaign_is_stable() {
        let w = MpegWorkload::new();
        let tags = analyze(w.program());
        let r = run_campaign(
            &w,
            &tags,
            &CampaignConfig {
                trials: 12,
                errors: 5,
                protection: Protection::ControlOnly,
                threads: 4,
                ..CampaignConfig::default()
            },
        );
        assert_eq!(r.failure_rate(), 0.0);
    }
}

//! # certa-aot
//!
//! Tier 4 of the execution pipeline: ahead-of-time translation of guest
//! programs into Rust source.
//!
//! [`codegen::generate_module`] walks a program's [`certa_core::Cfg`] and
//! emits one region-executor function per program — a threaded
//! `loop { match block_id }` over the basic blocks, guest integer and
//! floating-point registers lowered to locals, loads/stores through the
//! checked accessors of `certa_sim::aot::AotCtx`, and every pause,
//! watchdog, crash, halt, and uncompiled-target boundary compiled in as
//! an explicit early return carrying exact pc/icount/value-producing
//! state. A consumer (the bench crate's `build.rs`) writes the generated
//! source into `OUT_DIR` and compiles it into its own binary; the
//! interpreter tiers remain the bit-exact oracle and the fault-trial
//! substrate.
//!
//! [`progs`] holds the guest programs shared by the differential suite,
//! the benches, and the build-time generator — the seeded random-program
//! generator, the nested-loop lap kernel, and the paper-scale
//! ring-threshold kernel — so the exact instruction streams the tests
//! interpret are the ones the build script compiles to native code.

pub mod codegen;
pub mod progs;

pub use codegen::generate_module;

//! Guest programs shared by the differential suite, the benches, and the
//! build-time AOT generator.
//!
//! These used to live inside `tests/differential.rs` and the
//! `campaign_paper` bench; they are hoisted here so a build script can
//! construct byte-identical instruction streams and precompile them to
//! native code — if the test built one program and the generator another,
//! the differential suite would silently stop covering tier 4.

use certa_asm::Asm;
use certa_isa::{reg, Program};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Scratch-buffer size of [`random_program`]'s guarded memory traffic.
pub const RANDOM_BUF_LEN: u32 = 512;

/// Seeded random-program generator: loops, conditional side exits,
/// traced-through calls and jumps, guarded memory traffic, occasional
/// wild accesses — the shapes the superblock builder linearizes and the
/// AOT codegen compiles. Every branch except the fixed-count loop closers
/// is forward, so programs terminate (the watchdog backstops wild control
/// flow anyway).
///
/// # Panics
///
/// Panics if the generated source fails to assemble (a generator bug,
/// not a runtime condition).
#[must_use]
pub fn random_program(seed: u64) -> Program {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut a = Asm::new();
    let buf = a.data_zero(RANDOM_BUF_LEN as usize);

    a.func("leaf", false);
    a.muli(reg::V0, reg::A0, 3);
    a.addi(reg::V0, reg::V0, 7);
    a.ret();
    a.endfunc();

    a.func("main", false);
    a.la(reg::S0, buf);
    for (k, r) in [reg::T0, reg::T1, reg::T2, reg::T3, reg::V0, reg::A0]
        .into_iter()
        .enumerate()
    {
        a.li(r, rng.gen_range(-64..64) * (k as i32 + 1));
    }
    let outer: i32 = rng.gen_range(3..8);
    a.li(reg::S1, outer);
    a.label("outer");

    let temps = [reg::T0, reg::T1, reg::T2, reg::T3, reg::V0, reg::A0];
    let pick = |rng: &mut SmallRng| temps[rng.gen_range(0..temps.len())];
    let body_len = rng.gen_range(8..28);
    let mut label_id = 0usize;
    // Pending forward labels: (name, ops until placement).
    let mut pending: Vec<(String, i32)> = Vec::new();
    for _ in 0..body_len {
        for p in &mut pending {
            p.1 -= 1;
        }
        while let Some(pos) = pending.iter().position(|p| p.1 <= 0) {
            let (name, _) = pending.remove(pos);
            a.label(&name);
        }
        match rng.gen_range(0..100) {
            // Register-register ALU.
            0..=29 => {
                let (d, s, t) = (pick(&mut rng), pick(&mut rng), pick(&mut rng));
                match rng.gen_range(0..8) {
                    0 => a.add(d, s, t),
                    1 => a.sub(d, s, t),
                    2 => a.and(d, s, t),
                    3 => a.or(d, s, t),
                    4 => a.xor(d, s, t),
                    5 => a.mul(d, s, t),
                    6 => a.div(d, s, t),
                    _ => a.sll(d, s, t),
                }
            }
            // Register-immediate ALU / li.
            30..=49 => {
                let (d, s) = (pick(&mut rng), pick(&mut rng));
                let imm = rng.gen_range(-32..32);
                match rng.gen_range(0..6) {
                    0 => a.addi(d, s, imm),
                    1 => a.muli(d, s, imm),
                    2 => a.andi(d, s, imm & 0xFF),
                    3 => a.slti(d, s, imm),
                    4 => a.srai(d, s, rng.gen_range(0..6)),
                    _ => a.li(d, imm * 5),
                }
            }
            // Guarded memory traffic on the scratch buffer.
            50..=69 => {
                let d = pick(&mut rng);
                let s = pick(&mut rng);
                match rng.gen_range(0..4) {
                    0 => {
                        let off = rng.gen_range(0..(RANDOM_BUF_LEN / 4) as i32) * 4;
                        a.sw(s, off, reg::S0);
                    }
                    1 => {
                        let off = rng.gen_range(0..(RANDOM_BUF_LEN / 4) as i32) * 4;
                        a.lw(d, off, reg::S0);
                    }
                    2 => {
                        let off = rng.gen_range(0..RANDOM_BUF_LEN as i32);
                        a.sb(s, off, reg::S0);
                    }
                    _ => {
                        let off = rng.gen_range(0..RANDOM_BUF_LEN as i32);
                        a.lbu(d, off, reg::S0);
                    }
                }
            }
            // Forward conditional side exit (lands mid-trace).
            70..=84 => {
                let name = format!("skip{label_id}");
                label_id += 1;
                let (s, t) = (pick(&mut rng), pick(&mut rng));
                match rng.gen_range(0..4) {
                    0 => a.beq(s, t, &name),
                    1 => a.bne(s, t, &name),
                    2 => a.blt(s, t, &name),
                    _ => a.bgez(s, &name),
                }
                pending.push((name, rng.gen_range(1..5)));
            }
            // Inner fixed-count loop.
            85..=90 => {
                let name = format!("inner{label_id}");
                label_id += 1;
                a.li(reg::S2, rng.gen_range(1..4));
                a.label(&name);
                let (d, s) = (pick(&mut rng), pick(&mut rng));
                a.add(d, d, s);
                a.addi(reg::S2, reg::S2, -1);
                a.bnez(reg::S2, &name);
            }
            // Traced-through call.
            91..=94 => a.call("leaf"),
            // Forward unconditional jump (non-sequential trace layout).
            95..=97 => {
                let name = format!("fwd{label_id}");
                label_id += 1;
                a.j(&name);
                pick(&mut rng); // keep the stream moving
                a.nop();
                a.label(&name);
            }
            // Rarely: a wild access that may crash (tiers must agree on
            // the crash pc/icount too).
            _ => {
                let d = pick(&mut rng);
                a.lw(d, rng.gen_range(-8..8) * 4, pick(&mut rng));
            }
        }
    }
    for (name, _) in pending {
        a.label(&name);
    }
    a.addi(reg::S1, reg::S1, -1);
    a.bnez(reg::S1, "outer");
    a.halt();
    a.endfunc();
    a.assemble().expect("random program assembles")
}

/// Nested counted loops (inner trip varies per outer iteration via a
/// data dependency), with a traced call inside the loop body — the
/// unrolled-lap kernel the pause/resume and mid-region snapshot tests
/// slice at every boundary.
///
/// # Panics
///
/// Panics if the fixed source fails to assemble.
#[must_use]
pub fn nested_loop_program() -> Program {
    let mut a = Asm::new();
    let buf = a.data_zero(64);
    a.func("bump", false);
    a.addi(reg::V0, reg::V0, 3); // traced-through callee
    a.ret();
    a.endfunc();
    a.func("main", false);
    a.la(reg::S0, buf);
    a.li(reg::V0, 0);
    a.li(reg::T0, 5); // outer counter
    a.label("outer");
    a.add(reg::T1, reg::T0, reg::ZERO); // inner trip = outer counter
    a.label("inner");
    a.add(reg::V0, reg::V0, reg::T1);
    a.call("bump"); // call inside the innermost loop body
    a.sw(reg::V0, 0, reg::S0);
    a.addi(reg::T1, reg::T1, -1);
    a.bnez(reg::T1, "inner"); // inner back edge (unrolled)
    a.addi(reg::T0, reg::T0, -1);
    a.bnez(reg::T0, "outer"); // outer back edge
    a.halt();
    a.endfunc();
    a.assemble().unwrap()
}

/// Ring size of the paper-scale campaign kernel (bytes).
pub const PAPER_RING: usize = 4096;
/// Loop iterations of the paper-scale campaign kernel (~12 instructions
/// each puts the golden run near 1.6M).
pub const PAPER_ITERS: i32 = 1 << 17;

/// The ring-threshold kernel of the `campaign_paper` bench:
/// `out[i % ring] = ((in[i % ring] * 3 + 7) & 0xff) < 128`, over `iters`
/// iterations. Returns `(program, input_addr, output_addr)`.
///
/// # Panics
///
/// Panics if the fixed source fails to assemble.
#[must_use]
pub fn ring_threshold_program(ring: usize, iters: i32) -> (Program, u32, u32) {
    assert!(ring.is_power_of_two(), "ring size must be a power of two");
    let mut a = Asm::new();
    let input_addr = a.data_zero(ring);
    let output_addr = a.data_zero(ring);
    a.func("threshold", true);
    a.la(reg::T0, input_addr);
    a.la(reg::T4, output_addr);
    a.li(reg::T1, 0);
    a.label("loop");
    a.andi(reg::T5, reg::T1, (ring - 1) as i32);
    a.add(reg::T3, reg::T0, reg::T5);
    a.lbu(reg::T3, 0, reg::T3);
    a.muli(reg::T3, reg::T3, 3);
    a.addi(reg::T3, reg::T3, 7);
    a.andi(reg::T3, reg::T3, 255);
    a.slti(reg::T3, reg::T3, 128);
    a.add(reg::T6, reg::T4, reg::T5);
    a.sb(reg::T3, 0, reg::T6);
    a.addi(reg::T1, reg::T1, 1);
    a.slti(reg::T6, reg::T1, iters);
    a.bnez(reg::T6, "loop");
    a.ret();
    a.endfunc();
    a.func("main", false);
    a.call("threshold");
    a.halt();
    a.endfunc();
    (a.assemble().unwrap(), input_addr, output_addr)
}

/// Seeds of [`random_program`] the bench build script precompiles (the
/// AOT differential tests iterate exactly these).
pub const AOT_RANDOM_SEEDS: std::ops::Range<u64> = 0..12;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_programs_are_deterministic_per_seed() {
        for seed in [0u64, 3, 11] {
            assert_eq!(
                random_program(seed).code,
                random_program(seed).code,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn fixed_programs_assemble() {
        let p = nested_loop_program();
        assert!(!p.code.is_empty());
        let (ring, input, output) = ring_threshold_program(64, 8);
        assert!(!ring.code.is_empty());
        assert_ne!(input, output);
    }
}

//! The instruction set, with def/use metadata for dataflow analysis.
//!
//! Every instruction knows which register it *defines* ([`Instr::def`]) and
//! which registers it *uses*, with each use classified as a [`UseKind`]:
//! ordinary data, an address operand of a memory access, or a control operand
//! (branch comparison input or indirect-jump target). The classification is
//! what the paper's static analysis consumes: control and address uses seed
//! the `CVar` set of control-influencing variables.

use std::fmt;

use crate::register::{FReg, Reg};

/// Integer ALU operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication (low 32 bits).
    Mul,
    /// Signed division. Division by zero yields 0 (does not trap), matching
    /// the behaviour of MIPS `div` followed by `mflo` on common cores.
    Div,
    /// Signed remainder. Remainder by zero yields 0.
    Rem,
    /// Unsigned division. Division by zero yields 0.
    Divu,
    /// Unsigned remainder. Remainder by zero yields 0.
    Remu,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Bitwise NOR.
    Nor,
    /// Logical shift left (shift amount taken modulo 32).
    Sll,
    /// Logical shift right (shift amount taken modulo 32).
    Srl,
    /// Arithmetic shift right (shift amount taken modulo 32).
    Sra,
    /// Set-if-less-than, signed: `rd = (rs < rt) as u32`.
    Slt,
    /// Set-if-less-than, unsigned.
    Sltu,
}

impl AluOp {
    /// The assembly mnemonic for the register-register form.
    #[must_use]
    pub const fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::Divu => "divu",
            AluOp::Remu => "remu",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Nor => "nor",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
        }
    }

    /// All ALU operations, for exhaustive testing.
    pub const ALL: [AluOp; 16] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Rem,
        AluOp::Divu,
        AluOp::Remu,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Nor,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::Slt,
        AluOp::Sltu,
    ];
}

/// Branch comparison condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Branch if equal.
    Eq,
    /// Branch if not equal.
    Ne,
    /// Branch if less than (signed).
    Lt,
    /// Branch if greater or equal (signed).
    Ge,
    /// Branch if less than (unsigned).
    Ltu,
    /// Branch if greater or equal (unsigned).
    Geu,
}

impl CmpOp {
    /// The branch mnemonic (e.g. `beq`).
    #[must_use]
    pub const fn mnemonic(self) -> &'static str {
        match self {
            CmpOp::Eq => "beq",
            CmpOp::Ne => "bne",
            CmpOp::Lt => "blt",
            CmpOp::Ge => "bge",
            CmpOp::Ltu => "bltu",
            CmpOp::Geu => "bgeu",
        }
    }

    /// Evaluates the condition on two register values.
    #[must_use]
    pub fn eval(self, a: u32, b: u32) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => (a as i32) < (b as i32),
            CmpOp::Ge => (a as i32) >= (b as i32),
            CmpOp::Ltu => a < b,
            CmpOp::Geu => a >= b,
        }
    }

    /// The negated condition (`beq` ↔ `bne`, `blt` ↔ `bge`, ...).
    #[must_use]
    pub const fn negate(self) -> Self {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Ge => CmpOp::Lt,
            CmpOp::Ltu => CmpOp::Geu,
            CmpOp::Geu => CmpOp::Ltu,
        }
    }
}

/// Width of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// 8-bit access.
    Byte,
    /// 16-bit access (must be 2-byte aligned).
    Half,
    /// 32-bit access (must be 4-byte aligned).
    Word,
}

impl MemWidth {
    /// Access size in bytes.
    #[must_use]
    pub const fn bytes(self) -> u32 {
        match self {
            MemWidth::Byte => 1,
            MemWidth::Half => 2,
            MemWidth::Word => 4,
        }
    }
}

/// Floating-point arithmetic operation (double precision).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpuOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Minimum (propagates the non-NaN operand).
    Min,
    /// Maximum (propagates the non-NaN operand).
    Max,
}

impl FpuOp {
    /// The assembly mnemonic (e.g. `add.d`).
    #[must_use]
    pub const fn mnemonic(self) -> &'static str {
        match self {
            FpuOp::Add => "add.d",
            FpuOp::Sub => "sub.d",
            FpuOp::Mul => "mul.d",
            FpuOp::Div => "div.d",
            FpuOp::Min => "min.d",
            FpuOp::Max => "max.d",
        }
    }
}

/// Floating-point comparison writing a 0/1 integer result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FCmpOp {
    /// Equal.
    Eq,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
}

impl FCmpOp {
    /// The assembly mnemonic (e.g. `c.lt.d`).
    #[must_use]
    pub const fn mnemonic(self) -> &'static str {
        match self {
            FCmpOp::Eq => "c.eq.d",
            FCmpOp::Lt => "c.lt.d",
            FCmpOp::Le => "c.le.d",
        }
    }

    /// Evaluates the comparison. NaN operands compare false.
    #[must_use]
    pub fn eval(self, a: f64, b: f64) -> bool {
        match self {
            FCmpOp::Eq => a == b,
            FCmpOp::Lt => a < b,
            FCmpOp::Le => a <= b,
        }
    }
}

/// A reference to either an integer or a floating-point register, used by
/// the def/use interface so dataflow analyses can treat both files uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RegRef {
    /// Integer register.
    Int(Reg),
    /// Floating-point register.
    Float(FReg),
}

impl RegRef {
    /// A dense index over both register files (ints 0–31, floats 32–63),
    /// convenient for bitset-based dataflow.
    #[must_use]
    pub fn dense_index(self) -> usize {
        match self {
            RegRef::Int(r) => r.index(),
            RegRef::Float(f) => 32 + f.index(),
        }
    }

    /// Inverse of [`RegRef::dense_index`].
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 64`.
    #[must_use]
    pub fn from_dense_index(idx: usize) -> Self {
        assert!(idx < 64, "dense register index out of range");
        if idx < 32 {
            RegRef::Int(Reg::new(idx as u8))
        } else {
            RegRef::Float(FReg::new((idx - 32) as u8))
        }
    }
}

impl fmt::Display for RegRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegRef::Int(r) => r.fmt(f),
            RegRef::Float(r) => r.fmt(f),
        }
    }
}

/// How an instruction uses a register operand.
///
/// The paper's analysis cares about the distinction: *control* uses (branch
/// inputs, indirect-jump targets) and *address* uses (base registers of loads
/// and stores) seed the set of control-influencing variables, while pure
/// *data* uses do not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UseKind {
    /// Ordinary data operand.
    Data,
    /// Address operand of a memory access.
    Address,
    /// Control operand: branch comparison input or indirect-jump target.
    Control,
}

/// Control-flow classification of an instruction, used by CFG construction
/// and the simulator's superblock builder to follow straight-line runs
/// without re-matching the full [`Instr`] enum.
///
/// Obtained from [`Instr::branch_kind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchKind {
    /// Straight-line: execution always continues at the next instruction
    /// (the instruction may still *crash* — loads and stores are here).
    FallThrough,
    /// Conditional branch: continues at `target` when taken, at the next
    /// instruction otherwise.
    Conditional {
        /// Taken-path instruction index.
        target: usize,
    },
    /// Unconditional jump to a static target.
    Jump {
        /// Target instruction index.
        target: usize,
    },
    /// Call: jumps to `target` and defines `$ra`.
    Call {
        /// Callee entry instruction index.
        target: usize,
    },
    /// Indirect jump through a register (returns); no static target.
    Indirect,
    /// Stops execution.
    Halt,
}

impl BranchKind {
    /// Whether this kind ever continues at the next instruction index
    /// (mirrors [`Instr::can_fall_through`]).
    #[must_use]
    pub const fn can_fall_through(self) -> bool {
        matches!(
            self,
            BranchKind::FallThrough | BranchKind::Conditional { .. }
        )
    }
}

/// A single instruction.
///
/// Branch and jump targets are *instruction indices* into the program's code
/// array (the assembler resolves labels to indices). There is no binary
/// encoding: the simulator executes this enum directly, which is all a
/// functional fault-injection study requires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instr {
    /// Register-register ALU operation: `rd = rs op rt`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// First source.
        rs: Reg,
        /// Second source.
        rt: Reg,
    },
    /// Register-immediate ALU operation: `rd = rs op imm`.
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// Source.
        rs: Reg,
        /// Immediate operand.
        imm: i32,
    },
    /// Load immediate: `rd = imm` (pseudo-instruction covering `lui`+`ori`).
    Li {
        /// Destination.
        rd: Reg,
        /// Immediate value.
        imm: i32,
    },
    /// Memory load: `rd = mem[base + off]`.
    Load {
        /// Access width.
        width: MemWidth,
        /// Whether sub-word loads sign-extend.
        signed: bool,
        /// Destination.
        rd: Reg,
        /// Base address register (an *address* use).
        base: Reg,
        /// Byte offset.
        off: i32,
    },
    /// Memory store: `mem[base + off] = rs`.
    Store {
        /// Access width.
        width: MemWidth,
        /// Value to store (a *data* use).
        rs: Reg,
        /// Base address register (an *address* use).
        base: Reg,
        /// Byte offset.
        off: i32,
    },
    /// Conditional branch: `if rs cond rt goto target`.
    Branch {
        /// Condition.
        cond: CmpOp,
        /// First comparison operand (a *control* use).
        rs: Reg,
        /// Second comparison operand (a *control* use).
        rt: Reg,
        /// Target instruction index.
        target: usize,
    },
    /// Unconditional jump.
    Jump {
        /// Target instruction index.
        target: usize,
    },
    /// Call: jumps to `target` and writes the return address (the index of
    /// the following instruction) to `$ra`.
    Call {
        /// Target instruction index (function entry).
        target: usize,
    },
    /// Indirect jump: `goto rs` (used for returns; the register value is an
    /// instruction index).
    JumpReg {
        /// Target register (a *control* use).
        rs: Reg,
    },
    /// Floating-point arithmetic: `fd = fs op ft`.
    Fpu {
        /// Operation.
        op: FpuOp,
        /// Destination.
        fd: FReg,
        /// First source.
        fs: FReg,
        /// Second source.
        ft: FReg,
    },
    /// Floating-point move: `fd = fs`.
    FMov {
        /// Destination.
        fd: FReg,
        /// Source.
        fs: FReg,
    },
    /// Floating-point absolute value: `fd = |fs|`.
    FAbs {
        /// Destination.
        fd: FReg,
        /// Source.
        fs: FReg,
    },
    /// Floating-point negation: `fd = -fs`.
    FNeg {
        /// Destination.
        fd: FReg,
        /// Source.
        fs: FReg,
    },
    /// Floating-point square root: `fd = sqrt(fs)` (NaN for negative input).
    FSqrt {
        /// Destination.
        fd: FReg,
        /// Source.
        fs: FReg,
    },
    /// Load floating-point immediate.
    FLi {
        /// Destination.
        fd: FReg,
        /// Immediate value.
        value: f64,
    },
    /// Load a 64-bit float from memory (8-byte aligned).
    FLoad {
        /// Destination.
        fd: FReg,
        /// Base address register (an *address* use).
        base: Reg,
        /// Byte offset.
        off: i32,
    },
    /// Store a 64-bit float to memory (8-byte aligned).
    FStore {
        /// Value to store (a *data* use).
        fs: FReg,
        /// Base address register (an *address* use).
        base: Reg,
        /// Byte offset.
        off: i32,
    },
    /// Convert signed integer to double: `fd = rs as f64`.
    CvtIF {
        /// Destination.
        fd: FReg,
        /// Integer source.
        rs: Reg,
    },
    /// Convert double to signed integer with truncation and saturation:
    /// `rd = fs as i32`.
    CvtFI {
        /// Integer destination.
        rd: Reg,
        /// Source.
        fs: FReg,
    },
    /// Floating-point comparison: `rd = (fs op ft) as u32`.
    FCmp {
        /// Comparison.
        op: FCmpOp,
        /// Integer destination (0 or 1).
        rd: Reg,
        /// First operand.
        fs: FReg,
        /// Second operand.
        ft: FReg,
    },
    /// Stops execution successfully.
    Halt,
    /// No operation.
    Nop,
}

impl Instr {
    /// The register this instruction defines (writes), if any.
    ///
    /// Writes to `$zero` still report a definition here; the simulator
    /// discards them, and the analysis treats them as dead.
    #[must_use]
    pub fn def(&self) -> Option<RegRef> {
        match *self {
            Instr::Alu { rd, .. }
            | Instr::AluImm { rd, .. }
            | Instr::Li { rd, .. }
            | Instr::Load { rd, .. }
            | Instr::CvtFI { rd, .. }
            | Instr::FCmp { rd, .. } => Some(RegRef::Int(rd)),
            Instr::Fpu { fd, .. }
            | Instr::FMov { fd, .. }
            | Instr::FAbs { fd, .. }
            | Instr::FNeg { fd, .. }
            | Instr::FSqrt { fd, .. }
            | Instr::FLi { fd, .. }
            | Instr::FLoad { fd, .. }
            | Instr::CvtIF { fd, .. } => Some(RegRef::Float(fd)),
            Instr::Call { .. } => Some(RegRef::Int(crate::reg::RA)),
            Instr::Store { .. }
            | Instr::Branch { .. }
            | Instr::Jump { .. }
            | Instr::JumpReg { .. }
            | Instr::FStore { .. }
            | Instr::Halt
            | Instr::Nop => None,
        }
    }

    /// Invokes `f` for every register this instruction reads, with the
    /// [`UseKind`] classification of each use.
    pub fn for_each_use(&self, mut f: impl FnMut(RegRef, UseKind)) {
        match *self {
            Instr::Alu { rs, rt, .. } => {
                f(RegRef::Int(rs), UseKind::Data);
                f(RegRef::Int(rt), UseKind::Data);
            }
            Instr::AluImm { rs, .. } => f(RegRef::Int(rs), UseKind::Data),
            Instr::Li { .. } | Instr::FLi { .. } => {}
            Instr::Load { base, .. } | Instr::FLoad { base, .. } => {
                f(RegRef::Int(base), UseKind::Address);
            }
            Instr::Store { rs, base, .. } => {
                f(RegRef::Int(rs), UseKind::Data);
                f(RegRef::Int(base), UseKind::Address);
            }
            Instr::FStore { fs, base, .. } => {
                f(RegRef::Float(fs), UseKind::Data);
                f(RegRef::Int(base), UseKind::Address);
            }
            Instr::Branch { rs, rt, .. } => {
                f(RegRef::Int(rs), UseKind::Control);
                f(RegRef::Int(rt), UseKind::Control);
            }
            Instr::Jump { .. } | Instr::Call { .. } | Instr::Halt | Instr::Nop => {}
            Instr::JumpReg { rs } => f(RegRef::Int(rs), UseKind::Control),
            Instr::Fpu { fs, ft, .. } => {
                f(RegRef::Float(fs), UseKind::Data);
                f(RegRef::Float(ft), UseKind::Data);
            }
            Instr::FMov { fs, .. }
            | Instr::FAbs { fs, .. }
            | Instr::FNeg { fs, .. }
            | Instr::FSqrt { fs, .. } => f(RegRef::Float(fs), UseKind::Data),
            Instr::CvtIF { rs, .. } => f(RegRef::Int(rs), UseKind::Data),
            Instr::CvtFI { fs, .. } => f(RegRef::Float(fs), UseKind::Data),
            Instr::FCmp { fs, ft, .. } => {
                f(RegRef::Float(fs), UseKind::Data);
                f(RegRef::Float(ft), UseKind::Data);
            }
        }
    }

    /// Collects the uses into a vector (convenience for tests and tools).
    #[must_use]
    pub fn uses(&self) -> Vec<(RegRef, UseKind)> {
        let mut out = Vec::with_capacity(2);
        self.for_each_use(|r, k| out.push((r, k)));
        out
    }

    /// Whether this instruction produces a register value into which a fault
    /// could be injected. Writes to `$zero` are excluded: they are discarded
    /// and can never propagate.
    #[must_use]
    pub fn is_value_producing(&self) -> bool {
        match self.def() {
            Some(RegRef::Int(r)) => !r.is_zero(),
            Some(RegRef::Float(_)) => true,
            None => false,
        }
    }

    /// Whether executing this instruction can ever continue at the next
    /// instruction index. Unconditional transfers (`j`, `jal`, `jr`) and
    /// `halt` cannot; everything else — including conditional branches and
    /// faultable memory accesses — can.
    ///
    /// The simulator's predecoder uses this to pick fused-pair heads: when
    /// an instruction *did* fall through, its successor can retire in the
    /// same dispatch iteration.
    #[must_use]
    pub fn can_fall_through(&self) -> bool {
        !matches!(
            self,
            Instr::Jump { .. } | Instr::Call { .. } | Instr::JumpReg { .. } | Instr::Halt
        )
    }

    /// Classifies this instruction's effect on control flow (see
    /// [`BranchKind`]). `branch_kind().can_fall_through()` agrees with
    /// [`Instr::can_fall_through`] by construction (a unit test pins it).
    #[must_use]
    pub fn branch_kind(&self) -> BranchKind {
        match *self {
            Instr::Branch { target, .. } => BranchKind::Conditional { target },
            Instr::Jump { target } => BranchKind::Jump { target },
            Instr::Call { target } => BranchKind::Call { target },
            Instr::JumpReg { .. } => BranchKind::Indirect,
            Instr::Halt => BranchKind::Halt,
            _ => BranchKind::FallThrough,
        }
    }

    /// Whether this instruction can change control flow (branch, jump, call,
    /// indirect jump, halt).
    #[must_use]
    pub fn is_control_transfer(&self) -> bool {
        matches!(
            self,
            Instr::Branch { .. }
                | Instr::Jump { .. }
                | Instr::Call { .. }
                | Instr::JumpReg { .. }
                | Instr::Halt
        )
    }

    /// Whether this instruction is a conditional branch.
    #[must_use]
    pub fn is_branch(&self) -> bool {
        matches!(self, Instr::Branch { .. })
    }

    /// Whether this instruction accesses memory.
    #[must_use]
    pub fn is_mem_access(&self) -> bool {
        matches!(
            self,
            Instr::Load { .. } | Instr::Store { .. } | Instr::FLoad { .. } | Instr::FStore { .. }
        )
    }

    /// The static branch/jump/call target, if this instruction has one.
    #[must_use]
    pub fn static_target(&self) -> Option<usize> {
        match *self {
            Instr::Branch { target, .. } | Instr::Jump { target } | Instr::Call { target } => {
                Some(target)
            }
            _ => None,
        }
    }

    /// Rewrites the static target (used by the assembler's label fixups).
    pub fn set_static_target(&mut self, new_target: usize) {
        match self {
            Instr::Branch { target, .. } | Instr::Jump { target } | Instr::Call { target } => {
                *target = new_target;
            }
            _ => {}
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Alu { op, rd, rs, rt } => {
                write!(f, "{} {}, {}, {}", op.mnemonic(), rd, rs, rt)
            }
            Instr::AluImm { op, rd, rs, imm } => {
                write!(f, "{}i {}, {}, {}", op.mnemonic(), rd, rs, imm)
            }
            Instr::Li { rd, imm } => write!(f, "li {rd}, {imm}"),
            Instr::Load {
                width,
                signed,
                rd,
                base,
                off,
            } => {
                let m = match (width, signed) {
                    (MemWidth::Byte, true) => "lb",
                    (MemWidth::Byte, false) => "lbu",
                    (MemWidth::Half, true) => "lh",
                    (MemWidth::Half, false) => "lhu",
                    (MemWidth::Word, _) => "lw",
                };
                write!(f, "{m} {rd}, {off}({base})")
            }
            Instr::Store {
                width, rs, base, off, ..
            } => {
                let m = match width {
                    MemWidth::Byte => "sb",
                    MemWidth::Half => "sh",
                    MemWidth::Word => "sw",
                };
                write!(f, "{m} {rs}, {off}({base})")
            }
            Instr::Branch {
                cond,
                rs,
                rt,
                target,
            } => write!(f, "{} {}, {}, @{}", cond.mnemonic(), rs, rt, target),
            Instr::Jump { target } => write!(f, "j @{target}"),
            Instr::Call { target } => write!(f, "jal @{target}"),
            Instr::JumpReg { rs } => write!(f, "jr {rs}"),
            Instr::Fpu { op, fd, fs, ft } => {
                write!(f, "{} {}, {}, {}", op.mnemonic(), fd, fs, ft)
            }
            Instr::FMov { fd, fs } => write!(f, "mov.d {fd}, {fs}"),
            Instr::FAbs { fd, fs } => write!(f, "abs.d {fd}, {fs}"),
            Instr::FNeg { fd, fs } => write!(f, "neg.d {fd}, {fs}"),
            Instr::FSqrt { fd, fs } => write!(f, "sqrt.d {fd}, {fs}"),
            Instr::FLi { fd, value } => write!(f, "li.d {fd}, {value}"),
            Instr::FLoad { fd, base, off } => write!(f, "l.d {fd}, {off}({base})"),
            Instr::FStore { fs, base, off } => write!(f, "s.d {fs}, {off}({base})"),
            Instr::CvtIF { fd, rs } => write!(f, "cvt.d.w {fd}, {rs}"),
            Instr::CvtFI { rd, fs } => write!(f, "trunc.w.d {rd}, {fs}"),
            Instr::FCmp { op, rd, fs, ft } => {
                write!(f, "{} {}, {}, {}", op.mnemonic(), rd, fs, ft)
            }
            Instr::Halt => write!(f, "halt"),
            Instr::Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg;

    #[test]
    fn def_and_uses_of_alu() {
        let i = Instr::Alu {
            op: AluOp::Add,
            rd: reg::T0,
            rs: reg::T1,
            rt: reg::T2,
        };
        assert_eq!(i.def(), Some(RegRef::Int(reg::T0)));
        assert_eq!(
            i.uses(),
            vec![
                (RegRef::Int(reg::T1), UseKind::Data),
                (RegRef::Int(reg::T2), UseKind::Data)
            ]
        );
        assert!(i.is_value_producing());
        assert!(!i.is_control_transfer());
    }

    #[test]
    fn branch_uses_are_control() {
        let i = Instr::Branch {
            cond: CmpOp::Ne,
            rs: reg::T0,
            rt: reg::ZERO,
            target: 7,
        };
        assert_eq!(i.def(), None);
        for (_, kind) in i.uses() {
            assert_eq!(kind, UseKind::Control);
        }
        assert!(i.is_control_transfer());
        assert_eq!(i.static_target(), Some(7));
    }

    #[test]
    fn load_base_is_address_use() {
        let i = Instr::Load {
            width: MemWidth::Word,
            signed: true,
            rd: reg::T0,
            base: reg::S0,
            off: 4,
        };
        assert_eq!(i.uses(), vec![(RegRef::Int(reg::S0), UseKind::Address)]);
    }

    #[test]
    fn store_has_data_and_address_uses() {
        let i = Instr::Store {
            width: MemWidth::Word,
            rs: reg::T1,
            base: reg::SP,
            off: -8,
        };
        assert_eq!(
            i.uses(),
            vec![
                (RegRef::Int(reg::T1), UseKind::Data),
                (RegRef::Int(reg::SP), UseKind::Address)
            ]
        );
        assert!(!i.is_value_producing());
    }

    #[test]
    fn call_defines_ra() {
        let i = Instr::Call { target: 3 };
        assert_eq!(i.def(), Some(RegRef::Int(reg::RA)));
    }

    #[test]
    fn fall_through_excludes_unconditional_transfers_only() {
        assert!(!Instr::Jump { target: 0 }.can_fall_through());
        assert!(!Instr::Call { target: 0 }.can_fall_through());
        assert!(!Instr::JumpReg { rs: reg::RA }.can_fall_through());
        assert!(!Instr::Halt.can_fall_through());
        // Conditional branches and faultable memory ops can fall through.
        assert!(Instr::Branch {
            cond: CmpOp::Eq,
            rs: reg::T0,
            rt: reg::T1,
            target: 0
        }
        .can_fall_through());
        assert!(Instr::Load {
            width: MemWidth::Word,
            signed: true,
            rd: reg::T0,
            base: reg::T1,
            off: 0
        }
        .can_fall_through());
        assert!(Instr::Nop.can_fall_through());
    }

    #[test]
    fn branch_kind_classifies_every_transfer() {
        assert_eq!(
            Instr::Branch {
                cond: CmpOp::Lt,
                rs: reg::T0,
                rt: reg::T1,
                target: 9
            }
            .branch_kind(),
            BranchKind::Conditional { target: 9 }
        );
        assert_eq!(
            Instr::Jump { target: 4 }.branch_kind(),
            BranchKind::Jump { target: 4 }
        );
        assert_eq!(
            Instr::Call { target: 2 }.branch_kind(),
            BranchKind::Call { target: 2 }
        );
        assert_eq!(
            Instr::JumpReg { rs: reg::RA }.branch_kind(),
            BranchKind::Indirect
        );
        assert_eq!(Instr::Halt.branch_kind(), BranchKind::Halt);
        assert_eq!(Instr::Nop.branch_kind(), BranchKind::FallThrough);
        assert_eq!(
            Instr::Store {
                width: MemWidth::Word,
                rs: reg::T0,
                base: reg::SP,
                off: 0
            }
            .branch_kind(),
            BranchKind::FallThrough
        );
    }

    #[test]
    fn branch_kind_fall_through_agrees_with_instr() {
        let samples = [
            Instr::Nop,
            Instr::Halt,
            Instr::Jump { target: 0 },
            Instr::Call { target: 0 },
            Instr::JumpReg { rs: reg::RA },
            Instr::Li {
                rd: reg::T0,
                imm: 3,
            },
            Instr::Branch {
                cond: CmpOp::Eq,
                rs: reg::T0,
                rt: reg::T1,
                target: 0,
            },
            Instr::Load {
                width: MemWidth::Word,
                signed: false,
                rd: reg::T0,
                base: reg::T1,
                off: 0,
            },
        ];
        for i in samples {
            assert_eq!(
                i.branch_kind().can_fall_through(),
                i.can_fall_through(),
                "{i}"
            );
        }
    }

    #[test]
    fn zero_write_not_value_producing() {
        let i = Instr::Li {
            rd: reg::ZERO,
            imm: 5,
        };
        assert!(!i.is_value_producing());
    }

    #[test]
    fn set_static_target_rewrites() {
        let mut i = Instr::Jump { target: 0 };
        i.set_static_target(42);
        assert_eq!(i.static_target(), Some(42));
    }

    #[test]
    fn dense_index_round_trip() {
        for idx in 0..64 {
            assert_eq!(RegRef::from_dense_index(idx).dense_index(), idx);
        }
    }

    #[test]
    fn cmp_eval_matrix() {
        assert!(CmpOp::Lt.eval((-1i32) as u32, 0));
        assert!(!CmpOp::Ltu.eval((-1i32) as u32, 0));
        assert!(CmpOp::Geu.eval((-1i32) as u32, 0));
        assert!(CmpOp::Eq.eval(5, 5));
        assert!(CmpOp::Ne.eval(5, 6));
        assert!(CmpOp::Ge.eval(0, -5i32 as u32));
    }

    #[test]
    fn cmp_negate_is_involution() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Ge,
            CmpOp::Ltu,
            CmpOp::Geu,
        ] {
            assert_eq!(op.negate().negate(), op);
            // negation flips the outcome on arbitrary operands
            for (a, b) in [(0u32, 0u32), (1, 2), (u32::MAX, 3)] {
                assert_ne!(op.eval(a, b), op.negate().eval(a, b));
            }
        }
    }

    #[test]
    fn fcmp_nan_is_false() {
        assert!(!FCmpOp::Eq.eval(f64::NAN, f64::NAN));
        assert!(!FCmpOp::Lt.eval(f64::NAN, 1.0));
        assert!(FCmpOp::Le.eval(1.0, 1.0));
    }

    #[test]
    fn display_smoke() {
        let i = Instr::Load {
            width: MemWidth::Byte,
            signed: false,
            rd: reg::T3,
            base: reg::GP,
            off: 16,
        };
        assert_eq!(i.to_string(), "lbu $t3, 16($gp)");
    }
}

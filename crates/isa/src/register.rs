//! Integer and floating-point register names.
//!
//! Registers follow the classic MIPS o32 conventions: `$zero` is hardwired to
//! zero, `$v0`/`$v1` carry return values, `$a0`–`$a3` carry arguments,
//! `$t0`–`$t9` are caller-saved temporaries, `$s0`–`$s7` are callee-saved,
//! `$sp` is the stack pointer and `$ra` the return address.

use std::fmt;
use std::str::FromStr;

/// An integer register (`$0` – `$31`).
///
/// `Reg(0)` (`$zero`) always reads as zero; writes to it are discarded by the
/// simulator.
///
/// ```
/// use certa_isa::{reg, Reg};
/// assert_eq!(reg::SP.index(), 29);
/// assert_eq!("$t3".parse::<Reg>().unwrap(), reg::T3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

/// A floating-point register (`$f0` – `$f31`) holding an IEEE-754 `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FReg(u8);

impl Reg {
    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[must_use]
    pub const fn new(index: u8) -> Self {
        assert!(index < 32, "integer register index out of range");
        Reg(index)
    }

    /// The register's index (0–31).
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the hardwired-zero register `$zero`.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Conventional MIPS name (e.g. `$t0`, `$sp`).
    #[must_use]
    pub const fn name(self) -> &'static str {
        REG_NAMES[self.0 as usize]
    }
}

impl FReg {
    /// Creates a floating-point register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[must_use]
    pub const fn new(index: u8) -> Self {
        assert!(index < 32, "float register index out of range");
        FReg(index)
    }

    /// The register's index (0–31).
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

const REG_NAMES: [&str; 32] = [
    "$zero", "$at", "$v0", "$v1", "$a0", "$a1", "$a2", "$a3", "$t0", "$t1", "$t2", "$t3", "$t4",
    "$t5", "$t6", "$t7", "$s0", "$s1", "$s2", "$s3", "$s4", "$s5", "$s6", "$s7", "$t8", "$t9",
    "$k0", "$k1", "$gp", "$sp", "$fp", "$ra",
];

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "$f{}", self.0)
    }
}

/// Error returned when parsing a register name fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegParseError(pub String);

impl fmt::Display for RegParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown register name `{}`", self.0)
    }
}

impl std::error::Error for RegParseError {}

impl FromStr for Reg {
    type Err = RegParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(pos) = REG_NAMES.iter().position(|n| *n == s) {
            return Ok(Reg(pos as u8));
        }
        // Also accept `$0` .. `$31`.
        if let Some(num) = s.strip_prefix('$') {
            if let Ok(i) = num.parse::<u8>() {
                if i < 32 {
                    return Ok(Reg(i));
                }
            }
        }
        Err(RegParseError(s.to_string()))
    }
}

impl FromStr for FReg {
    type Err = RegParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(num) = s.strip_prefix("$f") {
            if let Ok(i) = num.parse::<u8>() {
                if i < 32 {
                    return Ok(FReg(i));
                }
            }
        }
        Err(RegParseError(s.to_string()))
    }
}

/// Named register constants following the MIPS o32 convention.
pub mod reg {
    use super::{FReg, Reg};

    /// Hardwired zero.
    pub const ZERO: Reg = Reg::new(0);
    /// Assembler temporary.
    pub const AT: Reg = Reg::new(1);
    /// Return value 0.
    pub const V0: Reg = Reg::new(2);
    /// Return value 1.
    pub const V1: Reg = Reg::new(3);
    /// Argument 0.
    pub const A0: Reg = Reg::new(4);
    /// Argument 1.
    pub const A1: Reg = Reg::new(5);
    /// Argument 2.
    pub const A2: Reg = Reg::new(6);
    /// Argument 3.
    pub const A3: Reg = Reg::new(7);
    /// Caller-saved temporary 0.
    pub const T0: Reg = Reg::new(8);
    /// Caller-saved temporary 1.
    pub const T1: Reg = Reg::new(9);
    /// Caller-saved temporary 2.
    pub const T2: Reg = Reg::new(10);
    /// Caller-saved temporary 3.
    pub const T3: Reg = Reg::new(11);
    /// Caller-saved temporary 4.
    pub const T4: Reg = Reg::new(12);
    /// Caller-saved temporary 5.
    pub const T5: Reg = Reg::new(13);
    /// Caller-saved temporary 6.
    pub const T6: Reg = Reg::new(14);
    /// Caller-saved temporary 7.
    pub const T7: Reg = Reg::new(15);
    /// Callee-saved 0.
    pub const S0: Reg = Reg::new(16);
    /// Callee-saved 1.
    pub const S1: Reg = Reg::new(17);
    /// Callee-saved 2.
    pub const S2: Reg = Reg::new(18);
    /// Callee-saved 3.
    pub const S3: Reg = Reg::new(19);
    /// Callee-saved 4.
    pub const S4: Reg = Reg::new(20);
    /// Callee-saved 5.
    pub const S5: Reg = Reg::new(21);
    /// Callee-saved 6.
    pub const S6: Reg = Reg::new(22);
    /// Callee-saved 7.
    pub const S7: Reg = Reg::new(23);
    /// Caller-saved temporary 8.
    pub const T8: Reg = Reg::new(24);
    /// Caller-saved temporary 9.
    pub const T9: Reg = Reg::new(25);
    /// Kernel reserved 0 (used by the harness for scratch).
    pub const K0: Reg = Reg::new(26);
    /// Kernel reserved 1 (used by the harness for scratch).
    pub const K1: Reg = Reg::new(27);
    /// Global pointer (base of static data in the certa ABI).
    pub const GP: Reg = Reg::new(28);
    /// Stack pointer.
    pub const SP: Reg = Reg::new(29);
    /// Frame pointer.
    pub const FP: Reg = Reg::new(30);
    /// Return address.
    pub const RA: Reg = Reg::new(31);

    /// Floating-point return value.
    pub const F0: FReg = FReg::new(0);
    /// Floating-point temporary 1.
    pub const F1: FReg = FReg::new(1);
    /// Floating-point temporary 2.
    pub const F2: FReg = FReg::new(2);
    /// Floating-point temporary 3.
    pub const F3: FReg = FReg::new(3);
    /// Floating-point temporary 4.
    pub const F4: FReg = FReg::new(4);
    /// Floating-point temporary 5.
    pub const F5: FReg = FReg::new(5);
    /// Floating-point temporary 6.
    pub const F6: FReg = FReg::new(6);
    /// Floating-point temporary 7.
    pub const F7: FReg = FReg::new(7);
    /// Floating-point temporary 8.
    pub const F8: FReg = FReg::new(8);
    /// Floating-point temporary 9.
    pub const F9: FReg = FReg::new(9);
    /// Floating-point temporary 10.
    pub const F10: FReg = FReg::new(10);
    /// Floating-point temporary 11.
    pub const F11: FReg = FReg::new(11);
    /// Floating-point temporary 12 (first float argument).
    pub const F12: FReg = FReg::new(12);
    /// Floating-point temporary 13.
    pub const F13: FReg = FReg::new(13);
    /// Floating-point temporary 14 (second float argument).
    pub const F14: FReg = FReg::new(14);
    /// Floating-point temporary 15.
    pub const F15: FReg = FReg::new(15);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for i in 0..32u8 {
            let r = Reg::new(i);
            assert_eq!(r.name().parse::<Reg>().unwrap(), r);
        }
    }

    #[test]
    fn numeric_parse() {
        assert_eq!("$29".parse::<Reg>().unwrap(), reg::SP);
        assert_eq!("$f12".parse::<FReg>().unwrap(), reg::F12);
    }

    #[test]
    fn rejects_bad_names() {
        assert!("$t99".parse::<Reg>().is_err());
        assert!("x5".parse::<Reg>().is_err());
        assert!("$f40".parse::<FReg>().is_err());
    }

    #[test]
    fn zero_register() {
        assert!(reg::ZERO.is_zero());
        assert!(!reg::T0.is_zero());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let _ = Reg::new(32);
    }
}

//! # certa-isa
//!
//! The instruction set architecture shared by every crate in the `certa`
//! workspace: a small MIPS-like, three-address RISC with 32 integer and 32
//! floating-point registers, byte-addressed little-endian data memory, and a
//! Harvard-style instruction store (the program counter indexes instructions,
//! not bytes).
//!
//! The ISA is designed to support the IISWC 2006 study *"Characterization of
//! Error-Tolerant Applications when Protecting Control Data"*: every
//! instruction exposes its **definition** (the register it writes) and its
//! **uses** classified as *data*, *address*, or *control* operands, which is
//! exactly the information the paper's backward CVar dataflow analysis
//! consumes.
//!
//! ## Example
//!
//! ```
//! use certa_isa::{Instr, AluOp, reg};
//!
//! let add = Instr::Alu { op: AluOp::Add, rd: reg::T0, rs: reg::T1, rt: reg::T2 };
//! assert_eq!(add.def(), Some(certa_isa::RegRef::Int(reg::T0)));
//! assert_eq!(add.to_string(), "add $t0, $t1, $t2");
//! ```

mod instr;
mod program;
mod register;

pub use instr::{AluOp, BranchKind, CmpOp, FCmpOp, FpuOp, Instr, MemWidth, RegRef, UseKind};
pub use program::{FuncMeta, Program, ProgramError};
pub use register::{reg, FReg, Reg, RegParseError};

/// Number of integer registers in the architecture.
pub const NUM_INT_REGS: usize = 32;
/// Number of floating-point registers in the architecture.
pub const NUM_FLOAT_REGS: usize = 32;

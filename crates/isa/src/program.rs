//! A fully-linked program: code, initial data image, and function metadata.

use std::collections::BTreeMap;
use std::fmt;

use crate::instr::Instr;

/// Metadata for one function in a [`Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncMeta {
    /// Function name.
    pub name: String,
    /// Index of the first instruction of the function.
    pub start: usize,
    /// One past the index of the last instruction of the function.
    pub end: usize,
    /// Whether the user marked this function as *eligible* for low-reliability
    /// tagging (paper §4: "Only functions that were user-identified as
    /// eligible were tagged").
    pub eligible: bool,
}

impl FuncMeta {
    /// Whether `index` lies inside this function.
    #[must_use]
    pub fn contains(&self, index: usize) -> bool {
        (self.start..self.end).contains(&index)
    }
}

/// Errors detected when validating a [`Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// A branch/jump/call target points outside the code array.
    TargetOutOfRange {
        /// Instruction index of the offending control transfer.
        at: usize,
        /// The out-of-range target.
        target: usize,
    },
    /// The entry point is outside the code array.
    EntryOutOfRange {
        /// The out-of-range entry index.
        entry: usize,
    },
    /// Two functions overlap, or a function range is inverted/out of range.
    BadFunctionRange {
        /// Name of the offending function.
        name: String,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::TargetOutOfRange { at, target } => {
                write!(f, "instruction {at} targets out-of-range index {target}")
            }
            ProgramError::EntryOutOfRange { entry } => {
                write!(f, "entry point {entry} is out of range")
            }
            ProgramError::BadFunctionRange { name } => {
                write!(f, "function `{name}` has an invalid or overlapping range")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

/// A complete, executable program.
///
/// Produced by the assembler in `certa-asm`, analyzed by `certa-core`, and
/// executed by `certa-sim`.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// The instruction stream. Branch targets are indices into this vector.
    pub code: Vec<Instr>,
    /// Initial image of the data segment, loaded at address 0.
    pub data: Vec<u8>,
    /// Entry instruction index.
    pub entry: usize,
    /// Function table, sorted by start index.
    pub functions: Vec<FuncMeta>,
    /// Label name → instruction index (for diagnostics and disassembly).
    pub labels: BTreeMap<String, usize>,
}

impl Program {
    /// Validates internal consistency (targets in range, function table sane).
    ///
    /// # Errors
    ///
    /// Returns the first [`ProgramError`] found.
    pub fn validate(&self) -> Result<(), ProgramError> {
        if self.entry >= self.code.len() && !self.code.is_empty() {
            return Err(ProgramError::EntryOutOfRange { entry: self.entry });
        }
        for (at, instr) in self.code.iter().enumerate() {
            if let Some(target) = instr.static_target() {
                if target >= self.code.len() {
                    return Err(ProgramError::TargetOutOfRange { at, target });
                }
            }
        }
        let mut prev_end = 0usize;
        let mut sorted = self.functions.clone();
        sorted.sort_by_key(|f| f.start);
        for f in &sorted {
            if f.start >= f.end || f.end > self.code.len() || f.start < prev_end {
                return Err(ProgramError::BadFunctionRange {
                    name: f.name.clone(),
                });
            }
            prev_end = f.end;
        }
        Ok(())
    }

    /// The function containing instruction `index`, if any.
    #[must_use]
    pub fn function_at(&self, index: usize) -> Option<&FuncMeta> {
        self.functions.iter().find(|f| f.contains(index))
    }

    /// Looks up a function by name.
    #[must_use]
    pub fn function(&self, name: &str) -> Option<&FuncMeta> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Whether instruction `index` is inside a user-marked eligible function.
    #[must_use]
    pub fn is_eligible(&self, index: usize) -> bool {
        self.function_at(index).is_some_and(|f| f.eligible)
    }

    /// Renders a human-readable disassembly listing with labels.
    #[must_use]
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut by_index: BTreeMap<usize, Vec<&str>> = BTreeMap::new();
        for (name, &idx) in &self.labels {
            by_index.entry(idx).or_default().push(name);
        }
        let mut out = String::new();
        for (i, instr) in self.code.iter().enumerate() {
            if let Some(names) = by_index.get(&i) {
                for n in names {
                    let _ = writeln!(out, "{n}:");
                }
            }
            let _ = writeln!(out, "  {i:5}  {instr}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instr;

    fn prog(code: Vec<Instr>) -> Program {
        Program {
            code,
            ..Program::default()
        }
    }

    #[test]
    fn validate_catches_bad_target() {
        let p = prog(vec![Instr::Jump { target: 10 }]);
        assert!(matches!(
            p.validate(),
            Err(ProgramError::TargetOutOfRange { at: 0, target: 10 })
        ));
    }

    #[test]
    fn validate_catches_bad_entry() {
        let mut p = prog(vec![Instr::Halt]);
        p.entry = 5;
        assert!(matches!(
            p.validate(),
            Err(ProgramError::EntryOutOfRange { entry: 5 })
        ));
    }

    #[test]
    fn validate_catches_overlapping_functions() {
        let mut p = prog(vec![Instr::Nop, Instr::Nop, Instr::Halt]);
        p.functions = vec![
            FuncMeta {
                name: "a".into(),
                start: 0,
                end: 2,
                eligible: true,
            },
            FuncMeta {
                name: "b".into(),
                start: 1,
                end: 3,
                eligible: false,
            },
        ];
        assert!(matches!(
            p.validate(),
            Err(ProgramError::BadFunctionRange { .. })
        ));
    }

    #[test]
    fn eligibility_lookup() {
        let mut p = prog(vec![Instr::Nop, Instr::Nop, Instr::Halt]);
        p.functions = vec![FuncMeta {
            name: "kernel".into(),
            start: 0,
            end: 2,
            eligible: true,
        }];
        assert!(p.is_eligible(0));
        assert!(p.is_eligible(1));
        assert!(!p.is_eligible(2));
        assert_eq!(p.function("kernel").unwrap().start, 0);
        assert!(p.function("missing").is_none());
    }

    #[test]
    fn disassembly_includes_labels() {
        let mut p = prog(vec![Instr::Nop, Instr::Halt]);
        p.labels.insert("main".into(), 0);
        let text = p.disassemble();
        assert!(text.contains("main:"));
        assert!(text.contains("halt"));
    }
}

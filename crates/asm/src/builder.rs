//! The [`Asm`] program builder.

use std::collections::BTreeMap;

use certa_isa::{reg, AluOp, CmpOp, FCmpOp, FpuOp, FReg, FuncMeta, Instr, MemWidth, Program, Reg};

use crate::error::AsmError;

/// Base address of the data segment. Addresses below this are a guard region:
/// any access to them is a crash, which is how wild pointers produced by
/// corrupted address arithmetic are detected.
pub const DATA_BASE: u32 = 0x1000;

/// Number of bytes below the initial stack pointer reserved as a red zone;
/// the simulator's default memory sizing accounts for it.
pub const STACK_RED_ZONE: u32 = 4096;

/// A macro-assembler building a [`Program`].
///
/// One method per mnemonic, plus labels, functions and a data-segment
/// allocator. See the [crate-level docs](crate) for a worked example.
#[derive(Debug, Default)]
pub struct Asm {
    code: Vec<Instr>,
    labels: BTreeMap<String, usize>,
    fixups: Vec<(usize, String)>,
    data: Vec<u8>,
    functions: Vec<FuncMeta>,
    open: Option<(String, usize, bool)>,
}

impl Asm {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of instructions emitted so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether no instructions have been emitted yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    // ------------------------------------------------------------------
    // labels & functions
    // ------------------------------------------------------------------

    /// Defines `name` at the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already defined (a programming error in the
    /// guest being built).
    pub fn label(&mut self, name: &str) {
        self.try_label(name)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Defines `name` at the current position, returning an error instead of
    /// panicking on duplicates. Re-defining a label at the *same* position is
    /// a no-op (tolerated so `.func f` followed by `f:` works in the text
    /// dialect).
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::DuplicateLabel`] if the label already points at a
    /// different position.
    pub fn try_label(&mut self, name: &str) -> Result<(), AsmError> {
        let here = self.code.len();
        match self.labels.get(name) {
            Some(&pos) if pos == here => Ok(()),
            Some(_) => Err(AsmError::DuplicateLabel {
                label: name.to_string(),
            }),
            None => {
                self.labels.insert(name.to_string(), here);
                Ok(())
            }
        }
    }

    /// The position of a previously defined label, if any.
    #[must_use]
    pub fn label_index(&self, name: &str) -> Option<usize> {
        self.labels.get(name).copied()
    }

    /// Opens a function. Also defines `name` as a label. `eligible` marks the
    /// function for low-reliability tagging per the paper's methodology.
    ///
    /// # Panics
    ///
    /// Panics if another function is still open or the label already exists.
    pub fn func(&mut self, name: &str, eligible: bool) {
        assert!(
            self.open.is_none(),
            "cannot open `{name}`: function `{}` still open",
            self.open.as_ref().map(|o| o.0.as_str()).unwrap_or("")
        );
        self.label(name);
        self.open = Some((name.to_string(), self.code.len(), eligible));
    }

    /// Closes the currently open function.
    ///
    /// # Panics
    ///
    /// Panics if no function is open or the function is empty.
    pub fn endfunc(&mut self) {
        let (name, start, eligible) = self.open.take().expect("endfunc with no open function");
        let end = self.code.len();
        assert!(end > start, "function `{name}` is empty");
        self.functions.push(FuncMeta {
            name,
            start,
            end,
            eligible,
        });
    }

    // ------------------------------------------------------------------
    // data segment
    // ------------------------------------------------------------------

    /// Pads the data segment to `align` bytes (a power of two).
    pub fn align(&mut self, align: usize) {
        debug_assert!(align.is_power_of_two());
        while !self.data.len().is_multiple_of(align) {
            self.data.push(0);
        }
    }

    /// Appends raw bytes to the data segment, returning their absolute
    /// address.
    pub fn data_bytes(&mut self, bytes: &[u8]) -> u32 {
        let addr = DATA_BASE + self.data.len() as u32;
        self.data.extend_from_slice(bytes);
        addr
    }

    /// Appends 32-bit words (little-endian, 4-byte aligned), returning their
    /// absolute address.
    pub fn data_words(&mut self, words: &[i32]) -> u32 {
        self.align(4);
        let addr = DATA_BASE + self.data.len() as u32;
        for w in words {
            self.data.extend_from_slice(&w.to_le_bytes());
        }
        addr
    }

    /// Appends 16-bit halfwords (little-endian, 2-byte aligned), returning
    /// their absolute address.
    pub fn data_halves(&mut self, halves: &[i16]) -> u32 {
        self.align(2);
        let addr = DATA_BASE + self.data.len() as u32;
        for h in halves {
            self.data.extend_from_slice(&h.to_le_bytes());
        }
        addr
    }

    /// Appends 64-bit floats (little-endian, 8-byte aligned), returning their
    /// absolute address.
    pub fn data_f64s(&mut self, values: &[f64]) -> u32 {
        self.align(8);
        let addr = DATA_BASE + self.data.len() as u32;
        for v in values {
            self.data.extend_from_slice(&v.to_le_bytes());
        }
        addr
    }

    /// Reserves `n` zeroed bytes (4-byte aligned), returning their absolute
    /// address. Used for input/output buffers and scratch arrays.
    pub fn data_zero(&mut self, n: usize) -> u32 {
        self.align(4);
        let addr = DATA_BASE + self.data.len() as u32;
        self.data.resize(self.data.len() + n, 0);
        addr
    }

    /// Current size of the data segment in bytes.
    #[must_use]
    pub fn data_len(&self) -> usize {
        self.data.len()
    }

    // ------------------------------------------------------------------
    // raw emission
    // ------------------------------------------------------------------

    /// Emits an arbitrary instruction.
    pub fn emit(&mut self, instr: Instr) {
        self.code.push(instr);
    }

    fn emit_branch(&mut self, cond: CmpOp, rs: Reg, rt: Reg, label: &str) {
        self.fixups.push((self.code.len(), label.to_string()));
        self.code.push(Instr::Branch {
            cond,
            rs,
            rt,
            target: 0,
        });
    }

    // ------------------------------------------------------------------
    // integer ALU
    // ------------------------------------------------------------------

    /// `rd = rs + rt`
    pub fn add(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Instr::Alu {
            op: AluOp::Add,
            rd,
            rs,
            rt,
        });
    }

    /// `rd = rs - rt`
    pub fn sub(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Instr::Alu {
            op: AluOp::Sub,
            rd,
            rs,
            rt,
        });
    }

    /// `rd = rs * rt` (low 32 bits)
    pub fn mul(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Instr::Alu {
            op: AluOp::Mul,
            rd,
            rs,
            rt,
        });
    }

    /// `rd = rs / rt` (signed; 0 on division by zero)
    pub fn div(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Instr::Alu {
            op: AluOp::Div,
            rd,
            rs,
            rt,
        });
    }

    /// `rd = rs % rt` (signed; 0 on division by zero)
    pub fn rem(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Instr::Alu {
            op: AluOp::Rem,
            rd,
            rs,
            rt,
        });
    }

    /// `rd = rs / rt` (unsigned)
    pub fn divu(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Instr::Alu {
            op: AluOp::Divu,
            rd,
            rs,
            rt,
        });
    }

    /// `rd = rs % rt` (unsigned)
    pub fn remu(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Instr::Alu {
            op: AluOp::Remu,
            rd,
            rs,
            rt,
        });
    }

    /// `rd = rs & rt`
    pub fn and(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Instr::Alu {
            op: AluOp::And,
            rd,
            rs,
            rt,
        });
    }

    /// `rd = rs | rt`
    pub fn or(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Instr::Alu {
            op: AluOp::Or,
            rd,
            rs,
            rt,
        });
    }

    /// `rd = rs ^ rt`
    pub fn xor(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Instr::Alu {
            op: AluOp::Xor,
            rd,
            rs,
            rt,
        });
    }

    /// `rd = !(rs | rt)`
    pub fn nor(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Instr::Alu {
            op: AluOp::Nor,
            rd,
            rs,
            rt,
        });
    }

    /// `rd = rs << rt`
    pub fn sll(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Instr::Alu {
            op: AluOp::Sll,
            rd,
            rs,
            rt,
        });
    }

    /// `rd = rs >> rt` (logical)
    pub fn srl(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Instr::Alu {
            op: AluOp::Srl,
            rd,
            rs,
            rt,
        });
    }

    /// `rd = rs >> rt` (arithmetic)
    pub fn sra(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Instr::Alu {
            op: AluOp::Sra,
            rd,
            rs,
            rt,
        });
    }

    /// `rd = (rs < rt) as u32` (signed)
    pub fn slt(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Instr::Alu {
            op: AluOp::Slt,
            rd,
            rs,
            rt,
        });
    }

    /// `rd = (rs < rt) as u32` (unsigned)
    pub fn sltu(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Instr::Alu {
            op: AluOp::Sltu,
            rd,
            rs,
            rt,
        });
    }

    // ------------------------------------------------------------------
    // immediates
    // ------------------------------------------------------------------

    fn alu_imm(&mut self, op: AluOp, rd: Reg, rs: Reg, imm: i32) {
        self.emit(Instr::AluImm { op, rd, rs, imm });
    }

    /// `rd = rs + imm`
    pub fn addi(&mut self, rd: Reg, rs: Reg, imm: i32) {
        self.alu_imm(AluOp::Add, rd, rs, imm);
    }

    /// `rd = rs * imm`
    pub fn muli(&mut self, rd: Reg, rs: Reg, imm: i32) {
        self.alu_imm(AluOp::Mul, rd, rs, imm);
    }

    /// `rd = rs & imm`
    pub fn andi(&mut self, rd: Reg, rs: Reg, imm: i32) {
        self.alu_imm(AluOp::And, rd, rs, imm);
    }

    /// `rd = rs | imm`
    pub fn ori(&mut self, rd: Reg, rs: Reg, imm: i32) {
        self.alu_imm(AluOp::Or, rd, rs, imm);
    }

    /// `rd = rs ^ imm`
    pub fn xori(&mut self, rd: Reg, rs: Reg, imm: i32) {
        self.alu_imm(AluOp::Xor, rd, rs, imm);
    }

    /// `rd = rs << imm`
    pub fn slli(&mut self, rd: Reg, rs: Reg, imm: i32) {
        self.alu_imm(AluOp::Sll, rd, rs, imm);
    }

    /// `rd = rs >> imm` (logical)
    pub fn srli(&mut self, rd: Reg, rs: Reg, imm: i32) {
        self.alu_imm(AluOp::Srl, rd, rs, imm);
    }

    /// `rd = rs >> imm` (arithmetic)
    pub fn srai(&mut self, rd: Reg, rs: Reg, imm: i32) {
        self.alu_imm(AluOp::Sra, rd, rs, imm);
    }

    /// `rd = (rs < imm) as u32` (signed)
    pub fn slti(&mut self, rd: Reg, rs: Reg, imm: i32) {
        self.alu_imm(AluOp::Slt, rd, rs, imm);
    }

    /// `rd = imm`
    pub fn li(&mut self, rd: Reg, imm: i32) {
        self.emit(Instr::Li { rd, imm });
    }

    /// `rd = addr` — load-address pseudo-instruction for data-segment
    /// addresses returned by the `data_*` allocators.
    pub fn la(&mut self, rd: Reg, addr: u32) {
        self.emit(Instr::Li {
            rd,
            imm: addr as i32,
        });
    }

    /// `rd = rs` (register move; `or rd, rs, $zero`)
    pub fn mv(&mut self, rd: Reg, rs: Reg) {
        self.or(rd, rs, reg::ZERO);
    }

    /// `rd = -rs`
    pub fn neg(&mut self, rd: Reg, rs: Reg) {
        self.sub(rd, reg::ZERO, rs);
    }

    /// `rd = !rs`
    pub fn not(&mut self, rd: Reg, rs: Reg) {
        self.nor(rd, rs, reg::ZERO);
    }

    // ------------------------------------------------------------------
    // memory
    // ------------------------------------------------------------------

    /// `rd = mem32[base + off]`
    pub fn lw(&mut self, rd: Reg, off: i32, base: Reg) {
        self.emit(Instr::Load {
            width: MemWidth::Word,
            signed: true,
            rd,
            base,
            off,
        });
    }

    /// `rd = sign_extend(mem16[base + off])`
    pub fn lh(&mut self, rd: Reg, off: i32, base: Reg) {
        self.emit(Instr::Load {
            width: MemWidth::Half,
            signed: true,
            rd,
            base,
            off,
        });
    }

    /// `rd = zero_extend(mem16[base + off])`
    pub fn lhu(&mut self, rd: Reg, off: i32, base: Reg) {
        self.emit(Instr::Load {
            width: MemWidth::Half,
            signed: false,
            rd,
            base,
            off,
        });
    }

    /// `rd = sign_extend(mem8[base + off])`
    pub fn lb(&mut self, rd: Reg, off: i32, base: Reg) {
        self.emit(Instr::Load {
            width: MemWidth::Byte,
            signed: true,
            rd,
            base,
            off,
        });
    }

    /// `rd = zero_extend(mem8[base + off])`
    pub fn lbu(&mut self, rd: Reg, off: i32, base: Reg) {
        self.emit(Instr::Load {
            width: MemWidth::Byte,
            signed: false,
            rd,
            base,
            off,
        });
    }

    /// `mem32[base + off] = rs`
    pub fn sw(&mut self, rs: Reg, off: i32, base: Reg) {
        self.emit(Instr::Store {
            width: MemWidth::Word,
            rs,
            base,
            off,
        });
    }

    /// `mem16[base + off] = rs`
    pub fn sh(&mut self, rs: Reg, off: i32, base: Reg) {
        self.emit(Instr::Store {
            width: MemWidth::Half,
            rs,
            base,
            off,
        });
    }

    /// `mem8[base + off] = rs`
    pub fn sb(&mut self, rs: Reg, off: i32, base: Reg) {
        self.emit(Instr::Store {
            width: MemWidth::Byte,
            rs,
            base,
            off,
        });
    }

    // ------------------------------------------------------------------
    // control flow
    // ------------------------------------------------------------------

    /// Branch to `label` if `rs == rt`.
    pub fn beq(&mut self, rs: Reg, rt: Reg, label: &str) {
        self.emit_branch(CmpOp::Eq, rs, rt, label);
    }

    /// Branch to `label` if `rs != rt`.
    pub fn bne(&mut self, rs: Reg, rt: Reg, label: &str) {
        self.emit_branch(CmpOp::Ne, rs, rt, label);
    }

    /// Branch to `label` if `rs < rt` (signed).
    pub fn blt(&mut self, rs: Reg, rt: Reg, label: &str) {
        self.emit_branch(CmpOp::Lt, rs, rt, label);
    }

    /// Branch to `label` if `rs >= rt` (signed).
    pub fn bge(&mut self, rs: Reg, rt: Reg, label: &str) {
        self.emit_branch(CmpOp::Ge, rs, rt, label);
    }

    /// Branch to `label` if `rs <= rt` (signed).
    pub fn ble(&mut self, rs: Reg, rt: Reg, label: &str) {
        self.emit_branch(CmpOp::Ge, rt, rs, label);
    }

    /// Branch to `label` if `rs > rt` (signed).
    pub fn bgt(&mut self, rs: Reg, rt: Reg, label: &str) {
        self.emit_branch(CmpOp::Lt, rt, rs, label);
    }

    /// Branch to `label` if `rs < rt` (unsigned).
    pub fn bltu(&mut self, rs: Reg, rt: Reg, label: &str) {
        self.emit_branch(CmpOp::Ltu, rs, rt, label);
    }

    /// Branch to `label` if `rs >= rt` (unsigned).
    pub fn bgeu(&mut self, rs: Reg, rt: Reg, label: &str) {
        self.emit_branch(CmpOp::Geu, rs, rt, label);
    }

    /// Branch to `label` if `rs == 0`.
    pub fn beqz(&mut self, rs: Reg, label: &str) {
        self.beq(rs, reg::ZERO, label);
    }

    /// Branch to `label` if `rs != 0`.
    pub fn bnez(&mut self, rs: Reg, label: &str) {
        self.bne(rs, reg::ZERO, label);
    }

    /// Branch to `label` if `rs <= 0` (signed).
    pub fn blez(&mut self, rs: Reg, label: &str) {
        self.ble(rs, reg::ZERO, label);
    }

    /// Branch to `label` if `rs > 0` (signed).
    pub fn bgtz(&mut self, rs: Reg, label: &str) {
        self.bgt(rs, reg::ZERO, label);
    }

    /// Branch to `label` if `rs < 0` (signed).
    pub fn bltz(&mut self, rs: Reg, label: &str) {
        self.blt(rs, reg::ZERO, label);
    }

    /// Branch to `label` if `rs >= 0` (signed).
    pub fn bgez(&mut self, rs: Reg, label: &str) {
        self.bge(rs, reg::ZERO, label);
    }

    /// Unconditional jump to `label`.
    pub fn j(&mut self, label: &str) {
        self.fixups.push((self.code.len(), label.to_string()));
        self.code.push(Instr::Jump { target: 0 });
    }

    /// Call `label` (writes return address to `$ra`).
    pub fn call(&mut self, label: &str) {
        self.fixups.push((self.code.len(), label.to_string()));
        self.code.push(Instr::Call { target: 0 });
    }

    /// Indirect jump through `rs`.
    pub fn jr(&mut self, rs: Reg) {
        self.emit(Instr::JumpReg { rs });
    }

    /// Return (`jr $ra`).
    pub fn ret(&mut self) {
        self.jr(reg::RA);
    }

    /// Halt execution.
    pub fn halt(&mut self) {
        self.emit(Instr::Halt);
    }

    /// No-op.
    pub fn nop(&mut self) {
        self.emit(Instr::Nop);
    }

    // ------------------------------------------------------------------
    // stack helpers (o32-flavoured)
    // ------------------------------------------------------------------

    /// Function prologue: pushes `$ra` plus the given saved registers and
    /// leaves `extra` additional bytes of frame space. Returns the frame size.
    pub fn prologue(&mut self, saved: &[Reg], extra: i32) -> i32 {
        let frame = 4 * (saved.len() as i32 + 1) + extra;
        self.addi(reg::SP, reg::SP, -frame);
        self.sw(reg::RA, frame - 4, reg::SP);
        for (i, &r) in saved.iter().enumerate() {
            self.sw(r, frame - 8 - 4 * i as i32, reg::SP);
        }
        frame
    }

    /// Function epilogue matching [`Asm::prologue`]: restores and returns.
    pub fn epilogue(&mut self, saved: &[Reg], extra: i32) {
        let frame = 4 * (saved.len() as i32 + 1) + extra;
        self.lw(reg::RA, frame - 4, reg::SP);
        for (i, &r) in saved.iter().enumerate() {
            self.lw(r, frame - 8 - 4 * i as i32, reg::SP);
        }
        self.addi(reg::SP, reg::SP, frame);
        self.ret();
    }

    // ------------------------------------------------------------------
    // floating point
    // ------------------------------------------------------------------

    /// `fd = fs + ft`
    pub fn fadd(&mut self, fd: FReg, fs: FReg, ft: FReg) {
        self.emit(Instr::Fpu {
            op: FpuOp::Add,
            fd,
            fs,
            ft,
        });
    }

    /// `fd = fs - ft`
    pub fn fsub(&mut self, fd: FReg, fs: FReg, ft: FReg) {
        self.emit(Instr::Fpu {
            op: FpuOp::Sub,
            fd,
            fs,
            ft,
        });
    }

    /// `fd = fs * ft`
    pub fn fmul(&mut self, fd: FReg, fs: FReg, ft: FReg) {
        self.emit(Instr::Fpu {
            op: FpuOp::Mul,
            fd,
            fs,
            ft,
        });
    }

    /// `fd = fs / ft`
    pub fn fdiv(&mut self, fd: FReg, fs: FReg, ft: FReg) {
        self.emit(Instr::Fpu {
            op: FpuOp::Div,
            fd,
            fs,
            ft,
        });
    }

    /// `fd = min(fs, ft)`
    pub fn fmin(&mut self, fd: FReg, fs: FReg, ft: FReg) {
        self.emit(Instr::Fpu {
            op: FpuOp::Min,
            fd,
            fs,
            ft,
        });
    }

    /// `fd = max(fs, ft)`
    pub fn fmax(&mut self, fd: FReg, fs: FReg, ft: FReg) {
        self.emit(Instr::Fpu {
            op: FpuOp::Max,
            fd,
            fs,
            ft,
        });
    }

    /// `fd = fs`
    pub fn fmov(&mut self, fd: FReg, fs: FReg) {
        self.emit(Instr::FMov { fd, fs });
    }

    /// `fd = |fs|`
    pub fn fabs(&mut self, fd: FReg, fs: FReg) {
        self.emit(Instr::FAbs { fd, fs });
    }

    /// `fd = -fs`
    pub fn fneg(&mut self, fd: FReg, fs: FReg) {
        self.emit(Instr::FNeg { fd, fs });
    }

    /// `fd = sqrt(fs)`
    pub fn fsqrt(&mut self, fd: FReg, fs: FReg) {
        self.emit(Instr::FSqrt { fd, fs });
    }

    /// `fd = value`
    pub fn fli(&mut self, fd: FReg, value: f64) {
        self.emit(Instr::FLi { fd, value });
    }

    /// `fd = mem_f64[base + off]`
    pub fn fld(&mut self, fd: FReg, off: i32, base: Reg) {
        self.emit(Instr::FLoad { fd, base, off });
    }

    /// `mem_f64[base + off] = fs`
    pub fn fsd(&mut self, fs: FReg, off: i32, base: Reg) {
        self.emit(Instr::FStore { fs, base, off });
    }

    /// `fd = rs as f64`
    pub fn cvt_if(&mut self, fd: FReg, rs: Reg) {
        self.emit(Instr::CvtIF { fd, rs });
    }

    /// `rd = fs as i32` (truncating, saturating)
    pub fn cvt_fi(&mut self, rd: Reg, fs: FReg) {
        self.emit(Instr::CvtFI { rd, fs });
    }

    /// `rd = (fs < ft) as u32`
    pub fn fcmp_lt(&mut self, rd: Reg, fs: FReg, ft: FReg) {
        self.emit(Instr::FCmp {
            op: FCmpOp::Lt,
            rd,
            fs,
            ft,
        });
    }

    /// `rd = (fs <= ft) as u32`
    pub fn fcmp_le(&mut self, rd: Reg, fs: FReg, ft: FReg) {
        self.emit(Instr::FCmp {
            op: FCmpOp::Le,
            rd,
            fs,
            ft,
        });
    }

    /// `rd = (fs == ft) as u32`
    pub fn fcmp_eq(&mut self, rd: Reg, fs: FReg, ft: FReg) {
        self.emit(Instr::FCmp {
            op: FCmpOp::Eq,
            rd,
            fs,
            ft,
        });
    }

    // ------------------------------------------------------------------
    // assembly
    // ------------------------------------------------------------------

    /// Resolves all label references and produces a validated [`Program`].
    ///
    /// The entry point is the label `main` if defined, otherwise instruction
    /// 0.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError`] if a label is undefined, a function is still
    /// open, or the final program fails validation.
    pub fn assemble(self) -> Result<Program, AsmError> {
        let Asm {
            mut code,
            labels,
            fixups,
            data,
            functions,
            open,
        } = self;
        if let Some((name, _, _)) = open {
            return Err(AsmError::UnclosedFunction { name });
        }
        for (at, label) in fixups {
            let Some(&target) = labels.get(&label) else {
                return Err(AsmError::UndefinedLabel { label, at });
            };
            code[at].set_static_target(target);
        }
        let entry = labels.get("main").copied().unwrap_or(0);
        let program = Program {
            code,
            data,
            entry,
            functions,
            labels,
        };
        program.validate()?;
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certa_isa::reg::{A0, RA, S0, SP, T0, T1, V0};

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = Asm::new();
        a.func("main", false);
        a.j("fwd");
        a.label("back");
        a.halt();
        a.label("fwd");
        a.j("back");
        a.endfunc();
        let p = a.assemble().unwrap();
        assert_eq!(p.code[0].static_target(), Some(2));
        assert_eq!(p.code[2].static_target(), Some(1));
    }

    #[test]
    fn undefined_label_is_error() {
        let mut a = Asm::new();
        a.func("main", false);
        a.j("nowhere");
        a.halt();
        a.endfunc();
        match a.assemble() {
            Err(AsmError::UndefinedLabel { label, at }) => {
                assert_eq!(label, "nowhere");
                assert_eq!(at, 0);
            }
            other => panic!("expected UndefinedLabel, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "duplicate label")]
    fn duplicate_label_panics() {
        let mut a = Asm::new();
        a.label("x");
        a.nop();
        a.label("x");
    }

    #[test]
    fn relabel_at_same_position_is_noop() {
        let mut a = Asm::new();
        a.label("x");
        a.label("x"); // same position: tolerated
        assert_eq!(a.label_index("x"), Some(0));
    }

    #[test]
    fn unclosed_function_is_error() {
        let mut a = Asm::new();
        a.func("main", false);
        a.halt();
        assert!(matches!(
            a.assemble(),
            Err(AsmError::UnclosedFunction { .. })
        ));
    }

    #[test]
    fn entry_defaults_to_main() {
        let mut a = Asm::new();
        a.func("helper", false);
        a.ret();
        a.endfunc();
        a.func("main", false);
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        assert_eq!(p.entry, 1);
    }

    #[test]
    fn data_allocators_align_and_address() {
        let mut a = Asm::new();
        let b = a.data_bytes(&[1, 2, 3]);
        let w = a.data_words(&[10, -20]);
        let f = a.data_f64s(&[1.5]);
        let z = a.data_zero(8);
        assert_eq!(b, DATA_BASE);
        assert_eq!(w, DATA_BASE + 4); // padded from 3 to 4
        assert_eq!(f % 8, 0);
        assert_eq!(z % 4, 0);
        a.func("main", false);
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        assert_eq!(&p.data[0..3], &[1, 2, 3]);
        let off = (w - DATA_BASE) as usize;
        assert_eq!(
            i32::from_le_bytes(p.data[off..off + 4].try_into().unwrap()),
            10
        );
    }

    #[test]
    fn pseudo_branches_swap_operands() {
        let mut a = Asm::new();
        a.func("main", false);
        a.label("l");
        a.ble(T0, T1, "l"); // => bge T1, T0
        a.bgt(T0, T1, "l"); // => blt T1, T0
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        match p.code[0] {
            Instr::Branch { cond, rs, rt, .. } => {
                assert_eq!(cond, CmpOp::Ge);
                assert_eq!((rs, rt), (T1, T0));
            }
            ref other => panic!("unexpected {other:?}"),
        }
        match p.code[1] {
            Instr::Branch { cond, rs, rt, .. } => {
                assert_eq!(cond, CmpOp::Lt);
                assert_eq!((rs, rt), (T1, T0));
            }
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn prologue_epilogue_are_balanced() {
        let mut a = Asm::new();
        a.func("f", false);
        let frame = a.prologue(&[S0], 8);
        assert_eq!(frame, 16);
        a.mv(V0, A0);
        a.epilogue(&[S0], 8);
        a.endfunc();
        a.func("main", false);
        a.call("f");
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        // prologue: addi sp, sw ra, sw s0 — epilogue: lw ra, lw s0, addi sp, jr
        let f = p.function("f").unwrap();
        assert_eq!(f.end - f.start, 3 + 1 + 4);
        // ensure SP adjustments cancel
        let mut delta = 0i32;
        for i in &p.code[f.start..f.end] {
            if let Instr::AluImm {
                op: AluOp::Add,
                rd,
                rs,
                imm,
            } = i
            {
                if *rd == SP && *rs == SP {
                    delta += imm;
                }
            }
        }
        assert_eq!(delta, 0);
        // RA is saved and restored at the same offset
        let saves: Vec<_> = p.code[f.start..f.end]
            .iter()
            .filter_map(|i| match i {
                Instr::Store { rs, off, .. } if *rs == RA => Some(*off),
                _ => None,
            })
            .collect();
        let loads: Vec<_> = p.code[f.start..f.end]
            .iter()
            .filter_map(|i| match i {
                Instr::Load { rd, off, .. } if *rd == RA => Some(*off),
                _ => None,
            })
            .collect();
        assert_eq!(saves, loads);
    }

    #[test]
    fn function_table_records_eligibility() {
        let mut a = Asm::new();
        a.func("kernel", true);
        a.nop();
        a.ret();
        a.endfunc();
        a.func("main", false);
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        assert!(p.function("kernel").unwrap().eligible);
        assert!(!p.function("main").unwrap().eligible);
        assert!(p.is_eligible(0));
        assert!(!p.is_eligible(2));
    }
}

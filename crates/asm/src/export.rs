//! Exports a [`Program`] back to the textual dialect accepted by
//! [`crate::parse_program`], enabling a full round trip:
//! builder → `Program` → text → `Program`.
//!
//! Data-segment contents are exported as raw `.byte` runs (the original
//! directive granularity is not recorded in a `Program`), and code labels
//! are regenerated as `L<index>`; functions and eligibility are preserved.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use certa_isa::{Instr, MemWidth, Program};

/// Renders `program` in the textual assembly dialect.
///
/// The output parses back (via [`crate::parse_program`]) to a program with
/// identical code, data, entry point, and function table. Original label
/// *names* are kept where known; branch targets that have no label get a
/// synthetic `L<index>`.
#[must_use]
pub fn export_program(program: &Program) -> String {
    let mut out = String::new();

    // ---- data section ----
    if !program.data.is_empty() {
        let _ = writeln!(out, ".data");
        let _ = writeln!(out, "__data:");
        for chunk in program.data.chunks(16) {
            let bytes: Vec<String> = chunk.iter().map(ToString::to_string).collect();
            let _ = writeln!(out, "    .byte {}", bytes.join(", "));
        }
    }

    // ---- label names per instruction index ----
    let mut names: BTreeMap<usize, String> = BTreeMap::new();
    for (name, &idx) in &program.labels {
        names.entry(idx).or_insert_with(|| name.clone());
    }
    for instr in &program.code {
        if let Some(t) = instr.static_target() {
            names.entry(t).or_insert_with(|| format!("L{t}"));
        }
    }

    let _ = writeln!(out, ".text");
    let func_starts: BTreeMap<usize, (String, bool)> = program
        .functions
        .iter()
        .map(|f| (f.start, (f.name.clone(), f.eligible)))
        .collect();
    let func_ends: BTreeMap<usize, ()> =
        program.functions.iter().map(|f| (f.end, ())).collect();

    for (i, instr) in program.code.iter().enumerate() {
        if let Some((name, eligible)) = func_starts.get(&i) {
            let _ = writeln!(
                out,
                ".func {name}{}",
                if *eligible { " eligible" } else { "" }
            );
        }
        if let Some(name) = names.get(&i) {
            let _ = writeln!(out, "{name}:");
        }
        let _ = writeln!(out, "    {}", render_instr(instr, &names));
        if func_ends.contains_key(&(i + 1)) {
            let _ = writeln!(out, ".endfunc");
        }
    }
    out
}

fn render_instr(instr: &Instr, names: &BTreeMap<usize, String>) -> String {
    let target_name = |t: usize| {
        names
            .get(&t)
            .cloned()
            .unwrap_or_else(|| format!("L{t}"))
    };
    match *instr {
        Instr::Branch {
            cond,
            rs,
            rt,
            target,
        } => format!("{} {}, {}, {}", cond.mnemonic(), rs, rt, target_name(target)),
        Instr::Jump { target } => format!("j {}", target_name(target)),
        Instr::Call { target } => format!("jal {}", target_name(target)),
        Instr::AluImm { op, rd, rs, imm } => {
            format!("{}i {rd}, {rs}, {imm}", op.mnemonic())
        }
        Instr::Load {
            width,
            signed,
            rd,
            base,
            off,
        } => {
            let m = match (width, signed) {
                (MemWidth::Byte, true) => "lb",
                (MemWidth::Byte, false) => "lbu",
                (MemWidth::Half, true) => "lh",
                (MemWidth::Half, false) => "lhu",
                (MemWidth::Word, _) => "lw",
            };
            format!("{m} {rd}, {off}({base})")
        }
        Instr::Store {
            width, rs, base, off,
        } => {
            let m = match width {
                MemWidth::Byte => "sb",
                MemWidth::Half => "sh",
                MemWidth::Word => "sw",
            };
            format!("{m} {rs}, {off}({base})")
        }
        Instr::FLoad { fd, base, off } => format!("l.d {fd}, {off}({base})"),
        Instr::FStore { fs, base, off } => format!("s.d {fs}, {off}({base})"),
        // every other instruction's Display form is already valid dialect
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_program, Asm};
    use certa_isa::reg::{A0, T0, T1, V0};

    fn round_trip(program: &Program) -> Program {
        let text = export_program(program);
        parse_program(&text).unwrap_or_else(|e| panic!("re-parse failed: {e}\n---\n{text}"))
    }

    #[test]
    fn round_trips_code_and_functions() {
        let mut a = Asm::new();
        let buf = a.data_zero(16);
        a.func("kernel", true);
        a.la(T0, buf);
        a.li(T1, 5);
        a.label("loop");
        a.addi(T1, T1, -1);
        a.sw(T1, 4, T0);
        a.bnez(T1, "loop");
        a.ret();
        a.endfunc();
        a.func("main", false);
        a.li(A0, 1);
        a.call("kernel");
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();

        let q = round_trip(&p);
        assert_eq!(p.code, q.code);
        assert_eq!(p.data, q.data);
        assert_eq!(p.entry, q.entry);
        assert_eq!(p.functions.len(), q.functions.len());
        for (f, g) in p.functions.iter().zip(&q.functions) {
            assert_eq!((f.start, f.end, f.eligible), (g.start, g.end, g.eligible));
            assert_eq!(f.name, g.name);
        }
    }

    #[test]
    fn round_trips_float_instructions() {
        use certa_isa::reg::{F0, F1, F2};
        let mut a = Asm::new();
        a.align(8);
        let d = a.data_f64s(&[2.5]);
        a.func("main", false);
        a.la(T0, d);
        a.fld(F0, 0, T0);
        a.fli(F1, 4.0);
        a.fmul(F2, F0, F1);
        a.fsqrt(F2, F2);
        a.cvt_fi(V0, F2);
        a.fcmp_lt(T1, F0, F1);
        a.fsd(F2, 0, T0);
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let q = round_trip(&p);
        assert_eq!(p.code, q.code);
    }

    #[test]
    fn exported_program_executes_identically() {
        use certa_sim::{Machine, MachineConfig};
        let mut a = Asm::new();
        a.func("main", false);
        a.li(T0, 6);
        a.li(V0, 1);
        a.label("fact");
        a.mul(V0, V0, T0);
        a.addi(T0, T0, -1);
        a.bgtz(T0, "fact");
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let q = round_trip(&p);
        let mut m1 = Machine::new(&p, &MachineConfig::default());
        let mut m2 = Machine::new(&q, &MachineConfig::default());
        assert_eq!(m1.run_simple(), m2.run_simple());
        assert_eq!(m1.reg(V0), 720);
        assert_eq!(m2.reg(V0), 720);
    }
}

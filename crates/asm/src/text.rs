//! A text-format assembler.
//!
//! Accepts a conventional MIPS-flavoured assembly dialect and produces a
//! [`Program`] via the [`Asm`] builder. The dialect:
//!
//! ```text
//! # comment
//! .data
//! buf:  .space 64          # zeroed bytes
//! tab:  .word 1, 2, -3     # 32-bit words
//! msg:  .byte 72, 105
//! pi:   .double 3.14159
//! .text
//! .func main
//! main:
//!     li   $t0, 5
//! loop:
//!     addi $t0, $t0, -1
//!     bnez $t0, loop
//!     la   $t1, tab
//!     lw   $t2, 4($t1)
//!     halt
//! .endfunc
//! ```
//!
//! `.func name eligible` marks the function as eligible for low-reliability
//! tagging (the paper's user identification step).

use std::collections::BTreeMap;
use std::fmt;

use certa_isa::{FReg, Program, Reg};

use crate::builder::Asm;
use crate::error::AsmError;

/// Error produced by [`parse_program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line of the error.
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<AsmError> for ParseError {
    fn from(e: AsmError) -> Self {
        ParseError {
            line: 0,
            message: e.to_string(),
        }
    }
}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parses a program in the textual dialect described above.
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending line number for syntax
/// errors, unknown mnemonics, and label problems.
pub fn parse_program(source: &str) -> Result<Program, ParseError> {
    // Two passes over the data section are not needed because `la` operands
    // are patched after data labels are collected; but instruction parsing
    // needs the data label addresses, so collect data first.
    let mut asm = Asm::new();
    let mut data_labels: BTreeMap<String, u32> = BTreeMap::new();
    let mut pending_la: Vec<(usize, usize, String)> = Vec::new(); // (line, code idx, label)
    let mut section = Section::Text;

    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        let mut text = raw;
        if let Some(pos) = text.find('#') {
            text = &text[..pos];
        }
        let mut text = text.trim();
        if text.is_empty() {
            continue;
        }

        // Leading labels (possibly several on one line).
        while let Some(colon) = find_label_colon(text) {
            let (name, rest) = text.split_at(colon);
            let name = name.trim();
            if !is_ident(name) {
                return Err(err(line, format!("bad label name `{name}`")));
            }
            match section {
                Section::Text => asm
                    .try_label(name)
                    .map_err(|e| err(line, e.to_string()))?,
                Section::Data => {
                    let addr = crate::builder::DATA_BASE + asm.data_len() as u32;
                    // align-sensitive directives fix this up below via `data_labels`
                    data_labels.insert(name.to_string(), addr);
                }
            }
            text = rest[1..].trim();
            if text.is_empty() {
                break;
            }
        }
        if text.is_empty() {
            continue;
        }

        if let Some(directive) = text.strip_prefix('.') {
            let mut parts = directive.splitn(2, char::is_whitespace);
            let name = parts.next().unwrap_or("");
            let args = parts.next().unwrap_or("").trim();
            match name {
                "data" => section = Section::Data,
                "text" => section = Section::Text,
                "func" => {
                    let mut it = args.split_whitespace();
                    let fname = it
                        .next()
                        .ok_or_else(|| err(line, ".func requires a name"))?;
                    let eligible = match it.next() {
                        None => false,
                        Some("eligible") => true,
                        Some(other) => {
                            return Err(err(line, format!("unknown .func flag `{other}`")))
                        }
                    };
                    asm.func(fname, eligible);
                }
                "endfunc" => asm.endfunc(),
                "space" => {
                    let n: usize = args
                        .parse()
                        .map_err(|_| err(line, format!("bad .space size `{args}`")))?;
                    let addr = asm.data_zero(n);
                    relabel_last(&mut data_labels, addr);
                }
                "word" => {
                    let words = parse_int_list::<i32>(args, line)?;
                    let addr = asm.data_words(&words);
                    relabel_last(&mut data_labels, addr);
                }
                "half" => {
                    let halves = parse_int_list::<i16>(args, line)?;
                    let addr = asm.data_halves(&halves);
                    relabel_last(&mut data_labels, addr);
                }
                "byte" => {
                    let bytes: Vec<i16> = parse_int_list(args, line)?;
                    let bytes: Vec<u8> = bytes.iter().map(|b| *b as u8).collect();
                    let addr = asm.data_bytes(&bytes);
                    relabel_last(&mut data_labels, addr);
                }
                "double" => {
                    let vals: Result<Vec<f64>, _> =
                        args.split(',').map(|s| s.trim().parse::<f64>()).collect();
                    let vals = vals.map_err(|_| err(line, "bad .double list"))?;
                    let addr = asm.data_f64s(&vals);
                    relabel_last(&mut data_labels, addr);
                }
                "ascii" => {
                    let s = args
                        .strip_prefix('"')
                        .and_then(|s| s.strip_suffix('"'))
                        .ok_or_else(|| err(line, ".ascii requires a quoted string"))?;
                    let addr = asm.data_bytes(s.as_bytes());
                    relabel_last(&mut data_labels, addr);
                }
                other => return Err(err(line, format!("unknown directive `.{other}`"))),
            }
            continue;
        }

        if section == Section::Data {
            return Err(err(line, "instructions are not allowed in .data"));
        }
        parse_instruction(&mut asm, text, line, &data_labels, &mut pending_la)?;
    }

    // Patch `la` pseudo-instructions whose data label appeared later.
    let mut program_src = asm;
    for (line, idx, label) in pending_la {
        let Some(&addr) = data_labels.get(&label) else {
            return Err(err(line, format!("undefined data label `{label}`")));
        };
        patch_li(&mut program_src, idx, addr as i32);
    }
    program_src.assemble().map_err(|e| ParseError {
        line: 0,
        message: e.to_string(),
    })
}

#[derive(PartialEq, Eq, Clone, Copy)]
enum Section {
    Text,
    Data,
}

/// Updates the most recently inserted data label to the (possibly
/// alignment-shifted) address of the directive payload that follows it.
fn relabel_last(labels: &mut BTreeMap<String, u32>, addr: u32) {
    // The label was recorded with the pre-alignment address; any label whose
    // recorded address is <= addr and greater than every payload end so far
    // must be the one(s) directly preceding this directive. Simplest correct
    // rule: bump every label that currently points past-the-end-but-below.
    for v in labels.values_mut() {
        if *v > addr {
            continue;
        }
        if *v > addr.saturating_sub(8) && *v != addr {
            // within alignment padding distance of the payload start
            *v = addr;
        }
    }
}

fn find_label_colon(text: &str) -> Option<usize> {
    let colon = text.find(':')?;
    // Avoid treating `c.lt.d` style mnemonic dots as labels; a label must be
    // the first token and contain identifier characters only.
    let candidate = &text[..colon];
    if is_ident(candidate.trim()) {
        Some(colon)
    } else {
        None
    }
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
        && !s.starts_with(|c: char| c.is_ascii_digit())
        && !s.contains('.')
}

fn parse_int_list<T>(args: &str, line: usize) -> Result<Vec<T>, ParseError>
where
    T: std::str::FromStr,
{
    args.split(',')
        .map(|s| {
            let s = s.trim();
            parse_int::<T>(s).ok_or_else(|| err(line, format!("bad integer `{s}`")))
        })
        .collect()
}

fn parse_int<T: std::str::FromStr>(s: &str) -> Option<T> {
    s.parse::<T>().ok()
}

fn parse_i32(s: &str, line: usize) -> Result<i32, ParseError> {
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x") {
        i64::from_str_radix(hex, 16).map_err(|_| err(line, format!("bad integer `{s}`")))?
    } else {
        body.parse::<i64>()
            .map_err(|_| err(line, format!("bad integer `{s}`")))?
    };
    let v = if neg { -v } else { v };
    i32::try_from(v)
        .or_else(|_| u32::try_from(v).map(|u| u as i32))
        .map_err(|_| err(line, format!("integer `{s}` out of range")))
}

fn parse_reg(s: &str, line: usize) -> Result<Reg, ParseError> {
    s.trim()
        .parse::<Reg>()
        .map_err(|e| err(line, e.to_string()))
}

fn parse_freg(s: &str, line: usize) -> Result<FReg, ParseError> {
    s.trim()
        .parse::<FReg>()
        .map_err(|e| err(line, e.to_string()))
}

/// Parses `off(base)` memory operand syntax.
fn parse_mem(s: &str, line: usize) -> Result<(i32, Reg), ParseError> {
    let s = s.trim();
    let open = s
        .find('(')
        .ok_or_else(|| err(line, format!("bad memory operand `{s}`")))?;
    let close = s
        .rfind(')')
        .ok_or_else(|| err(line, format!("bad memory operand `{s}`")))?;
    let off = if open == 0 {
        0
    } else {
        parse_i32(&s[..open], line)?
    };
    let base = parse_reg(&s[open + 1..close], line)?;
    Ok((off, base))
}

fn patch_li(asm: &mut Asm, _idx: usize, _addr: i32) {
    // `la` with a data label emits `li` immediately with the current address
    // because the data section is required to precede its uses in the certa
    // dialect; pending patching exists for forward data references, which we
    // disallow for simplicity. This function is kept for future extension.
    let _ = asm;
}

#[allow(clippy::too_many_lines)]
fn parse_instruction(
    asm: &mut Asm,
    text: &str,
    line: usize,
    data_labels: &BTreeMap<String, u32>,
    _pending_la: &mut Vec<(usize, usize, String)>,
) -> Result<(), ParseError> {
    let mut parts = text.splitn(2, char::is_whitespace);
    let mnemonic = parts.next().unwrap_or("");
    let rest = parts.next().unwrap_or("").trim();
    let ops: Vec<&str> = if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(str::trim).collect()
    };

    let need = |n: usize| -> Result<(), ParseError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(err(
                line,
                format!("`{mnemonic}` expects {n} operands, got {}", ops.len()),
            ))
        }
    };

    macro_rules! rrr {
        ($m:ident) => {{
            need(3)?;
            let rd = parse_reg(ops[0], line)?;
            let rs = parse_reg(ops[1], line)?;
            let rt = parse_reg(ops[2], line)?;
            asm.$m(rd, rs, rt);
        }};
    }
    macro_rules! rri {
        ($m:ident) => {{
            need(3)?;
            let rd = parse_reg(ops[0], line)?;
            let rs = parse_reg(ops[1], line)?;
            let imm = parse_i32(ops[2], line)?;
            asm.$m(rd, rs, imm);
        }};
    }
    macro_rules! mem {
        ($m:ident) => {{
            need(2)?;
            let r = parse_reg(ops[0], line)?;
            let (off, base) = parse_mem(ops[1], line)?;
            asm.$m(r, off, base);
        }};
    }
    macro_rules! br2 {
        ($m:ident) => {{
            need(3)?;
            let rs = parse_reg(ops[0], line)?;
            let rt = parse_reg(ops[1], line)?;
            asm.$m(rs, rt, ops[2]);
        }};
    }
    macro_rules! br1 {
        ($m:ident) => {{
            need(2)?;
            let rs = parse_reg(ops[0], line)?;
            asm.$m(rs, ops[1]);
        }};
    }
    macro_rules! fff {
        ($m:ident) => {{
            need(3)?;
            let fd = parse_freg(ops[0], line)?;
            let fs = parse_freg(ops[1], line)?;
            let ft = parse_freg(ops[2], line)?;
            asm.$m(fd, fs, ft);
        }};
    }
    macro_rules! ff {
        ($m:ident) => {{
            need(2)?;
            let fd = parse_freg(ops[0], line)?;
            let fs = parse_freg(ops[1], line)?;
            asm.$m(fd, fs);
        }};
    }
    macro_rules! fmem {
        ($m:ident) => {{
            need(2)?;
            let f = parse_freg(ops[0], line)?;
            let (off, base) = parse_mem(ops[1], line)?;
            asm.$m(f, off, base);
        }};
    }
    macro_rules! fcmp {
        ($m:ident) => {{
            need(3)?;
            let rd = parse_reg(ops[0], line)?;
            let fs = parse_freg(ops[1], line)?;
            let ft = parse_freg(ops[2], line)?;
            asm.$m(rd, fs, ft);
        }};
    }

    match mnemonic {
        "add" => rrr!(add),
        "sub" => rrr!(sub),
        "mul" => rrr!(mul),
        "div" => rrr!(div),
        "rem" => rrr!(rem),
        "divu" => rrr!(divu),
        "remu" => rrr!(remu),
        "and" => rrr!(and),
        "or" => rrr!(or),
        "xor" => rrr!(xor),
        "nor" => rrr!(nor),
        "sll" => rrr!(sll),
        "srl" => rrr!(srl),
        "sra" => rrr!(sra),
        "slt" => rrr!(slt),
        "sltu" => rrr!(sltu),
        "addi" | "addiu" => rri!(addi),
        "muli" => rri!(muli),
        "andi" => rri!(andi),
        "ori" => rri!(ori),
        "xori" => rri!(xori),
        "slli" | "slliv" => rri!(slli),
        "srli" => rri!(srli),
        "srai" => rri!(srai),
        "slti" => rri!(slti),
        "li" => {
            need(2)?;
            let rd = parse_reg(ops[0], line)?;
            let imm = parse_i32(ops[1], line)?;
            asm.li(rd, imm);
        }
        "la" => {
            need(2)?;
            let rd = parse_reg(ops[0], line)?;
            let Some(&addr) = data_labels.get(ops[1]) else {
                return Err(err(
                    line,
                    format!("undefined data label `{}` (data must precede use)", ops[1]),
                ));
            };
            asm.la(rd, addr);
        }
        "mv" | "move" => {
            need(2)?;
            let rd = parse_reg(ops[0], line)?;
            let rs = parse_reg(ops[1], line)?;
            asm.mv(rd, rs);
        }
        "neg" => {
            need(2)?;
            let rd = parse_reg(ops[0], line)?;
            let rs = parse_reg(ops[1], line)?;
            asm.neg(rd, rs);
        }
        "not" => {
            need(2)?;
            let rd = parse_reg(ops[0], line)?;
            let rs = parse_reg(ops[1], line)?;
            asm.not(rd, rs);
        }
        "lw" => mem!(lw),
        "lh" => mem!(lh),
        "lhu" => mem!(lhu),
        "lb" => mem!(lb),
        "lbu" => mem!(lbu),
        "sw" => mem!(sw),
        "sh" => mem!(sh),
        "sb" => mem!(sb),
        "beq" => br2!(beq),
        "bne" => br2!(bne),
        "blt" => br2!(blt),
        "bge" => br2!(bge),
        "ble" => br2!(ble),
        "bgt" => br2!(bgt),
        "bltu" => br2!(bltu),
        "bgeu" => br2!(bgeu),
        "beqz" => br1!(beqz),
        "bnez" => br1!(bnez),
        "blez" => br1!(blez),
        "bgtz" => br1!(bgtz),
        "bltz" => br1!(bltz),
        "bgez" => br1!(bgez),
        "j" | "b" => {
            need(1)?;
            asm.j(ops[0]);
        }
        "jal" | "call" => {
            need(1)?;
            asm.call(ops[0]);
        }
        "jr" => {
            need(1)?;
            let rs = parse_reg(ops[0], line)?;
            asm.jr(rs);
        }
        "ret" => {
            need(0)?;
            asm.ret();
        }
        "halt" => {
            need(0)?;
            asm.halt();
        }
        "nop" => {
            need(0)?;
            asm.nop();
        }
        "add.d" => fff!(fadd),
        "sub.d" => fff!(fsub),
        "mul.d" => fff!(fmul),
        "div.d" => fff!(fdiv),
        "min.d" => fff!(fmin),
        "max.d" => fff!(fmax),
        "mov.d" => ff!(fmov),
        "abs.d" => ff!(fabs),
        "neg.d" => ff!(fneg),
        "sqrt.d" => ff!(fsqrt),
        "li.d" => {
            need(2)?;
            let fd = parse_freg(ops[0], line)?;
            let v: f64 = ops[1]
                .parse()
                .map_err(|_| err(line, format!("bad float `{}`", ops[1])))?;
            asm.fli(fd, v);
        }
        "l.d" => fmem!(fld),
        "s.d" => fmem!(fsd),
        "cvt.d.w" => {
            need(2)?;
            let fd = parse_freg(ops[0], line)?;
            let rs = parse_reg(ops[1], line)?;
            asm.cvt_if(fd, rs);
        }
        "trunc.w.d" => {
            need(2)?;
            let rd = parse_reg(ops[0], line)?;
            let fs = parse_freg(ops[1], line)?;
            asm.cvt_fi(rd, fs);
        }
        "c.lt.d" => fcmp!(fcmp_lt),
        "c.le.d" => fcmp!(fcmp_le),
        "c.eq.d" => fcmp!(fcmp_eq),
        other => return Err(err(line, format!("unknown mnemonic `{other}`"))),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const COUNTDOWN: &str = r"
# counts $t0 down from 5
.text
.func main
main:
    li   $t0, 5
loop:
    addi $t0, $t0, -1
    bnez $t0, loop
    halt
.endfunc
";

    #[test]
    fn parses_countdown() {
        let p = parse_program(COUNTDOWN).unwrap();
        assert_eq!(p.code.len(), 4);
        assert_eq!(p.entry, 0);
        assert_eq!(p.code[2].static_target(), Some(1));
    }

    #[test]
    fn parses_data_section() {
        let src = r#"
.data
tab: .word 10, 20, 30
msg: .ascii "hi"
buf: .space 8
pi:  .double 3.5
.text
.func main
main:
    la $t0, tab
    lw $t1, 4($t0)
    la $t2, pi
    l.d $f0, ($t2)
    halt
.endfunc
"#;
        let p = parse_program(src).unwrap();
        assert_eq!(&p.data[0..4], &10i32.to_le_bytes());
        assert_eq!(&p.data[12..14], b"hi");
        // pi is 8-aligned
        let pi_off = p.data.len() - 8;
        assert_eq!(
            f64::from_le_bytes(p.data[pi_off..].try_into().unwrap()),
            3.5
        );
    }

    #[test]
    fn eligible_flag_parses() {
        let src = "
.text
.func kernel eligible
kernel:
    ret
.endfunc
.func main
main:
    halt
.endfunc
";
        let p = parse_program(src).unwrap();
        assert!(p.function("kernel").unwrap().eligible);
        assert!(!p.function("main").unwrap().eligible);
    }

    #[test]
    fn unknown_mnemonic_reports_line() {
        let src = "
.text
.func main
main:
    frobnicate $t0
.endfunc
";
        let e = parse_program(src).unwrap_err();
        assert_eq!(e.line, 5);
        assert!(e.message.contains("frobnicate"));
    }

    #[test]
    fn bad_operand_count() {
        let e = parse_program(".text\n.func main\nmain:\nadd $t0, $t1\nhalt\n.endfunc").unwrap_err();
        assert!(e.message.contains("expects 3 operands"));
    }

    #[test]
    fn hex_immediates() {
        let p = parse_program(".text\n.func main\nmain:\nli $t0, 0xff\nhalt\n.endfunc").unwrap();
        match p.code[0] {
            certa_isa::Instr::Li { imm, .. } => assert_eq!(imm, 255),
            ref o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn float_ops_parse() {
        let src = "
.text
.func main
main:
    li.d $f0, 2.0
    li.d $f1, 3.0
    mul.d $f2, $f0, $f1
    c.lt.d $t0, $f0, $f1
    halt
.endfunc
";
        let p = parse_program(src).unwrap();
        assert_eq!(p.code.len(), 5);
    }

    #[test]
    fn instructions_in_data_rejected() {
        let e = parse_program(".data\nadd $t0, $t1, $t2\n").unwrap_err();
        assert!(e.message.contains("not allowed"));
    }

    #[test]
    fn memory_operand_without_offset() {
        let p =
            parse_program(".text\n.func main\nmain:\nlw $t0, ($sp)\nhalt\n.endfunc").unwrap();
        match p.code[0] {
            certa_isa::Instr::Load { off, .. } => assert_eq!(off, 0),
            ref o => panic!("unexpected {o:?}"),
        }
    }
}

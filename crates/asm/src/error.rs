//! Assembler error type.

use std::fmt;

/// Errors produced while assembling a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never defined.
    UndefinedLabel {
        /// The missing label.
        label: String,
        /// Code index of the referencing instruction.
        at: usize,
    },
    /// The same label was defined twice.
    DuplicateLabel {
        /// The duplicated label.
        label: String,
    },
    /// `func` was called while another function was still open.
    NestedFunction {
        /// Name of the function being opened.
        name: String,
    },
    /// `endfunc` was called with no open function.
    NoOpenFunction,
    /// A function was opened but never closed before `assemble`.
    UnclosedFunction {
        /// Name of the still-open function.
        name: String,
    },
    /// The program failed final validation.
    Invalid(certa_isa::ProgramError),
    /// An empty function (no instructions) was closed.
    EmptyFunction {
        /// Name of the empty function.
        name: String,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel { label, at } => {
                write!(f, "undefined label `{label}` referenced at instruction {at}")
            }
            AsmError::DuplicateLabel { label } => write!(f, "duplicate label `{label}`"),
            AsmError::NestedFunction { name } => {
                write!(f, "cannot open function `{name}`: another function is open")
            }
            AsmError::NoOpenFunction => write!(f, "endfunc called with no open function"),
            AsmError::UnclosedFunction { name } => {
                write!(f, "function `{name}` was never closed")
            }
            AsmError::Invalid(e) => write!(f, "program validation failed: {e}"),
            AsmError::EmptyFunction { name } => write!(f, "function `{name}` has no instructions"),
        }
    }
}

impl std::error::Error for AsmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AsmError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<certa_isa::ProgramError> for AsmError {
    fn from(e: certa_isa::ProgramError) -> Self {
        AsmError::Invalid(e)
    }
}

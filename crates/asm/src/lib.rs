//! # certa-asm
//!
//! A macro-assembler for the [`certa-isa`](certa_isa) instruction set.
//!
//! Programs are written against [`Asm`], a builder that provides one method
//! per mnemonic, string labels with forward references, a function table with
//! the paper's *eligible* marking, and a data segment allocator. Calling
//! [`Asm::assemble`] resolves every label and returns a validated
//! [`Program`](certa_isa::Program).
//!
//! ## Example
//!
//! ```
//! use certa_asm::Asm;
//! use certa_isa::reg::{A0, T0, T1, V0, ZERO};
//!
//! // sum the integers 1..=n (n passed in $a0, result in $v0)
//! let mut a = Asm::new();
//! a.func("main", false);
//! a.li(A0, 10);
//! a.li(V0, 0);
//! a.li(T0, 1);
//! a.label("loop");
//! a.add(V0, V0, T0);
//! a.addi(T0, T0, 1);
//! a.ble(T0, A0, "loop");
//! a.halt();
//! a.endfunc();
//! let program = a.assemble().unwrap();
//! assert!(program.validate().is_ok());
//! ```

mod builder;
mod error;
mod export;
mod text;

pub use builder::{Asm, DATA_BASE, STACK_RED_ZONE};
pub use error::AsmError;
pub use export::export_program;
pub use text::{parse_program, ParseError};

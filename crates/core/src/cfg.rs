//! Whole-program control-flow graph construction.
//!
//! Blocks are maximal straight-line instruction runs. Edges include
//! fallthrough, branch targets, jumps, **call edges** (`jal` → callee entry)
//! and **return edges** (`jr` inside a function → the instruction after each
//! call site of that function). Call/return linkage is context-insensitive,
//! which is what the paper's "We assume inter-procedural analysis" requires.

use std::collections::{BTreeMap, BTreeSet};

use certa_isa::{Instr, Program};

/// A basic block: instructions `start..end` with successor block ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// Index of the first instruction.
    pub start: usize,
    /// One past the index of the last instruction.
    pub end: usize,
    /// Successor block ids.
    pub succs: Vec<usize>,
}

/// Whole-program control-flow graph.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Basic blocks, ordered by start index.
    pub blocks: Vec<BasicBlock>,
    /// Map from instruction index to owning block id.
    block_of: Vec<usize>,
    /// Predecessor lists, cached at build time (the inverse of `succs`).
    preds: Vec<Vec<usize>>,
    /// Immediate dominator per block (`idom[entry] == entry`), `None` for
    /// blocks unreachable from the program entry. Cached at build time;
    /// powers the back-edge / natural-loop queries the simulator's
    /// taken-path trace linearization asks.
    idom: Vec<Option<usize>>,
}

/// Immediate dominators by the iterative Cooper–Harvey–Kennedy scheme:
/// reverse-postorder sweeps intersecting the dominator chains of processed
/// predecessors until a fixed point. CFGs here are small (hundreds of
/// blocks), so the simple O(N·E) iteration is plenty.
fn compute_idoms(blocks: &[BasicBlock], preds: &[Vec<usize>], entry: usize) -> Vec<Option<usize>> {
    let n = blocks.len();
    let mut idom: Vec<Option<usize>> = vec![None; n];
    if n == 0 {
        return idom;
    }
    // Postorder DFS from the entry block (iterative, explicit stack).
    let mut post: Vec<usize> = Vec::with_capacity(n);
    let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
    let mut stack: Vec<(usize, usize)> = vec![(entry, 0)];
    state[entry] = 1;
    while let Some(&(b, next)) = stack.last() {
        if let Some(&s) = blocks[b].succs.get(next) {
            stack.last_mut().expect("stack is non-empty").1 += 1;
            if state[s] == 0 {
                state[s] = 1;
                stack.push((s, 0));
            }
        } else {
            state[b] = 2;
            post.push(b);
            stack.pop();
        }
    }
    let rpo: Vec<usize> = post.iter().rev().copied().collect();
    let mut rpo_index = vec![usize::MAX; n];
    for (k, &b) in rpo.iter().enumerate() {
        rpo_index[b] = k;
    }
    let intersect = |idom: &[Option<usize>], mut a: usize, mut b: usize| {
        while a != b {
            while rpo_index[a] > rpo_index[b] {
                a = idom[a].expect("processed block has an idom");
            }
            while rpo_index[b] > rpo_index[a] {
                b = idom[b].expect("processed block has an idom");
            }
        }
        a
    };
    idom[entry] = Some(entry);
    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip(1) {
            let mut new_idom: Option<usize> = None;
            for &p in &preds[b] {
                if idom[p].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, p, cur),
                });
            }
            if new_idom.is_some() && idom[b] != new_idom {
                idom[b] = new_idom;
                changed = true;
            }
        }
    }
    idom
}

impl Cfg {
    /// Builds the CFG of `program`, including interprocedural call and
    /// return edges.
    #[must_use]
    pub fn build(program: &Program) -> Self {
        let n = program.code.len();
        // ----- leaders -----
        let mut leaders = BTreeSet::new();
        if n > 0 {
            leaders.insert(0);
            leaders.insert(program.entry);
        }
        for (i, instr) in program.code.iter().enumerate() {
            if let Some(t) = instr.static_target() {
                leaders.insert(t);
            }
            if instr.is_control_transfer() && i + 1 < n {
                leaders.insert(i + 1);
            }
        }
        for f in &program.functions {
            if f.start < n {
                leaders.insert(f.start);
            }
        }

        // ----- blocks -----
        let starts: Vec<usize> = leaders.into_iter().collect();
        let mut blocks: Vec<BasicBlock> = Vec::with_capacity(starts.len());
        let mut block_of = vec![0usize; n];
        for (b, &start) in starts.iter().enumerate() {
            let end = starts.get(b + 1).copied().unwrap_or(n);
            for bo in &mut block_of[start..end] {
                *bo = b;
            }
            blocks.push(BasicBlock {
                start,
                end,
                succs: Vec::new(),
            });
        }

        // ----- return points: function entry -> [instr after each call] ----
        let mut return_points: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, instr) in program.code.iter().enumerate() {
            if let Instr::Call { target } = instr {
                if i + 1 < n {
                    return_points.entry(*target).or_default().push(i + 1);
                }
            }
        }
        // Map instruction index -> containing function start (for jr lookup).
        let func_start_of = |idx: usize| -> Option<usize> {
            program.function_at(idx).map(|f| f.start)
        };

        // ----- edges -----
        for b in 0..blocks.len() {
            let last = blocks[b].end - 1;
            let mut succs: Vec<usize> = Vec::new();
            match program.code[last] {
                Instr::Branch { target, .. } => {
                    succs.push(block_of[target]);
                    if blocks[b].end < n {
                        succs.push(block_of[blocks[b].end]);
                    }
                }
                Instr::Jump { target } => succs.push(block_of[target]),
                Instr::Call { target } => succs.push(block_of[target]),
                Instr::JumpReg { .. } => {
                    // Return edge(s): to every return point of the containing
                    // function. `jr` through anything other than a return
                    // address is not used by certa guests; a corrupted target
                    // is a dynamic crash, not a CFG edge.
                    if let Some(fs) = func_start_of(last) {
                        if let Some(rps) = return_points.get(&fs) {
                            for &rp in rps {
                                succs.push(block_of[rp]);
                            }
                        }
                    }
                }
                Instr::Halt => {}
                _ => {
                    if blocks[b].end < n {
                        succs.push(block_of[blocks[b].end]);
                    }
                }
            }
            succs.sort_unstable();
            succs.dedup();
            blocks[b].succs = succs;
        }

        let mut preds = vec![Vec::new(); blocks.len()];
        for (b, block) in blocks.iter().enumerate() {
            for &s in &block.succs {
                preds[s].push(b);
            }
        }

        let idom = if n == 0 {
            Vec::new()
        } else {
            compute_idoms(&blocks, &preds, block_of[program.entry.min(n - 1)])
        };

        Cfg {
            blocks,
            block_of,
            preds,
            idom,
        }
    }

    /// The block containing instruction `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn block_of(&self, index: usize) -> usize {
        self.block_of[index]
    }

    /// Number of basic blocks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the CFG has no blocks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Predecessor lists (cached at build time; the inverse of every
    /// block's `succs`).
    #[must_use]
    pub fn predecessors(&self) -> &[Vec<usize>] {
        &self.preds
    }

    /// Successor block ids of block `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    #[must_use]
    pub fn succs(&self, b: usize) -> &[usize] {
        &self.blocks[b].succs
    }

    /// The block that textually follows `b` — the fall-through successor —
    /// when `b`'s terminator can fall through into it
    /// ([`certa_isa::BranchKind::can_fall_through`]) and `b` is not the
    /// last block. The simulator's superblock builder chains straight-line
    /// runs through this edge.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    #[must_use]
    pub fn fallthrough_succ(&self, b: usize, program: &Program) -> Option<usize> {
        let block = &self.blocks[b];
        let last = block.end - 1;
        if program.code[last].branch_kind().can_fall_through() && block.end < program.code.len() {
            Some(self.block_of[block.end])
        } else {
            None
        }
    }

    /// Whether block `a` dominates block `b`: every path from the program
    /// entry to `b` passes through `a`. Blocks unreachable from the entry
    /// are dominated by nothing (and dominate nothing), so this returns
    /// `false` for them — conservative for every caller.
    #[must_use]
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        if self.idom.get(a).copied().flatten().is_none() {
            return false;
        }
        let mut cur = b;
        loop {
            let Some(id) = self.idom.get(cur).copied().flatten() else {
                return false;
            };
            if cur == a {
                return true;
            }
            if id == cur {
                // Reached the entry without meeting `a`.
                return false;
            }
            cur = id;
        }
    }

    /// Whether `from → to` is a natural-loop **back edge**: `to` is a CFG
    /// successor of `from` and dominates it (the classical definition, so
    /// `to` is the loop header of a natural loop containing `from`). The
    /// simulator's superblock builder uses this to decide when a
    /// conditional terminator is loop-closing and the *taken* path should
    /// be linearized next.
    #[must_use]
    pub fn is_back_edge(&self, from: usize, to: usize) -> bool {
        self.blocks[from].succs.contains(&to) && self.dominates(to, from)
    }

    /// Whether block `h` is a natural-loop header: some predecessor
    /// reaches it through a back edge.
    #[must_use]
    pub fn is_loop_header(&self, h: usize) -> bool {
        self.preds[h].iter().any(|&p| self.is_back_edge(p, h))
    }

    /// The block a static jump/call terminator of `b` transfers to, if any
    /// (conditional branches report their taken-path block here too).
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    #[must_use]
    pub fn static_target_succ(&self, b: usize, program: &Program) -> Option<usize> {
        program.code[self.blocks[b].end - 1]
            .static_target()
            .map(|t| self.block_of[t])
    }

    /// Renders the CFG in Graphviz dot format (for debugging and docs).
    #[must_use]
    pub fn to_dot(&self, program: &Program) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph cfg {\n  node [shape=box, fontname=monospace];\n");
        for (b, block) in self.blocks.iter().enumerate() {
            let mut body = String::new();
            for i in block.start..block.end {
                let _ = writeln!(body, "{i}: {}", program.code[i]);
            }
            let body = body.replace('"', "\\\"").replace('\n', "\\l");
            let _ = writeln!(out, "  b{b} [label=\"{body}\"];");
            for &s in &block.succs {
                let _ = writeln!(out, "  b{b} -> b{s};");
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certa_asm::Asm;
    use certa_isa::reg::{A0, T0, V0};

    #[test]
    fn straight_line_is_one_block() {
        let mut a = Asm::new();
        a.func("main", false);
        a.li(T0, 1);
        a.addi(T0, T0, 1);
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.len(), 1);
        assert!(cfg.blocks[0].succs.is_empty());
    }

    #[test]
    fn branch_splits_blocks() {
        let mut a = Asm::new();
        a.func("main", false);
        a.li(T0, 3);
        a.label("loop");
        a.addi(T0, T0, -1);
        a.bnez(T0, "loop");
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let cfg = Cfg::build(&p);
        // blocks: [li], [addi, bnez], [halt]
        assert_eq!(cfg.len(), 3);
        let loop_block = cfg.block_of(1);
        assert!(cfg.blocks[loop_block].succs.contains(&loop_block));
        assert_eq!(cfg.blocks[cfg.block_of(3)].succs, Vec::<usize>::new());
    }

    #[test]
    fn call_and_return_edges() {
        let mut a = Asm::new();
        a.func("sq", false);
        a.mul(V0, A0, A0);
        a.ret();
        a.endfunc();
        a.func("main", false);
        a.li(A0, 4);
        a.call("sq");
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let cfg = Cfg::build(&p);
        // call block -> sq entry; sq's jr -> instruction after the call (halt)
        let call_block = cfg.block_of(3);
        let sq_entry = cfg.block_of(0);
        assert!(cfg.blocks[call_block].succs.contains(&sq_entry));
        let ret_block = cfg.block_of(1);
        let halt_block = cfg.block_of(4);
        assert!(cfg.blocks[ret_block].succs.contains(&halt_block));
    }

    #[test]
    fn multiple_call_sites_all_get_return_edges() {
        let mut a = Asm::new();
        a.func("f", false);
        a.ret();
        a.endfunc();
        a.func("main", false);
        a.call("f");
        a.call("f");
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let cfg = Cfg::build(&p);
        let ret_block = cfg.block_of(0);
        let after1 = cfg.block_of(2);
        let after2 = cfg.block_of(3);
        assert!(cfg.blocks[ret_block].succs.contains(&after1));
        assert!(cfg.blocks[ret_block].succs.contains(&after2));
    }

    #[test]
    fn predecessors_invert_successors() {
        let mut a = Asm::new();
        a.func("main", false);
        a.li(T0, 2);
        a.label("l");
        a.addi(T0, T0, -1);
        a.bnez(T0, "l");
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let cfg = Cfg::build(&p);
        let preds = cfg.predecessors();
        for (b, block) in cfg.blocks.iter().enumerate() {
            for &s in &block.succs {
                assert!(preds[s].contains(&b));
            }
        }
    }

    #[test]
    fn fallthrough_and_target_queries() {
        let mut a = Asm::new();
        a.func("main", false);
        a.li(T0, 3);
        a.label("loop");
        a.addi(T0, T0, -1);
        a.bnez(T0, "loop");
        a.j("done");
        a.label("done");
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let cfg = Cfg::build(&p);
        // blocks: [li], [addi, bnez], [j], [halt]
        let entry = cfg.block_of(0);
        let body = cfg.block_of(1);
        let jump = cfg.block_of(3);
        let done = cfg.block_of(4);
        // A plain block falls through into its textual successor.
        assert_eq!(cfg.fallthrough_succ(entry, &p), Some(body));
        // A conditional terminator has both a fall-through and a target.
        assert_eq!(cfg.fallthrough_succ(body, &p), Some(jump));
        assert_eq!(cfg.static_target_succ(body, &p), Some(body));
        // An unconditional jump never falls through but has a target.
        assert_eq!(cfg.fallthrough_succ(jump, &p), None);
        assert_eq!(cfg.static_target_succ(jump, &p), Some(done));
        // Halt has neither.
        assert_eq!(cfg.fallthrough_succ(done, &p), None);
        assert_eq!(cfg.static_target_succ(done, &p), None);
        // succs() exposes the same edges as the block structs.
        assert_eq!(cfg.succs(body), &cfg.blocks[body].succs[..]);
    }

    #[test]
    fn last_block_never_reports_fallthrough() {
        let mut a = Asm::new();
        a.func("main", false);
        a.li(T0, 1);
        a.nop();
        a.endfunc();
        let p = a.assemble().unwrap();
        let cfg = Cfg::build(&p);
        let last = cfg.len() - 1;
        assert_eq!(cfg.fallthrough_succ(last, &p), None);
    }

    #[test]
    fn back_edges_and_loop_headers() {
        let mut a = Asm::new();
        a.func("main", false);
        a.li(T0, 3); // block E
        a.label("outer");
        a.li(A0, 2); // block O (outer header)
        a.label("inner");
        a.addi(A0, A0, -1); // block I (inner header)
        a.bnez(A0, "inner");
        a.addi(T0, T0, -1); // block L (outer latch)
        a.bnez(T0, "outer");
        a.halt(); // block X
        a.endfunc();
        let p = a.assemble().unwrap();
        let cfg = Cfg::build(&p);
        let entry = cfg.block_of(0);
        let outer = cfg.block_of(1);
        let inner = cfg.block_of(2);
        let latch = cfg.block_of(4);
        let exit = cfg.block_of(6);
        // Dominance: entry dominates everything; outer dominates the loop
        // bodies; the exit dominates only itself.
        for b in [entry, outer, inner, latch, exit] {
            assert!(cfg.dominates(entry, b));
            assert!(cfg.dominates(b, b));
        }
        assert!(cfg.dominates(outer, inner));
        assert!(cfg.dominates(outer, latch));
        assert!(!cfg.dominates(exit, entry));
        assert!(!cfg.dominates(latch, inner));
        // Back edges: inner→inner (self-loop) and latch→outer; the exit
        // edges are not back edges.
        assert!(cfg.is_back_edge(inner, inner));
        assert!(cfg.is_back_edge(latch, outer));
        assert!(!cfg.is_back_edge(inner, latch));
        assert!(!cfg.is_back_edge(latch, exit));
        assert!(cfg.is_loop_header(inner));
        assert!(cfg.is_loop_header(outer));
        assert!(!cfg.is_loop_header(exit));
        assert!(!cfg.is_loop_header(entry));
    }

    #[test]
    fn unreachable_blocks_have_no_dominators() {
        let mut a = Asm::new();
        a.func("dead", false);
        a.nop(); // never called: unreachable from entry
        a.ret();
        a.endfunc();
        a.func("main", false);
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let cfg = Cfg::build(&p);
        let dead = cfg.block_of(0);
        let main = cfg.block_of(p.entry);
        assert!(!cfg.dominates(main, dead));
        assert!(!cfg.dominates(dead, dead), "unreachable: conservatively no");
        assert!(!cfg.is_loop_header(dead));
    }

    #[test]
    fn dot_export_mentions_blocks() {
        let mut a = Asm::new();
        a.func("main", false);
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let cfg = Cfg::build(&p);
        let dot = cfg.to_dot(&p);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("halt"));
    }
}

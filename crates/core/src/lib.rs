//! # certa-core
//!
//! The primary contribution of the IISWC 2006 paper *"Characterization of
//! Error-Tolerant Applications when Protecting Control Data"*: a static
//! analysis that walks **backward** through a program, maintaining the set
//! `CVar` of variables (registers) likely to influence control flow, and tags
//! every arithmetic instruction whose destination is **not** in `CVar` as
//! *low-reliability* — safe to execute on unprotected hardware, because a bit
//! flip in its result can only degrade output fidelity, not derail control.
//!
//! The analysis (paper §3):
//!
//! * Branch comparison operands and indirect-jump targets **add** registers
//!   to `CVar` (control uses).
//! * Memory address operands also add registers (address uses) — a corrupted
//!   address is an immediate crash, and the companion paper \[5\] protects
//!   "control, address, and data" operations separately.
//! * An instruction *defining* a register in `CVar` removes that register
//!   and adds the registers it uses; such instructions are
//!   [`Tag::Protected`] with [`ProtectReason::Control`].
//! * The walk crosses basic-block and procedure boundaries (interprocedural,
//!   context-insensitive) and iterates to a fixpoint.
//! * Memory is **not disambiguated**: a low-reliability value stored to
//!   memory and later reloaded into a control computation is an accepted
//!   residual failure path — exactly the limitation the paper reports in
//!   §5.1.
//!
//! Only instructions inside functions the user marked *eligible*
//! ([`certa_isa::FuncMeta::eligible`]) may be tagged low-reliability,
//! matching the paper's methodology (§4).
//!
//! ## Example
//!
//! ```
//! use certa_asm::Asm;
//! use certa_core::{analyze, Tag};
//! use certa_isa::reg::{T0, T1, T2, T3};
//!
//! let mut a = Asm::new();
//! a.func("kernel", true); // user-identified as error-tolerant
//! a.li(T0, 0);
//! a.li(T1, 10);
//! a.label("loop");
//! a.add(T2, T2, T3);      // pure data: tagged low-reliability
//! a.addi(T0, T0, 1);      // feeds the branch: protected
//! a.blt(T0, T1, "loop");
//! a.halt();
//! a.endfunc();
//! let program = a.assemble().unwrap();
//!
//! let tags = analyze(&program);
//! assert_eq!(tags.tag(2), Tag::LowReliability);          // add  t2,t2,t3
//! assert!(matches!(tags.tag(3), Tag::Protected(_)));     // addi t0,t0,1
//! ```

mod analysis;
mod cfg;
mod tags;

pub use analysis::{analyze, analyze_with, AnalysisOptions};
pub use cfg::{BasicBlock, Cfg};
pub use tags::{annotate_listing, ProtectReason, Tag, TagMap, TagStats};

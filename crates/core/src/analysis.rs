//! The backward CVar dataflow analysis (paper §3).
//!
//! `CVar` is represented as two 64-bit sets over [`certa_isa::RegRef`]
//! dense indices (32 integer + 32 float registers):
//!
//! * the **control** set — registers feeding branch decisions and indirect
//!   jumps; propagates unconditionally through def-use chains, exactly the
//!   paper's algorithm;
//! * the **address** set — registers feeding load/store address operands
//!   (enabled by [`AnalysisOptions::protect_addresses`]; the companion
//!   paper \[5\] treats address operations as requiring reliability, and an
//!   unprotected address computation is an instant crash).
//!
//! The address set propagates through arithmetic like the control set with
//! one refinement: a **bounding mask** (`andi` with a small immediate, or a
//! logical right shift by ≥ 16) breaks the chain when
//! [`AnalysisOptions::mask_breaks_address_chains`] is set (the default).
//! A masked table index is always in bounds — a bit flip upstream of the
//! mask yields a *different in-bounds index*, i.e. a data error, never a
//! wild access. Without this refinement every byte of a cipher's state
//! would transitively count as an address (S-box lookups) and the analysis
//! would find almost nothing to tag in table-driven codecs; with it, the
//! tagged fractions line up with the paper's Table 3.
//!
//! The analysis runs a worklist fixpoint over the whole-program CFG; an
//! instruction is protected when its definition is in either set at its
//! program point.

use std::collections::VecDeque;

use certa_isa::{AluOp, Instr, Program, RegRef, UseKind};

use crate::cfg::Cfg;
use crate::tags::{ProtectReason, Tag, TagMap};

/// Tuning knobs for [`analyze_with`]; the defaults reproduce the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisOptions {
    /// Treat address operands of loads/stores as requiring protection
    /// (default `true`). Disabling this is the ablation studied in the
    /// `ablation` bench: address corruption then becomes injectable and
    /// crash rates rise sharply.
    pub protect_addresses: bool,
    /// Allow memory loads to be tagged low-reliability when their
    /// destination is not in `CVar` (default `true`). When disabled, only
    /// pure arithmetic is taggable.
    pub tag_loads: bool,
    /// Stop address-chain propagation at bounding masks (default `true`).
    /// See the module docs for the rationale.
    pub mask_breaks_address_chains: bool,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            protect_addresses: true,
            tag_loads: true,
            mask_breaks_address_chains: true,
        }
    }
}

#[inline]
fn bit(r: RegRef) -> u64 {
    // $zero can appear in CVar (e.g. `beqz` compares against it) but is
    // never killed: writes to it are discarded.
    1u64 << r.dense_index()
}

/// Whether `instr` bounds its result into a small range, making downstream
/// address arithmetic safe regardless of upstream bit flips.
#[inline]
fn is_bounding_mask(instr: &Instr) -> bool {
    match *instr {
        Instr::AluImm {
            op: AluOp::And,
            imm,
            ..
        } => (0..=0xFFFF).contains(&imm),
        Instr::AluImm {
            op: AluOp::Srl,
            imm,
            ..
        } => imm >= 16,
        Instr::AluImm {
            op: AluOp::Remu,
            imm,
            ..
        } => (1..=0x1_0000).contains(&imm),
        _ => false,
    }
}

/// The per-program-point dataflow state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct Live {
    control: u64,
    address: u64,
}

impl Live {
    #[inline]
    fn union(self, other: Live) -> Live {
        Live {
            control: self.control | other.control,
            address: self.address | other.address,
        }
    }
}

/// Processes one instruction backward through the live state. Returns
/// whether the instruction's definition was live in either set (i.e. the
/// instruction is control/address-influencing).
#[inline]
fn step(instr: &Instr, live: &mut Live, opts: &AnalysisOptions) -> bool {
    let (def_control, def_address) = match instr.def() {
        Some(RegRef::Int(r)) if r.is_zero() => (false, false), // discarded write
        Some(d) => {
            let b = bit(d);
            let c = live.control & b != 0;
            let a = live.address & b != 0;
            if c {
                live.control &= !b;
            }
            if a {
                live.address &= !b;
            }
            (c, a)
        }
        None => (false, false),
    };
    let address_chain_continues =
        def_address && !(opts.mask_breaks_address_chains && is_bounding_mask(instr));
    instr.for_each_use(|r, kind| {
        let b = bit(r);
        match kind {
            UseKind::Control => live.control |= b,
            UseKind::Address => {
                if opts.protect_addresses {
                    live.address |= b;
                }
            }
            UseKind::Data => {}
        }
        if kind == UseKind::Data || kind == UseKind::Address {
            // data operands of a control/address-influencing definition
            // inherit the classification
            if def_control {
                live.control |= b;
            }
            if address_chain_continues {
                live.address |= b;
            }
        }
    });
    def_control || def_address
}

/// Runs the paper's analysis with default options.
#[must_use]
pub fn analyze(program: &Program) -> TagMap {
    analyze_with(program, &AnalysisOptions::default())
}

/// Runs the paper's analysis with explicit [`AnalysisOptions`].
#[must_use]
pub fn analyze_with(program: &Program, opts: &AnalysisOptions) -> TagMap {
    let n = program.code.len();
    if n == 0 {
        return TagMap::new(Vec::new());
    }
    let cfg = Cfg::build(program);
    let nb = cfg.len();
    let preds = cfg.predecessors();

    let mut live_in = vec![Live::default(); nb];
    let mut live_out = vec![Live::default(); nb];

    // Worklist seeded with every block (reverse order converges faster for
    // backward problems).
    let mut work: VecDeque<usize> = (0..nb).rev().collect();
    let mut queued = vec![true; nb];

    while let Some(b) = work.pop_front() {
        queued[b] = false;
        let out = cfg.blocks[b]
            .succs
            .iter()
            .fold(Live::default(), |acc, &s| acc.union(live_in[s]));
        live_out[b] = out;
        let mut live = out;
        for i in (cfg.blocks[b].start..cfg.blocks[b].end).rev() {
            step(&program.code[i], &mut live, opts);
        }
        if live != live_in[b] {
            live_in[b] = live;
            for &p in &preds[b] {
                if !queued[p] {
                    queued[p] = true;
                    work.push_back(p);
                }
            }
        }
    }

    // Classification pass with converged block-exit sets.
    let mut tags = vec![Tag::Protected(ProtectReason::NotValueProducing); n];
    for (b, block) in cfg.blocks.iter().enumerate() {
        let mut live = live_out[b];
        for i in (block.start..block.end).rev() {
            let instr = &program.code[i];
            let def_live = step(instr, &mut live, opts);
            tags[i] = classify(program, i, instr, def_live, opts);
        }
    }
    TagMap::new(tags)
}

fn classify(
    program: &Program,
    index: usize,
    instr: &Instr,
    def_live: bool,
    opts: &AnalysisOptions,
) -> Tag {
    if !instr.is_value_producing() {
        return Tag::Protected(ProtectReason::NotValueProducing);
    }
    if matches!(instr, Instr::Call { .. }) {
        // A call's "value" is the return address: inherently control.
        return Tag::Protected(ProtectReason::NonArithmetic);
    }
    if matches!(instr, Instr::Load { .. } | Instr::FLoad { .. }) && !opts.tag_loads {
        return Tag::Protected(ProtectReason::NonArithmetic);
    }
    if !program.is_eligible(index) {
        return Tag::Protected(ProtectReason::Ineligible);
    }
    if def_live {
        return Tag::Protected(ProtectReason::Control);
    }
    Tag::LowReliability
}

#[cfg(test)]
mod tests {
    use super::*;
    use certa_asm::Asm;
    use certa_isa::reg::{A0, A1, T0, T1, T2, T3, T4, V0, F0, F1, F2};

    fn assemble(build: impl FnOnce(&mut Asm)) -> Program {
        let mut a = Asm::new();
        build(&mut a);
        a.assemble().unwrap()
    }

    /// The paper's §3 worked example, transcribed to our ISA:
    ///
    /// ```text
    /// I0: $2 = $4 + 1        * tagged
    /// I1: LD $3, addr
    /// I2: $2 = $3 + 2
    /// I3: $3 = $3 + 8
    /// I4: $10 = $8 - $4      * tagged
    /// I5: $10 = $3 << $2
    /// I6: $4 = $3 + $6       * tagged
    /// I7: $3 = $3 + 1
    /// I8: BNE $3, $10, label
    /// ```
    #[test]
    fn paper_worked_example() {
        use certa_isa::Reg;
        let r = |i: u8| Reg::new(i);
        let p = assemble(|a| {
            let addr = a.data_words(&[0]);
            a.func("kernel", true);
            a.addi(r(2), r(4), 1); // I0
            a.la(r(1), addr); //      address setup (assembler temp)
            a.lw(r(3), 0, r(1)); //   I1
            a.addi(r(2), r(3), 2); // I2
            a.addi(r(3), r(3), 8); // I3
            a.sub(r(10), r(8), r(4)); // I4
            a.sll(r(10), r(3), r(2)); // I5
            a.add(r(4), r(3), r(6)); // I6
            a.addi(r(3), r(3), 1); // I7
            a.label("target");
            a.bne(r(3), r(10), "target"); // I8
            a.halt();
            a.endfunc();
        });
        let tags = analyze(&p);
        // instruction indices shifted by the la at index 1
        assert_eq!(tags.tag(0), Tag::LowReliability, "I0 must be tagged");
        assert!(matches!(tags.tag(2), Tag::Protected(ProtectReason::Control)), "I1 load");
        assert!(matches!(tags.tag(3), Tag::Protected(ProtectReason::Control)), "I2");
        assert!(matches!(tags.tag(4), Tag::Protected(ProtectReason::Control)), "I3");
        assert_eq!(tags.tag(5), Tag::LowReliability, "I4 must be tagged");
        assert!(matches!(tags.tag(6), Tag::Protected(ProtectReason::Control)), "I5");
        assert_eq!(tags.tag(7), Tag::LowReliability, "I6 must be tagged");
        assert!(matches!(tags.tag(8), Tag::Protected(ProtectReason::Control)), "I7");
    }

    #[test]
    fn loop_counter_is_protected_data_is_not() {
        let p = assemble(|a| {
            a.func("kernel", true);
            a.li(T0, 0); // counter
            a.li(T1, 10); // bound
            a.li(T2, 0); // accumulator (pure data)
            a.label("loop");
            a.add(T2, T2, T0); // data
            a.addi(T0, T0, 1); // counter
            a.blt(T0, T1, "loop");
            a.halt();
            a.endfunc();
        });
        let tags = analyze(&p);
        assert!(matches!(tags.tag(0), Tag::Protected(ProtectReason::Control))); // li T0
        assert!(matches!(tags.tag(1), Tag::Protected(ProtectReason::Control))); // li T1
        assert_eq!(tags.tag(2), Tag::LowReliability); // li T2
        assert_eq!(tags.tag(3), Tag::LowReliability); // add T2
        assert!(matches!(tags.tag(4), Tag::Protected(ProtectReason::Control))); // addi T0
    }

    #[test]
    fn address_computation_is_protected_by_default() {
        let p = assemble(|a| {
            let buf = a.data_zero(64);
            a.func("kernel", true);
            a.la(T0, buf);
            a.li(T1, 4);
            a.add(T2, T0, T1); // address arithmetic
            a.lw(T3, 0, T2);
            a.add(T4, T3, T3); // loaded value doubled: pure data
            a.sw(T4, 8, T0);
            a.halt();
            a.endfunc();
        });
        let tags = analyze(&p);
        assert!(matches!(tags.tag(2), Tag::Protected(ProtectReason::Control))); // add T2 (address)
        assert_eq!(tags.tag(3), Tag::LowReliability); // the load's value is data
        assert_eq!(tags.tag(4), Tag::LowReliability); // add T4
    }

    #[test]
    fn address_protection_can_be_ablated() {
        let p = assemble(|a| {
            let buf = a.data_zero(64);
            a.func("kernel", true);
            a.la(T0, buf);
            a.li(T1, 4);
            a.add(T2, T0, T1);
            a.lw(T3, 0, T2);
            a.halt();
            a.endfunc();
        });
        let opts = AnalysisOptions {
            protect_addresses: false,
            ..AnalysisOptions::default()
        };
        let tags = analyze_with(&p, &opts);
        assert_eq!(tags.tag(2), Tag::LowReliability); // address arithmetic now unprotected
    }

    #[test]
    fn bounding_mask_breaks_address_chain() {
        // A table lookup `tab[x & 0xff]`: the mask is protected (it feeds
        // the address) but the value chain *above* the mask stays taggable.
        let p = assemble(|a| {
            let tab = a.data_zero(256 * 4);
            a.func("kernel", true);
            a.li(T0, 7);
            a.add(T1, T0, T0); // upstream data, pre-mask
            a.andi(T2, T1, 255); // bounding mask
            a.slli(T2, T2, 2);
            a.la(T3, tab);
            a.add(T3, T3, T2);
            a.lw(V0, 0, T3);
            a.halt();
            a.endfunc();
        });
        let tags = analyze(&p);
        assert_eq!(tags.tag(1), Tag::LowReliability, "pre-mask chain is data");
        assert!(
            matches!(tags.tag(2), Tag::Protected(ProtectReason::Control)),
            "the mask itself feeds an address"
        );
        assert!(matches!(tags.tag(3), Tag::Protected(ProtectReason::Control)));

        // Without the refinement the pre-mask chain is protected too.
        let strict = AnalysisOptions {
            mask_breaks_address_chains: false,
            ..AnalysisOptions::default()
        };
        let tags = analyze_with(&p, &strict);
        assert!(matches!(tags.tag(1), Tag::Protected(ProtectReason::Control)));
    }

    #[test]
    fn shift_extract_also_breaks_address_chain() {
        let p = assemble(|a| {
            let tab = a.data_zero(256 * 4);
            a.func("kernel", true);
            a.li(T0, 0x1234_5678);
            a.add(T1, T0, T0); // upstream data
            a.srli(T2, T1, 24); // bounded to 0..255
            a.slli(T2, T2, 2);
            a.la(T3, tab);
            a.add(T3, T3, T2);
            a.lw(V0, 0, T3);
            a.halt();
            a.endfunc();
        });
        let tags = analyze(&p);
        assert_eq!(tags.tag(1), Tag::LowReliability);
    }

    #[test]
    fn control_propagates_through_masks() {
        // Masks break *address* chains but never *control* chains.
        let p = assemble(|a| {
            a.func("kernel", true);
            a.li(T0, 5);
            a.add(T1, T0, T0); // feeds branch through the mask
            a.andi(T2, T1, 255);
            a.bnez(T2, "end");
            a.nop();
            a.label("end");
            a.halt();
            a.endfunc();
        });
        let tags = analyze(&p);
        assert!(matches!(tags.tag(1), Tag::Protected(ProtectReason::Control)));
        assert!(matches!(tags.tag(2), Tag::Protected(ProtectReason::Control)));
    }

    #[test]
    fn tag_loads_option_excludes_loads() {
        let p = assemble(|a| {
            let buf = a.data_zero(8);
            a.func("kernel", true);
            a.la(T0, buf);
            a.lw(T1, 0, T0);
            a.halt();
            a.endfunc();
        });
        let default_tags = analyze(&p);
        assert_eq!(default_tags.tag(1), Tag::LowReliability);
        let opts = AnalysisOptions {
            tag_loads: false,
            ..AnalysisOptions::default()
        };
        let tags = analyze_with(&p, &opts);
        assert!(matches!(
            tags.tag(1),
            Tag::Protected(ProtectReason::NonArithmetic)
        ));
    }

    #[test]
    fn ineligible_function_is_fully_protected() {
        let p = assemble(|a| {
            a.func("kernel", false); // NOT eligible
            a.li(T2, 1);
            a.add(T2, T2, T2);
            a.halt();
            a.endfunc();
        });
        let tags = analyze(&p);
        assert!(matches!(
            tags.tag(0),
            Tag::Protected(ProtectReason::Ineligible)
        ));
        assert!(matches!(
            tags.tag(1),
            Tag::Protected(ProtectReason::Ineligible)
        ));
    }

    #[test]
    fn interprocedural_argument_flow() {
        // main computes a value in A0 that the callee uses in a branch:
        // the producing instruction in main must be protected even though
        // the branch is in another function.
        let p = assemble(|a| {
            a.func("check", true);
            a.bnez(A0, "nonzero");
            a.li(V0, 0);
            a.ret();
            a.label("nonzero");
            a.li(V0, 1);
            a.ret();
            a.endfunc();
            a.func("main", true);
            a.li(T0, 3);
            a.add(A0, T0, T0); // flows to callee's branch
            a.add(A1, T0, T0); // dead: pure data
            a.call("check");
            a.halt();
            a.endfunc();
        });
        let tags = analyze(&p);
        let main = p.function("main").unwrap().start;
        assert!(
            matches!(tags.tag(main + 1), Tag::Protected(ProtectReason::Control)),
            "A0 producer must be protected across the call"
        );
        assert_eq!(tags.tag(main + 2), Tag::LowReliability);
    }

    #[test]
    fn return_value_flow_back_to_caller() {
        // callee computes V0; caller branches on it: the callee's arithmetic
        // feeding V0 must be protected via the return edge.
        let p = assemble(|a| {
            a.func("produce", true);
            a.add(V0, A0, A0);
            a.add(T1, A0, A0); // dead
            a.ret();
            a.endfunc();
            a.func("main", true);
            a.li(A0, 5);
            a.call("produce");
            a.beqz(V0, "skip");
            a.nop();
            a.label("skip");
            a.halt();
            a.endfunc();
        });
        let tags = analyze(&p);
        assert!(matches!(tags.tag(0), Tag::Protected(ProtectReason::Control)));
        assert_eq!(tags.tag(1), Tag::LowReliability);
    }

    #[test]
    fn calls_are_never_taggable() {
        let p = assemble(|a| {
            a.func("f", true);
            a.ret();
            a.endfunc();
            a.func("main", true);
            a.call("f");
            a.halt();
            a.endfunc();
        });
        let tags = analyze(&p);
        assert!(matches!(
            tags.tag(1),
            Tag::Protected(ProtectReason::NonArithmetic)
        ));
    }

    #[test]
    fn float_compare_feeding_branch_protects_float_chain() {
        let p = assemble(|a| {
            a.func("kernel", true);
            a.fli(F0, 1.0);
            a.fli(F1, 2.0);
            a.fadd(F2, F0, F1); // feeds compare -> control
            a.fcmp_lt(T0, F2, F1);
            a.bnez(T0, "end");
            a.fmul(F2, F0, F1); // dead data
            a.label("end");
            a.halt();
            a.endfunc();
        });
        let tags = analyze(&p);
        assert!(matches!(tags.tag(2), Tag::Protected(ProtectReason::Control))); // fadd
        assert!(matches!(tags.tag(3), Tag::Protected(ProtectReason::Control))); // fcmp
        assert_eq!(tags.tag(5), Tag::LowReliability); // fmul after branch
    }

    #[test]
    fn store_value_is_not_control_but_base_is() {
        let p = assemble(|a| {
            let buf = a.data_zero(16);
            a.func("kernel", true);
            a.la(T0, buf);
            a.li(T1, 42); // stored value: data
            a.sw(T1, 0, T0);
            a.halt();
            a.endfunc();
        });
        let tags = analyze(&p);
        assert!(matches!(tags.tag(0), Tag::Protected(ProtectReason::Control))); // la (base)
        assert_eq!(tags.tag(1), Tag::LowReliability); // stored value
        assert!(matches!(
            tags.tag(2),
            Tag::Protected(ProtectReason::NotValueProducing)
        )); // the store itself
    }

    #[test]
    fn fixpoint_on_loop_carried_control_dependence() {
        // value feeding the branch is computed through a loop-carried chain
        let p = assemble(|a| {
            a.func("kernel", true);
            a.li(T0, 1);
            a.li(T1, 100);
            a.label("loop");
            a.add(T0, T0, T0); // doubles each iteration; feeds branch
            a.blt(T0, T1, "loop");
            a.halt();
            a.endfunc();
        });
        let tags = analyze(&p);
        assert!(matches!(tags.tag(0), Tag::Protected(ProtectReason::Control)));
        assert!(matches!(tags.tag(2), Tag::Protected(ProtectReason::Control)));
    }

    #[test]
    fn empty_program() {
        let p = Program::default();
        let tags = analyze(&p);
        assert!(tags.is_empty());
    }
}

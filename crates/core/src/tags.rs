//! Instruction tags and tag statistics.

use std::fmt;

/// Why an instruction must run on protected (reliable) hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtectReason {
    /// The instruction's result reaches a control decision (its destination
    /// is in `CVar` at that point) — the paper's core protection target.
    Control,
    /// The instruction is outside every user-identified eligible function
    /// (paper §4: only eligible functions are tagged).
    Ineligible,
    /// The instruction produces no register value (stores, branches, jumps,
    /// `halt`, `nop`) so the bit-flip fault model does not apply to it.
    NotValueProducing,
    /// The instruction is outside the taggable arithmetic class: calls
    /// (their result is a return address, inherently control) and — when
    /// [`crate::AnalysisOptions::tag_loads`] is disabled — memory loads.
    NonArithmetic,
}

/// The protection tag the static analysis assigns to one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tag {
    /// The instruction may execute on low-reliability hardware: a single-bit
    /// error in its result cannot (directly) change control flow.
    LowReliability,
    /// The instruction must be protected.
    Protected(ProtectReason),
}

impl Tag {
    /// Whether this instruction is tagged low-reliability.
    #[must_use]
    pub fn is_low_reliability(self) -> bool {
        matches!(self, Tag::LowReliability)
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tag::LowReliability => write!(f, "low-reliability"),
            Tag::Protected(ProtectReason::Control) => write!(f, "protected (control)"),
            Tag::Protected(ProtectReason::Ineligible) => write!(f, "protected (ineligible fn)"),
            Tag::Protected(ProtectReason::NotValueProducing) => {
                write!(f, "protected (no value)")
            }
            Tag::Protected(ProtectReason::NonArithmetic) => {
                write!(f, "protected (non-arithmetic)")
            }
        }
    }
}

/// Aggregate statistics over a [`TagMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TagStats {
    /// Total static instructions.
    pub total: usize,
    /// Instructions tagged low-reliability.
    pub low_reliability: usize,
    /// Instructions protected because they influence control.
    pub control: usize,
    /// Instructions protected because their function is not eligible.
    pub ineligible: usize,
    /// Instructions that produce no value.
    pub not_value_producing: usize,
    /// Calls (and loads, when load tagging is disabled).
    pub non_arithmetic: usize,
}

impl TagStats {
    /// Static fraction of instructions tagged low-reliability.
    #[must_use]
    pub fn low_reliability_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.low_reliability as f64 / self.total as f64
        }
    }
}

/// The result of the static analysis: one [`Tag`] per instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TagMap {
    tags: Vec<Tag>,
}

impl TagMap {
    /// Wraps a tag vector (one entry per instruction).
    #[must_use]
    pub fn new(tags: Vec<Tag>) -> Self {
        TagMap { tags }
    }

    /// The tag of instruction `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn tag(&self, index: usize) -> Tag {
        self.tags[index]
    }

    /// Whether instruction `index` is tagged low-reliability.
    #[must_use]
    pub fn is_low_reliability(&self, index: usize) -> bool {
        self.tags[index].is_low_reliability()
    }

    /// Number of instructions covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// Whether the map is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Iterates over `(index, tag)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Tag)> + '_ {
        self.tags.iter().copied().enumerate()
    }

    /// Static tag statistics.
    #[must_use]
    pub fn stats(&self) -> TagStats {
        let mut s = TagStats {
            total: self.tags.len(),
            ..TagStats::default()
        };
        for t in &self.tags {
            match t {
                Tag::LowReliability => s.low_reliability += 1,
                Tag::Protected(ProtectReason::Control) => s.control += 1,
                Tag::Protected(ProtectReason::Ineligible) => s.ineligible += 1,
                Tag::Protected(ProtectReason::NotValueProducing) => s.not_value_producing += 1,
                Tag::Protected(ProtectReason::NonArithmetic) => s.non_arithmetic += 1,
            }
        }
        s
    }

    /// The paper's Table 3 metric: the fraction of **dynamic** instruction
    /// executions that are tagged low-reliability, given per-instruction
    /// execution counts from a profiled run.
    ///
    /// # Panics
    ///
    /// Panics if `exec_counts.len()` differs from the tag map length.
    #[must_use]
    pub fn dynamic_low_reliability_fraction(&self, exec_counts: &[u64]) -> f64 {
        assert_eq!(
            exec_counts.len(),
            self.tags.len(),
            "execution counts must cover every instruction"
        );
        let mut low = 0u64;
        let mut total = 0u64;
        for (t, &c) in self.tags.iter().zip(exec_counts) {
            total += c;
            if t.is_low_reliability() {
                low += c;
            }
        }
        if total == 0 {
            0.0
        } else {
            low as f64 / total as f64
        }
    }
}

impl std::ops::Index<usize> for TagMap {
    type Output = Tag;

    fn index(&self, index: usize) -> &Tag {
        &self.tags[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_count_by_category() {
        let m = TagMap::new(vec![
            Tag::LowReliability,
            Tag::Protected(ProtectReason::Control),
            Tag::Protected(ProtectReason::Ineligible),
            Tag::Protected(ProtectReason::NotValueProducing),
            Tag::LowReliability,
        ]);
        let s = m.stats();
        assert_eq!(s.total, 5);
        assert_eq!(s.low_reliability, 2);
        assert_eq!(s.control, 1);
        assert_eq!(s.ineligible, 1);
        assert_eq!(s.not_value_producing, 1);
        assert!((s.low_reliability_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn dynamic_fraction_weights_by_exec_count() {
        let m = TagMap::new(vec![Tag::LowReliability, Tag::Protected(ProtectReason::Control)]);
        // low-rel instruction runs 90 times, protected runs 10 times
        let f = m.dynamic_low_reliability_fraction(&[90, 10]);
        assert!((f - 0.9).abs() < 1e-12);
    }

    #[test]
    fn dynamic_fraction_empty_run_is_zero() {
        let m = TagMap::new(vec![Tag::LowReliability]);
        assert_eq!(m.dynamic_low_reliability_fraction(&[0]), 0.0);
    }

    #[test]
    fn display_variants() {
        assert_eq!(Tag::LowReliability.to_string(), "low-reliability");
        assert!(Tag::Protected(ProtectReason::Control)
            .to_string()
            .contains("control"));
    }
}

/// Renders a tag-annotated disassembly listing of `program`: one line per
/// instruction with its index, text, and [`Tag`]. This is the human-facing
/// output of the analysis (what a compiler would emit alongside the tagged
/// executable).
///
/// # Panics
///
/// Panics if `tags` does not cover `program` (length mismatch).
#[must_use]
pub fn annotate_listing(program: &certa_isa::Program, tags: &TagMap) -> String {
    use std::fmt::Write as _;
    assert_eq!(
        tags.len(),
        program.code.len(),
        "tag map must cover the program"
    );
    let mut by_index = std::collections::BTreeMap::new();
    for (name, &idx) in &program.labels {
        by_index.entry(idx).or_insert_with(Vec::new).push(name.clone());
    }
    let mut out = String::new();
    for (i, instr) in program.code.iter().enumerate() {
        if let Some(names) = by_index.get(&i) {
            for n in names {
                let _ = writeln!(out, "{n}:");
            }
        }
        let marker = if tags.is_low_reliability(i) { "*" } else { " " };
        let _ = writeln!(out, " {marker} {i:5}  {instr:<28} ; {}", tags.tag(i));
    }
    out
}

#[cfg(test)]
mod annotate_tests {
    use super::*;

    #[test]
    fn listing_marks_low_reliability_with_star() {
        use certa_asm::Asm;
        use certa_isa::reg::{T0, T1, T2};
        let mut a = Asm::new();
        a.func("kernel", true);
        a.li(T0, 1);
        a.li(T1, 10);
        a.label("loop");
        a.add(T2, T2, T2); // data
        a.addi(T0, T0, 1); // control
        a.blt(T0, T1, "loop");
        a.halt();
        a.endfunc();
        let p = a.assemble().unwrap();
        let tags = crate::analyze(&p);
        let listing = annotate_listing(&p, &tags);
        assert!(listing.contains("kernel:"));
        assert!(listing.contains("loop:"));
        // the data add is starred, the counter is not
        let data_line = listing.lines().find(|l| l.contains("add $t2")).unwrap();
        assert!(data_line.trim_start().starts_with('*'));
        let ctl_line = listing.lines().find(|l| l.contains("addi $t0")).unwrap();
        assert!(!ctl_line.trim_start().starts_with('*'));
        assert!(listing.contains("low-reliability"));
    }

    #[test]
    #[should_panic(expected = "must cover")]
    fn listing_rejects_mismatched_tags() {
        let p = certa_isa::Program {
            code: vec![certa_isa::Instr::Halt],
            ..certa_isa::Program::default()
        };
        let tags = TagMap::new(Vec::new());
        let _ = annotate_listing(&p, &tags);
    }
}

//! # certa-fidelity
//!
//! Application-specific fidelity measures (paper §2, Table 1). Each
//! benchmark in the study defines "some sort of distance from the optimal
//! solution"; this crate implements those distances:
//!
//! | Application | Measure | Function |
//! |---|---|---|
//! | Susan | PSNR of edge map vs. fault-free edge map | [`psnr`] |
//! | MPEG  | % frames whose SNR loss exceeds the per-type threshold | [`mpeg::bad_frame_fraction`] |
//! | MCF   | schedule validity/optimality | [`schedule::ScheduleFidelity`] |
//! | Blowfish | % bytes matching the original plaintext | [`byte_similarity`] |
//! | ADPCM | % similarity of decoded output | [`byte_similarity`] |
//! | GSM   | SNR difference of decoded speech | [`snr_db`] / [`snr_loss_db`] |
//! | ART   | confidence-of-match error | [`confidence_error`] |
//!
//! The [`verdict`] module layers the study's trial-outcome taxonomy on
//! top of these measures: it classifies one trial's raw result into
//! masked / tolerable / silent-corruption / detected-crash / hang /
//! detected-by-check (see [`verdict::TrialVerdict`]), driven by
//! per-workload [`verdict::ThresholdProfile`]s.
//!
//! All functions are pure and dependency-free.

pub mod mpeg;
pub mod schedule;
pub mod verdict;

/// Peak signal-to-noise ratio in dB between two equal-length 8-bit images.
///
/// Returns `f64::INFINITY` for identical inputs. This is the measure the
/// paper obtains from Imagemagick for Susan (threshold: 10 dB).
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
///
/// # Examples
///
/// ```
/// let a = vec![10u8; 64];
/// let mut b = a.clone();
/// assert!(certa_fidelity::psnr(&a, &b).is_infinite());
/// b[0] = 11;
/// assert!(certa_fidelity::psnr(&a, &b) > 40.0);
/// ```
#[must_use]
pub fn psnr(reference: &[u8], test: &[u8]) -> f64 {
    assert_eq!(reference.len(), test.len(), "image sizes must match");
    assert!(!reference.is_empty(), "images must be non-empty");
    let mse: f64 = reference
        .iter()
        .zip(test)
        .map(|(&a, &b)| {
            let d = f64::from(a) - f64::from(b);
            d * d
        })
        .sum::<f64>()
        / reference.len() as f64;
    if mse == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (255.0 * 255.0 / mse).log10()
    }
}

/// Signal-to-noise ratio in dB of `test` against `reference` for 16-bit PCM
/// samples: `10·log10(Σ ref² / Σ (ref−test)²)`.
///
/// Returns `f64::INFINITY` for identical inputs and `f64::NEG_INFINITY` when
/// the reference is all-zero but the test is not.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
#[must_use]
pub fn snr_db(reference: &[i16], test: &[i16]) -> f64 {
    assert_eq!(reference.len(), test.len(), "sample counts must match");
    assert!(!reference.is_empty(), "signals must be non-empty");
    let mut signal = 0.0f64;
    let mut noise = 0.0f64;
    for (&r, &t) in reference.iter().zip(test) {
        let rf = f64::from(r);
        signal += rf * rf;
        let d = rf - f64::from(t);
        noise += d * d;
    }
    if noise == 0.0 {
        f64::INFINITY
    } else if signal == 0.0 {
        f64::NEG_INFINITY
    } else {
        10.0 * (signal / noise).log10()
    }
}

/// The GSM measure: SNR *loss* in dB of the faulty decode relative to the
/// fault-free decode, both measured against the original source signal.
///
/// The paper deems voice "recognizable" up to a 6 dB loss.
///
/// # Panics
///
/// Panics if lengths differ or signals are empty.
#[must_use]
pub fn snr_loss_db(source: &[i16], golden_decode: &[i16], faulty_decode: &[i16]) -> f64 {
    let golden_snr = snr_db(source, golden_decode);
    let faulty_snr = snr_db(source, faulty_decode);
    if golden_snr.is_infinite() && faulty_snr.is_infinite() {
        0.0
    } else {
        (golden_snr - faulty_snr).max(0.0)
    }
}

/// Fraction of positions whose bytes match, over `max(len_a, len_b)`
/// positions (missing bytes count as mismatches). The Blowfish and ADPCM
/// measure.
///
/// Returns 1.0 when both inputs are empty.
///
/// # Examples
///
/// ```
/// assert_eq!(certa_fidelity::byte_similarity(b"abcd", b"abcd"), 1.0);
/// assert_eq!(certa_fidelity::byte_similarity(b"abcd", b"abXd"), 0.75);
/// assert_eq!(certa_fidelity::byte_similarity(b"abcd", b"ab"), 0.5);
/// ```
#[must_use]
pub fn byte_similarity(a: &[u8], b: &[u8]) -> f64 {
    let total = a.len().max(b.len());
    if total == 0 {
        return 1.0;
    }
    let matches = a.iter().zip(b).filter(|(x, y)| x == y).count();
    matches as f64 / total as f64
}

/// The ART measure: absolute error between fault-free and faulty match
/// confidence, normalized by the fault-free confidence magnitude.
///
/// Returns 0.0 when both are equal, and 1.0-scale values for large
/// divergences.
#[must_use]
pub fn confidence_error(golden: f64, faulty: f64) -> f64 {
    if golden == faulty {
        return 0.0;
    }
    let scale = golden.abs().max(1e-12);
    (golden - faulty).abs() / scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn psnr_identical_is_infinite() {
        assert!(psnr(&[1, 2, 3], &[1, 2, 3]).is_infinite());
    }

    #[test]
    fn psnr_decreases_with_error_magnitude() {
        let reference = vec![128u8; 256];
        let mut small = reference.clone();
        small[0] = 129;
        let mut large = reference.clone();
        large[0] = 255;
        assert!(psnr(&reference, &small) > psnr(&reference, &large));
    }

    #[test]
    fn psnr_worst_case() {
        let a = vec![0u8; 16];
        let b = vec![255u8; 16];
        assert!((psnr(&a, &b) - 0.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "sizes must match")]
    fn psnr_length_mismatch_panics() {
        let _ = psnr(&[1], &[1, 2]);
    }

    #[test]
    fn snr_identical_is_infinite() {
        assert!(snr_db(&[100, -50], &[100, -50]).is_infinite());
    }

    #[test]
    fn snr_known_value() {
        // signal [10,0], test [11,0]: SNR = 10*log10(100/1) = 20 dB
        let s = snr_db(&[10, 0], &[11, 0]);
        assert!((s - 20.0).abs() < 1e-9);
    }

    #[test]
    fn snr_zero_reference() {
        assert_eq!(snr_db(&[0, 0], &[1, 0]), f64::NEG_INFINITY);
    }

    #[test]
    fn snr_loss_zero_for_equal_decodes() {
        let src = vec![100i16, -100, 50];
        let dec = vec![90i16, -95, 55];
        assert_eq!(snr_loss_db(&src, &dec, &dec), 0.0);
    }

    #[test]
    fn snr_loss_positive_for_degraded_decode() {
        let src: Vec<i16> = (0..64).map(|i| (f64::from(i) * 0.3).sin() as i16 * 100 + 500).collect();
        let golden: Vec<i16> = src.iter().map(|&s| s + 5).collect();
        let faulty: Vec<i16> = src.iter().map(|&s| s + 50).collect();
        assert!(snr_loss_db(&src, &golden, &faulty) > 0.0);
    }

    #[test]
    fn byte_similarity_edge_cases() {
        assert_eq!(byte_similarity(b"", b""), 1.0);
        assert_eq!(byte_similarity(b"", b"xy"), 0.0);
        assert_eq!(byte_similarity(b"xyz", b"xyz"), 1.0);
    }

    #[test]
    fn confidence_error_scales() {
        assert_eq!(confidence_error(0.8, 0.8), 0.0);
        assert!((confidence_error(0.8, 0.4) - 0.5).abs() < 1e-12);
        assert!(confidence_error(0.0, 0.5) > 1.0);
    }
}

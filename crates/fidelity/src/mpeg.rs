//! MPEG frame-quality classification (paper §2).
//!
//! > *"A frame is considered bad if the SNR value compared to the correct
//! > frame is more than 2 dB for I frames, 4 dB for P frames and 6 dB for B
//! > frames. The fidelity threshold, or the acceptable quality for viewers,
//! > is 10% of bad frames."*
//!
//! We interpret "SNR value compared to the correct frame" as the **loss**
//! in reconstruction SNR: each frame of the faulty reconstruction is
//! compared against the source frame, and the drop relative to the
//! fault-free reconstruction's SNR must stay within the per-type budget.

/// MPEG frame types in decreasing order of importance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameType {
    /// Intra-coded frame: decodable alone; losses are most visible.
    I,
    /// Predicted frame.
    P,
    /// Bidirectionally predicted frame; losses are least visible.
    B,
}

impl FrameType {
    /// Maximum tolerated SNR loss in dB for this frame type (paper §2).
    #[must_use]
    pub fn loss_threshold_db(self) -> f64 {
        match self {
            FrameType::I => 2.0,
            FrameType::P => 4.0,
            FrameType::B => 6.0,
        }
    }

    /// One-letter name.
    #[must_use]
    pub fn letter(self) -> char {
        match self {
            FrameType::I => 'I',
            FrameType::P => 'P',
            FrameType::B => 'B',
        }
    }
}

/// The paper's viewer-acceptability threshold: at most 10% bad frames.
pub const BAD_FRAME_THRESHOLD: f64 = 0.10;

/// One frame of 8-bit pixels with its coding type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Frame type (I/P/B).
    pub kind: FrameType,
    /// Row-major 8-bit pixels.
    pub pixels: Vec<u8>,
}

/// SNR in dB of a decoded frame against its source frame (pixel domain).
///
/// # Panics
///
/// Panics if the frames differ in size or are empty.
#[must_use]
pub fn frame_snr_db(source: &[u8], decoded: &[u8]) -> f64 {
    assert_eq!(source.len(), decoded.len(), "frame sizes must match");
    assert!(!source.is_empty(), "frames must be non-empty");
    let mut signal = 0.0f64;
    let mut noise = 0.0f64;
    for (&s, &d) in source.iter().zip(decoded) {
        let sf = f64::from(s);
        signal += sf * sf;
        let df = sf - f64::from(d);
        noise += df * df;
    }
    if noise == 0.0 {
        f64::INFINITY
    } else if signal == 0.0 {
        f64::NEG_INFINITY
    } else {
        10.0 * (signal / noise).log10()
    }
}

/// Classifies each faulty frame as good/bad and returns the fraction of bad
/// frames (the paper's MPEG fidelity measure).
///
/// For every frame `i`, the SNR of `faulty[i]` and of `golden[i]` against
/// `source[i]` are compared; the frame is **bad** if the loss exceeds the
/// type's threshold ([`FrameType::loss_threshold_db`]).
///
/// # Panics
///
/// Panics if the three sequences differ in length or any frame pair differs
/// in size.
#[must_use]
pub fn bad_frame_fraction(source: &[Frame], golden: &[Frame], faulty: &[Frame]) -> f64 {
    assert_eq!(source.len(), golden.len(), "frame counts must match");
    assert_eq!(source.len(), faulty.len(), "frame counts must match");
    if source.is_empty() {
        return 0.0;
    }
    let mut bad = 0usize;
    for ((s, g), f) in source.iter().zip(golden).zip(faulty) {
        let golden_snr = frame_snr_db(&s.pixels, &g.pixels);
        let faulty_snr = frame_snr_db(&s.pixels, &f.pixels);
        let loss = match (golden_snr.is_infinite(), faulty_snr.is_infinite()) {
            (true, true) => 0.0,
            (true, false) => f64::INFINITY,
            _ => (golden_snr - faulty_snr).max(0.0),
        };
        if loss > g.kind.loss_threshold_db() {
            bad += 1;
        }
    }
    bad as f64 / source.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(kind: FrameType, pixels: Vec<u8>) -> Frame {
        Frame { kind, pixels }
    }

    #[test]
    fn identical_reconstruction_has_no_bad_frames() {
        let src = vec![frame(FrameType::I, vec![100; 64])];
        let rec = src.clone();
        assert_eq!(bad_frame_fraction(&src, &rec, &rec), 0.0);
    }

    #[test]
    fn thresholds_ordered_by_importance() {
        assert!(FrameType::I.loss_threshold_db() < FrameType::P.loss_threshold_db());
        assert!(FrameType::P.loss_threshold_db() < FrameType::B.loss_threshold_db());
    }

    #[test]
    fn heavy_corruption_marks_frame_bad() {
        let src = vec![frame(FrameType::I, vec![100; 64])];
        let golden = vec![frame(FrameType::I, vec![101; 64])]; // ~high SNR
        let faulty = vec![frame(FrameType::I, vec![200; 64])]; // terrible
        assert_eq!(bad_frame_fraction(&src, &golden, &faulty), 1.0);
    }

    #[test]
    fn b_frames_tolerate_more_loss_than_i_frames() {
        // Construct a corruption producing ~5 dB loss: bad for I (2 dB
        // budget), fine for B (6 dB budget).
        let src: Vec<u8> = (0..64).map(|i| 100 + (i % 32) as u8).collect();
        let golden: Vec<u8> = src.iter().map(|&p| p + 2).collect();
        let noisy: Vec<u8> = src.iter().map(|&p| p.wrapping_add(3)).collect();
        let loss = frame_snr_db(&src, &golden) - frame_snr_db(&src, &noisy);
        assert!(loss > 2.0 && loss < 6.0, "constructed loss was {loss} dB");

        let s = vec![frame(FrameType::I, src.clone()), frame(FrameType::B, src.clone())];
        let g = vec![
            frame(FrameType::I, golden.clone()),
            frame(FrameType::B, golden.clone()),
        ];
        let f = vec![frame(FrameType::I, noisy.clone()), frame(FrameType::B, noisy)];
        let bad = bad_frame_fraction(&s, &g, &f);
        assert!((bad - 0.5).abs() < 1e-12, "only the I frame should be bad");
    }

    #[test]
    fn frame_snr_known_value() {
        // all-128 source vs all-129: SNR = 10log10(128^2/1)
        let snr = frame_snr_db(&[128; 16], &[129; 16]);
        assert!((snr - 10.0 * (128.0f64 * 128.0).log10()).abs() < 1e-9);
    }

    #[test]
    fn letters() {
        assert_eq!(FrameType::I.letter(), 'I');
        assert_eq!(FrameType::P.letter(), 'P');
        assert_eq!(FrameType::B.letter(), 'B');
    }
}

//! MCF schedule fidelity (paper §2, §5.2).
//!
//! The paper measures MCF by comparing the faulty run's schedule to the
//! optimal one; failed runs were "not just inoptimal, but incomplete", i.e.
//! a user could tell immediately that a rerun was needed. Accordingly a
//! schedule is judged on three levels: did it parse, is it a *valid*
//! flow/assignment, and does it achieve the optimal cost.

/// A decoded vehicle schedule: per-timetabled-trip vehicle assignments plus
/// the reported total cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// `assignment[t]` = vehicle (or chain id) serving trip `t`.
    pub assignment: Vec<u32>,
    /// Total cost reported by the solver.
    pub cost: i64,
}

impl Schedule {
    /// Decodes the guest's output format: `cost:i64` (little-endian, 8
    /// bytes) followed by `n` little-endian `u32` assignments.
    ///
    /// Returns `None` if the buffer is too short or malformed.
    #[must_use]
    pub fn decode(bytes: &[u8], trips: usize) -> Option<Self> {
        let need = 8 + trips * 4;
        if bytes.len() < need {
            return None;
        }
        let cost = i64::from_le_bytes(bytes[0..8].try_into().ok()?);
        let mut assignment = Vec::with_capacity(trips);
        for t in 0..trips {
            let off = 8 + t * 4;
            assignment.push(u32::from_le_bytes(bytes[off..off + 4].try_into().ok()?));
        }
        Some(Schedule { assignment, cost })
    }

    /// Encodes in the guest's output format (used by golden references and
    /// tests).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.assignment.len() * 4);
        out.extend_from_slice(&self.cost.to_le_bytes());
        for &a in &self.assignment {
            out.extend_from_slice(&a.to_le_bytes());
        }
        out
    }
}

/// The three-level MCF fidelity verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScheduleFidelity {
    /// Output parsed, every trip is covered by a real vehicle, and the cost
    /// equals the optimum.
    Optimal,
    /// Valid assignment but with a higher-than-optimal cost.
    Suboptimal {
        /// Percentage of extra cost over the optimum (rounded down).
        extra_cost_percent: u32,
    },
    /// The output is visibly broken (unparseable, uncovered trips, vehicle
    /// ids out of range, or a nonsensical cost) — the paper's "noticeably
    /// incorrect ... incomplete" schedules.
    Incomplete,
}

/// Judges a faulty schedule against the golden (optimal) one.
///
/// `vehicles` is the number of vehicles available; assignments outside
/// `0..vehicles` mark the schedule incomplete.
#[must_use]
pub fn judge(golden: &Schedule, faulty: Option<&Schedule>, vehicles: u32) -> ScheduleFidelity {
    let Some(s) = faulty else {
        return ScheduleFidelity::Incomplete;
    };
    if s.assignment.len() != golden.assignment.len() {
        return ScheduleFidelity::Incomplete;
    }
    if s.assignment.iter().any(|&v| v >= vehicles) {
        return ScheduleFidelity::Incomplete;
    }
    if s.cost < 0 || s.cost > golden.cost.saturating_mul(1000) {
        return ScheduleFidelity::Incomplete;
    }
    if s.cost == golden.cost && s.assignment == golden.assignment {
        return ScheduleFidelity::Optimal;
    }
    if s.cost == golden.cost {
        // Equal-cost alternative optimum still counts as optimal.
        return ScheduleFidelity::Optimal;
    }
    if s.cost < golden.cost {
        // Claims better-than-optimal cost: impossible, so corrupted.
        return ScheduleFidelity::Incomplete;
    }
    let extra = (s.cost - golden.cost) as f64 / golden.cost.max(1) as f64 * 100.0;
    ScheduleFidelity::Suboptimal {
        extra_cost_percent: extra as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn golden() -> Schedule {
        Schedule {
            assignment: vec![0, 1, 0, 2],
            cost: 100,
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let g = golden();
        let bytes = g.encode();
        let d = Schedule::decode(&bytes, 4).unwrap();
        assert_eq!(d, g);
    }

    #[test]
    fn decode_rejects_short_buffer() {
        assert!(Schedule::decode(&[0u8; 10], 4).is_none());
    }

    #[test]
    fn identical_schedule_is_optimal() {
        let g = golden();
        assert_eq!(judge(&g, Some(&g), 3), ScheduleFidelity::Optimal);
    }

    #[test]
    fn equal_cost_alternative_is_optimal() {
        let g = golden();
        let alt = Schedule {
            assignment: vec![1, 0, 1, 2],
            cost: 100,
        };
        assert_eq!(judge(&g, Some(&alt), 3), ScheduleFidelity::Optimal);
    }

    #[test]
    fn higher_cost_is_suboptimal_with_percent() {
        let g = golden();
        let s = Schedule {
            assignment: vec![0, 1, 0, 2],
            cost: 125,
        };
        assert_eq!(
            judge(&g, Some(&s), 3),
            ScheduleFidelity::Suboptimal {
                extra_cost_percent: 25
            }
        );
    }

    #[test]
    fn out_of_range_vehicle_is_incomplete() {
        let g = golden();
        let s = Schedule {
            assignment: vec![0, 99, 0, 2],
            cost: 100,
        };
        assert_eq!(judge(&g, Some(&s), 3), ScheduleFidelity::Incomplete);
    }

    #[test]
    fn impossible_cost_is_incomplete() {
        let g = golden();
        let cheaper = Schedule {
            assignment: vec![0, 1, 0, 2],
            cost: 10,
        };
        assert_eq!(judge(&g, Some(&cheaper), 3), ScheduleFidelity::Incomplete);
        let absurd = Schedule {
            assignment: vec![0, 1, 0, 2],
            cost: i64::MAX,
        };
        assert_eq!(judge(&g, Some(&absurd), 3), ScheduleFidelity::Incomplete);
    }

    #[test]
    fn missing_output_is_incomplete() {
        assert_eq!(judge(&golden(), None, 3), ScheduleFidelity::Incomplete);
    }

    #[test]
    fn wrong_length_is_incomplete() {
        let g = golden();
        let s = Schedule {
            assignment: vec![0, 1],
            cost: 100,
        };
        assert_eq!(judge(&g, Some(&s), 3), ScheduleFidelity::Incomplete);
    }
}

//! The trial-outcome taxonomy (the paper's §5 outcome classes, extended
//! with the SWAT/Relyzer-style detected/silent split).
//!
//! A raw trial result — how the simulated run ended plus whatever output
//! bytes it left behind — is classified into a [`TrialVerdict`]:
//!
//! | Verdict | Meaning |
//! |---|---|
//! | [`Masked`](TrialVerdict::Masked) | output bit-exactly equals the golden output |
//! | [`Tolerable`](TrialVerdict::Tolerable) | output differs but clears the workload's fidelity threshold |
//! | [`SilentCorruption`](TrialVerdict::SilentCorruption) | output differs, below threshold, and nothing detected it |
//! | [`DetectedCrash`](TrialVerdict::DetectedCrash) | the run died on a hardware-visible fault |
//! | [`Hang`](TrialVerdict::Hang) | the instruction watchdog expired (the paper's "infinite execution") |
//! | [`DetectedByCheck`](TrialVerdict::DetectedByCheck) | an output-level validity check rejected the result |
//! | [`HarnessError`](TrialVerdict::HarnessError) | the *harness* failed twice on this trial (not an experimental outcome) |
//!
//! Classification is driven by a [`ThresholdProfile`] (the per-workload
//! acceptance floor, Table 1) and a [`TrialJudgment`] computed by the
//! workload's fidelity measure. This module is deliberately free of
//! simulator and campaign dependencies: the glue that maps simulator
//! outcomes and campaign records onto [`RawOutcome`]s lives upstream (in
//! `certa-workloads`), which keeps `certa-fidelity` pure.

/// Why a detected crash was detected — a coarse, simulator-agnostic
/// mirror of the crash taxonomy (memory faults, alignment faults, wild
/// control flow).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashCause {
    /// Out-of-bounds load or store.
    MemoryAccess,
    /// Misaligned load or store.
    Misaligned,
    /// Program counter left the program (wild jump/return).
    ControlFlow,
}

/// How the simulated run itself ended, before any output inspection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RawOutcome {
    /// The run halted cleanly; the output (if readable) can be judged.
    Halted,
    /// The run died on a hardware-detectable fault.
    Crashed(CrashCause),
    /// The run exceeded its instruction watchdog.
    Watchdog,
}

/// The six-way outcome classification of one trial, plus the harness
/// containment bucket.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrialVerdict {
    /// Output is bit-exactly the golden output: the fault was masked.
    Masked,
    /// Output differs but clears the per-workload fidelity threshold —
    /// the paper's "tolerable degradation".
    Tolerable {
        /// Normalized fidelity score in `[0, 1]` of the degraded output.
        score: f64,
    },
    /// Output differs, falls below the threshold, and no check caught it:
    /// the dangerous bucket.
    SilentCorruption,
    /// The run crashed on a hardware-visible fault (detected for free).
    DetectedCrash(CrashCause),
    /// The run exceeded its instruction watchdog.
    Hang,
    /// An output-level validity check (unreadable/malformed output region,
    /// infeasible schedule, …) rejected the result — detected, though the
    /// run halted "successfully".
    DetectedByCheck,
    /// The campaign harness itself failed twice on this trial (panic or
    /// wall-clock timeout); the trial has no experimental outcome but is
    /// never silently dropped.
    HarnessError,
}

/// What the workload's fidelity measure says about a differing output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialJudgment {
    /// Normalized fidelity score in `[0, 1]`.
    pub score: f64,
    /// Whether the output clears the workload's documented acceptance
    /// threshold (Table 1).
    pub acceptable: bool,
    /// Whether an application-level validity check rejected the output
    /// outright (e.g. an MCF schedule that is not a feasible assignment).
    pub detected: bool,
}

/// Per-workload classification thresholds: the floor a degraded output's
/// normalized score must clear — *in addition to* the workload's own
/// acceptance flag — to count as [`TrialVerdict::Tolerable`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdProfile {
    /// Minimum normalized score for the tolerable bucket.
    pub tolerable_min_score: f64,
}

impl Default for ThresholdProfile {
    /// Defers entirely to the workload's own acceptance flag.
    fn default() -> Self {
        ThresholdProfile {
            tolerable_min_score: 0.0,
        }
    }
}

impl ThresholdProfile {
    /// The study's per-workload profiles. Scores are the normalized
    /// `[0, 1]` fidelity scores each workload derives from its Table 1
    /// measure (PSNR, bad-frame fraction, schedule optimality, byte
    /// similarity, SNR loss, match confidence); the floors restate the
    /// paper's acceptance levels in that space, so classification cannot
    /// drift from the workloads' own `acceptable` flags while still being
    /// tunable per application. Unknown names get the permissive default.
    #[must_use]
    pub fn for_workload(name: &str) -> Self {
        let tolerable_min_score = match name {
            // PSNR ≥ 10 dB of a 60 dB scale.
            "susan" => 0.15,
            // ≤ 10% bad frames.
            "mpeg" => 0.85,
            // Valid schedule within 2× optimal cost.
            "mcf" => 0.45,
            // Decrypt must recover nearly all plaintext bytes.
            "blowfish" => 0.90,
            // SNR loss ≤ 6 dB of the audible scale.
            "gsm" => 0.60,
            // Object still recognized, confidence error bounded.
            "art" => 0.50,
            // Decoded PCM similarity.
            "adpcm" => 0.70,
            _ => 0.0,
        };
        ThresholdProfile {
            tolerable_min_score,
        }
    }
}

/// Classifies one completed trial.
///
/// `output` is the trial's extracted output bytes (`None` when the run
/// halted but the output region was unreadable/malformed — an
/// output-level check catching the corruption). `judge` is invoked only
/// when the output exists and differs from `golden`, and returns the
/// workload's fidelity judgment of it.
pub fn classify(
    outcome: RawOutcome,
    output: Option<&[u8]>,
    golden: &[u8],
    profile: &ThresholdProfile,
    judge: impl FnOnce(&[u8]) -> TrialJudgment,
) -> TrialVerdict {
    match outcome {
        RawOutcome::Crashed(cause) => TrialVerdict::DetectedCrash(cause),
        RawOutcome::Watchdog => TrialVerdict::Hang,
        RawOutcome::Halted => {
            let Some(bytes) = output else {
                return TrialVerdict::DetectedByCheck;
            };
            if bytes == golden {
                return TrialVerdict::Masked;
            }
            let j = judge(bytes);
            if j.detected {
                TrialVerdict::DetectedByCheck
            } else if j.acceptable && j.score >= profile.tolerable_min_score {
                TrialVerdict::Tolerable { score: j.score }
            } else {
                TrialVerdict::SilentCorruption
            }
        }
    }
}

/// Verdict counts over a set of trials — one field per
/// [`TrialVerdict`] bucket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerdictCounts {
    /// [`TrialVerdict::Masked`] trials.
    pub masked: usize,
    /// [`TrialVerdict::Tolerable`] trials.
    pub tolerable: usize,
    /// [`TrialVerdict::SilentCorruption`] trials.
    pub silent_corruption: usize,
    /// [`TrialVerdict::DetectedCrash`] trials.
    pub detected_crash: usize,
    /// [`TrialVerdict::Hang`] trials.
    pub hang: usize,
    /// [`TrialVerdict::DetectedByCheck`] trials.
    pub detected_by_check: usize,
    /// [`TrialVerdict::HarnessError`] trials.
    pub harness_error: usize,
}

impl VerdictCounts {
    /// Adds one verdict to its bucket.
    pub fn record(&mut self, verdict: &TrialVerdict) {
        match verdict {
            TrialVerdict::Masked => self.masked += 1,
            TrialVerdict::Tolerable { .. } => self.tolerable += 1,
            TrialVerdict::SilentCorruption => self.silent_corruption += 1,
            TrialVerdict::DetectedCrash(_) => self.detected_crash += 1,
            TrialVerdict::Hang => self.hang += 1,
            TrialVerdict::DetectedByCheck => self.detected_by_check += 1,
            TrialVerdict::HarnessError => self.harness_error += 1,
        }
    }

    /// Total trials counted.
    #[must_use]
    pub fn total(&self) -> usize {
        self.masked
            + self.tolerable
            + self.silent_corruption
            + self.detected_crash
            + self.hang
            + self.detected_by_check
            + self.harness_error
    }

    /// `(label, count)` pairs in presentation order — the serialization
    /// and reporting order of the taxonomy.
    #[must_use]
    pub fn labeled(&self) -> [(&'static str, usize); 7] {
        [
            ("masked", self.masked),
            ("tolerable", self.tolerable),
            ("silent_corruption", self.silent_corruption),
            ("detected_crash", self.detected_crash),
            ("hang", self.hang),
            ("detected_by_check", self.detected_by_check),
            ("harness_error", self.harness_error),
        ]
    }

    /// Trials detected by *any* means (crash, watchdog, or output-level
    /// check) — the paper's "user would notice and rerun" aggregate.
    #[must_use]
    pub fn detected(&self) -> usize {
        self.detected_crash + self.hang + self.detected_by_check
    }

    /// Adds every bucket of `other` into `self`. Merging is commutative
    /// and associative with [`VerdictCounts::default`] as identity — the
    /// correctness oracle of the distributed campaign service, which sums
    /// per-chunk counts in whatever order workers deliver them (see the
    /// workspace merge-algebra property suite).
    pub fn merge(&mut self, other: &VerdictCounts) {
        self.masked += other.masked;
        self.tolerable += other.tolerable;
        self.silent_corruption += other.silent_corruption;
        self.detected_crash += other.detected_crash;
        self.hang += other.hang;
        self.detected_by_check += other.detected_by_check;
        self.harness_error += other.harness_error;
    }
}

impl std::ops::AddAssign<&VerdictCounts> for VerdictCounts {
    fn add_assign(&mut self, other: &VerdictCounts) {
        self.merge(other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn judge_fixed(score: f64, acceptable: bool, detected: bool) -> impl FnOnce(&[u8]) -> TrialJudgment {
        move |_| TrialJudgment {
            score,
            acceptable,
            detected,
        }
    }

    #[test]
    fn crash_and_watchdog_map_directly() {
        let p = ThresholdProfile::default();
        assert_eq!(
            classify(
                RawOutcome::Crashed(CrashCause::MemoryAccess),
                None,
                b"g",
                &p,
                judge_fixed(1.0, true, false)
            ),
            TrialVerdict::DetectedCrash(CrashCause::MemoryAccess)
        );
        assert_eq!(
            classify(RawOutcome::Watchdog, None, b"g", &p, judge_fixed(1.0, true, false)),
            TrialVerdict::Hang
        );
    }

    #[test]
    fn exact_output_is_masked_without_judging() {
        let p = ThresholdProfile::default();
        // judge panics if called: bit-exact outputs must never be judged.
        let v = classify(RawOutcome::Halted, Some(b"same"), b"same", &p, |_| {
            panic!("judge must not run for masked outputs")
        });
        assert_eq!(v, TrialVerdict::Masked);
    }

    #[test]
    fn unreadable_output_is_detected_by_check() {
        let p = ThresholdProfile::default();
        let v = classify(RawOutcome::Halted, None, b"g", &p, judge_fixed(0.0, false, false));
        assert_eq!(v, TrialVerdict::DetectedByCheck);
    }

    #[test]
    fn differing_output_splits_on_threshold() {
        let p = ThresholdProfile {
            tolerable_min_score: 0.8,
        };
        let ok = classify(RawOutcome::Halted, Some(b"x"), b"g", &p, judge_fixed(0.9, true, false));
        assert_eq!(ok, TrialVerdict::Tolerable { score: 0.9 });
        // Acceptable by the workload but below the profile floor: silent.
        let low = classify(RawOutcome::Halted, Some(b"x"), b"g", &p, judge_fixed(0.5, true, false));
        assert_eq!(low, TrialVerdict::SilentCorruption);
        let bad = classify(RawOutcome::Halted, Some(b"x"), b"g", &p, judge_fixed(0.9, false, false));
        assert_eq!(bad, TrialVerdict::SilentCorruption);
        // An application-level validity check wins over the score.
        let det = classify(RawOutcome::Halted, Some(b"x"), b"g", &p, judge_fixed(0.9, true, true));
        assert_eq!(det, TrialVerdict::DetectedByCheck);
    }

    #[test]
    fn counts_partition_and_label() {
        let mut c = VerdictCounts::default();
        for v in [
            TrialVerdict::Masked,
            TrialVerdict::Masked,
            TrialVerdict::Tolerable { score: 0.9 },
            TrialVerdict::SilentCorruption,
            TrialVerdict::DetectedCrash(CrashCause::ControlFlow),
            TrialVerdict::Hang,
            TrialVerdict::DetectedByCheck,
            TrialVerdict::HarnessError,
        ] {
            c.record(&v);
        }
        assert_eq!(c.total(), 8);
        assert_eq!(c.masked, 2);
        assert_eq!(c.detected(), 3);
        let labels: Vec<&str> = c.labeled().iter().map(|(l, _)| *l).collect();
        assert_eq!(
            labels,
            [
                "masked",
                "tolerable",
                "silent_corruption",
                "detected_crash",
                "hang",
                "detected_by_check",
                "harness_error"
            ]
        );
        assert_eq!(c.labeled().iter().map(|(_, n)| n).sum::<usize>(), c.total());
    }

    #[test]
    fn workload_profiles_are_within_unit_interval() {
        for name in ["susan", "mpeg", "mcf", "blowfish", "gsm", "art", "adpcm", "unknown"] {
            let p = ThresholdProfile::for_workload(name);
            assert!(
                (0.0..=1.0).contains(&p.tolerable_min_score),
                "{name}: {p:?}"
            );
        }
        assert_eq!(
            ThresholdProfile::for_workload("unknown").tolerable_min_score,
            0.0
        );
    }
}

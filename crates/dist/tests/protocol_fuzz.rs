//! Property-based fuzzing of the wire decoders (frame layer and message
//! layer): adversarial bytes must always produce *typed errors* —
//! never a panic, never an unbounded allocation, never a silently
//! accepted corruption.
//!
//! Four claims, each driven by proptest:
//!
//! 1. `Request::decode` / `Response::decode` total on arbitrary bytes.
//! 2. Every strict prefix of a valid encoding fails to decode (the
//!    format is not ambiguous under truncation).
//! 3. Any single-bit flip anywhere in a framed message — length prefix,
//!    sequence number, checksum, payload — is rejected by
//!    [`FrameCodec::read_frame`].
//! 4. Forged length prefixes and element counts produce bounded
//!    allocations and typed errors, not OOM.

use std::io::Cursor;

use certa_dist::protocol::{Request, Response, JobSpec, MAX_FRAME_BYTES};
use certa_dist::{FrameCodec, FrameError};
use certa_fault::CampaignConfig;
use proptest::prelude::*;

fn sample_requests(name: String, a: u64, b: u64, small: u32) -> Vec<Request> {
    vec![
        Request::Hello {
            version: 3,
            name,
            token: a,
            challenge: b,
        },
        Request::Lease {
            worker: small,
            fingerprint: a,
        },
        Request::Heartbeat {
            worker: small,
            lease: a,
            epoch: b,
        },
        Request::Complete {
            worker: small,
            lease: a,
            chunk: small ^ 1,
            epoch: b,
            records: Vec::new(),
            harness: Default::default(),
            restores: Default::default(),
        },
    ]
}

fn sample_responses(reason: String, a: u64, b: u64, small: u32) -> Vec<Response> {
    vec![
        Response::Welcome {
            worker: small,
            job: JobSpec {
                workload: reason.clone(),
                config: CampaignConfig::default(),
                fingerprint: a,
                worker_threads: 1,
            },
            epoch: b,
            proof: a ^ b,
        },
        Response::Grant {
            lease: a,
            chunk: small,
            trials: vec![0, 1, 2, small],
            ttl_ms: b,
            epoch: a,
        },
        Response::Wait { poll_ms: a },
        Response::Drained,
        Response::Ack {
            accepted: small.is_multiple_of(2),
            epoch: b,
        },
        Response::Reject { reason },
    ]
}

/// Frames `payload` exactly as a peer would put it on the wire.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut codec = FrameCodec::new();
    let mut wire = Vec::new();
    codec.write_frame(&mut wire, payload).expect("vec write");
    wire
}

fn ascii(bytes: Vec<u8>) -> String {
    String::from_utf8(bytes).expect("generated ascii")
}

proptest! {
    /// Claim 1: the message decoders are total — arbitrary bytes give
    /// `Ok` or a typed `WireError`, never a panic.
    #[test]
    fn decoders_never_panic_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..512)
    ) {
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }

    /// Claim 2: no strict prefix of a valid encoding decodes — there is
    /// no truncation point an attacker (or a cut connection) can hit
    /// that yields a different-but-valid message.
    #[test]
    fn truncations_always_fail_to_decode(
        name in prop::collection::vec(0x61u8..0x7b, 0..12),
        a in any::<u64>(),
        b in any::<u64>(),
        small in any::<u32>(),
        cut in any::<usize>(),
    ) {
        for request in sample_requests(ascii(name.clone()), a, b, small) {
            let full = request.encode();
            let cut = cut % full.len();
            prop_assert!(
                Request::decode(&full[..cut]).is_err(),
                "truncated {request:?} at {cut}/{} decoded",
                full.len()
            );
        }
        for response in sample_responses(ascii(name.clone()), a, b, small) {
            let full = response.encode();
            let cut = cut % full.len();
            prop_assert!(
                Response::decode(&full[..cut]).is_err(),
                "truncated {response:?} at {cut}/{} decoded",
                full.len()
            );
        }
    }

    /// Claim 3: a single flipped bit anywhere in a framed message —
    /// header or payload — is caught by the frame layer. FNV-1a's
    /// byte-mix is bijective per step, so a one-bit change in the
    /// checksummed region *always* changes the checksum; a flip in the
    /// length prefix misframes the stream and fails the checksum or
    /// truncates.
    #[test]
    fn single_bit_flips_never_survive_the_codec(
        name in prop::collection::vec(0x61u8..0x7b, 0..12),
        a in any::<u64>(),
        b in any::<u64>(),
        small in any::<u32>(),
        which in any::<usize>(),
        flip in any::<usize>(),
    ) {
        let requests = sample_requests(ascii(name.clone()), a, b, small);
        let request = &requests[which % requests.len()];
        let mut wire = frame(&request.encode());
        let bit = flip % (wire.len() * 8);
        wire[bit / 8] ^= 1 << (bit % 8);
        let mut codec = FrameCodec::new();
        let got = codec.read_frame(&mut Cursor::new(&wire));
        prop_assert!(
            got.is_err(),
            "bit {bit} flipped in {request:?} but the frame was accepted"
        );
    }

    /// Claim 4a: a length prefix over [`MAX_FRAME_BYTES`] is rejected as
    /// `Corrupt` before any payload allocation happens.
    #[test]
    fn oversize_length_prefix_is_corrupt(
        len in (MAX_FRAME_BYTES + 1)..u32::MAX,
        junk in any::<u64>(),
    ) {
        let mut wire = Vec::new();
        wire.extend_from_slice(&len.to_le_bytes());
        wire.extend_from_slice(&0u64.to_le_bytes());
        wire.extend_from_slice(&junk.to_le_bytes());
        let mut codec = FrameCodec::new();
        match codec.read_frame(&mut Cursor::new(&wire)) {
            Err(FrameError::Corrupt(_)) => {}
            other => prop_assert!(false, "expected Corrupt, got {other:?}"),
        }
    }

    /// Claim 4b: a length prefix *under* the cap but far beyond the
    /// actual bytes on the wire errors out with a typed I/O error; the
    /// incremental read buffer never balloons to the claimed size
    /// (`read_capped` grows in 1 MiB steps between reads, so a lying
    /// 64 MiB prefix on an empty stream allocates at most one step).
    #[test]
    fn lying_length_prefix_is_a_typed_io_error(
        len in (1u32 << 21)..MAX_FRAME_BYTES,
        body in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut wire = Vec::new();
        wire.extend_from_slice(&len.to_le_bytes());
        wire.extend_from_slice(&0u64.to_le_bytes());
        wire.extend_from_slice(&u64::MAX.to_le_bytes());
        wire.extend_from_slice(&body);
        let mut codec = FrameCodec::new();
        match codec.read_frame(&mut Cursor::new(&wire)) {
            Err(FrameError::Io(_)) => {}
            other => prop_assert!(false, "expected Io, got {other:?}"),
        }
    }

    /// Claim 4c: a forged element count inside an otherwise-valid
    /// payload (a `Complete` claiming `u32::MAX` records, a `Grant`
    /// claiming `u32::MAX` trials) is a typed error with bounded
    /// pre-allocation — the decoder reserves at most
    /// `DECODE_PREALLOC_CAP` elements before the truncation shows.
    #[test]
    fn forged_element_counts_are_typed_errors(count in (1u32 << 16)..u32::MAX) {
        let complete = Request::Complete {
            worker: 1,
            lease: 2,
            chunk: 3,
            epoch: 4,
            records: Vec::new(),
            harness: Default::default(),
            restores: Default::default(),
        };
        let mut payload = complete.encode();
        // tag(1) + worker(4) + lease(8) + chunk(4) + epoch(8) = 25.
        payload[25..29].copy_from_slice(&count.to_le_bytes());
        prop_assert!(Request::decode(&payload).is_err());

        let grant = Response::Grant {
            lease: 1,
            chunk: 2,
            trials: Vec::new(),
            ttl_ms: 3,
            epoch: 4,
        };
        let mut payload = grant.encode();
        // tag(1) + lease(8) + chunk(4) = 13.
        payload[13..17].copy_from_slice(&count.to_le_bytes());
        prop_assert!(Response::decode(&payload).is_err());
    }
}

//! Property tests for journal-driven crash recovery.
//!
//! The write-ahead invariant means a dead coordinator's journal holds
//! *some prefix* of the campaign's completed chunks (in whatever order
//! racing workers delivered them), possibly with a duplicate from a
//! crash between append and merge, possibly with a torn final record.
//! Resuming from **any** such journal must land the exact same final
//! record table as a clean run — that is the whole durability claim,
//! and it is what these properties pin:
//!
//! * any subset of chunk records, in any order, optionally duplicated,
//!   resumes to the byte-identical record table;
//! * any byte-length truncation of a valid journal (simulating death
//!   mid-`write`) resumes to the byte-identical record table.
//!
//! Both properties drive the real [`Coordinator::run_durable`] path
//! (inline fallback execution), so replay, re-queueing, merge, and the
//! global reconciliation check are all exercised per case.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use certa_asm::Asm;
use certa_core::analyze;
use certa_dist::{
    ChunkRecord, Coordinator, DistConfig, DistProgress, Journal, JournalIdentity,
    REPLAY_LEDGER_NAME,
};
use certa_fault::{CampaignConfig, CampaignSession, Target, TrialChunk, TrialRecord};
use certa_isa::reg::{T0, T1, T2, T3};
use certa_isa::Program;
use certa_sim::Machine;

/// The campaign crate's canonical tiny workload: sums 64 input bytes
/// into a 32-bit little-endian output.
struct SumTarget {
    program: Program,
    input_addr: u32,
    output_addr: u32,
}

impl SumTarget {
    fn new() -> Self {
        let mut a = Asm::new();
        let input_addr = a.data_zero(64);
        let output_addr = a.data_zero(4);
        a.func("sum", true);
        a.la(T0, input_addr);
        a.li(T1, 0);
        a.li(T2, 0);
        a.label("loop");
        a.add(T3, T0, T1);
        a.lbu(T3, 0, T3);
        a.add(T2, T2, T3);
        a.addi(T1, T1, 1);
        a.slti(T3, T1, 64);
        a.bnez(T3, "loop");
        a.la(T0, output_addr);
        a.sw(T2, 0, T0);
        a.ret();
        a.endfunc();
        a.func("main", false);
        a.call("sum");
        a.halt();
        a.endfunc();
        SumTarget {
            program: a.assemble().unwrap(),
            input_addr,
            output_addr,
        }
    }
}

impl Target for SumTarget {
    fn program(&self) -> &Program {
        &self.program
    }

    fn prepare(&self, machine: &mut Machine<'_>) {
        let input: Vec<u8> = (0..64u8).collect();
        machine.write_bytes(self.input_addr, &input).unwrap();
    }

    fn extract(&self, machine: &Machine<'_>) -> Option<Vec<u8>> {
        machine.read_bytes(self.output_addr, 4).ok()
    }
}

const CHUNK_PARTS: usize = 4;

fn temp_path(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "certa-journal-resume-{}-{tag}-{seq}.wal",
        std::process::id()
    ))
}

/// One shared baseline, built once: the session (leaked — property cases
/// run until the process exits anyway), the clean run's record table,
/// the chunk deltas a complete campaign journals, and the raw bytes of
/// that complete journal.
struct Fixture {
    session: CampaignSession<'static>,
    config: CampaignConfig,
    chunks: Vec<TrialChunk>,
    baseline: Vec<TrialRecord>,
    deltas: Vec<ChunkRecord>,
    journal_bytes: Vec<u8>,
}

impl Fixture {
    fn identity(&self) -> JournalIdentity<'_> {
        JournalIdentity {
            workload: "sum",
            fingerprint: self.session.fingerprint(),
            config: &self.config,
            chunks: &self.chunks,
        }
    }
}

fn dist_config() -> DistConfig {
    DistConfig {
        fallback_inline: true,
        fallback_grace: Duration::from_millis(10),
        chunk_parts: CHUNK_PARTS,
        drain_timeout: Duration::from_secs(120),
        ..DistConfig::default()
    }
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let target: &'static SumTarget = Box::leak(Box::new(SumTarget::new()));
        let tags = Box::leak(Box::new(analyze(target.program())));
        let config = CampaignConfig {
            trials: 16,
            errors: 1,
            seed: 0xd15c0,
            threads: 1,
            ..CampaignConfig::default()
        };
        let session = CampaignSession::new(target, tags, &config);
        let chunks = session.chunk_plan(CHUNK_PARTS);

        // A clean durable run (inline fallback) produces both the
        // baseline record table and a complete journal to mine chunk
        // deltas from.
        let path = temp_path("baseline");
        let coordinator = Coordinator::bind("127.0.0.1:0").expect("bind");
        let result = coordinator
            .run_durable(
                &session,
                "sum",
                &dist_config(),
                &DistProgress::default(),
                &path,
                None,
            )
            .expect("baseline campaign");
        let journal_bytes = std::fs::read(&path).expect("journal bytes");
        let identity = JournalIdentity {
            workload: "sum",
            fingerprint: session.fingerprint(),
            config: &config,
            chunks: &chunks,
        };
        let (_journal, recovery) = Journal::open(&path, &identity).expect("read back");
        assert_eq!(
            recovery.completed.len(),
            chunks.len(),
            "the clean run journaled every chunk"
        );
        drop(_journal);
        std::fs::remove_file(&path).ok();

        Fixture {
            session,
            config,
            chunks,
            baseline: result.campaign.trials,
            deltas: recovery.completed,
            journal_bytes,
        }
    })
}

/// Resumes a campaign from the journal at `path` and returns the final
/// result, asserting completion.
fn resume(path: &Path) -> certa_dist::DistResult {
    let fx = fixture();
    let coordinator = Coordinator::bind("127.0.0.1:0").expect("bind");
    coordinator
        .run_durable(
            &fx.session,
            "sum",
            &dist_config(),
            &DistProgress::default(),
            path,
            None,
        )
        .expect("resumed campaign")
}

proptest! {
    /// Replaying any subset of a campaign's journaled chunks — any
    /// size, any order, optionally with a duplicated record — resumes
    /// to the identical final record table, with exactly the journaled
    /// chunks attributed to replay and the rest re-executed.
    #[test]
    fn any_journal_prefix_resumes_to_the_identical_record_table(
        prefix_sel in any::<u64>(),
        shuffle_seed in any::<u64>(),
        duplicate in any::<bool>(),
    ) {
        let fx = fixture();
        let n = fx.deltas.len();
        let k = (prefix_sel % (n as u64 + 1)) as usize;

        // A deterministic Fisher–Yates shuffle stands in for "whatever
        // order N racing workers happened to deliver in".
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = SmallRng::seed_from_u64(shuffle_seed);
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..i + 1);
            order.swap(i, j);
        }

        let path = temp_path("prefix");
        {
            let (mut journal, recovery) =
                Journal::open(&path, &fx.identity()).expect("fresh journal");
            prop_assert!(!recovery.resumed);
            for &i in &order[..k] {
                journal.append_chunk(&fx.deltas[i]).expect("append");
            }
            if duplicate && k > 0 {
                // A crash between journal append and in-memory merge
                // legitimately leaves the same chunk journaled twice.
                journal.append_chunk(&fx.deltas[order[0]]).expect("dup append");
            }
        }

        let result = resume(&path);
        std::fs::remove_file(&path).ok();

        prop_assert_eq!(&result.campaign.trials, &fx.baseline);
        prop_assert!(result.resume.resumed);
        prop_assert_eq!(result.resume.epoch, 2);
        prop_assert_eq!(result.resume.replayed_chunks, k as u64);
        prop_assert_eq!(
            result.resume.journal_duplicates,
            u64::from(duplicate && k > 0)
        );
        if k > 0 {
            prop_assert_eq!(&result.workers[0].name, REPLAY_LEDGER_NAME);
            prop_assert_eq!(
                result.workers[0].trials_completed,
                result.resume.replayed_trials
            );
        }
    }

    /// Truncating a valid journal at any byte length — death mid-write,
    /// wherever it lands: inside the magic, mid-record-header,
    /// mid-payload, or on a clean boundary — resumes to the identical
    /// final record table. The torn tail is cut and its chunks simply
    /// re-run.
    #[test]
    fn any_byte_truncation_resumes_to_the_identical_record_table(
        cut_sel in any::<u64>(),
    ) {
        let fx = fixture();
        let len = fx.journal_bytes.len() as u64;
        let cut = (cut_sel % (len + 1)) as usize;

        let path = temp_path("truncate");
        std::fs::write(&path, &fx.journal_bytes[..cut]).expect("write cut journal");

        let result = resume(&path);
        std::fs::remove_file(&path).ok();

        prop_assert_eq!(&result.campaign.trials, &fx.baseline);
        prop_assert!(result.resume.durable);
    }
}

//! Loopback integration tests: coordinator and workers in one process
//! over 127.0.0.1, exercising the full wire protocol, lease expiry and
//! redelivery, the inline fallback, and — the core robustness claim —
//! that losing a worker mid-lease changes *nothing* about the final
//! per-trial record table.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

use certa_asm::Asm;
use certa_core::analyze;
use certa_dist::{
    run_worker, Coordinator, CoordinatorSabotage, DistConfig, DistError, DistProgress,
    DistResult, WorkerOptions, WorkerReport, WorkerSabotage, REPLAY_LEDGER_NAME,
};
use certa_fault::{run_campaign, CampaignConfig, CampaignSession, Target};
use certa_isa::reg::{T0, T1, T2, T3};
use certa_isa::Program;
use certa_sim::Machine;

/// The campaign crate's canonical tiny workload: sums 64 input bytes
/// into a 32-bit little-endian output.
struct SumTarget {
    program: Program,
    input_addr: u32,
    output_addr: u32,
}

impl SumTarget {
    fn new() -> Self {
        let mut a = Asm::new();
        let input_addr = a.data_zero(64);
        let output_addr = a.data_zero(4);
        a.func("sum", true);
        a.la(T0, input_addr);
        a.li(T1, 0);
        a.li(T2, 0);
        a.label("loop");
        a.add(T3, T0, T1);
        a.lbu(T3, 0, T3);
        a.add(T2, T2, T3);
        a.addi(T1, T1, 1);
        a.slti(T3, T1, 64);
        a.bnez(T3, "loop");
        a.la(T0, output_addr);
        a.sw(T2, 0, T0);
        a.ret();
        a.endfunc();
        a.func("main", false);
        a.call("sum");
        a.halt();
        a.endfunc();
        SumTarget {
            program: a.assemble().unwrap(),
            input_addr,
            output_addr,
        }
    }
}

impl Target for SumTarget {
    fn program(&self) -> &Program {
        &self.program
    }

    fn prepare(&self, machine: &mut Machine<'_>) {
        let input: Vec<u8> = (0..64u8).collect();
        machine.write_bytes(self.input_addr, &input).unwrap();
    }

    fn extract(&self, machine: &Machine<'_>) -> Option<Vec<u8>> {
        machine.read_bytes(self.output_addr, 4).ok()
    }
}

fn resolve_sum(name: &str) -> Option<Box<dyn Target>> {
    (name == "sum").then(|| Box::new(SumTarget::new()) as Box<dyn Target>)
}

fn config(trials: usize) -> CampaignConfig {
    CampaignConfig {
        trials,
        errors: 1,
        seed: 0xd15c0,
        threads: 1,
        ..CampaignConfig::default()
    }
}

fn fast_worker(name: &str, seed: u64) -> WorkerOptions {
    WorkerOptions {
        name: name.into(),
        heartbeat_interval: Duration::from_millis(50),
        connect_base: Duration::from_millis(10),
        connect_cap: Duration::from_millis(100),
        backoff_seed: seed,
        ..WorkerOptions::default()
    }
}

/// Runs a coordinator plus in-process worker threads to completion.
fn run_distributed(
    trials: usize,
    dist: DistConfig,
    workers: Vec<WorkerOptions>,
) -> (DistResult, Vec<Result<WorkerReport, DistError>>) {
    let target = SumTarget::new();
    let tags = analyze(target.program());
    let cfg = config(trials);
    let session = CampaignSession::new(&target, &tags, &cfg);
    let coordinator = Coordinator::bind("127.0.0.1:0").expect("bind");
    let addr: SocketAddr = coordinator.local_addr().expect("addr");
    let mut result = None;
    let mut reports = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = workers
            .into_iter()
            .map(|opts| scope.spawn(move || run_worker(addr, &resolve_sum, &opts)))
            .collect();
        result = Some(
            coordinator
                .run(&session, "sum", &dist)
                .expect("distributed campaign"),
        );
        reports = handles.into_iter().map(|h| h.join().unwrap()).collect();
    });
    (result.unwrap(), reports)
}

#[test]
fn two_workers_reproduce_the_inline_campaign_exactly() {
    let trials = 48;
    let target = SumTarget::new();
    let tags = analyze(target.program());
    let inline = run_campaign(&target, &tags, &config(trials));

    let dist = DistConfig {
        fallback_inline: false,
        chunk_parts: 6,
        drain_timeout: Duration::from_secs(120),
        ..DistConfig::default()
    };
    let (result, reports) = run_distributed(
        trials,
        dist,
        vec![fast_worker("alpha", 1), fast_worker("beta", 2)],
    );

    assert_eq!(result.campaign.trials, inline.trials, "per-trial records differ");
    assert_eq!(result.campaign.harness_stats, inline.harness_stats);
    assert!(!result.fallback_used);
    // Both workers attached; together they account for every chunk.
    assert_eq!(result.workers.len(), 2);
    let chunks: u32 = result.workers.iter().map(|w| w.chunks_completed).sum();
    assert!(
        chunks >= 6,
        "checkpoint-group cuts can only add chunks beyond the 6 requested parts"
    );
    let attributed: u64 = result.workers.iter().map(|w| w.trials_completed).sum();
    assert_eq!(attributed, trials as u64);
    for report in reports {
        report.expect("worker finished clean");
    }
}

/// Satellite: kill a worker mid-lease and prove the final record table is
/// byte-identical to a clean single-worker run of the same configuration.
#[test]
fn worker_loss_mid_lease_redelivers_and_stays_deterministic() {
    let trials = 64;

    // Clean baseline: one well-behaved worker.
    let clean_dist = DistConfig {
        fallback_inline: false,
        chunk_parts: 8,
        drain_timeout: Duration::from_secs(120),
        ..DistConfig::default()
    };
    let (clean, _) = run_distributed(trials, clean_dist.clone(), vec![fast_worker("solo", 3)]);

    // Sabotaged run: the victim completes one chunk, then vanishes while
    // holding its second lease (no heartbeat, no completion — exactly
    // what the coordinator observes after a SIGKILL). A short TTL lets
    // the test expire it quickly; the survivor finishes the campaign.
    let dist = DistConfig {
        lease_ttl: Duration::from_millis(400),
        fallback_inline: false,
        chunk_parts: 8,
        drain_timeout: Duration::from_secs(120),
        ..DistConfig::default()
    };
    let victim = WorkerOptions {
        sabotage: WorkerSabotage {
            abandon_after_leases: Some(1),
        },
        // Hold each chunk briefly so the survivor cannot drain the queue
        // before the victim has taken its doomed second lease.
        throttle_per_chunk: Duration::from_millis(100),
        ..fast_worker("victim", 4)
    };
    let survivor = WorkerOptions {
        throttle_per_chunk: Duration::from_millis(50),
        ..fast_worker("survivor", 5)
    };
    let (wounded, reports) = run_distributed(trials, dist, vec![victim, survivor]);

    assert!(
        wounded.redeliveries >= 1,
        "the abandoned lease must expire and redeliver"
    );
    assert_eq!(
        wounded.campaign.trials, clean.campaign.trials,
        "worker loss must not change a single trial record"
    );
    assert_eq!(wounded.campaign.harness_stats, clean.campaign.harness_stats);
    wounded
        .campaign
        .verify_reconciliation()
        .expect("global reconciliation after worker loss");

    let victim_report = reports[0].as_ref().expect("victim exits voluntarily");
    assert!(victim_report.abandoned);
    reports[1].as_ref().expect("survivor finishes clean");
}

/// Tentpole: kill the coordinator provably mid-campaign (via the
/// sabotage hook — in-memory state is dropped exactly as a SIGKILL would
/// drop it), restart it from the write-ahead journal, and prove the
/// final record table is byte-identical to a clean inline run. The one
/// worker survives the outage: it re-attaches to the new incarnation
/// *without* rebuilding its session, and any completion staged for the
/// dead epoch is fenced off, never double-merged.
#[test]
fn coordinator_crash_and_resume_is_byte_identical() {
    let trials = 64;
    let target = SumTarget::new();
    let tags = analyze(target.program());
    let inline = run_campaign(&target, &tags, &config(trials));

    let journal_path = std::env::temp_dir().join(format!(
        "certa-crash-resume-{}.wal",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&journal_path);

    let cfg = config(trials);
    let session = CampaignSession::new(&target, &tags, &cfg);
    let coordinator = Coordinator::bind("127.0.0.1:0").expect("bind");
    let addr: SocketAddr = coordinator.local_addr().expect("addr");
    let dist = DistConfig {
        fallback_inline: false,
        chunk_parts: 8,
        drain_timeout: Duration::from_secs(120),
        ..DistConfig::default()
    };
    // Die after two fresh completions: provably mid-campaign (the chunk
    // plan has >= 8 parts), provably with something durable to resume
    // from.
    let sabotaged = DistConfig {
        sabotage: CoordinatorSabotage {
            die_after_fresh: Some(2),
        },
        ..dist.clone()
    };
    let worker_opts = WorkerOptions {
        // Pace the chunks so the drive loop observes the crash threshold
        // while most of the queue is still open.
        throttle_per_chunk: Duration::from_millis(25),
        // The gap between incarnations costs connect attempts; be
        // generous enough that the worker always survives it.
        connect_attempts: 10,
        ..fast_worker("survivor", 11)
    };

    let mut crash = None;
    let mut resumed = None;
    let mut report = None;
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| run_worker(addr, &resolve_sum, &worker_opts));
        let progress = DistProgress::default();
        crash = Some(coordinator.run_durable(
            &session,
            "sum",
            &sabotaged,
            &progress,
            &journal_path,
            None,
        ));
        // "Restart": same listener (the test process never died, so it
        // keeps the port), but every byte of campaign state — records,
        // lease table, stat sums — was dropped with the crashed run.
        // Only the journal carries over.
        resumed = Some(coordinator.run_durable(
            &session,
            "sum",
            &dist,
            &DistProgress::default(),
            &journal_path,
            None,
        ));
        report = Some(handle.join().unwrap());
    });

    match crash.unwrap() {
        Err(DistError::Crashed(_)) => {}
        other => panic!("expected sabotaged run to crash, got {other:?}"),
    }
    let result = resumed.unwrap().expect("resumed campaign completes");
    let report = report.unwrap().expect("worker survives the restart");

    assert_eq!(
        result.campaign.trials, inline.trials,
        "a crash + resume must not change a single trial record"
    );
    assert_eq!(result.campaign.harness_stats, inline.harness_stats);
    result
        .campaign
        .verify_reconciliation()
        .expect("global reconciliation after resume");

    assert!(result.resume.durable);
    assert!(result.resume.resumed, "the journal must have been replayed");
    assert_eq!(result.resume.epoch, 2, "second incarnation, second epoch");
    assert!(
        result.resume.replayed_chunks >= 2,
        "both pre-crash completions were journaled ahead of their merge"
    );
    assert!(
        (result.resume.replayed_chunks as usize) < result.workers.len() + 8,
        "sanity: replay cannot exceed the chunk plan"
    );
    assert_eq!(result.workers[0].name, REPLAY_LEDGER_NAME);
    assert_eq!(
        result.workers[0].trials_completed,
        result.resume.replayed_trials
    );
    let attributed: u64 = result.workers.iter().map(|w| w.trials_completed).sum();
    assert_eq!(attributed, trials as u64, "replay + live work covers every trial");

    assert!(
        report.reconnects >= 1,
        "the worker must have re-attached across the crash"
    );
    assert_eq!(
        report.session_builds, 1,
        "a coordinator restart must not cost the worker a session rebuild"
    );

    let _ = std::fs::remove_file(&journal_path);
}

/// Satellite: a completion stamped with a dead incarnation's epoch is
/// rejected (`Ack { accepted: false }` carrying the current epoch) and
/// counted — never merged. Driven over the raw protocol so the stale
/// epoch is deterministic, while the inline fallback runs the real
/// campaign underneath.
#[test]
fn stale_epoch_completion_is_fenced_and_counted() {
    use certa_dist::protocol::{FrameCodec, Request, Response};

    let trials = 24;
    let target = SumTarget::new();
    let tags = analyze(target.program());
    let inline = run_campaign(&target, &tags, &config(trials));

    let journal_path = std::env::temp_dir().join(format!(
        "certa-stale-epoch-{}.wal",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&journal_path);

    let cfg = config(trials);
    let session = CampaignSession::new(&target, &tags, &cfg);
    let coordinator = Coordinator::bind("127.0.0.1:0").expect("bind");
    let addr: SocketAddr = coordinator.local_addr().expect("addr");
    let dist = DistConfig {
        fallback_inline: true,
        fallback_grace: Duration::from_millis(50),
        chunk_parts: 4,
        drain_timeout: Duration::from_secs(120),
        ..DistConfig::default()
    };

    let mut result = None;
    let mut fenced_ack = None;
    std::thread::scope(|scope| {
        let saboteur = scope.spawn(|| {
            // No `Hello`: saying hello would mark a worker as attached
            // and hold off the inline fallback that actually runs this
            // campaign. The fence must fire on epoch alone anyway — a
            // dead incarnation's worker is exactly a peer whose other
            // credentials all look plausible.
            let mut stream = std::net::TcpStream::connect(addr).expect("connect");
            // A delivery from an epoch that never existed (a fresh
            // journal runs under epoch 1). The fence fires before any
            // payload validation, exactly as it must for a
            // predecessor's in-flight completion: the content is
            // deliberately nonsense to prove nothing downstream looks
            // at it.
            let stale = Request::Complete {
                worker: 0,
                lease: 1,
                chunk: 0,
                epoch: 1001,
                records: Vec::new(),
                harness: certa_fault::HarnessStats::default(),
                restores: certa_fault::RestoreStats::default(),
            };
            let mut codec = FrameCodec::new();
            codec
                .write_frame(&mut stream, &stale.encode())
                .expect("stale complete");
            let ack = codec.read_frame(&mut stream).expect("ack frame");
            match Response::decode(&ack).expect("ack") {
                Response::Ack { accepted, epoch } => Some((accepted, epoch)),
                other => panic!("expected Ack, got {other:?}"),
            }
        });
        result = Some(
            coordinator
                .run_durable(
                    &session,
                    "sum",
                    &dist,
                    &DistProgress::default(),
                    &journal_path,
                    None,
                )
                .expect("campaign completes despite the saboteur"),
        );
        fenced_ack = Some(saboteur.join().unwrap());
    });

    let (accepted, ack_epoch) = fenced_ack.unwrap().expect("ack received");
    assert!(!accepted, "a stale-epoch completion must be refused");
    assert_eq!(
        ack_epoch, 1,
        "the refusal advertises the current epoch so the sender can fence itself"
    );

    let result = result.unwrap();
    assert_eq!(
        result.resume.stale_epoch_completions, 1,
        "the fenced delivery is counted"
    );
    assert_eq!(
        result.campaign.trials, inline.trials,
        "the nonsense payload must never reach the record table"
    );
    result
        .campaign
        .verify_reconciliation()
        .expect("reconciliation unaffected by the fenced delivery");

    let _ = std::fs::remove_file(&journal_path);
}

#[test]
fn coordinator_degrades_to_inline_when_no_worker_attaches() {
    let trials = 24;
    let target = SumTarget::new();
    let tags = analyze(target.program());
    let inline = run_campaign(&target, &tags, &config(trials));

    let session = CampaignSession::new(&target, &tags, &config(trials));
    let coordinator = Coordinator::bind("127.0.0.1:0").expect("bind");
    let dist = DistConfig {
        fallback_grace: Duration::from_millis(50),
        chunk_parts: 4,
        drain_timeout: Duration::from_secs(120),
        ..DistConfig::default()
    };
    let result = coordinator
        .run(&session, "sum", &dist)
        .expect("fallback campaign");

    assert!(result.fallback_used);
    assert_eq!(result.campaign.trials, inline.trials);
    assert_eq!(result.workers.len(), 1);
    assert_eq!(result.workers[0].name, "coordinator-inline");
    assert_eq!(result.workers[0].trials_completed, trials as u64);
}

#[test]
fn worker_gives_up_after_exhausting_backoff() {
    // Bind then drop a listener to get a port that refuses connections.
    let addr = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap()
    };
    let opts = WorkerOptions {
        connect_attempts: 3,
        connect_base: Duration::from_millis(5),
        connect_cap: Duration::from_millis(20),
        ..fast_worker("orphan", 6)
    };
    match run_worker(addr, &resolve_sum, &opts) {
        Err(DistError::Io(_)) => {}
        other => panic!("expected Io error after exhausted backoff, got {other:?}"),
    }
}

#[test]
fn unresolvable_workload_is_a_job_mismatch() {
    let target = SumTarget::new();
    let tags = analyze(target.program());
    let session = CampaignSession::new(&target, &tags, &config(8));
    let coordinator = Coordinator::bind("127.0.0.1:0").expect("bind");
    let addr = coordinator.local_addr().expect("addr");
    let dist = DistConfig {
        // The mismatched worker can never serve; the inline fallback
        // would also never fire (the worker *attaches*), so keep the
        // coordinator from hanging with a short drain timeout.
        fallback_inline: false,
        drain_timeout: Duration::from_secs(2),
        ..DistConfig::default()
    };

    let rejections = AtomicU32::new(0);
    std::thread::scope(|scope| {
        let worker = scope.spawn(|| {
            let resolve_nothing = |_: &str| -> Option<Box<dyn Target>> { None };
            match run_worker(addr, &resolve_nothing, &fast_worker("confused", 7)) {
                Err(DistError::JobMismatch(_)) => {
                    rejections.fetch_add(1, Ordering::SeqCst);
                }
                other => panic!("expected JobMismatch, got {other:?}"),
            }
        });
        match coordinator.run(&session, "sum", &dist) {
            Err(DistError::Incomplete(_)) => {}
            other => panic!("expected Incomplete after drain timeout, got {other:?}"),
        }
        worker.join().unwrap();
    });
    assert_eq!(rejections.load(Ordering::SeqCst), 1);
}

//! The chaos soak: full distributed campaigns over a transport that
//! injects resets, stalls, bit corruption, length corruption, duplicate
//! frames, and delays — on **both** ends of every connection — must
//! still produce a record table byte-identical to the inline baseline.
//!
//! This is the paper's thesis applied to our own wire: fault tolerance
//! is measured, not assumed. Every seed asserts both directions of the
//! claim — the chaos actually fired (nonzero injection counters) and
//! the protocol actually recovered (nonzero corruption/duplicate/
//! reconnect counters), so a silently-weakened schedule or a silently-
//! bypassed checksum both fail the suite.
//!
//! Also here: the shared-secret authentication gates (wrong secret →
//! counted `Reject`, never served; non-loopback listener without a
//! secret → refused outright).

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use certa_asm::Asm;
use certa_core::analyze;
use certa_dist::{
    run_worker, Chaos, ChaosConfig, ChaosCounts, Coordinator, DistConfig, DistError, DistResult,
    WorkerOptions, WorkerReport,
};
use certa_fault::{run_campaign, CampaignConfig, CampaignSession, Target, TrialRecord};
use certa_isa::reg::{T0, T1, T2, T3};
use certa_isa::Program;
use certa_sim::Machine;

/// The campaign crate's canonical tiny workload: sums 64 input bytes
/// into a 32-bit little-endian output.
struct SumTarget {
    program: Program,
    input_addr: u32,
    output_addr: u32,
}

impl SumTarget {
    fn new() -> Self {
        let mut a = Asm::new();
        let input_addr = a.data_zero(64);
        let output_addr = a.data_zero(4);
        a.func("sum", true);
        a.la(T0, input_addr);
        a.li(T1, 0);
        a.li(T2, 0);
        a.label("loop");
        a.add(T3, T0, T1);
        a.lbu(T3, 0, T3);
        a.add(T2, T2, T3);
        a.addi(T1, T1, 1);
        a.slti(T3, T1, 64);
        a.bnez(T3, "loop");
        a.la(T0, output_addr);
        a.sw(T2, 0, T0);
        a.ret();
        a.endfunc();
        a.func("main", false);
        a.call("sum");
        a.halt();
        a.endfunc();
        SumTarget {
            program: a.assemble().unwrap(),
            input_addr,
            output_addr,
        }
    }
}

impl Target for SumTarget {
    fn program(&self) -> &Program {
        &self.program
    }

    fn prepare(&self, machine: &mut Machine<'_>) {
        let input: Vec<u8> = (0..64u8).collect();
        machine.write_bytes(self.input_addr, &input).unwrap();
    }

    fn extract(&self, machine: &Machine<'_>) -> Option<Vec<u8>> {
        machine.read_bytes(self.output_addr, 4).ok()
    }
}

fn resolve_sum(name: &str) -> Option<Box<dyn Target>> {
    (name == "sum").then(|| Box::new(SumTarget::new()) as Box<dyn Target>)
}

fn config(trials: usize) -> CampaignConfig {
    CampaignConfig {
        trials,
        errors: 1,
        seed: 0xd15c0,
        threads: 1,
        ..CampaignConfig::default()
    }
}

const SECRET: &str = "soak-secret";

/// The soak's chaos schedule: the adversarial preset with the stall
/// window pushed *past* both sides' io timeouts, so every injected stall
/// provably exercises a read timeout rather than resolving as a fast
/// reset.
fn soak_chaos(seed: u64) -> ChaosConfig {
    ChaosConfig {
        stall_for: Duration::from_millis(600),
        ..ChaosConfig::adversarial(seed)
    }
}

fn soak_dist(seed: u64) -> DistConfig {
    DistConfig {
        lease_ttl: Duration::from_millis(800),
        worker_poll: Duration::from_millis(50),
        fallback_inline: false,
        chunk_parts: 8,
        drain_timeout: Duration::from_secs(120),
        shutdown_linger: Duration::from_secs(1),
        io_timeout: Duration::from_millis(300),
        secret: Some(SECRET.into()),
        chaos: Some(soak_chaos(seed)),
        ..DistConfig::default()
    }
}

fn soak_worker(name: &str, seed: u64, chaos: Arc<Chaos>) -> WorkerOptions {
    WorkerOptions {
        name: name.into(),
        heartbeat_interval: Duration::from_millis(50),
        connect_attempts: 50,
        connect_base: Duration::from_millis(10),
        connect_cap: Duration::from_millis(100),
        io_timeout: Duration::from_millis(400),
        backoff_seed: seed,
        secret: Some(SECRET.into()),
        chaos: Some(chaos),
        ..WorkerOptions::default()
    }
}

/// One full campaign under chaos seed `seed`: coordinator chaos on every
/// accepted socket, per-worker chaos on every dialed socket. Returns the
/// coordinator result, the worker outcomes, and the chaos counts of the
/// two worker domains (held here so a worker that dies of its own chaos
/// still reports what it injected).
fn run_chaos_campaign(
    trials: usize,
    seed: u64,
) -> (
    DistResult,
    Vec<Result<WorkerReport, DistError>>,
    ChaosCounts,
) {
    let target = SumTarget::new();
    let tags = analyze(target.program());
    let cfg = config(trials);
    let session = CampaignSession::new(&target, &tags, &cfg);
    let coordinator = Coordinator::bind("127.0.0.1:0").expect("bind");
    let addr: SocketAddr = coordinator.local_addr().expect("addr");

    let worker_chaos: Vec<Arc<Chaos>> = (0..2u64)
        .map(|k| Chaos::new(soak_chaos(seed.wrapping_mul(0x9e37_79b9) ^ (k + 1))))
        .collect();
    let mut result = None;
    let mut reports = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = worker_chaos
            .iter()
            .enumerate()
            .map(|(k, chaos)| {
                let opts = soak_worker(
                    &format!("chaos-{k}"),
                    seed ^ (k as u64 + 1),
                    Arc::clone(chaos),
                );
                scope.spawn(move || run_worker(addr, &resolve_sum, &opts))
            })
            .collect();
        result = Some(
            coordinator
                .run(&session, "sum", &soak_dist(seed))
                .expect("chaos campaign must still drain"),
        );
        reports = handles.into_iter().map(|h| h.join().unwrap()).collect();
    });
    let mut injected_by_workers = ChaosCounts::default();
    for chaos in &worker_chaos {
        injected_by_workers.merge(&chaos.counts());
    }
    (result.unwrap(), reports, injected_by_workers)
}

/// The tentpole acceptance gate: ≥8 adversarial seeds, each campaign's
/// record table byte-identical to the inline baseline, with nonzero
/// injected-fault and recovery counters across the sweep. Chaos stats
/// land in `BENCH_chaos.json` at the workspace root for the CI artifact
/// upload.
#[test]
fn soak_adversarial_seeds_converge_byte_identically() {
    let trials = 32;
    let target = SumTarget::new();
    let tags = analyze(target.program());
    let baseline: Vec<TrialRecord> = run_campaign(&target, &tags, &config(trials)).trials;

    let mut injected = ChaosCounts::default();
    let mut corrupt_dropped = 0u64;
    let mut duplicates_absorbed = 0u64;
    let mut reconnects = 0u64;
    let mut redeliveries = 0u64;
    let mut stale_acks = 0u64;
    let mut per_seed = Vec::new();

    for seed in 1..=8u64 {
        let (result, reports, worker_injected) = run_chaos_campaign(trials, seed);
        assert_eq!(
            result.campaign.trials, baseline,
            "seed {seed}: record table diverged from the inline baseline"
        );
        result
            .campaign
            .verify_reconciliation()
            .unwrap_or_else(|e| panic!("seed {seed}: reconciliation failed: {e}"));
        assert_eq!(
            result.wire.auth_rejects, 0,
            "seed {seed}: both sides share the secret"
        );

        let mut seed_injected = worker_injected;
        seed_injected.merge(&result.chaos);
        let mut seed_corrupt = result.wire.corrupt_frames;
        let mut seed_dups = result.wire.duplicate_frames;
        let mut seed_reconnects = 0u64;
        for (k, report) in reports.iter().enumerate() {
            match report {
                Ok(report) => {
                    seed_corrupt += report.corrupt_frames;
                    seed_dups += report.duplicate_frames;
                    seed_reconnects += u64::from(report.reconnects);
                    stale_acks += u64::from(report.stale_acks);
                }
                // A worker is allowed to die of connection-level chaos
                // (its chunks redeliver); it is NOT allowed to die of a
                // protocol, job, or auth failure — chaos must never
                // corrupt its way past the typed error taxonomy.
                Err(DistError::Io(_) | DistError::Frame(_)) => {}
                Err(fatal) => panic!("seed {seed} worker {k}: unexpected fatal error: {fatal}"),
            }
        }
        eprintln!(
            "chaos seed {seed}: injected {seed_injected:?}; \
             corrupt dropped {seed_corrupt}, duplicates absorbed {seed_dups}, \
             reconnects {seed_reconnects}, redeliveries {}",
            result.redeliveries
        );
        injected.merge(&seed_injected);
        corrupt_dropped += seed_corrupt;
        duplicates_absorbed += seed_dups;
        reconnects += seed_reconnects;
        redeliveries += result.redeliveries;
        per_seed.push(format!(
            "    {{\"seed\": {seed}, \"injected\": {}, \"resets\": {}, \"stalls\": {}, \
             \"payload_corruptions\": {}, \"length_corruptions\": {}, \"duplicates\": {}, \
             \"delays\": {}, \"corrupt_frames_dropped\": {seed_corrupt}, \
             \"duplicate_frames_absorbed\": {seed_dups}, \"reconnects\": {seed_reconnects}, \
             \"redeliveries\": {}, \"byte_identical\": true}}",
            seed_injected.injected(),
            seed_injected.resets,
            seed_injected.stalls,
            seed_injected.payload_corruptions,
            seed_injected.length_corruptions,
            seed_injected.duplicates,
            seed_injected.delays,
            result.redeliveries,
        ));
    }

    // The chaos must actually have fired — every class, across the sweep.
    assert!(injected.resets > 0, "no resets injected: {injected:?}");
    assert!(injected.stalls > 0, "no stalls injected: {injected:?}");
    assert!(
        injected.payload_corruptions > 0,
        "no payload corruption injected: {injected:?}"
    );
    assert!(
        injected.length_corruptions > 0,
        "no length corruption injected: {injected:?}"
    );
    assert!(injected.duplicates > 0, "no duplicates injected: {injected:?}");
    assert!(injected.delays > 0, "no delays injected: {injected:?}");

    // ... and the hardened protocol must actually have recovered.
    assert!(
        corrupt_dropped > 0,
        "corruption was injected but never caught by a checksum"
    );
    assert!(
        duplicates_absorbed > 0,
        "duplicates were injected but never absorbed by sequence numbers"
    );
    assert!(
        reconnects > 0,
        "connections were killed but no worker ever re-attached"
    );

    let json = format!(
        "{{\n  \"bench\": \"campaign_chaos\",\n  \"trials_per_seed\": {trials},\n  \
         \"seeds\": 8,\n  \"workers\": 2,\n  \"injected_total\": {},\n  \
         \"corrupt_frames_dropped\": {corrupt_dropped},\n  \
         \"duplicate_frames_absorbed\": {duplicates_absorbed},\n  \
         \"reconnects\": {reconnects},\n  \"redeliveries\": {redeliveries},\n  \
         \"stale_acks\": {stale_acks},\n  \"per_seed\": [\n{}\n  ]\n}}\n",
        injected.injected(),
        per_seed.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_chaos.json");
    std::fs::write(path, json).expect("write BENCH_chaos.json");
}

/// A worker with the wrong shared secret is rejected and counted; it
/// never registers, never leases, and the campaign completes without it
/// (inline fallback — the impostor does not count as an attached
/// worker).
#[test]
fn wrong_secret_is_rejected_counted_and_never_served() {
    let trials = 16;
    let target = SumTarget::new();
    let tags = analyze(target.program());
    let baseline = run_campaign(&target, &tags, &config(trials)).trials;
    let cfg = config(trials);
    let session = CampaignSession::new(&target, &tags, &cfg);
    let coordinator = Coordinator::bind("127.0.0.1:0").expect("bind");
    let addr: SocketAddr = coordinator.local_addr().expect("addr");
    let dist = DistConfig {
        fallback_inline: true,
        fallback_grace: Duration::from_millis(100),
        chunk_parts: 4,
        drain_timeout: Duration::from_secs(120),
        secret: Some("the-real-secret".into()),
        ..DistConfig::default()
    };

    let mut result = None;
    let mut outcome = None;
    std::thread::scope(|scope| {
        let impostor = scope.spawn(move || {
            let opts = WorkerOptions {
                name: "impostor".into(),
                secret: Some("wrong-secret".into()),
                ..WorkerOptions::default()
            };
            run_worker(addr, &resolve_sum, &opts)
        });
        result = Some(
            coordinator
                .run(&session, "sum", &dist)
                .expect("campaign completes without the impostor"),
        );
        outcome = Some(impostor.join().unwrap());
    });

    let result = result.unwrap();
    match outcome.unwrap() {
        Err(DistError::Protocol(reason)) => {
            assert!(
                reason.contains("authentication"),
                "reject reason should name authentication: {reason}"
            );
        }
        other => panic!("impostor should be rejected, got {other:?}"),
    }
    assert!(result.wire.auth_rejects >= 1, "the rejection is counted");
    assert!(result.fallback_used, "the impostor never counted as a worker");
    assert!(
        result.workers.iter().map(|w| w.leases).sum::<u32>() > 0,
        "the inline ledger did the work"
    );
    assert_eq!(result.campaign.trials, baseline);
}

/// A worker that *has* a secret refuses a coordinator that cannot prove
/// it: the no-secret coordinator answers `proof = 0`, and the worker
/// bails with a fatal auth error rather than lease a single chunk from
/// an unproven peer. An honest no-secret worker runs alongside so the
/// campaign still drains (the wary worker registers at Hello — before
/// it can see the proofless Welcome — so inline fallback never arms).
#[test]
fn worker_rejects_a_coordinator_that_cannot_prove_the_secret() {
    let trials = 16;
    let target = SumTarget::new();
    let tags = analyze(target.program());
    let baseline = run_campaign(&target, &tags, &config(trials)).trials;
    let cfg = config(trials);
    let session = CampaignSession::new(&target, &tags, &cfg);
    let coordinator = Coordinator::bind("127.0.0.1:0").expect("bind");
    let addr: SocketAddr = coordinator.local_addr().expect("addr");
    let dist = DistConfig {
        chunk_parts: 4,
        drain_timeout: Duration::from_secs(120),
        ..DistConfig::default()
    };

    let mut result = None;
    let mut wary_outcome = None;
    let mut honest_outcome = None;
    std::thread::scope(|scope| {
        let wary = scope.spawn(move || {
            let opts = WorkerOptions {
                name: "wary".into(),
                secret: Some("a-secret-the-coordinator-lacks".into()),
                ..WorkerOptions::default()
            };
            run_worker(addr, &resolve_sum, &opts)
        });
        let honest = scope.spawn(move || {
            let opts = WorkerOptions {
                name: "honest".into(),
                ..WorkerOptions::default()
            };
            run_worker(addr, &resolve_sum, &opts)
        });
        result = Some(
            coordinator
                .run(&session, "sum", &dist)
                .expect("the honest worker drains the campaign"),
        );
        wary_outcome = Some(wary.join().unwrap());
        honest_outcome = Some(honest.join().unwrap());
    });
    assert!(
        matches!(wary_outcome.unwrap(), Err(DistError::Auth(_))),
        "a proofless Welcome must be fatal to a secret-holding worker"
    );
    honest_outcome.unwrap().expect("honest worker completes");
    assert_eq!(result.unwrap().campaign.trials, baseline);
}

/// A non-loopback listener without a shared secret refuses to serve at
/// all — the campaign never starts, no frame is ever exchanged.
#[test]
fn non_loopback_listener_without_secret_is_refused() {
    let trials = 8;
    let target = SumTarget::new();
    let tags = analyze(target.program());
    let cfg = config(trials);
    let session = CampaignSession::new(&target, &tags, &cfg);
    let coordinator = Coordinator::bind("0.0.0.0:0").expect("bind");
    let err = coordinator
        .run(&session, "sum", &DistConfig::default())
        .expect_err("a routable listener without a secret must refuse");
    assert!(
        matches!(err, DistError::Auth(_)),
        "expected an auth refusal, got {err}"
    );
    // The same listener with a secret is allowed.
    let dist = DistConfig {
        fallback_inline: true,
        fallback_grace: Duration::from_millis(50),
        chunk_parts: 2,
        drain_timeout: Duration::from_secs(120),
        secret: Some("now-we-may-roam".into()),
        ..DistConfig::default()
    };
    coordinator
        .run(&session, "sum", &dist)
        .expect("secret-bearing routable listener serves (inline fallback)");
}

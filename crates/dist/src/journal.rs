//! The coordinator's durable write-ahead journal.
//!
//! A campaign that runs for hours must survive coordinator death, not
//! just worker death. The journal is the only state that outlives the
//! process: an append-only log of **Fresh** chunk completions, each
//! carrying the chunk's full merge delta (trial records plus the
//! harness/restore/outcome/verdict counter blocks), written and
//! `fsync`ed *before* the delta is merged into coordinator memory — the
//! write-ahead invariant. Whatever the coordinator has observed, the
//! journal has observed first; a restarted coordinator replays the
//! journal through the same (property-tested, commutative-monoid) merge
//! and re-queues only the chunks with no journal record.
//!
//! ## File format
//!
//! ```text
//! magic  := b"CERTAWAL" ++ u32 format-version          (12 bytes)
//! record := u32 payload-len ++ u64 fnv1a-64(payload) ++ payload
//! payload:
//!   tag 0  Header { workload, fingerprint, config, chunk_count }
//!   tag 1  Epoch  { epoch }
//!   tag 2  Chunk  { chunk, (trial, record)*, harness, restores,
//!                   outcomes, verdicts }
//! ```
//!
//! All integers are little-endian ([`certa_fault::wire`]). The first
//! record is always a `Header` pinning the campaign's identity; every
//! [`Journal::open`] appends one `Epoch` record, so the current epoch is
//! `max(epochs seen) + 1` and the file stays strictly append-only.
//!
//! ## Torn-tail policy
//!
//! A crash can leave a half-written final record. Recovery walks the
//! log tracking the end of the last fully valid record; the first
//! truncated, checksum-failing, or undecodable record **cuts the
//! file there** — it and everything after it are untrusted and
//! discarded ([`Recovery::torn_tail_bytes`]). Cut chunks simply re-run:
//! chunk execution is idempotent, so recovery never needs the tail to
//! be intact, only detectable as damaged. A record that checksums
//! correctly but *contradicts the campaign identity* (wrong trial ids
//! for its chunk id, counter blocks that disagree with its own records)
//! is a different beast — not a torn write but a journal for a
//! different campaign or an encoder bug — and fails recovery loudly
//! ([`JournalError::Identity`] / [`JournalError::Corrupt`]) instead of
//! silently dropping data.
//!
//! ## Epochs
//!
//! Lease ids restart from zero in a restarted coordinator, so a chunk
//! executed against the dead incarnation could collide with a live
//! lease id. Every incarnation therefore runs under the journal's
//! monotonic epoch, stamps it into grants, and rejects completions
//! stamped with any other epoch (see [`crate::protocol`]).

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use certa_fault::wire::{
    decode_campaign_config, decode_harness_stats, decode_outcome_counts, decode_restore_stats,
    decode_trial_record, decode_verdict_counts, encode_campaign_config, encode_harness_stats,
    encode_outcome_counts, encode_restore_stats, encode_trial_record, encode_verdict_counts,
    ByteReader, ByteWriter,
};
use certa_fault::{CampaignConfig, HarnessStats, OutcomeCounts, RestoreStats, TrialChunk, TrialRecord};
use certa_fidelity::verdict::VerdictCounts;

/// File magic: distinguishes a journal from arbitrary bytes before any
/// record parsing happens.
const MAGIC: &[u8; 8] = b"CERTAWAL";

/// On-disk format version (bump on any record-format change).
const FORMAT_VERSION: u32 = 1;

const TAG_HEADER: u8 = 0;
const TAG_EPOCH: u8 = 1;
const TAG_CHUNK: u8 = 2;

/// Why the journal could not be opened or recovered.
#[derive(Debug)]
pub enum JournalError {
    /// A filesystem operation failed.
    Io(std::io::Error),
    /// The file exists but is not a journal (wrong magic or format
    /// version). Never truncated — it is probably someone else's file.
    NotAJournal(String),
    /// The journal belongs to a different campaign (workload,
    /// fingerprint, configuration, or chunk plan mismatch). Resuming
    /// would splice another experiment's trials into this one.
    Identity(String),
    /// A record checksummed correctly but is semantically impossible
    /// (trial ids that do not match the chunk plan, counter blocks that
    /// disagree with their own records). Not a torn write — refuse to
    /// guess.
    Corrupt(String),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal i/o error: {e}"),
            JournalError::NotAJournal(what) => write!(f, "not a campaign journal: {what}"),
            JournalError::Identity(what) => write!(f, "journal identity mismatch: {what}"),
            JournalError::Corrupt(what) => write!(f, "journal corrupt: {what}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// What pins a journal to one campaign: the coordinator validates all of
/// this against its freshly rebuilt session before trusting a single
/// replayed record.
#[derive(Debug)]
pub struct JournalIdentity<'a> {
    /// Workload name (resolvable the same way as [`crate::JobSpec`]).
    pub workload: &'a str,
    /// [`certa_fault::CampaignSession::fingerprint`] — covers the
    /// result-affecting configuration *and* the golden run.
    pub fingerprint: u64,
    /// The full campaign configuration (stored for `JobSpec`
    /// resolvability and debugging; the fingerprint is the authority on
    /// result-affecting fields).
    pub config: &'a CampaignConfig,
    /// The deterministic chunk plan; replayed chunk records must match
    /// it trial-id for trial-id.
    pub chunks: &'a [TrialChunk],
}

/// One journaled chunk completion: the chunk id plus the complete merge
/// delta a `Request::Complete` carried.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkRecord {
    /// Chunk id (index into the deterministic chunk plan).
    pub chunk: u32,
    /// `(trial id, record)` pairs, one per trial of the chunk.
    pub records: Vec<(u32, TrialRecord)>,
    /// Harness-counter delta attributable to this chunk.
    pub harness: HarnessStats,
    /// Restore-counter delta attributable to this chunk.
    pub restores: RestoreStats,
    /// Outcome counts over `records` — redundant by construction, stored
    /// so recovery can cross-check the decode.
    pub outcomes: OutcomeCounts,
    /// Verdict counts over `records` (all-zero when the coordinator runs
    /// without a verdict classifier).
    pub verdicts: VerdictCounts,
}

/// What [`Journal::open`] recovered from a pre-existing journal.
#[derive(Debug, Default)]
pub struct Recovery {
    /// This incarnation's epoch (already appended to the journal):
    /// `max(epochs in the valid prefix) + 1`, so 1 for a fresh journal.
    pub epoch: u64,
    /// Whether the journal existed with a valid header (i.e. this is a
    /// resume, not a first run).
    pub resumed: bool,
    /// Deduplicated completed-chunk records in journal order, validated
    /// against the [`JournalIdentity`].
    pub completed: Vec<ChunkRecord>,
    /// Duplicate chunk records dropped during replay (a crash between
    /// journal append and in-memory merge can legitimately leave one).
    pub duplicates: u64,
    /// Bytes cut from the tail (0 when the log ended cleanly).
    pub torn_tail_bytes: u64,
}

/// Test-only write-path sabotage, mirroring the campaign harness's
/// `HarnessFaultInjection`: lets the journal's own recovery be put under
/// the faults it claims to survive. Indexes are 0-based counts of
/// [`Journal::append_chunk`] calls.
#[derive(Debug, Clone, Default)]
pub struct JournalFaultInjection {
    /// On the Nth append, write only the first `bytes` bytes of the
    /// record and stop accepting appends — the process "died"
    /// mid-`write`.
    pub tear_at: Option<(u64, usize)>,
    /// On the Nth append, XOR-flip one bit at `offset % record length` —
    /// media corruption that the checksum must catch.
    pub corrupt_at: Option<(u64, usize)>,
    /// Write the Nth append twice — a crash between append and merge
    /// retried by an over-eager delivery path.
    pub duplicate_at: Option<u64>,
}

impl JournalFaultInjection {
    /// Whether any sabotage is configured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tear_at.is_none() && self.corrupt_at.is_none() && self.duplicate_at.is_none()
    }
}

/// The open, append-only journal handle.
#[derive(Debug)]
pub struct Journal {
    file: File,
    /// `append_chunk` calls so far (fault-injection indexing).
    appended: u64,
    faults: JournalFaultInjection,
    /// Set after a simulated torn write: the journal behaves as if the
    /// process died, ignoring further appends.
    torn: bool,
}

// FNV-1a 64-bit record checksums — the workspace's standard content
// hash, shared with the wire protocol's frame checksums.
use crate::protocol::fnv1a;

fn encode_chunk_payload(chunk: &ChunkRecord) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u8(TAG_CHUNK);
    w.u32(chunk.chunk);
    w.u32(u32::try_from(chunk.records.len()).expect("chunk fits in u32"));
    for (trial, record) in &chunk.records {
        w.u32(*trial);
        encode_trial_record(&mut w, record);
    }
    encode_harness_stats(&mut w, &chunk.harness);
    encode_restore_stats(&mut w, &chunk.restores);
    encode_outcome_counts(&mut w, &chunk.outcomes);
    encode_verdict_counts(&mut w, &chunk.verdicts);
    w.finish()
}

/// Frames a payload as one on-disk record.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(12 + payload.len());
    bytes.extend_from_slice(&u32::try_from(payload.len()).expect("record fits in u32").to_le_bytes());
    bytes.extend_from_slice(&fnv1a(payload).to_le_bytes());
    bytes.extend_from_slice(payload);
    bytes
}

/// One parsed record payload.
enum Payload {
    Header {
        workload: String,
        fingerprint: u64,
        config: CampaignConfig,
        chunk_count: u32,
    },
    Epoch(u64),
    Chunk(ChunkRecord),
}

/// Decodes one checksum-valid payload. `None` = undecodable (treated as
/// tail damage by the caller).
fn decode_payload(payload: &[u8]) -> Option<Payload> {
    let mut r = ByteReader::new(payload);
    let parsed = match r.u8().ok()? {
        TAG_HEADER => Payload::Header {
            workload: r.str().ok()?,
            fingerprint: r.u64().ok()?,
            config: decode_campaign_config(&mut r).ok()?,
            chunk_count: r.u32().ok()?,
        },
        TAG_EPOCH => Payload::Epoch(r.u64().ok()?),
        TAG_CHUNK => {
            let chunk = r.u32().ok()?;
            let count = r.u32().ok()? as usize;
            let mut records = Vec::with_capacity(count.min(1 << 20));
            for _ in 0..count {
                let trial = r.u32().ok()?;
                records.push((trial, decode_trial_record(&mut r).ok()?));
            }
            Payload::Chunk(ChunkRecord {
                chunk,
                records,
                harness: decode_harness_stats(&mut r).ok()?,
                restores: decode_restore_stats(&mut r).ok()?,
                outcomes: decode_outcome_counts(&mut r).ok()?,
                verdicts: decode_verdict_counts(&mut r).ok()?,
            })
        }
        _ => return None,
    };
    r.expect_end().ok()?;
    Some(parsed)
}

/// Validates a replayed chunk record against the campaign identity.
fn validate_chunk(chunk: &ChunkRecord, identity: &JournalIdentity<'_>) -> Result<(), JournalError> {
    let Some(expected) = identity.chunks.get(chunk.chunk as usize) else {
        return Err(JournalError::Identity(format!(
            "journaled chunk {} not in the {}-chunk plan",
            chunk.chunk,
            identity.chunks.len()
        )));
    };
    let mut got: Vec<u32> = chunk.records.iter().map(|(t, _)| *t).collect();
    got.sort_unstable();
    let mut want = expected.trials.clone();
    want.sort_unstable();
    if got != want {
        return Err(JournalError::Identity(format!(
            "journaled chunk {} trial ids do not match the chunk plan",
            chunk.chunk
        )));
    }
    let recomputed = OutcomeCounts::of(chunk.records.iter().map(|(_, r)| r));
    if recomputed != chunk.outcomes {
        return Err(JournalError::Corrupt(format!(
            "chunk {} outcome counts disagree with its own records",
            chunk.chunk
        )));
    }
    Ok(())
}

impl Journal {
    /// Opens (creating if absent) the journal at `path`, recovers
    /// whatever valid prefix it holds, validates it against `identity`,
    /// cuts any torn tail, and appends this incarnation's epoch record.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on filesystem failures;
    /// [`JournalError::NotAJournal`] if the file is not a journal (never
    /// truncated); [`JournalError::Identity`] /
    /// [`JournalError::Corrupt`] if the journal's valid prefix belongs
    /// to a different campaign or contradicts itself.
    pub fn open(
        path: &Path,
        identity: &JournalIdentity<'_>,
    ) -> Result<(Journal, Recovery), JournalError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        let mut recovery = Recovery::default();
        // A file too short to hold the magic is the debris of a crash
        // during creation: no record can have been written (records only
        // follow the magic), so nothing is lost by starting over.
        let fresh = bytes.len() < MAGIC.len() + 4;
        if fresh {
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(MAGIC)?;
            file.write_all(&FORMAT_VERSION.to_le_bytes())?;
        } else {
            if &bytes[..MAGIC.len()] != MAGIC {
                return Err(JournalError::NotAJournal("bad magic".into()));
            }
            let version = u32::from_le_bytes(
                bytes[MAGIC.len()..MAGIC.len() + 4].try_into().expect("4 bytes"),
            );
            if version != FORMAT_VERSION {
                return Err(JournalError::NotAJournal(format!(
                    "format version {version} != {FORMAT_VERSION}"
                )));
            }
            recovery = Self::recover(&bytes, identity)?;
            // Cut the torn tail before appending anything: everything
            // past the last valid record is untrusted.
            let valid_len = (bytes.len() as u64) - recovery.torn_tail_bytes;
            if recovery.torn_tail_bytes > 0 {
                file.set_len(valid_len)?;
            }
            file.seek(SeekFrom::Start(valid_len))?;
        }

        let mut journal = Journal {
            file,
            appended: 0,
            faults: JournalFaultInjection::default(),
            torn: false,
        };
        if !recovery.resumed {
            let mut w = ByteWriter::new();
            w.u8(TAG_HEADER);
            w.str(identity.workload);
            w.u64(identity.fingerprint);
            encode_campaign_config(&mut w, identity.config);
            w.u32(u32::try_from(identity.chunks.len()).expect("chunk count fits in u32"));
            journal.append_raw(&w.finish())?;
        }
        recovery.epoch += 1;
        let mut w = ByteWriter::new();
        w.u8(TAG_EPOCH);
        w.u64(recovery.epoch);
        journal.append_raw(&w.finish())?;
        Ok((journal, recovery))
    }

    /// Walks the record log (after the magic), returning the recovery
    /// state with `epoch` still at the *maximum seen* (the caller bumps
    /// it).
    fn recover(bytes: &[u8], identity: &JournalIdentity<'_>) -> Result<Recovery, JournalError> {
        let mut recovery = Recovery::default();
        let mut offset = MAGIC.len() + 4;
        let mut seen = vec![false; identity.chunks.len()];
        let mut first = true;
        while offset < bytes.len() {
            let Some(rest) = bytes.get(offset + 12..) else {
                break; // truncated record header: torn tail
            };
            let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes"))
                as usize;
            let checksum =
                u64::from_le_bytes(bytes[offset + 4..offset + 12].try_into().expect("8 bytes"));
            let Some(payload) = rest.get(..len) else {
                break; // truncated payload: torn tail
            };
            if fnv1a(payload) != checksum {
                break; // bit-corrupted record: untrusted from here on
            }
            let Some(parsed) = decode_payload(payload) else {
                break; // checksum collision on garbage: still untrusted
            };
            match parsed {
                Payload::Header {
                    workload,
                    fingerprint,
                    config,
                    chunk_count,
                } => {
                    if !first {
                        return Err(JournalError::Corrupt("second header record".into()));
                    }
                    if workload != identity.workload {
                        return Err(JournalError::Identity(format!(
                            "journal is for workload {workload:?}, campaign is {:?}",
                            identity.workload
                        )));
                    }
                    if fingerprint != identity.fingerprint {
                        return Err(JournalError::Identity(format!(
                            "journal fingerprint {fingerprint:#x} != session {:#x}",
                            identity.fingerprint
                        )));
                    }
                    if chunk_count as usize != identity.chunks.len() {
                        return Err(JournalError::Identity(format!(
                            "journal has {chunk_count} chunks, plan has {}",
                            identity.chunks.len()
                        )));
                    }
                    // The fingerprint covers every result-affecting
                    // config field and the golden run; the stored config
                    // is informational (threads may legitimately differ
                    // across a restart on different hardware).
                    let _ = config;
                    recovery.resumed = true;
                }
                Payload::Epoch(_) if first => {
                    return Err(JournalError::Corrupt(
                        "epoch record before the header".into(),
                    ))
                }
                Payload::Epoch(epoch) => recovery.epoch = recovery.epoch.max(epoch),
                Payload::Chunk(_) if first => {
                    return Err(JournalError::Corrupt(
                        "chunk record before the header".into(),
                    ));
                }
                Payload::Chunk(chunk) => {
                    validate_chunk(&chunk, identity)?;
                    if seen[chunk.chunk as usize] {
                        recovery.duplicates += 1;
                    } else {
                        seen[chunk.chunk as usize] = true;
                        recovery.completed.push(chunk);
                    }
                }
            }
            first = false;
            offset += 12 + len;
        }
        recovery.torn_tail_bytes = (bytes.len() - offset) as u64;
        Ok(recovery)
    }

    /// Appends one framed record, honoring fault injection, and syncs it
    /// to disk. This is the write-ahead barrier: when it returns, the
    /// record survives process death.
    fn append_raw(&mut self, payload: &[u8]) -> std::io::Result<()> {
        if self.torn {
            // A simulated torn write already "killed" this process; the
            // journal swallows everything after it, like the real crash
            // would.
            return Ok(());
        }
        let mut record = frame(payload);
        let n = self.appended;
        if let Some((at, offset)) = self.faults.corrupt_at {
            if at == n {
                let len = record.len();
                record[offset % len] ^= 0x01;
            }
        }
        let mut cut = record.len();
        if let Some((at, bytes)) = self.faults.tear_at {
            if at == n {
                cut = bytes.min(record.len());
                self.torn = true;
            }
        }
        self.file.write_all(&record[..cut])?;
        if !self.torn {
            if let Some(at) = self.faults.duplicate_at {
                if at == n {
                    self.file.write_all(&record)?;
                }
            }
        }
        self.file.sync_data()
    }

    /// Journals one Fresh chunk completion. Call *before* merging the
    /// delta into coordinator state; when this returns, the completion
    /// is durable.
    ///
    /// # Errors
    ///
    /// Propagates write/sync failures — the caller must treat them as
    /// fatal (merging an unjournaled delta would break the write-ahead
    /// invariant).
    pub fn append_chunk(&mut self, chunk: &ChunkRecord) -> std::io::Result<()> {
        let payload = encode_chunk_payload(chunk);
        // `appended` counts chunk appends only — header/epoch records
        // (written at open, before any sabotage is installed) never
        // consume a fault index.
        let result = self.append_raw(&payload);
        self.appended += 1;
        result
    }

    /// Installs test-only write-path sabotage.
    pub fn set_faults(&mut self, faults: JournalFaultInjection) {
        self.faults = faults;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certa_fault::{TrialResult, TrialStatus};
    use certa_sim::Outcome;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "certa-journal-test-{}-{tag}-{seq}.wal",
            std::process::id()
        ))
    }

    fn record(trial: u32) -> TrialRecord {
        TrialRecord {
            status: TrialStatus::Completed(TrialResult {
                outcome: Outcome::Halted,
                output: Some(vec![trial as u8, 1, 2]),
                instructions: 100 + u64::from(trial),
                injected: 1,
            }),
            retries: 0,
        }
    }

    fn chunk_record(chunk: u32, trials: &[u32]) -> ChunkRecord {
        let records: Vec<(u32, TrialRecord)> =
            trials.iter().map(|&t| (t, record(t))).collect();
        let outcomes = OutcomeCounts::of(records.iter().map(|(_, r)| r));
        ChunkRecord {
            chunk,
            records,
            harness: HarnessStats::default(),
            restores: RestoreStats {
                dirty_page: 3,
                ..RestoreStats::default()
            },
            outcomes,
            verdicts: VerdictCounts::default(),
        }
    }

    struct Fixture {
        config: CampaignConfig,
        chunks: Vec<TrialChunk>,
    }

    impl Fixture {
        fn new() -> Self {
            Fixture {
                config: CampaignConfig {
                    trials: 6,
                    ..CampaignConfig::default()
                },
                chunks: vec![
                    TrialChunk {
                        id: 0,
                        trials: vec![0, 1],
                    },
                    TrialChunk {
                        id: 1,
                        trials: vec![2, 3],
                    },
                    TrialChunk {
                        id: 2,
                        trials: vec![4, 5],
                    },
                ],
            }
        }

        fn identity(&self) -> JournalIdentity<'_> {
            JournalIdentity {
                workload: "sum",
                fingerprint: 0xFEED_F00D,
                config: &self.config,
                chunks: &self.chunks,
            }
        }
    }

    #[test]
    fn fresh_open_then_resume_bumps_epoch_and_replays() {
        let fx = Fixture::new();
        let path = temp_path("resume");
        let (mut journal, recovery) = Journal::open(&path, &fx.identity()).expect("fresh open");
        assert_eq!(recovery.epoch, 1);
        assert!(!recovery.resumed);
        assert!(recovery.completed.is_empty());
        journal.append_chunk(&chunk_record(1, &[2, 3])).expect("append");
        journal.append_chunk(&chunk_record(0, &[0, 1])).expect("append");
        drop(journal);

        let (_journal, recovery) = Journal::open(&path, &fx.identity()).expect("resume");
        assert_eq!(recovery.epoch, 2);
        assert!(recovery.resumed);
        assert_eq!(recovery.duplicates, 0);
        assert_eq!(recovery.torn_tail_bytes, 0);
        // Journal order, not chunk order: replay is order-invariant.
        let ids: Vec<u32> = recovery.completed.iter().map(|c| c.chunk).collect();
        assert_eq!(ids, vec![1, 0]);
        assert_eq!(recovery.completed[0], chunk_record(1, &[2, 3]));
        drop(_journal);

        let (_journal, recovery) = Journal::open(&path, &fx.identity()).expect("resume again");
        assert_eq!(recovery.epoch, 3, "epochs are monotonic across opens");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_write_is_cut_exactly() {
        let fx = Fixture::new();
        let path = temp_path("torn");
        let (mut journal, _) = Journal::open(&path, &fx.identity()).expect("open");
        journal.append_chunk(&chunk_record(0, &[0, 1])).expect("append");
        journal.set_faults(JournalFaultInjection {
            tear_at: Some((1, 17)),
            ..JournalFaultInjection::default()
        });
        journal.append_chunk(&chunk_record(1, &[2, 3])).expect("torn append");
        // The torn journal swallows later appends, like the dead process
        // it simulates.
        journal.append_chunk(&chunk_record(2, &[4, 5])).expect("swallowed");
        drop(journal);

        let (_journal, recovery) = Journal::open(&path, &fx.identity()).expect("recover");
        assert_eq!(recovery.torn_tail_bytes, 17, "exactly the torn bytes are cut");
        let ids: Vec<u32> = recovery.completed.iter().map(|c| c.chunk).collect();
        assert_eq!(ids, vec![0], "only the intact record survives");
        drop(_journal);
        // The cut is durable: a third open sees a clean log.
        let (_journal, recovery) = Journal::open(&path, &fx.identity()).expect("reopen");
        assert_eq!(recovery.torn_tail_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_record_is_rejected_and_cut() {
        let fx = Fixture::new();
        let path = temp_path("corrupt");
        let (mut journal, _) = Journal::open(&path, &fx.identity()).expect("open");
        journal.append_chunk(&chunk_record(0, &[0, 1])).expect("append");
        journal.set_faults(JournalFaultInjection {
            corrupt_at: Some((1, 40)),
            ..JournalFaultInjection::default()
        });
        journal.append_chunk(&chunk_record(1, &[2, 3])).expect("corrupted");
        // A later good record is *also* discarded: everything after the
        // first invalid record is untrusted.
        journal.set_faults(JournalFaultInjection::default());
        journal.append_chunk(&chunk_record(2, &[4, 5])).expect("after corruption");
        drop(journal);

        let (_journal, recovery) = Journal::open(&path, &fx.identity()).expect("recover");
        let ids: Vec<u32> = recovery.completed.iter().map(|c| c.chunk).collect();
        assert_eq!(ids, vec![0]);
        assert!(recovery.torn_tail_bytes > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn duplicated_record_is_deduplicated() {
        let fx = Fixture::new();
        let path = temp_path("dup");
        let (mut journal, _) = Journal::open(&path, &fx.identity()).expect("open");
        journal.set_faults(JournalFaultInjection {
            duplicate_at: Some(0),
            ..JournalFaultInjection::default()
        });
        journal.append_chunk(&chunk_record(0, &[0, 1])).expect("append twice");
        journal.set_faults(JournalFaultInjection::default());
        journal.append_chunk(&chunk_record(1, &[2, 3])).expect("append");
        drop(journal);

        let (_journal, recovery) = Journal::open(&path, &fx.identity()).expect("recover");
        assert_eq!(recovery.duplicates, 1);
        let ids: Vec<u32> = recovery.completed.iter().map(|c| c.chunk).collect();
        assert_eq!(ids, vec![0, 1], "each chunk replays exactly once");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn identity_mismatches_fail_loudly_not_silently() {
        let fx = Fixture::new();
        let path = temp_path("identity");
        let (mut journal, _) = Journal::open(&path, &fx.identity()).expect("open");
        journal.append_chunk(&chunk_record(0, &[0, 1])).expect("append");
        drop(journal);

        let mut other = Fixture::new();
        let wrong_fp = JournalIdentity {
            fingerprint: 0xBAD,
            ..fx.identity()
        };
        assert!(matches!(
            Journal::open(&path, &wrong_fp),
            Err(JournalError::Identity(_))
        ));
        let wrong_workload = JournalIdentity {
            workload: "mpeg",
            ..fx.identity()
        };
        assert!(matches!(
            Journal::open(&path, &wrong_workload),
            Err(JournalError::Identity(_))
        ));
        other.chunks.pop();
        assert!(matches!(
            Journal::open(&path, &other.identity()),
            Err(JournalError::Identity(_))
        ));
        // The journal is never modified by a failed open.
        let (_journal, recovery) = Journal::open(&path, &fx.identity()).expect("still valid");
        assert_eq!(recovery.completed.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chunk_plan_mismatch_is_identity_error_not_tail_cut() {
        let fx = Fixture::new();
        let path = temp_path("plan");
        let (mut journal, _) = Journal::open(&path, &fx.identity()).expect("open");
        journal.append_chunk(&chunk_record(0, &[0, 1])).expect("append");
        drop(journal);

        // Same fingerprint, but a chunk plan whose chunk 0 holds other
        // trials: the checksum-valid record contradicts the plan.
        let mut other = Fixture::new();
        other.chunks[0].trials = vec![0, 1, 2];
        other.chunks[1].trials = vec![3];
        assert!(matches!(
            Journal::open(&path, &other.identity()),
            Err(JournalError::Identity(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn non_journal_files_are_never_truncated() {
        let path = temp_path("notajournal");
        std::fs::write(&path, b"precious data that is definitely not a journal").unwrap();
        let fx = Fixture::new();
        assert!(matches!(
            Journal::open(&path, &fx.identity()),
            Err(JournalError::NotAJournal(_))
        ));
        assert_eq!(
            std::fs::read(&path).unwrap(),
            b"precious data that is definitely not a journal"
        );
        std::fs::remove_file(&path).ok();
    }
}

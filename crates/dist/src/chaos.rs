//! Deterministic network-fault injection for the campaign wire.
//!
//! The paper's premise — fault tolerance must be measured, not assumed —
//! applies to our own transport as much as to guest programs. This
//! module is the network counterpart of `JournalFaultInjection` (torn /
//! corrupted / duplicated journal records) and `WorkerSabotage`
//! (abandoned leases): a seeded, schedule-driven wrapper around
//! [`TcpStream`] that injects the full menagerie of wire faults at frame
//! granularity:
//!
//! * **Reset** — a random prefix of the frame is delivered, then the
//!   connection dies (`ECONNRESET` locally, EOF/reset at the peer);
//! * **Stall** — a partial frame is delivered, then the stream goes
//!   silent for [`ChaosConfig::stall_for`] before dying, so the peer
//!   sits blocked mid-frame until its read timeout fires;
//! * **CorruptPayload** — one random bit beyond the length prefix is
//!   flipped; the frame is otherwise delivered in full and the sender
//!   never learns (exactly like a flaky NIC);
//! * **CorruptLength** — one random bit of the `u32` length prefix is
//!   flipped, driving the receiver toward oversize rejection, a
//!   checksum mismatch on a short read, or a mid-frame timeout;
//! * **Duplicate** — the frame is delivered twice, which the v3 framing
//!   layer must absorb via sequence numbers or the strict
//!   request/response pairing desynchronises;
//! * **Delay** — the frame is held for a bounded random time, stressing
//!   timeout calibration without killing anything.
//!
//! Faults are chosen by a per-connection [`SmallRng`] seeded from
//! [`ChaosConfig::seed`] and the connection index, so a chaos schedule
//! is reproducible run-to-run; [`ChaosConfig::force`] pins one fault to
//! one global frame index for surgical unit tests (mirroring
//! `JournalFaultInjection`'s `*_at` fields). Every injection is counted
//! in shared [`ChaosCounts`], which soak tests assert are nonzero — the
//! proof the chaos actually fired.
//!
//! [`NetStream`] is the either/or handle the protocol paths use: a plain
//! socket in production, a chaos-wrapped one under test, with identical
//! timeout/shutdown plumbing.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::protocol::fnv1a;

/// One injectable wire fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosFault {
    /// Deliver a random prefix of the frame, then kill the connection.
    Reset,
    /// Deliver a partial frame, go silent for [`ChaosConfig::stall_for`],
    /// then kill the connection.
    Stall,
    /// Flip one random bit past the length prefix; deliver in full.
    CorruptPayload,
    /// Flip one random bit inside the `u32` length prefix; deliver in
    /// full.
    CorruptLength,
    /// Deliver the frame twice.
    Duplicate,
    /// Hold the frame for a bounded random delay, then deliver intact.
    Delay,
}

/// A seeded chaos schedule: per-mille injection rates per frame write,
/// rolled at most one fault per frame.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Root seed; each wrapped connection derives its own stream from
    /// this and its connection index, so schedules replay exactly.
    pub seed: u64,
    /// Per-mille chance a frame write dies mid-frame with a reset.
    pub reset_per_mille: u32,
    /// Per-mille chance a frame write delivers a partial frame then
    /// stalls.
    pub stall_per_mille: u32,
    /// Per-mille chance of a single-bit payload flip.
    pub corrupt_payload_per_mille: u32,
    /// Per-mille chance of a single-bit length-prefix flip.
    pub corrupt_length_per_mille: u32,
    /// Per-mille chance a frame is delivered twice.
    pub duplicate_per_mille: u32,
    /// Per-mille chance a frame is delayed (but delivered intact).
    pub delay_per_mille: u32,
    /// Upper bound on an injected delay.
    pub max_delay: Duration,
    /// How long a stalled connection stays silent before dying; pick it
    /// above the victims' read timeouts so stalls actually exercise
    /// them.
    pub stall_for: Duration,
    /// Pin exactly one fault to one global frame index (counted across
    /// all connections of this [`Chaos`], in write order) and disable
    /// all random faults — the surgical mode unit tests use.
    pub force: Option<(u64, ChaosFault)>,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0,
            reset_per_mille: 0,
            stall_per_mille: 0,
            corrupt_payload_per_mille: 0,
            corrupt_length_per_mille: 0,
            duplicate_per_mille: 0,
            delay_per_mille: 0,
            max_delay: Duration::from_millis(5),
            stall_for: Duration::from_millis(250),
            force: None,
        }
    }
}

impl ChaosConfig {
    /// The soak preset: every fault class live at rates aggressive
    /// enough that a full campaign sees each one fire, yet survivable
    /// enough that retry budgets converge.
    #[must_use]
    pub fn adversarial(seed: u64) -> Self {
        ChaosConfig {
            seed,
            reset_per_mille: 25,
            stall_per_mille: 12,
            corrupt_payload_per_mille: 30,
            corrupt_length_per_mille: 15,
            duplicate_per_mille: 40,
            delay_per_mille: 80,
            max_delay: Duration::from_millis(5),
            stall_for: Duration::from_millis(250),
            force: None,
        }
    }
}

/// Injection counters for one [`Chaos`] instance, snapshot via
/// [`Chaos::counts`]. Merged across coordinator and workers, these are
/// the "chaos actually fired" evidence the soak asserts on and
/// `BENCH_dist.json` persists.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosCounts {
    /// Mid-frame connection resets injected.
    pub resets: u64,
    /// Partial-write stalls injected.
    pub stalls: u64,
    /// Payload bits flipped.
    pub payload_corruptions: u64,
    /// Length-prefix bits flipped.
    pub length_corruptions: u64,
    /// Frames delivered twice.
    pub duplicates: u64,
    /// Frames delayed.
    pub delays: u64,
}

impl ChaosCounts {
    /// Total faults injected (delays included — they are observable as
    /// latency even though no bytes are harmed).
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.resets
            + self.stalls
            + self.payload_corruptions
            + self.length_corruptions
            + self.duplicates
            + self.delays
    }

    /// Accumulates another instance's counters into this one.
    pub fn merge(&mut self, other: &ChaosCounts) {
        self.resets += other.resets;
        self.stalls += other.stalls;
        self.payload_corruptions += other.payload_corruptions;
        self.length_corruptions += other.length_corruptions;
        self.duplicates += other.duplicates;
        self.delays += other.delays;
    }
}

/// One fault-injection domain: a schedule plus shared counters. Wrap any
/// number of sockets (either end, either role); they share the frame
/// index space and the counters but draw independent, reproducible
/// random streams.
#[derive(Debug)]
pub struct Chaos {
    config: ChaosConfig,
    conns: AtomicU64,
    frames: AtomicU64,
    resets: AtomicU64,
    stalls: AtomicU64,
    payload_corruptions: AtomicU64,
    length_corruptions: AtomicU64,
    duplicates: AtomicU64,
    delays: AtomicU64,
}

impl Chaos {
    /// A fresh injection domain under `config`.
    #[must_use]
    pub fn new(config: ChaosConfig) -> Arc<Chaos> {
        Arc::new(Chaos {
            config,
            conns: AtomicU64::new(0),
            frames: AtomicU64::new(0),
            resets: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
            payload_corruptions: AtomicU64::new(0),
            length_corruptions: AtomicU64::new(0),
            duplicates: AtomicU64::new(0),
            delays: AtomicU64::new(0),
        })
    }

    /// Wraps a socket in this domain. The wrapper derives its random
    /// stream from the domain seed and a per-domain connection index, so
    /// wrapping order (which is deterministic per side) fixes the
    /// schedule.
    #[must_use]
    pub fn wrap(self: &Arc<Chaos>, stream: TcpStream) -> ChaosStream {
        let conn = self.conns.fetch_add(1, Ordering::Relaxed);
        let mut key = Vec::with_capacity(16);
        key.extend_from_slice(&self.config.seed.to_le_bytes());
        key.extend_from_slice(&conn.to_le_bytes());
        ChaosStream {
            inner: stream,
            chaos: Arc::clone(self),
            rng: SmallRng::seed_from_u64(fnv1a(&key)),
            dead: false,
        }
    }

    /// Snapshot of the injection counters.
    #[must_use]
    pub fn counts(&self) -> ChaosCounts {
        ChaosCounts {
            resets: self.resets.load(Ordering::Relaxed),
            stalls: self.stalls.load(Ordering::Relaxed),
            payload_corruptions: self.payload_corruptions.load(Ordering::Relaxed),
            length_corruptions: self.length_corruptions.load(Ordering::Relaxed),
            duplicates: self.duplicates.load(Ordering::Relaxed),
            delays: self.delays.load(Ordering::Relaxed),
        }
    }
}

/// A [`TcpStream`] with a fault schedule on its write path (and bounded
/// delays on reads). One `write` call is treated as one frame — which
/// matches [`crate::FrameCodec::write_frame`]'s single-`write_all`
/// discipline exactly.
#[derive(Debug)]
pub struct ChaosStream {
    inner: TcpStream,
    chaos: Arc<Chaos>,
    rng: SmallRng,
    dead: bool,
}

impl ChaosStream {
    /// The underlying socket, for timeout/shutdown plumbing.
    #[must_use]
    pub fn socket(&self) -> &TcpStream {
        &self.inner
    }

    fn pick_fault(&mut self, frame: u64) -> Option<ChaosFault> {
        if let Some((at, fault)) = self.chaos.config.force {
            return (frame == at).then_some(fault);
        }
        let c = &self.chaos.config;
        let roll = self.rng.gen_range(0..1000u32);
        let mut acc = 0u32;
        for (rate, fault) in [
            (c.reset_per_mille, ChaosFault::Reset),
            (c.stall_per_mille, ChaosFault::Stall),
            (c.corrupt_payload_per_mille, ChaosFault::CorruptPayload),
            (c.corrupt_length_per_mille, ChaosFault::CorruptLength),
            (c.duplicate_per_mille, ChaosFault::Duplicate),
            (c.delay_per_mille, ChaosFault::Delay),
        ] {
            acc += rate;
            if roll < acc {
                return Some(fault);
            }
        }
        None
    }

    /// Kills the socket and marks this wrapper dead; later I/O returns
    /// `NotConnected` rather than touching the corpse.
    fn kill(&mut self) {
        let _ = self.inner.shutdown(Shutdown::Both);
        self.dead = true;
    }
}

impl Write for ChaosStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.dead {
            return Err(std::io::Error::new(
                std::io::ErrorKind::NotConnected,
                "chaos: connection already killed",
            ));
        }
        if buf.is_empty() {
            return Ok(0);
        }
        let frame = self.chaos.frames.fetch_add(1, Ordering::Relaxed);
        match self.pick_fault(frame) {
            None => {
                self.inner.write_all(buf)?;
                Ok(buf.len())
            }
            Some(ChaosFault::Reset) => {
                let cut = self.rng.gen_range(0..buf.len());
                let _ = self.inner.write_all(&buf[..cut]);
                let _ = self.inner.flush();
                self.kill();
                self.chaos.resets.fetch_add(1, Ordering::Relaxed);
                Err(std::io::Error::new(
                    std::io::ErrorKind::ConnectionReset,
                    "chaos: injected mid-frame connection reset",
                ))
            }
            Some(ChaosFault::Stall) => {
                let cut = self.rng.gen_range(1..buf.len().max(2));
                let _ = self.inner.write_all(&buf[..cut.min(buf.len())]);
                let _ = self.inner.flush();
                std::thread::sleep(self.chaos.config.stall_for);
                self.kill();
                self.chaos.stalls.fetch_add(1, Ordering::Relaxed);
                Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "chaos: injected partial-write stall",
                ))
            }
            Some(ChaosFault::CorruptPayload) => {
                let mut framed = buf.to_vec();
                // Flip past the length prefix: sequence number, checksum,
                // and payload bits are all fair game — each must be
                // caught by the frame checksum.
                let lo = 4.min(framed.len() - 1);
                let idx = self.rng.gen_range(lo..framed.len());
                let bit = self.rng.gen_range(0..8u32);
                framed[idx] ^= 1 << bit;
                self.chaos
                    .payload_corruptions
                    .fetch_add(1, Ordering::Relaxed);
                self.inner.write_all(&framed)?;
                Ok(buf.len())
            }
            Some(ChaosFault::CorruptLength) => {
                let mut framed = buf.to_vec();
                let idx = self.rng.gen_range(0..4.min(framed.len()));
                let bit = self.rng.gen_range(0..8u32);
                framed[idx] ^= 1 << bit;
                self.chaos
                    .length_corruptions
                    .fetch_add(1, Ordering::Relaxed);
                self.inner.write_all(&framed)?;
                Ok(buf.len())
            }
            Some(ChaosFault::Duplicate) => {
                self.inner.write_all(buf)?;
                self.inner.write_all(buf)?;
                self.chaos.duplicates.fetch_add(1, Ordering::Relaxed);
                Ok(buf.len())
            }
            Some(ChaosFault::Delay) => {
                let cap = self.chaos.config.max_delay.as_millis().max(1);
                let ms = self.rng.gen_range(0..u64::try_from(cap).unwrap_or(u64::MAX));
                std::thread::sleep(Duration::from_millis(ms));
                self.chaos.delays.fetch_add(1, Ordering::Relaxed);
                self.inner.write_all(buf)?;
                Ok(buf.len())
            }
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if self.dead {
            return Ok(());
        }
        self.inner.flush()
    }
}

impl Read for ChaosStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.dead {
            return Err(std::io::Error::new(
                std::io::ErrorKind::NotConnected,
                "chaos: connection already killed",
            ));
        }
        // Reads only suffer delays: the interesting read-side faults
        // (truncation, garbage, silence) are what the *peer's* write
        // faults produce.
        if self.chaos.config.force.is_none() && self.chaos.config.delay_per_mille > 0 {
            let roll = self.rng.gen_range(0..1000u32);
            if roll < self.chaos.config.delay_per_mille {
                let cap = self.chaos.config.max_delay.as_millis().max(1);
                let ms = self.rng.gen_range(0..u64::try_from(cap).unwrap_or(u64::MAX));
                std::thread::sleep(Duration::from_millis(ms));
                self.chaos.delays.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.inner.read(buf)
    }
}

/// A [`TcpListener`] whose accepted connections come back pre-wrapped in
/// a [`Chaos`] domain.
#[derive(Debug)]
pub struct ChaosListener {
    inner: TcpListener,
    chaos: Arc<Chaos>,
}

impl ChaosListener {
    /// Binds a listener whose accepted sockets inject `chaos`.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(addr: impl ToSocketAddrs, chaos: Arc<Chaos>) -> std::io::Result<ChaosListener> {
        Ok(ChaosListener {
            inner: TcpListener::bind(addr)?,
            chaos,
        })
    }

    /// Accepts one connection, wrapped.
    ///
    /// # Errors
    ///
    /// Propagates accept failures.
    pub fn accept(&self) -> std::io::Result<(NetStream, SocketAddr)> {
        let (stream, addr) = self.inner.accept()?;
        Ok((NetStream::Chaos(self.chaos.wrap(stream)), addr))
    }

    /// The bound address.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    /// The injection domain accepted sockets share.
    #[must_use]
    pub fn chaos(&self) -> &Arc<Chaos> {
        &self.chaos
    }
}

/// Either a plain socket or a chaos-wrapped one — the stream type every
/// protocol path reads and writes, so fault injection can slot under any
/// coordinator or worker connection without a second code path.
#[derive(Debug)]
pub enum NetStream {
    /// Production: faults come only from the real network.
    Plain(TcpStream),
    /// Test: faults come from the wrapped schedule too.
    Chaos(ChaosStream),
}

impl NetStream {
    fn socket(&self) -> &TcpStream {
        match self {
            NetStream::Plain(stream) => stream,
            NetStream::Chaos(stream) => stream.socket(),
        }
    }

    /// Sets the socket read timeout.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.socket().set_read_timeout(timeout)
    }

    /// Sets the socket write timeout.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn set_write_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.socket().set_write_timeout(timeout)
    }

    /// Disables (or re-enables) Nagle's algorithm.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn set_nodelay(&self, nodelay: bool) -> std::io::Result<()> {
        self.socket().set_nodelay(nodelay)
    }

    /// Peeks at pending bytes without consuming them. Liveness probing
    /// only — no faults are injected here even on a chaos stream.
    ///
    /// # Errors
    ///
    /// Propagates socket errors (including read timeouts).
    pub fn peek(&self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.socket().peek(buf)
    }

    /// Shuts the connection down.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn shutdown(&self, how: Shutdown) -> std::io::Result<()> {
        self.socket().shutdown(how)
    }
}

impl Read for NetStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            NetStream::Plain(stream) => stream.read(buf),
            NetStream::Chaos(stream) => stream.read(buf),
        }
    }
}

impl Write for NetStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            NetStream::Plain(stream) => stream.write(buf),
            NetStream::Chaos(stream) => stream.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            NetStream::Plain(stream) => stream.flush(),
            NetStream::Chaos(stream) => stream.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{FrameCodec, FrameError};
    use std::net::TcpListener;

    /// A connected loopback socket pair, writer wrapped in `chaos`.
    fn pair(chaos: &Arc<Chaos>) -> (ChaosStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        server
            .set_read_timeout(Some(Duration::from_secs(2)))
            .expect("timeout");
        (chaos.wrap(client), server)
    }

    fn force(fault: ChaosFault, at: u64) -> Arc<Chaos> {
        Chaos::new(ChaosConfig {
            seed: 7,
            force: Some((at, fault)),
            stall_for: Duration::from_millis(20),
            ..ChaosConfig::default()
        })
    }

    #[test]
    fn forced_reset_kills_the_connection_mid_frame() {
        let chaos = force(ChaosFault::Reset, 0);
        let (mut tx, mut rx) = pair(&chaos);
        let mut codec = FrameCodec::new();
        let err = codec.write_frame(&mut tx, b"doomed frame").unwrap_err();
        assert!(matches!(err, FrameError::Io(_)), "{err}");
        // The receiver sees a truncated stream: either EOF inside the
        // header or inside the payload.
        let err = FrameCodec::new().read_frame(&mut rx).unwrap_err();
        assert!(matches!(err, FrameError::Io(_)), "{err}");
        assert_eq!(chaos.counts().resets, 1);
        assert_eq!(chaos.counts().injected(), 1);
        // The wrapper is dead from here on.
        let err = codec.write_frame(&mut tx, b"after death").unwrap_err();
        assert!(matches!(err, FrameError::Io(_)), "{err}");
    }

    #[test]
    fn forced_payload_corruption_is_caught_by_the_checksum() {
        let chaos = force(ChaosFault::CorruptPayload, 0);
        let (mut tx, mut rx) = pair(&chaos);
        // The sender believes the write succeeded — like a real network.
        FrameCodec::new()
            .write_frame(&mut tx, b"soon to be flipped")
            .expect("sender never learns");
        let err = FrameCodec::new().read_frame(&mut rx).unwrap_err();
        assert!(matches!(err, FrameError::Corrupt(_)), "{err}");
        assert_eq!(chaos.counts().payload_corruptions, 1);
    }

    #[test]
    fn forced_length_corruption_never_yields_a_frame() {
        // Whatever the bit flip does to the length — oversize, shorter,
        // longer-but-capped — the receiver must end in a typed error,
        // never a successful frame, and never an unbounded allocation.
        for seed in 0..4u64 {
            let chaos = Chaos::new(ChaosConfig {
                seed,
                force: Some((0, ChaosFault::CorruptLength)),
                ..ChaosConfig::default()
            });
            let (mut tx, mut rx) = pair(&chaos);
            rx.set_read_timeout(Some(Duration::from_millis(200)))
                .expect("timeout");
            FrameCodec::new()
                .write_frame(&mut tx, b"length under attack")
                .expect("sender never learns");
            drop(tx);
            let err = FrameCodec::new().read_frame(&mut rx).unwrap_err();
            assert!(
                matches!(err, FrameError::Corrupt(_) | FrameError::Io(_)),
                "seed {seed}: {err}"
            );
            assert_eq!(chaos.counts().length_corruptions, 1);
        }
    }

    #[test]
    fn forced_duplicate_is_absorbed_by_sequence_numbers() {
        let chaos = force(ChaosFault::Duplicate, 0);
        let (mut tx, mut rx) = pair(&chaos);
        let mut codec = FrameCodec::new();
        codec.write_frame(&mut tx, b"delivered twice").expect("dup");
        codec.write_frame(&mut tx, b"delivered once").expect("ok");
        let mut reader = FrameCodec::new();
        assert_eq!(reader.read_frame(&mut rx).unwrap(), b"delivered twice");
        assert_eq!(reader.read_frame(&mut rx).unwrap(), b"delivered once");
        assert_eq!(reader.duplicates_dropped, 1);
        assert_eq!(chaos.counts().duplicates, 1);
    }

    #[test]
    fn forced_stall_trips_the_peer_read_timeout() {
        let chaos = force(ChaosFault::Stall, 0);
        let (mut tx, mut rx) = pair(&chaos);
        rx.set_read_timeout(Some(Duration::from_millis(5)))
            .expect("timeout");
        let writer = std::thread::spawn(move || {
            FrameCodec::new().write_frame(&mut tx, b"stalls mid-frame")
        });
        let err = FrameCodec::new().read_frame(&mut rx).unwrap_err();
        match err {
            FrameError::Io(io) => assert!(
                matches!(
                    io.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ),
                "{io}"
            ),
            other => panic!("expected timeout, got {other}"),
        }
        assert!(writer.join().expect("join").is_err());
        assert_eq!(chaos.counts().stalls, 1);
    }

    #[test]
    fn forced_delay_delivers_the_frame_intact() {
        let chaos = Chaos::new(ChaosConfig {
            seed: 3,
            force: Some((0, ChaosFault::Delay)),
            max_delay: Duration::from_millis(10),
            ..ChaosConfig::default()
        });
        let (mut tx, mut rx) = pair(&chaos);
        FrameCodec::new()
            .write_frame(&mut tx, b"late but whole")
            .expect("delayed write");
        assert_eq!(
            FrameCodec::new().read_frame(&mut rx).unwrap(),
            b"late but whole"
        );
        assert_eq!(chaos.counts().delays, 1);
    }

    #[test]
    fn schedules_replay_deterministically() {
        // Same seed, same wrapping order, same write sizes → identical
        // injection counts.
        let run = |seed: u64| {
            let chaos = Chaos::new(ChaosConfig::adversarial(seed));
            for _ in 0..4 {
                let (mut tx, rx) = pair(&chaos);
                let mut codec = FrameCodec::new();
                for i in 0..200u32 {
                    let payload = vec![i as u8; 64];
                    if codec.write_frame(&mut tx, &payload).is_err() {
                        break;
                    }
                }
                drop(rx);
            }
            chaos.counts()
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b);
        assert!(a.injected() > 0, "adversarial schedule never fired: {a:?}");
    }
}

//! The lease state machine: pure, millisecond-clocked, fully unit-tested
//! in isolation from any socket.
//!
//! Every chunk moves `Queued → Leased → Completed`, with one back edge:
//! a leased chunk whose expiry passes without a heartbeat re-queues
//! (`Leased → Queued`) and its redelivery count increments. Completion
//! wins every race — a chunk completed by *anyone* is done, even if its
//! lease had already expired and the chunk was re-leased elsewhere,
//! because chunk execution is idempotent (deterministic trial ids and
//! seeds). A second completion of the same chunk is **stale**: detected,
//! counted, and dropped, never double-merged into the global stats.
//!
//! There is also a direct `Queued → Completed` edge with no lease at
//! all: journal replay. A resumed coordinator marks every journaled
//! chunk completed before serving its first request, which re-queues
//! exactly the chunks that have no durable record (see the `journal`
//! module).
//!
//! Time is an explicit `now_ms` parameter (the coordinator passes a
//! monotonic elapsed-milliseconds reading), which is what makes expiry
//! deterministic under test.

/// One chunk's place in the lease lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkState {
    /// Waiting to be leased (initial state, and again after expiry).
    Queued,
    /// Leased out, expiring unless heartbeat-renewed.
    Leased {
        /// The current lease id.
        lease: u64,
        /// Worker holding the lease (ledger attribution).
        worker: u32,
        /// Expiry instant, in the coordinator's elapsed-milliseconds
        /// clock.
        expires_at_ms: u64,
    },
    /// Done. Terminal.
    Completed {
        /// Worker whose completion was accepted.
        worker: u32,
    },
}

/// What [`LeaseTable::complete`] decided about a delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completion {
    /// First completion of the chunk: accept and merge the payload.
    Fresh,
    /// The chunk was already completed: drop the payload.
    Stale,
}

/// One chunk's lease-tracking entry.
#[derive(Debug)]
struct ChunkEntry {
    trials: Vec<u32>,
    state: ChunkState,
    redeliveries: u32,
}

/// The coordinator's chunk queue plus lease bookkeeping.
#[derive(Debug)]
pub struct LeaseTable {
    chunks: Vec<ChunkEntry>,
    next_lease: u64,
    ttl_ms: u64,
    completed: usize,
    total_redeliveries: u64,
}

impl LeaseTable {
    /// A table over `chunks` (indexed by position = chunk id) with the
    /// given lease time-to-live.
    #[must_use]
    pub fn new(chunks: Vec<Vec<u32>>, ttl_ms: u64) -> Self {
        LeaseTable {
            chunks: chunks
                .into_iter()
                .map(|trials| ChunkEntry {
                    trials,
                    state: ChunkState::Queued,
                    redeliveries: 0,
                })
                .collect(),
            next_lease: 1,
            ttl_ms: ttl_ms.max(1),
            completed: 0,
            total_redeliveries: 0,
        }
    }

    /// Number of chunks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.chunks.len()
    }

    /// Whether the table tracks no chunks at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Whether every chunk has completed.
    #[must_use]
    pub fn is_drained(&self) -> bool {
        self.completed == self.chunks.len()
    }

    /// Chunks not yet completed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.chunks.len() - self.completed
    }

    /// Chunks completed so far.
    #[must_use]
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// Total lease expiries (chunk re-queues) so far.
    #[must_use]
    pub fn redeliveries(&self) -> u64 {
        self.total_redeliveries
    }

    /// One chunk's state.
    #[must_use]
    pub fn state(&self, chunk: u32) -> Option<ChunkState> {
        self.chunks.get(chunk as usize).map(|c| c.state)
    }

    /// Leases the first queued chunk to `worker`, returning
    /// `(lease id, chunk id, trial ids)`. `None` when nothing is queued
    /// (either everything is completed — check [`Self::is_drained`] — or
    /// every open chunk is currently leased out).
    pub fn lease(&mut self, worker: u32, now_ms: u64) -> Option<(u64, u32, Vec<u32>)> {
        let (id, entry) = self
            .chunks
            .iter_mut()
            .enumerate()
            .find(|(_, c)| c.state == ChunkState::Queued)?;
        let lease = self.next_lease;
        self.next_lease += 1;
        entry.state = ChunkState::Leased {
            lease,
            worker,
            expires_at_ms: now_ms.saturating_add(self.ttl_ms),
        };
        Some((lease, id as u32, entry.trials.clone()))
    }

    /// Renews the expiry of the chunk held under `lease`. Returns whether
    /// a live lease was found (a heartbeat for an expired or completed
    /// chunk is a no-op).
    pub fn heartbeat(&mut self, lease: u64, now_ms: u64) -> bool {
        for entry in &mut self.chunks {
            if let ChunkState::Leased {
                lease: held,
                worker,
                ..
            } = entry.state
            {
                if held == lease {
                    entry.state = ChunkState::Leased {
                        lease: held,
                        worker,
                        expires_at_ms: now_ms.saturating_add(self.ttl_ms),
                    };
                    return true;
                }
            }
        }
        false
    }

    /// Re-queues every lease whose expiry has passed, bumping redelivery
    /// counts. Returns how many chunks expired.
    pub fn expire(&mut self, now_ms: u64) -> usize {
        let mut expired = 0;
        for entry in &mut self.chunks {
            if let ChunkState::Leased { expires_at_ms, .. } = entry.state {
                if now_ms >= expires_at_ms {
                    entry.state = ChunkState::Queued;
                    entry.redeliveries += 1;
                    self.total_redeliveries += 1;
                    expired += 1;
                }
            }
        }
        expired
    }

    /// Marks `chunk` completed by `worker`. The first completion of a
    /// chunk is [`Completion::Fresh`] no matter which lease delivered it
    /// (an expired-then-delivered chunk is still correct, by
    /// idempotency); later completions are [`Completion::Stale`].
    /// `None` for an unknown chunk id.
    pub fn complete(&mut self, chunk: u32, worker: u32) -> Option<Completion> {
        let entry = self.chunks.get_mut(chunk as usize)?;
        if matches!(entry.state, ChunkState::Completed { .. }) {
            return Some(Completion::Stale);
        }
        entry.state = ChunkState::Completed { worker };
        self.completed += 1;
        Some(Completion::Fresh)
    }

    /// One chunk's redelivery count.
    #[must_use]
    pub fn chunk_redeliveries(&self, chunk: u32) -> u32 {
        self.chunks.get(chunk as usize).map_or(0, |c| c.redeliveries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> LeaseTable {
        LeaseTable::new(vec![vec![0, 1], vec![2, 3], vec![4]], 100)
    }

    #[test]
    fn lease_grant_and_complete() {
        let mut t = table();
        assert_eq!(t.remaining(), 3);
        let (lease, chunk, trials) = t.lease(7, 0).expect("grants");
        assert_eq!((lease, chunk, trials), (1, 0, vec![0, 1]));
        assert_eq!(
            t.state(0),
            Some(ChunkState::Leased {
                lease: 1,
                worker: 7,
                expires_at_ms: 100
            })
        );
        assert_eq!(t.complete(0, 7), Some(Completion::Fresh));
        assert_eq!(t.complete(0, 9), Some(Completion::Stale));
        assert_eq!(t.state(0), Some(ChunkState::Completed { worker: 7 }));
        assert!(!t.is_drained());
        assert_eq!(t.completed(), 1, "stale completions do not double-count");
        assert_eq!(t.complete(1, 7), Some(Completion::Fresh));
        assert_eq!(t.complete(2, 7), Some(Completion::Fresh));
        assert!(t.is_drained());
        assert_eq!(t.completed(), 3);
        assert_eq!(t.complete(99, 7), None);
    }

    #[test]
    fn expiry_requeues_with_redelivery_count() {
        let mut t = table();
        let (lease, chunk, _) = t.lease(1, 0).expect("grants");
        assert_eq!(t.expire(99), 0, "not yet expired");
        assert_eq!(t.expire(100), 1, "expires at ttl");
        assert_eq!(t.state(chunk), Some(ChunkState::Queued));
        assert_eq!(t.chunk_redeliveries(chunk), 1);
        assert_eq!(t.redeliveries(), 1);
        // The old lease is dead: heartbeats for it are rejected.
        assert!(!t.heartbeat(lease, 150));
        // Re-lease goes to whoever asks next, with a fresh lease id.
        let (lease2, chunk2, _) = t.lease(2, 150).expect("re-grants");
        assert_eq!(chunk2, chunk);
        assert_ne!(lease2, lease);
    }

    #[test]
    fn heartbeat_extends_expiry() {
        let mut t = table();
        let (lease, _, _) = t.lease(1, 0).expect("grants");
        assert!(t.heartbeat(lease, 90));
        assert_eq!(t.expire(100), 0, "renewed at 90, expires at 190");
        assert_eq!(t.expire(190), 1);
    }

    #[test]
    fn late_completion_of_expired_lease_is_fresh_once() {
        let mut t = table();
        let (_, chunk, _) = t.lease(1, 0).expect("grants");
        t.expire(100);
        // Worker 2 re-leases, but the original worker 1 delivers first
        // (it was slow, not dead).
        let (_, chunk2, _) = t.lease(2, 150).expect("re-grants");
        assert_eq!(chunk2, chunk);
        assert_eq!(t.complete(chunk, 1), Some(Completion::Fresh));
        // Worker 2's later delivery of the same chunk is stale.
        assert_eq!(t.complete(chunk, 2), Some(Completion::Stale));
        assert_eq!(t.state(chunk), Some(ChunkState::Completed { worker: 1 }));
    }

    #[test]
    fn exhausted_queue_returns_none_until_expiry() {
        let mut t = LeaseTable::new(vec![vec![0]], 50);
        assert!(t.lease(1, 0).is_some());
        assert!(t.lease(2, 10).is_none(), "everything is leased out");
        assert!(!t.is_drained());
        t.expire(60);
        assert!(t.lease(2, 60).is_some(), "expired chunk is leasable again");
    }
}

//! The campaign worker: connects to a coordinator, rebuilds the campaign
//! session independently from the [`JobSpec`], and runs leased chunks
//! through the *identical* trial path as an in-process campaign.
//!
//! Robustness: heartbeats on a leased chunk run on a guard thread over
//! short-lived side connections (so they never interleave with an
//! in-flight request frame); connection loss triggers reconnect with
//! exponential backoff plus deterministic jitter; and the
//! [`WorkerSabotage`] hook lets tests make a worker vanish mid-lease —
//! from the coordinator's point of view indistinguishable from a SIGKILL.

use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use certa_fault::{CampaignSession, HarnessStats, RestoreStats, Target};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::protocol::{read_frame, write_frame, Request, Response, PROTOCOL_VERSION};
use crate::DistError;

/// Maps the coordinator's workload name to a local fault-injection
/// target. `None` marks the job unservable ([`DistError::JobMismatch`]).
pub type TargetResolver = dyn Fn(&str) -> Option<Box<dyn Target>> + Sync;

/// Deliberate worker sabotage for crash-tolerance tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerSabotage {
    /// After this many lease grants, the worker abandons the next granted
    /// chunk without running or releasing it and exits — its lease must
    /// expire and the chunk redeliver. `Some(1)` = complete the first
    /// chunk, vanish holding the second.
    pub abandon_after_leases: Option<u32>,
}

/// Worker tuning knobs.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Name reported in `Hello` (ledger attribution).
    pub name: String,
    /// Heartbeat period for a held lease. Must be well under the
    /// coordinator's lease TTL.
    pub heartbeat_interval: Duration,
    /// Consecutive connection failures tolerated before giving up.
    pub connect_attempts: u32,
    /// Backoff base delay (first retry).
    pub connect_base: Duration,
    /// Backoff cap.
    pub connect_cap: Duration,
    /// Overrides the job's advertised trial-thread count.
    pub threads_override: Option<usize>,
    /// Read timeout on the main connection — how long a worker waits for
    /// one response before treating the coordinator as gone and
    /// reconnecting. Generous by default: a starved-but-alive
    /// coordinator is much more common than a dead one, and a false
    /// positive costs a full session rebuild.
    pub io_timeout: Duration,
    /// Artificial delay per granted chunk, before running it — lets tests
    /// and benches hold a lease long enough to lose it on purpose.
    pub throttle_per_chunk: Duration,
    /// Jitter seed (deterministic backoff under test).
    pub backoff_seed: u64,
    /// Crash-tolerance sabotage hook.
    pub sabotage: WorkerSabotage,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions {
            name: "worker".into(),
            heartbeat_interval: Duration::from_millis(500),
            connect_attempts: 5,
            connect_base: Duration::from_millis(50),
            connect_cap: Duration::from_secs(2),
            threads_override: None,
            io_timeout: Duration::from_secs(60),
            throttle_per_chunk: Duration::ZERO,
            backoff_seed: 0,
            sabotage: WorkerSabotage::default(),
        }
    }
}

/// What one worker accomplished, from its own point of view.
#[derive(Debug, Default, Clone)]
pub struct WorkerReport {
    /// Worker id assigned by the coordinator (last connection's).
    pub worker: u32,
    /// Lease grants received.
    pub leases: u32,
    /// Chunk completions the coordinator accepted as fresh.
    pub chunks_completed: u32,
    /// Trials inside those accepted chunks.
    pub trials_completed: u64,
    /// Completions the coordinator acknowledged as stale duplicates.
    pub stale_acks: u32,
    /// Successful re-connections after a connection loss.
    pub reconnects: u32,
    /// Whether the sabotage hook made this worker abandon a lease.
    pub abandoned: bool,
    /// Harness-counter deltas across accepted chunks.
    pub harness: HarnessStats,
    /// Restore-counter deltas across accepted chunks.
    pub restores: RestoreStats,
}

/// Exponential backoff with deterministic jitter: `base << attempt`,
/// capped at `cap`, then scaled into `[1/2, 1]` of itself by a
/// [`SmallRng`] keyed on `(seed, attempt)` — reproducible in tests, yet
/// de-synchronized across workers with distinct seeds.
#[must_use]
pub fn backoff_delay(attempt: u32, base: Duration, cap: Duration, seed: u64) -> Duration {
    let exp = base.saturating_mul(1u32 << attempt.min(16));
    let capped = exp.min(cap);
    let nanos = u64::try_from(capped.as_nanos()).unwrap_or(u64::MAX);
    if nanos == 0 {
        return Duration::ZERO;
    }
    let mut rng = SmallRng::seed_from_u64(
        seed ^ u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15),
    );
    Duration::from_nanos(rng.gen_range(nanos / 2..nanos.saturating_add(1)))
}

/// One request/response exchange on the worker's main connection.
fn roundtrip(stream: &mut TcpStream, request: &Request) -> Result<Response, DistError> {
    write_frame(stream, &request.encode())?;
    let payload = read_frame(stream)?;
    Response::decode(&payload).map_err(|e| DistError::Protocol(e.to_string()))
}

/// Fires heartbeats for one held lease until `stop`. Each heartbeat is a
/// fresh side connection — the main connection stays free for the
/// eventual `Complete` frame. Heartbeat failures are swallowed: the worst
/// case is a lost lease, which the redelivery machinery already covers.
fn heartbeat_guard(
    addr: SocketAddr,
    worker: u32,
    lease: u64,
    interval: Duration,
    stop: &AtomicBool,
) {
    let step = Duration::from_millis(20).min(interval);
    let mut elapsed = Duration::ZERO;
    loop {
        while elapsed < interval {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(step);
            elapsed += step;
        }
        elapsed = Duration::ZERO;
        if let Ok(mut stream) = TcpStream::connect(addr) {
            let _ = stream.set_nodelay(true);
            let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
            let _ = roundtrip(&mut stream, &Request::Heartbeat { worker, lease });
        }
    }
}

/// Serves one connection until drained, sabotaged, or errored.
/// `Ok(true)` = the campaign is over for this worker (drained or
/// deliberately abandoned); `Ok(false)` never occurs (connection loss is
/// `Err(DistError::Io)`, which the caller turns into a reconnect).
fn serve_connection(
    mut stream: TcpStream,
    addr: SocketAddr,
    resolve: &TargetResolver,
    opts: &WorkerOptions,
    report: &mut WorkerReport,
    attached: &mut bool,
) -> Result<bool, DistError> {
    let _ = stream.set_nodelay(true);
    stream.set_read_timeout(Some(opts.io_timeout))?;

    let welcome = roundtrip(
        &mut stream,
        &Request::Hello {
            version: PROTOCOL_VERSION,
            name: opts.name.clone(),
        },
    )?;
    let (worker, job) = match welcome {
        Response::Welcome { worker, job } => (worker, job),
        Response::Reject { reason } => return Err(DistError::Protocol(reason)),
        other => {
            return Err(DistError::Protocol(format!(
                "expected Welcome, got {other:?}"
            )))
        }
    };
    report.worker = worker;
    *attached = true;

    // Resolve the workload and re-derive its tag map now (cheap), but
    // DEFER the expensive session rebuild — the golden run and checkpoint
    // capture — until the first `Grant`. The `Hello`→`Lease` gap stays at
    // milliseconds, so a faster co-worker draining the campaign in that
    // window costs this worker nothing but a `Drained` answer; building
    // eagerly here once stranded a late worker against a coordinator that
    // had already finished. Until the session exists we lease with the
    // job's advertised fingerprint; the rebuilt session must then match
    // it or the job is unservable.
    let target = resolve(&job.workload).ok_or_else(|| {
        DistError::JobMismatch(format!("unresolvable workload {:?}", job.workload))
    })?;
    let tags = certa_core::analyze(target.program());
    let mut config = job.config.clone();
    config.threads = opts
        .threads_override
        .unwrap_or(job.worker_threads as usize);
    let mut session: Option<CampaignSession<'_>> = None;

    loop {
        let response = roundtrip(
            &mut stream,
            &Request::Lease {
                worker,
                fingerprint: job.fingerprint,
            },
        )?;
        match response {
            Response::Grant {
                lease,
                chunk,
                trials,
                ttl_ms: _,
            } => {
                if opts
                    .sabotage
                    .abandon_after_leases
                    .is_some_and(|n| report.leases >= n)
                {
                    // Vanish holding the lease: no heartbeat, no
                    // completion, no goodbye.
                    report.abandoned = true;
                    return Ok(true);
                }
                report.leases += 1;
                let stop = Arc::new(AtomicBool::new(false));
                let guard = {
                    let stop = Arc::clone(&stop);
                    let interval = opts.heartbeat_interval;
                    std::thread::spawn(move || {
                        heartbeat_guard(addr, worker, lease, interval, &stop);
                    })
                };
                // First grant: rebuild the session under heartbeat cover
                // (the guard above keeps the lease alive through the
                // golden run), then prove both sides prepared the same
                // campaign. On mismatch the held lease simply expires and
                // the chunk redelivers — correct by design.
                if session.is_none() {
                    let built = CampaignSession::new(target.as_ref(), &tags, &config);
                    let fingerprint = built.fingerprint();
                    if fingerprint != job.fingerprint {
                        stop.store(true, Ordering::SeqCst);
                        guard.join().expect("heartbeat guard panicked");
                        return Err(DistError::JobMismatch(format!(
                            "session fingerprint {fingerprint:#x} != job fingerprint {:#x}",
                            job.fingerprint
                        )));
                    }
                    session = Some(built);
                }
                let session = session.as_ref().expect("session just built");
                if !opts.throttle_per_chunk.is_zero() {
                    std::thread::sleep(opts.throttle_per_chunk);
                }
                let harness_before = session.harness_stats();
                let restores_before = session.restore_stats();
                let records = session.run_subset(&trials);
                let harness = session.harness_stats().saturating_sub(&harness_before);
                let restores = session.restore_stats().saturating_sub(&restores_before);
                stop.store(true, Ordering::SeqCst);
                guard.join().expect("heartbeat guard panicked");

                let trials_in_chunk = trials.len() as u64;
                let complete = Request::Complete {
                    worker,
                    lease,
                    chunk,
                    records: trials.iter().copied().zip(records).collect(),
                    harness,
                    restores,
                };
                match roundtrip(&mut stream, &complete)? {
                    Response::Ack { accepted: true } => {
                        report.chunks_completed += 1;
                        report.trials_completed += trials_in_chunk;
                        report.harness.merge(&harness);
                        report.restores.merge(&restores);
                    }
                    Response::Ack { accepted: false } => report.stale_acks += 1,
                    Response::Reject { reason } => return Err(DistError::Protocol(reason)),
                    other => {
                        return Err(DistError::Protocol(format!(
                            "expected Ack, got {other:?}"
                        )))
                    }
                }
            }
            Response::Wait { poll_ms } => {
                std::thread::sleep(Duration::from_millis(poll_ms.min(5_000)));
            }
            Response::Drained => return Ok(true),
            Response::Reject { reason } => return Err(DistError::Protocol(reason)),
            other => {
                return Err(DistError::Protocol(format!(
                    "expected Grant/Wait/Drained, got {other:?}"
                )))
            }
        }
    }
}

/// Runs a worker against the coordinator at `addr` until the campaign
/// drains (or the sabotage hook fires). Reconnects with exponential
/// backoff plus jitter on connection loss; gives up after
/// [`WorkerOptions::connect_attempts`] consecutive failures.
///
/// # Errors
///
/// [`DistError::Io`] once reconnection is exhausted;
/// [`DistError::JobMismatch`] when the workload cannot be resolved or the
/// rebuilt session's fingerprint differs from the coordinator's;
/// [`DistError::Protocol`] on undecodable or out-of-order responses —
/// the latter two are fatal immediately (retrying cannot fix a wrong
/// binary).
///
/// # Panics
///
/// Panics if the heartbeat guard thread panics (a worker bug).
pub fn run_worker(
    addr: SocketAddr,
    resolve: &TargetResolver,
    opts: &WorkerOptions,
) -> Result<WorkerReport, DistError> {
    let mut report = WorkerReport::default();
    // Consecutive failures: a successful attach (Hello/Welcome) resets
    // the budget, so a long campaign survives any number of transient
    // losses as long as each reconnect actually reaches the coordinator.
    let mut failures = 0u32;
    let mut connected_before = false;
    loop {
        let stream = match TcpStream::connect(addr) {
            Ok(stream) => stream,
            Err(e) => {
                failures += 1;
                if failures >= opts.connect_attempts {
                    return Err(DistError::Io(e));
                }
                std::thread::sleep(backoff_delay(
                    failures,
                    opts.connect_base,
                    opts.connect_cap,
                    opts.backoff_seed,
                ));
                continue;
            }
        };
        if connected_before {
            report.reconnects += 1;
        }
        let mut attached = false;
        let served = serve_connection(stream, addr, resolve, opts, &mut report, &mut attached);
        if attached {
            failures = 0;
        }
        match served {
            Ok(_) => return Ok(report),
            Err(DistError::Io(e)) => {
                connected_before = true;
                failures += 1;
                if failures >= opts.connect_attempts {
                    return Err(DistError::Io(e));
                }
                std::thread::sleep(backoff_delay(
                    failures,
                    opts.connect_base,
                    opts.connect_cap,
                    opts.backoff_seed,
                ));
            }
            Err(fatal) => return Err(fatal),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let base = Duration::from_millis(50);
        let cap = Duration::from_secs(2);
        let mut previous_ceiling = Duration::ZERO;
        for attempt in 0..8 {
            let ceiling = base.saturating_mul(1 << attempt).min(cap);
            let delay = backoff_delay(attempt, base, cap, 42);
            assert!(delay <= ceiling, "attempt {attempt}: {delay:?} > {ceiling:?}");
            assert!(
                delay >= ceiling / 2,
                "attempt {attempt}: {delay:?} < half of {ceiling:?}"
            );
            assert!(ceiling >= previous_ceiling);
            previous_ceiling = ceiling;
        }
        assert_eq!(
            base.saturating_mul(1 << 7).min(cap),
            cap,
            "late attempts are capped"
        );
    }

    #[test]
    fn backoff_is_deterministic_per_seed_and_attempt() {
        let base = Duration::from_millis(50);
        let cap = Duration::from_secs(2);
        assert_eq!(
            backoff_delay(3, base, cap, 7),
            backoff_delay(3, base, cap, 7)
        );
        // Different seeds de-synchronize workers (not guaranteed for
        // every pair, but this pair is fixed).
        assert_ne!(
            backoff_delay(3, base, cap, 7),
            backoff_delay(3, base, cap, 8)
        );
    }

    #[test]
    fn backoff_handles_zero_base() {
        assert_eq!(
            backoff_delay(5, Duration::ZERO, Duration::ZERO, 1),
            Duration::ZERO
        );
    }
}

//! The campaign worker: connects to a coordinator, rebuilds the campaign
//! session independently from the [`JobSpec`], and runs leased chunks
//! through the *identical* trial path as an in-process campaign.
//!
//! Robustness: heartbeats on a leased chunk run on a guard thread over
//! short-lived side connections (so they never interleave with an
//! in-flight request frame); connection loss triggers re-attach
//! (re-connect + re-`Hello`) with exponential backoff plus deterministic
//! jitter; and the [`WorkerSabotage`] hook lets tests make a worker
//! vanish mid-lease — from the coordinator's point of view
//! indistinguishable from a SIGKILL.
//!
//! ## Surviving a coordinator restart
//!
//! Re-attach is the *single* recovery path for every connection-level
//! failure, including the coordinator dying and coming back. The
//! expensive session (golden run + checkpoint capture) is built at most
//! once per worker process and reused across any number of re-attaches —
//! a coordinator restart costs the worker one `Hello`, not a rebuild.
//! The epoch in the new `Welcome` then disambiguates what the outage
//! meant:
//!
//! * **Same epoch** — the coordinator never died; the connection did. A
//!   completion that was in flight when the connection dropped
//!   (`PendingComplete`) is simply re-sent: the coordinator dedups
//!   (`Ack { accepted: false }` = already merged, counted as a stale
//!   ack).
//! * **New epoch** — the old incarnation is dead. Its leases and any
//!   undelivered completion are invalid by definition (the restarted
//!   coordinator re-queues exactly the chunks its journal lacks), so the
//!   worker drops the pending payload — counted in
//!   [`WorkerReport::stale_epoch_drops`], never re-sent — and leases
//!   afresh under the new epoch.

use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use certa_core::TagMap;
use certa_fault::{
    CampaignConfig, CampaignSession, HarnessStats, RestoreStats, Target, TrialRecord,
};
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::chaos::{Chaos, ChaosCounts, NetStream};
use crate::protocol::{
    auth_proof, auth_token, FrameCodec, JobSpec, Request, Response, PROTOCOL_VERSION,
};
use crate::DistError;

/// Maps the coordinator's workload name to a local fault-injection
/// target. `None` marks the job unservable ([`DistError::JobMismatch`]).
pub type TargetResolver = dyn Fn(&str) -> Option<Box<dyn Target>> + Sync;

/// Deliberate worker sabotage for crash-tolerance tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerSabotage {
    /// After this many lease grants, the worker abandons the next granted
    /// chunk without running or releasing it and exits — its lease must
    /// expire and the chunk redeliver. `Some(1)` = complete the first
    /// chunk, vanish holding the second.
    pub abandon_after_leases: Option<u32>,
}

/// Worker tuning knobs.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Name reported in `Hello` (ledger attribution).
    pub name: String,
    /// Heartbeat period for a held lease. Must be well under the
    /// coordinator's lease TTL.
    pub heartbeat_interval: Duration,
    /// Consecutive connection failures tolerated before giving up.
    pub connect_attempts: u32,
    /// Backoff base delay (first retry).
    pub connect_base: Duration,
    /// Backoff cap.
    pub connect_cap: Duration,
    /// Overrides the job's advertised trial-thread count.
    pub threads_override: Option<usize>,
    /// Read timeout on the main connection — how long a worker waits for
    /// one response before treating the coordinator as gone and
    /// reconnecting. Generous by default: a starved-but-alive
    /// coordinator is much more common than a dead one, and a false
    /// positive costs a round of reconnect backoff.
    pub io_timeout: Duration,
    /// Artificial delay per granted chunk, before running it — lets tests
    /// and benches hold a lease long enough to lose it on purpose.
    pub throttle_per_chunk: Duration,
    /// Jitter seed (deterministic backoff under test).
    pub backoff_seed: u64,
    /// Crash-tolerance sabotage hook.
    pub sabotage: WorkerSabotage,
    /// Shared secret for the `Hello`/`Welcome` challenge/response. When
    /// set, the `Hello` token is derived from it and the coordinator's
    /// `Welcome` proof is verified (mismatch is fatal — the peer is an
    /// imposter, not a flaky network).
    pub secret: Option<String>,
    /// Wire-fault injection domain for every connection this worker
    /// opens (main, re-attach, heartbeat). Tests hold the [`Arc`] so the
    /// injection counters survive a worker that dies of its own chaos.
    pub chaos: Option<Arc<Chaos>>,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions {
            name: "worker".into(),
            heartbeat_interval: Duration::from_millis(500),
            connect_attempts: 5,
            connect_base: Duration::from_millis(50),
            connect_cap: Duration::from_secs(2),
            threads_override: None,
            io_timeout: Duration::from_secs(60),
            throttle_per_chunk: Duration::ZERO,
            backoff_seed: 0,
            sabotage: WorkerSabotage::default(),
            secret: None,
            chaos: None,
        }
    }
}

/// What one worker accomplished, from its own point of view.
#[derive(Debug, Default, Clone)]
pub struct WorkerReport {
    /// Worker id assigned by the coordinator (last attach's).
    pub worker: u32,
    /// Lease grants received.
    pub leases: u32,
    /// Chunk completions the coordinator accepted as fresh.
    pub chunks_completed: u32,
    /// Trials inside those accepted chunks.
    pub trials_completed: u64,
    /// Completions the coordinator acknowledged as stale duplicates.
    pub stale_acks: u32,
    /// Successful re-attaches (re-connect + re-`Hello`) after a
    /// connection loss.
    pub reconnects: u32,
    /// Times the expensive session (golden run + checkpoints) was built.
    /// At most 1 per worker process, however many re-attaches happened —
    /// the proof hook that a coordinator restart does not trigger a
    /// rebuild.
    pub session_builds: u32,
    /// Completed chunks dropped un-sent because the coordinator's epoch
    /// moved (the work was done for a dead incarnation; the restarted
    /// coordinator re-queues whatever its journal lacks).
    pub stale_epoch_drops: u32,
    /// Whether the sabotage hook made this worker abandon a lease.
    pub abandoned: bool,
    /// Connections dropped because a received frame failed an integrity
    /// check (checksum mismatch, sequence gap, oversize length prefix).
    /// Each one fed the same re-attach machinery as a connection loss.
    pub corrupt_frames: u64,
    /// Duplicated frames the framing layer silently absorbed.
    pub duplicate_frames: u64,
    /// Faults this worker's own chaos domain injected (zero without
    /// [`WorkerOptions::chaos`]).
    pub chaos: ChaosCounts,
    /// Harness-counter deltas across accepted chunks.
    pub harness: HarnessStats,
    /// Restore-counter deltas across accepted chunks.
    pub restores: RestoreStats,
}

/// Exponential backoff with deterministic jitter: `base << attempt`
/// (the shift exponent clamped at 16, so arbitrarily large `attempt`
/// values cannot overflow), **capped at `cap` before jitter is
/// applied**, then scaled into `[1/2, 1]` of the capped value by a
/// [`SmallRng`] keyed on `(seed, attempt)` — reproducible in tests, yet
/// de-synchronized across workers with distinct seeds. Because the cap
/// precedes the jitter, the returned delay never exceeds `cap`.
#[must_use]
pub fn backoff_delay(attempt: u32, base: Duration, cap: Duration, seed: u64) -> Duration {
    let exp = base.saturating_mul(1u32 << attempt.min(16));
    let capped = exp.min(cap);
    let nanos = u64::try_from(capped.as_nanos()).unwrap_or(u64::MAX);
    if nanos == 0 {
        return Duration::ZERO;
    }
    let mut rng = SmallRng::seed_from_u64(
        seed ^ u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15),
    );
    Duration::from_nanos(rng.gen_range(nanos / 2..nanos.saturating_add(1)))
}

/// One connection's protocol state: the (possibly chaos-wrapped) socket
/// and its frame codec. The codec lives and dies with the connection —
/// sequence numbers never straddle a reconnect.
struct Channel {
    stream: NetStream,
    codec: FrameCodec,
}

impl Channel {
    fn new(stream: NetStream) -> Channel {
        Channel {
            stream,
            codec: FrameCodec::new(),
        }
    }

    /// One request/response exchange. Frame-integrity failures surface
    /// as [`DistError::Frame`]; the caller must discard this channel.
    fn roundtrip(&mut self, request: &Request) -> Result<Response, DistError> {
        self.codec.write_frame(&mut self.stream, &request.encode())?;
        let payload = self.codec.read_frame(&mut self.stream)?;
        Response::decode(&payload).map_err(|e| DistError::Protocol(e.to_string()))
    }

    /// Folds this channel's framing counters into the report; call
    /// whenever the channel is being discarded (cleanly or not).
    fn retire(self, report: &mut WorkerReport) {
        report.duplicate_frames += self.codec.duplicates_dropped;
    }
}

/// Connects to the coordinator, applying the chaos wrapper (when
/// configured) and full-duplex socket timeouts. A socket that refuses
/// its timeouts is returned as an error, never used bare — an untimed
/// socket is a thread leak waiting for a stalled peer.
fn dial(
    addr: SocketAddr,
    io_timeout: Duration,
    chaos: Option<&Arc<Chaos>>,
) -> Result<NetStream, DistError> {
    let stream = TcpStream::connect(addr)?;
    let stream = match chaos {
        Some(chaos) => NetStream::Chaos(chaos.wrap(stream)),
        None => NetStream::Plain(stream),
    };
    let _ = stream.set_nodelay(true);
    stream.set_read_timeout(Some(io_timeout))?;
    stream.set_write_timeout(Some(io_timeout))?;
    Ok(stream)
}

/// Fires heartbeats for one held lease until `stop`. Each heartbeat is a
/// fresh side connection — the main connection stays free for the
/// eventual `Complete` frame. Heartbeat failures are swallowed: the worst
/// case is a lost lease, which the redelivery machinery already covers.
/// A socket that cannot take its timeouts is dropped and the beat
/// skipped — never heartbeat over a socket that could block forever.
fn heartbeat_guard(
    addr: SocketAddr,
    beat: Request,
    interval: Duration,
    io_timeout: Duration,
    chaos: Option<&Arc<Chaos>>,
    stop: &AtomicBool,
) {
    let timeout = io_timeout.min(Duration::from_secs(5));
    let step = Duration::from_millis(20).min(interval);
    let mut elapsed = Duration::ZERO;
    loop {
        while elapsed < interval {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(step);
            elapsed += step;
        }
        elapsed = Duration::ZERO;
        if let Ok(stream) = dial(addr, timeout, chaos) {
            let _ = Channel::new(stream).roundtrip(&beat);
        }
    }
}

/// A completed chunk whose `Complete` has not been accepted yet. Captured
/// *before* the first delivery attempt, so a connection lost anywhere in
/// the `Complete` round trip leaves the payload re-sendable. The stamped
/// `epoch` decides its fate on re-attach: same epoch → re-send (the
/// coordinator dedups), new epoch → drop and count (the work belonged to
/// a dead incarnation).
struct PendingComplete {
    epoch: u64,
    worker: u32,
    lease: u64,
    chunk: u32,
    records: Vec<(u32, TrialRecord)>,
    harness: HarnessStats,
    restores: RestoreStats,
    trials: u64,
}

impl PendingComplete {
    fn request(&self) -> Request {
        Request::Complete {
            worker: self.worker,
            lease: self.lease,
            chunk: self.chunk,
            epoch: self.epoch,
            records: self.records.clone(),
            harness: self.harness,
            restores: self.restores,
        }
    }
}

/// Everything about the job that is fixed for the life of the worker
/// process (the first `Welcome` pins it; later attaches must match).
struct WorkerContext<'a> {
    addr: SocketAddr,
    fingerprint: u64,
    target: &'a dyn Target,
    tags: &'a TagMap,
    config: CampaignConfig,
    opts: &'a WorkerOptions,
}

/// How one attached connection ended, short of a connection error.
enum Served {
    /// The campaign is over for this worker (drained, or deliberately
    /// abandoned by the sabotage hook).
    Done,
    /// The coordinator answered with a different epoch than this
    /// connection attached under — re-attach to observe the new one.
    Fenced,
}

/// One `Hello`/`Welcome` handshake attempt over a fresh connection. On
/// failure the channel's framing counters are folded into the report
/// before the error propagates.
fn try_attach(
    addr: SocketAddr,
    opts: &WorkerOptions,
    challenge: u64,
    report: &mut WorkerReport,
) -> Result<(Channel, u32, u64, JobSpec), DistError> {
    let stream = dial(addr, opts.io_timeout, opts.chaos.as_ref())?;
    let mut channel = Channel::new(stream);
    let token = opts
        .secret
        .as_deref()
        .map_or(0, |secret| auth_token(secret, &opts.name));
    let attempt = (|| {
        let welcome = channel.roundtrip(&Request::Hello {
            version: PROTOCOL_VERSION,
            name: opts.name.clone(),
            token,
            challenge,
        })?;
        match welcome {
            Response::Welcome {
                worker,
                job,
                epoch,
                proof,
            } => {
                if let Some(secret) = opts.secret.as_deref() {
                    if proof != auth_proof(secret, challenge) {
                        // Whoever answered does not know the secret; this
                        // is an imposter, not a flaky network — fatal.
                        return Err(DistError::Auth(
                            "coordinator failed the welcome proof".into(),
                        ));
                    }
                }
                Ok((worker, epoch, job))
            }
            Response::Reject { reason } => Err(DistError::Protocol(reason)),
            other => Err(DistError::Protocol(format!(
                "expected Welcome, got {other:?}"
            ))),
        }
    })();
    match attempt {
        Ok((worker, epoch, job)) => Ok((channel, worker, epoch, job)),
        Err(err) => {
            channel.retire(report);
            Err(err)
        }
    }
}

/// Connects and performs the `Hello`/`Welcome` handshake, retrying with
/// exponential backoff on connection-level failures — including framing
/// corruption, which is just a connection loss with a counter. Returns
/// the attached channel plus the coordinator-assigned worker id, the
/// coordinator's epoch, and the job. `failures` counts *consecutive*
/// losses across attach attempts and is reset by success;
/// `connected_before` distinguishes a first attach from a re-attach (for
/// the reconnect counter).
fn attach(
    addr: SocketAddr,
    opts: &WorkerOptions,
    report: &mut WorkerReport,
    failures: &mut u32,
    connected_before: &mut bool,
) -> Result<(Channel, u32, u64, JobSpec), DistError> {
    // Challenges only need to differ between handshakes, not be
    // unpredictable — the auth scheme gates accidents and chaos, not
    // cryptanalysis (see the protocol module docs).
    let mut challenge_rng = SmallRng::seed_from_u64(
        opts.backoff_seed
            ^ (u64::from(report.reconnects) << 24)
            ^ u64::from(*failures)
            ^ 0x6368_616c_6c65_6e67,
    );
    loop {
        let challenge = challenge_rng.next_u64();
        let retriable = match try_attach(addr, opts, challenge, report) {
            Ok(attached) => {
                if *connected_before {
                    report.reconnects += 1;
                }
                *connected_before = true;
                *failures = 0;
                return Ok(attached);
            }
            Err(DistError::Io(e)) => DistError::Io(e),
            Err(DistError::Frame(what)) => {
                report.corrupt_frames += 1;
                DistError::Frame(what)
            }
            Err(fatal) => return Err(fatal),
        };
        *failures += 1;
        if *failures >= opts.connect_attempts {
            return Err(retriable);
        }
        std::thread::sleep(backoff_delay(
            *failures,
            opts.connect_base,
            opts.connect_cap,
            opts.backoff_seed,
        ));
    }
}

/// Delivers `pending` and settles the `Ack`. `Ok(None)` = settled (fresh
/// or stale-duplicate — either way the payload is spent); `Ok(Some)` =
/// the coordinator fenced us (new epoch): payload dropped and counted,
/// caller must re-attach. A connection error propagates with `pending`
/// still intact for the re-attach path to settle.
fn deliver(
    channel: &mut Channel,
    epoch: u64,
    pending: &mut Option<PendingComplete>,
    report: &mut WorkerReport,
) -> Result<Option<Served>, DistError> {
    let request = pending.as_ref().expect("deliver needs a payload").request();
    match channel.roundtrip(&request)? {
        Response::Ack { accepted: true, .. } => {
            let sent = pending.take().expect("payload still pending");
            report.chunks_completed += 1;
            report.trials_completed += sent.trials;
            report.harness.merge(&sent.harness);
            report.restores.merge(&sent.restores);
            Ok(None)
        }
        Response::Ack {
            accepted: false,
            epoch: ack_epoch,
        } => {
            pending.take();
            if ack_epoch == epoch {
                // Duplicate delivery (e.g. our lease expired and someone
                // else finished the chunk first): already merged once,
                // harmless by idempotency.
                report.stale_acks += 1;
                Ok(None)
            } else {
                report.stale_epoch_drops += 1;
                Ok(Some(Served::Fenced))
            }
        }
        Response::Reject { reason } => Err(DistError::Protocol(reason)),
        other => Err(DistError::Protocol(format!("expected Ack, got {other:?}"))),
    }
}

/// Serves one attached connection until drained, sabotaged, fenced, or
/// errored. Connection loss is `Err(DistError::Io)`, which the caller
/// turns into a re-attach; `pending` carries any undelivered completion
/// across that boundary.
fn serve<'a>(
    ctx: &WorkerContext<'a>,
    channel: &mut Channel,
    worker: u32,
    epoch: u64,
    session: &mut Option<CampaignSession<'a>>,
    pending: &mut Option<PendingComplete>,
    report: &mut WorkerReport,
) -> Result<Served, DistError> {
    // Settle a completion left over from a lost connection first: same
    // epoch means the coordinator never died, so the chunk is either
    // unmerged (re-send lands it) or already merged (stale ack). Only
    // then ask for new work.
    if pending.is_some() {
        if let Some(served) = deliver(channel, epoch, pending, report)? {
            return Ok(served);
        }
    }

    loop {
        let response = channel.roundtrip(&Request::Lease {
            worker,
            fingerprint: ctx.fingerprint,
        })?;
        match response {
            Response::Grant {
                lease,
                chunk,
                trials,
                ttl_ms: _,
                epoch: grant_epoch,
            } => {
                if grant_epoch != epoch {
                    // Can only mean the coordinator restarted underneath
                    // this connection; the grant belongs to an epoch we
                    // never attached to. Re-attach rather than guess.
                    return Ok(Served::Fenced);
                }
                if ctx
                    .opts
                    .sabotage
                    .abandon_after_leases
                    .is_some_and(|n| report.leases >= n)
                {
                    // Vanish holding the lease: no heartbeat, no
                    // completion, no goodbye.
                    report.abandoned = true;
                    return Ok(Served::Done);
                }
                report.leases += 1;
                let stop = Arc::new(AtomicBool::new(false));
                let guard = {
                    let stop = Arc::clone(&stop);
                    let interval = ctx.opts.heartbeat_interval;
                    let io_timeout = ctx.opts.io_timeout;
                    let chaos = ctx.opts.chaos.clone();
                    let addr = ctx.addr;
                    std::thread::spawn(move || {
                        heartbeat_guard(
                            addr,
                            Request::Heartbeat {
                                worker,
                                lease,
                                epoch,
                            },
                            interval,
                            io_timeout,
                            chaos.as_ref(),
                            &stop,
                        );
                    })
                };
                // First grant ever: build the session under heartbeat
                // cover (the guard above keeps the lease alive through
                // the golden run), then prove both sides prepared the
                // same campaign. The session then lives for the rest of
                // the process — a re-attach, even one that crosses a
                // coordinator restart, reuses it (the fingerprint check
                // on every `Lease` keeps it honest). On mismatch the
                // held lease simply expires and the chunk redelivers —
                // correct by design.
                if session.is_none() {
                    let built = CampaignSession::new(ctx.target, ctx.tags, &ctx.config);
                    report.session_builds += 1;
                    let fingerprint = built.fingerprint();
                    if fingerprint != ctx.fingerprint {
                        stop.store(true, Ordering::SeqCst);
                        guard.join().expect("heartbeat guard panicked");
                        return Err(DistError::JobMismatch(format!(
                            "session fingerprint {fingerprint:#x} != job fingerprint {:#x}",
                            ctx.fingerprint
                        )));
                    }
                    *session = Some(built);
                }
                let live = session.as_ref().expect("session just built");
                if !ctx.opts.throttle_per_chunk.is_zero() {
                    std::thread::sleep(ctx.opts.throttle_per_chunk);
                }
                let harness_before = live.harness_stats();
                let restores_before = live.restore_stats();
                let records = live.run_subset(&trials);
                let harness = live.harness_stats().saturating_sub(&harness_before);
                let restores = live.restore_stats().saturating_sub(&restores_before);
                stop.store(true, Ordering::SeqCst);
                guard.join().expect("heartbeat guard panicked");

                // Stage the payload *before* the first send attempt, so
                // a connection lost mid-round-trip can re-send it.
                *pending = Some(PendingComplete {
                    epoch,
                    worker,
                    lease,
                    chunk,
                    trials: trials.len() as u64,
                    records: trials.iter().copied().zip(records).collect(),
                    harness,
                    restores,
                });
                if let Some(served) = deliver(channel, epoch, pending, report)? {
                    return Ok(served);
                }
            }
            Response::Wait { poll_ms } => {
                std::thread::sleep(Duration::from_millis(poll_ms.min(5_000)));
            }
            Response::Drained => return Ok(Served::Done),
            Response::Reject { reason } => return Err(DistError::Protocol(reason)),
            other => {
                return Err(DistError::Protocol(format!(
                    "expected Grant/Wait/Drained, got {other:?}"
                )))
            }
        }
    }
}

/// Runs a worker against the coordinator at `addr` until the campaign
/// drains (or the sabotage hook fires). Re-attaches with exponential
/// backoff plus jitter on connection loss — including across a
/// coordinator restart, where the new `Welcome`'s epoch tells the worker
/// to drop work done for the dead incarnation (see the module docs) —
/// and gives up after [`WorkerOptions::connect_attempts`] consecutive
/// failures.
///
/// # Errors
///
/// [`DistError::Io`] or [`DistError::Frame`] once reconnection is
/// exhausted (frame corruption is handled exactly like connection loss:
/// drop the connection, count it, re-attach);
/// [`DistError::JobMismatch`] when the workload cannot be resolved, the
/// rebuilt session's fingerprint differs from the coordinator's, or a
/// re-attach is welcomed to a *different* job; [`DistError::Protocol`]
/// on undecodable or out-of-order responses; [`DistError::Auth`] when
/// the coordinator cannot prove it knows the shared secret — the latter
/// three are fatal immediately (retrying cannot fix a wrong binary or a
/// wrong peer).
///
/// # Panics
///
/// Panics if the heartbeat guard thread panics (a worker bug).
pub fn run_worker(
    addr: SocketAddr,
    resolve: &TargetResolver,
    opts: &WorkerOptions,
) -> Result<WorkerReport, DistError> {
    let mut report = WorkerReport::default();
    // Consecutive failures: a successful attach (Hello/Welcome) resets
    // the budget, so a long campaign survives any number of transient
    // losses as long as each re-attach actually reaches a coordinator.
    let mut failures = 0u32;
    let mut connected_before = false;

    let (mut channel, mut worker, mut epoch, job) =
        attach(addr, opts, &mut report, &mut failures, &mut connected_before)?;
    report.worker = worker;

    // Resolve the workload and re-derive its tag map now (cheap), but
    // DEFER the expensive session rebuild — the golden run and checkpoint
    // capture — until the first `Grant`. The `Hello`→`Lease` gap stays at
    // milliseconds, so a faster co-worker draining the campaign in that
    // window costs this worker nothing but a `Drained` answer; building
    // eagerly here once stranded a late worker against a coordinator that
    // had already finished. Until the session exists we lease with the
    // job's advertised fingerprint; the rebuilt session must then match
    // it or the job is unservable.
    let target = resolve(&job.workload).ok_or_else(|| {
        DistError::JobMismatch(format!("unresolvable workload {:?}", job.workload))
    })?;
    let tags = certa_core::analyze(target.program());
    let mut config = job.config.clone();
    config.threads = opts
        .threads_override
        .unwrap_or(job.worker_threads as usize);
    let ctx = WorkerContext {
        addr,
        fingerprint: job.fingerprint,
        target: target.as_ref(),
        tags: &tags,
        config,
        opts,
    };
    let mut session: Option<CampaignSession<'_>> = None;
    let mut pending: Option<PendingComplete> = None;

    loop {
        let served = serve(
            &ctx,
            &mut channel,
            worker,
            epoch,
            &mut session,
            &mut pending,
            &mut report,
        );
        match served {
            Ok(Served::Done) => {
                channel.retire(&mut report);
                if let Some(chaos) = &opts.chaos {
                    report.chaos = chaos.counts();
                }
                return Ok(report);
            }
            Ok(Served::Fenced) => {}
            Err(DistError::Io(_)) => {}
            Err(DistError::Frame(_)) => {
                // The peer (or the chaos layer) sent garbage; the
                // connection is untrusted. Same recovery as a loss.
                report.corrupt_frames += 1;
            }
            Err(fatal) => return Err(fatal),
        }
        channel.retire(&mut report);
        // Re-attach (failed attempts count toward the consecutive-failure
        // budget until a Welcome lands). A different fingerprint means
        // the restarted coordinator is running a different campaign — the
        // session we hold cannot serve it, so that is fatal, not
        // retriable.
        let (new_channel, new_worker, new_epoch, new_job) =
            attach(addr, opts, &mut report, &mut failures, &mut connected_before)?;
        if new_job.fingerprint != ctx.fingerprint {
            return Err(DistError::JobMismatch(format!(
                "re-attach welcomed to a different job: fingerprint {:#x} != {:#x}",
                new_job.fingerprint, ctx.fingerprint
            )));
        }
        if new_epoch != epoch {
            // The old incarnation is dead; anything staged for it is
            // void. (A completion fenced by an explicit Ack was already
            // dropped and counted in `deliver`.)
            if pending.take().is_some() {
                report.stale_epoch_drops += 1;
            }
        }
        channel = new_channel;
        worker = new_worker;
        epoch = new_epoch;
        report.worker = worker;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let base = Duration::from_millis(50);
        let cap = Duration::from_secs(2);
        let mut previous_ceiling = Duration::ZERO;
        for attempt in 0..8 {
            let ceiling = base.saturating_mul(1 << attempt).min(cap);
            let delay = backoff_delay(attempt, base, cap, 42);
            assert!(delay <= ceiling, "attempt {attempt}: {delay:?} > {ceiling:?}");
            assert!(
                delay >= ceiling / 2,
                "attempt {attempt}: {delay:?} < half of {ceiling:?}"
            );
            assert!(ceiling >= previous_ceiling);
            previous_ceiling = ceiling;
        }
        assert_eq!(
            base.saturating_mul(1 << 7).min(cap),
            cap,
            "late attempts are capped"
        );
    }

    #[test]
    fn backoff_is_deterministic_per_seed_and_attempt() {
        let base = Duration::from_millis(50);
        let cap = Duration::from_secs(2);
        assert_eq!(
            backoff_delay(3, base, cap, 7),
            backoff_delay(3, base, cap, 7)
        );
        // Different seeds de-synchronize workers (not guaranteed for
        // every pair, but this pair is fixed).
        assert_ne!(
            backoff_delay(3, base, cap, 7),
            backoff_delay(3, base, cap, 8)
        );
    }

    #[test]
    fn backoff_survives_huge_attempt_values() {
        // `base << 40` would overflow the u32 multiplier; the exponent
        // clamp (16) plus the pre-jitter cap must keep any attempt
        // number finite and within `cap`.
        let base = Duration::from_millis(50);
        let cap = Duration::from_secs(2);
        for attempt in [17, 40, 1000, u32::MAX] {
            let delay = backoff_delay(attempt, base, cap, 9);
            assert!(delay <= cap, "attempt {attempt}: {delay:?} > {cap:?}");
            assert!(delay >= cap / 2, "attempt {attempt}: {delay:?} < half cap");
        }
    }

    #[test]
    fn backoff_handles_zero_base() {
        assert_eq!(
            backoff_delay(5, Duration::ZERO, Duration::ZERO, 1),
            Duration::ZERO
        );
    }
}

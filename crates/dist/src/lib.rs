//! # certa-dist
//!
//! The distributed campaign service: splits a fault-injection campaign
//! (`certa-fault`) along its coordinator/worker seam so trials run in
//! separate OS processes — localhost TCP first, machines later.
//!
//! * The **coordinator** ([`Coordinator`]) owns the campaign session —
//!   golden run, COW checkpoint set, pre-sampled plans — and hands out
//!   checkpoint-grouped [`certa_fault::TrialChunk`]s as **expiring
//!   leases** over a length-prefixed binary protocol ([`protocol`]).
//! * Each **worker** ([`run_worker`]) independently rebuilds the same
//!   session from the coordinator's [`JobSpec`] (construction is
//!   deterministic; [`certa_fault::CampaignSession::fingerprint`] guards
//!   against mismatch), leases chunks, runs them through the *identical*
//!   trial path as an in-process campaign, and streams back
//!   [`certa_fault::TrialRecord`]s plus harness/restore stats.
//!
//! ## Robustness model
//!
//! The same containment story as the per-trial harness, one level up: a
//! whole worker must be un-droppable.
//!
//! * Workers heartbeat leased chunks on an interval; a missed heartbeat
//!   lets the lease expire and the chunk re-queues with a redelivery
//!   count ([`lease::LeaseTable`]).
//! * Chunk re-execution is **idempotent**: trial ids are deterministic,
//!   so a re-leased chunk overwrites the same records instead of
//!   double-counting, and duplicate completions are detected and counted
//!   as stale.
//! * Workers reconnect with exponential backoff plus jitter after a
//!   coordinator restart or connection loss.
//! * The coordinator degrades to in-process execution when no worker
//!   ever attaches ([`DistConfig::fallback_inline`]).
//! * The **coordinator itself** is expendable when run durably
//!   ([`Coordinator::run_durable`]): every Fresh chunk completion is
//!   appended to a write-ahead [`journal`] before it is merged, so a
//!   restarted coordinator replays completed chunks, re-queues the
//!   rest, and fences off deliveries from its dead predecessor with a
//!   monotonic epoch ([`ResumeStats`] reports what recovery did).
//! * `verify_reconciliation` extends across the wire: the assembled
//!   [`certa_fault::CampaignResult`] must satisfy scheduled = completed +
//!   harness errors *globally*, counting only accepted (first)
//!   completions — worker kills notwithstanding — with per-worker
//!   attribution in the [`WorkerLedger`].

pub mod chaos;
mod coordinator;
pub mod journal;
pub mod lease;
pub mod protocol;
mod worker;

use std::fmt;

pub use chaos::{Chaos, ChaosConfig, ChaosCounts, ChaosFault, ChaosListener, ChaosStream, NetStream};
pub use coordinator::{
    Coordinator, CoordinatorSabotage, DistConfig, DistProgress, DistResult, ResumeStats,
    VerdictClassifier, WireStats, WorkerLedger, REPLAY_LEDGER_NAME,
};
pub use journal::{ChunkRecord, Journal, JournalError, JournalFaultInjection, JournalIdentity};
pub use protocol::{FrameCodec, FrameError, JobSpec};
pub use worker::{
    backoff_delay, run_worker, TargetResolver, WorkerOptions, WorkerReport, WorkerSabotage,
};

/// Why a distributed campaign (or one worker) failed.
#[derive(Debug)]
pub enum DistError {
    /// A socket operation failed.
    Io(std::io::Error),
    /// The peer spoke the protocol wrong (bad frame, bad tag, unexpected
    /// message).
    Protocol(String),
    /// The worker's independently built session does not match the
    /// coordinator's job (different binary, workload, or configuration).
    JobMismatch(String),
    /// The campaign drained but some trial records are missing — a
    /// coordinator bug, never an acceptable outcome.
    Incomplete(String),
    /// The assembled global result failed
    /// [`certa_fault::CampaignResult::verify_reconciliation`].
    Reconciliation(String),
    /// The write-ahead journal could not be opened, or its valid prefix
    /// belongs to a different campaign (see [`JournalError`]).
    Journal(String),
    /// The coordinator aborted mid-campaign (today only via
    /// [`CoordinatorSabotage::die_after_fresh`] in crash-recovery
    /// tests); a durable run can be resumed from its journal.
    Crashed(String),
    /// A frame failed an integrity check — oversize length prefix,
    /// checksum mismatch, or sequence gap ([`FrameError::Corrupt`]).
    /// The connection was dropped without acting on the payload; for a
    /// worker this is retriable through the same reattach machinery as
    /// connection loss.
    Frame(String),
    /// Shared-secret authentication failed, or a non-loopback listener
    /// was started without a secret configured. Never retriable.
    Auth(String),
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::Io(e) => write!(f, "i/o error: {e}"),
            DistError::Protocol(what) => write!(f, "protocol error: {what}"),
            DistError::JobMismatch(what) => write!(f, "job mismatch: {what}"),
            DistError::Incomplete(what) => write!(f, "incomplete campaign: {what}"),
            DistError::Reconciliation(what) => write!(f, "reconciliation failed: {what}"),
            DistError::Journal(what) => write!(f, "journal error: {what}"),
            DistError::Crashed(what) => write!(f, "coordinator crashed: {what}"),
            DistError::Frame(what) => write!(f, "frame integrity failure: {what}"),
            DistError::Auth(what) => write!(f, "authentication failure: {what}"),
        }
    }
}

impl std::error::Error for DistError {}

impl From<std::io::Error> for DistError {
    fn from(e: std::io::Error) -> Self {
        DistError::Io(e)
    }
}

impl From<FrameError> for DistError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(io) => DistError::Io(io),
            FrameError::Corrupt(what) => DistError::Frame(what.to_string()),
            FrameError::Oversize(len) => {
                DistError::Protocol(format!("frame payload of {len} bytes exceeds cap"))
            }
        }
    }
}

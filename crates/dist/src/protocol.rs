//! Wire protocol between coordinator and workers.
//!
//! Transport: one TCP connection per worker command stream (plus
//! short-lived connections for heartbeats), carrying checksummed,
//! sequence-numbered frames (see [`FrameCodec`]) capped at
//! [`MAX_FRAME_BYTES`]. Payloads are encoded with the hand-rolled
//! bincode-style format of [`certa_fault::wire`]; every message starts
//! with a one-byte message tag.
//!
//! The exchange is strictly request/response, worker-initiated (the
//! coordinator never pushes), which keeps the coordinator's per-connection
//! state machine trivial and makes worker loss indistinguishable from
//! worker silence — exactly the failure model the lease table handles.
//!
//! ```text
//! worker                         coordinator
//!   | -- Hello{version,name,token,challenge} -> | register worker (verify token)
//!   | <-- Welcome{worker,job,ep,proof} -------- | job spec + worker id + epoch
//!   | -- Lease{worker,fp} -------------------->  | expire stale leases, grant
//!   | <-- Grant{lease,chunk,ep,.} ------------- |    (or Wait / Drained / Reject)
//!   | -- Heartbeat{lease,ep} ----------------->  | renew expiry  (own connection)
//!   | -- Complete{lease,ep,recs} ------------->  | accept (fresh) or drop (stale)
//!   | <-- Ack{accepted,ep} -------------------- |
//! ```
//!
//! ## Frame format (v3)
//!
//! ```text
//! frame := u32 payload-len ++ u64 seq ++ u64 fnv1a-64(seq ++ payload) ++ payload
//! ```
//!
//! All integers little-endian. `seq` counts frames per connection per
//! direction, starting at zero; the checksum covers the sequence number
//! and the payload, so neither can be flipped undetected. The receiver:
//!
//! * rejects a length prefix over [`MAX_FRAME_BYTES`] as
//!   [`FrameError::Corrupt`] without allocating;
//! * rejects a checksum mismatch as [`FrameError::Corrupt`] — the caller
//!   must drop the **connection**, never act on the payload;
//! * silently drops a frame whose `seq` is below the expected one (a
//!   duplicated frame — delivered twice by a faulty transport — has
//!   already been acted on) and counts it;
//! * rejects a `seq` above the expected one (a lost or reordered frame)
//!   as [`FrameError::Corrupt`].
//!
//! Dropping duplicates at the framing layer is what preserves the strict
//! request/response pairing under chaos: without it, one duplicated
//! request would elicit two responses and desynchronise the stream for
//! good.
//!
//! ## Authentication
//!
//! [`Request::Hello`] carries `token = fnv(tag ++ secret ++ name)` and a
//! random `challenge`; [`Response::Welcome`] answers with
//! `proof = fnv(tag ++ secret ++ challenge)`. A coordinator configured
//! with a shared secret rejects Hellos with the wrong token (counted,
//! never served); a worker configured with a secret verifies the proof,
//! so neither side talks to an imposter. Non-loopback listeners refuse to
//! start without a secret. This is integrity-plus-identity, not
//! confidentiality: payloads are cleartext by design (trusted networks),
//! and the fnv construction gates accidents and chaos, not cryptanalysis.
//!
//! ## Epoch fencing
//!
//! Every coordinator incarnation runs under a monotonic **epoch**
//! (persisted in the durable journal — see `certa-dist`'s `journal`
//! module). [`Response::Welcome`], [`Response::Grant`], and
//! [`Response::Ack`] carry it; [`Request::Heartbeat`] and
//! [`Request::Complete`] must echo it. A completion stamped with a
//! pre-restart epoch is rejected (`Ack { accepted: false }`) and counted
//! as stale: lease ids restart from zero in a restarted coordinator, so
//! without the fence a chunk executed against the dead incarnation could
//! collide with a live lease id and double-merge after recovery.

use std::io::{Read, Write};

use certa_fault::wire::{
    decode_campaign_config, decode_harness_stats, decode_restore_stats, decode_trial_record,
    encode_campaign_config, encode_harness_stats, encode_restore_stats, encode_trial_record,
    ByteReader, ByteWriter, WireError,
};
use certa_fault::{CampaignConfig, HarnessStats, RestoreStats, TrialRecord};

/// Protocol version; a [`Request::Hello`] with any other version is
/// rejected. Bump on any frame-format change.
///
/// Version history: 1 = initial lease protocol; 2 = epoch fencing
/// (`Welcome`/`Grant`/`Ack` carry the coordinator epoch,
/// `Heartbeat`/`Complete` echo it); 3 = hardened framing (per-frame
/// FNV-1a checksum + sequence number, shared-secret challenge/response
/// in `Hello`/`Welcome`).
pub const PROTOCOL_VERSION: u32 = 3;

/// Upper bound on one frame's payload. Generous — the largest real frame
/// is a [`Request::Complete`] carrying one chunk's trial records — but
/// finite, so a corrupt length prefix cannot make a peer allocate
/// unboundedly.
pub const MAX_FRAME_BYTES: u32 = 64 << 20;

/// Bytes of frame header preceding the payload: `u32` length, `u64`
/// sequence number, `u64` FNV-1a checksum.
pub const FRAME_HEADER_BYTES: usize = 4 + 8 + 8;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit — the workspace's standard content hash (same constants
/// as the session fingerprint and the journal record checksum).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_with(FNV_OFFSET, bytes)
}

/// Continues an FNV-1a chain from `seed` over `bytes`, so multi-field
/// hashes need no intermediate buffer.
pub(crate) fn fnv1a_with(seed: u64, bytes: &[u8]) -> u64 {
    let mut hash = seed;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

fn frame_checksum(seq: u64, payload: &[u8]) -> u64 {
    fnv1a_with(fnv1a(&seq.to_le_bytes()), payload)
}

/// The `Hello` token for `name` under `secret`: proves the worker knows
/// the shared secret without shipping it.
#[must_use]
pub fn auth_token(secret: &str, name: &str) -> u64 {
    let hash = fnv1a(b"certa-hello-token");
    let hash = fnv1a_with(hash, secret.as_bytes());
    fnv1a_with(hash, name.as_bytes())
}

/// The `Welcome` proof for a `Hello`'s `challenge` under `secret`: proves
/// the coordinator knows the shared secret too (a fresh challenge per
/// attach keeps a recorded `Welcome` from being replayed by an imposter).
#[must_use]
pub fn auth_proof(secret: &str, challenge: u64) -> u64 {
    let hash = fnv1a(b"certa-welcome-proof");
    let hash = fnv1a_with(hash, secret.as_bytes());
    fnv1a_with(hash, &challenge.to_le_bytes())
}

/// A framing-layer failure, distinct from socket errors so callers can
/// tell "the peer vanished" (retry via the usual reattach machinery) from
/// "the peer sent garbage" (drop the connection, count the corruption,
/// then retry via the same machinery).
#[derive(Debug)]
pub enum FrameError {
    /// Socket-level failure (including read/write timeouts, surfaced as
    /// [`std::io::ErrorKind::WouldBlock`] / `TimedOut`).
    Io(std::io::Error),
    /// The frame failed an integrity check: oversize length prefix,
    /// checksum mismatch, or sequence gap. The connection is untrusted
    /// from this point on and must be dropped.
    Corrupt(&'static str),
    /// A locally produced payload exceeds [`MAX_FRAME_BYTES`]; carries
    /// the offending length. Checked against `usize` *before* any `u32`
    /// conversion, so a >4 GiB payload cannot saturate its way past the
    /// cap.
    Oversize(usize),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(err) => write!(f, "frame io: {err}"),
            FrameError::Corrupt(what) => write!(f, "frame corrupt: {what}"),
            FrameError::Oversize(len) => {
                write!(f, "frame payload of {len} bytes exceeds MAX_FRAME_BYTES")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(err: std::io::Error) -> Self {
        FrameError::Io(err)
    }
}

impl FrameError {
    /// Whether this is a socket timeout (as opposed to EOF, reset, or
    /// corruption).
    #[must_use]
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            FrameError::Io(err) if matches!(
                err.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            )
        )
    }
}

/// Validates a to-be-sent payload length against [`MAX_FRAME_BYTES`] in
/// `usize` space — the length is only narrowed to `u32` *after* the cap
/// check, so a >4 GiB payload rejects cleanly instead of saturating.
///
/// # Errors
///
/// [`FrameError::Oversize`] when `len` exceeds the cap.
pub fn check_frame_len(len: usize) -> Result<u32, FrameError> {
    if len > MAX_FRAME_BYTES as usize {
        return Err(FrameError::Oversize(len));
    }
    Ok(u32::try_from(len).expect("MAX_FRAME_BYTES fits in u32"))
}

/// Reads exactly `len` payload bytes, growing the buffer in bounded
/// steps: an adversarial length prefix that passes the cap check still
/// cannot make the receiver allocate [`MAX_FRAME_BYTES`] up front for a
/// stream that delivers nothing.
fn read_capped(stream: &mut impl Read, len: usize) -> Result<Vec<u8>, FrameError> {
    const STEP: usize = 1 << 20;
    let mut payload = Vec::new();
    while payload.len() < len {
        let start = payload.len();
        payload.resize(start + (len - start).min(STEP), 0);
        stream.read_exact(&mut payload[start..])?;
    }
    Ok(payload)
}

/// Per-connection, per-direction frame state: the next sequence number to
/// stamp on writes, the next expected on reads, and the count of
/// duplicated frames silently dropped.
///
/// One codec per connection, on each side; the two directions keep
/// independent counters inside it. Sockets are never reused across
/// logical connections, so sequence numbers never wrap in practice.
#[derive(Debug, Default)]
pub struct FrameCodec {
    send_seq: u64,
    recv_seq: u64,
    /// Frames discarded because their sequence number had already been
    /// accepted — the transport delivered them twice.
    pub duplicates_dropped: u64,
}

impl FrameCodec {
    /// A fresh codec for a fresh connection.
    #[must_use]
    pub fn new() -> Self {
        FrameCodec::default()
    }

    /// Writes one checksummed, sequence-numbered frame. The frame is
    /// assembled in memory and sent with a single `write_all`, so a
    /// fault-injecting transport observes exactly one write per frame.
    ///
    /// # Errors
    ///
    /// [`FrameError::Oversize`] for payloads over [`MAX_FRAME_BYTES`];
    /// [`FrameError::Io`] for socket errors (including write timeouts).
    pub fn write_frame(
        &mut self,
        stream: &mut impl Write,
        payload: &[u8],
    ) -> Result<(), FrameError> {
        let len = check_frame_len(payload.len())?;
        let seq = self.send_seq;
        let mut frame = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&seq.to_le_bytes());
        frame.extend_from_slice(&frame_checksum(seq, payload).to_le_bytes());
        frame.extend_from_slice(payload);
        stream.write_all(&frame)?;
        stream.flush()?;
        // Only burn the sequence number once the transport accepted the
        // bytes; a failed write leaves the stream dead either way.
        self.send_seq += 1;
        Ok(())
    }

    /// Reads frames until one carries the expected sequence number,
    /// silently dropping duplicated frames (counted in
    /// [`FrameCodec::duplicates_dropped`]).
    ///
    /// # Errors
    ///
    /// [`FrameError::Io`] for socket errors (including read timeouts);
    /// [`FrameError::Corrupt`] for an oversize length prefix, checksum
    /// mismatch, or sequence gap — the caller must drop the connection
    /// and must not act on any part of the frame.
    pub fn read_frame(&mut self, stream: &mut impl Read) -> Result<Vec<u8>, FrameError> {
        loop {
            let mut header = [0u8; FRAME_HEADER_BYTES];
            stream.read_exact(&mut header)?;
            let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
            if len > MAX_FRAME_BYTES {
                return Err(FrameError::Corrupt("length prefix exceeds MAX_FRAME_BYTES"));
            }
            let seq = u64::from_le_bytes(header[4..12].try_into().expect("8 bytes"));
            let checksum = u64::from_le_bytes(header[12..20].try_into().expect("8 bytes"));
            let payload = read_capped(stream, len as usize)?;
            if frame_checksum(seq, &payload) != checksum {
                return Err(FrameError::Corrupt("frame checksum mismatch"));
            }
            if seq < self.recv_seq {
                self.duplicates_dropped += 1;
                continue;
            }
            if seq > self.recv_seq {
                return Err(FrameError::Corrupt("frame sequence gap"));
            }
            self.recv_seq += 1;
            return Ok(payload);
        }
    }
}

/// Everything a worker needs to rebuild the coordinator's campaign
/// session from scratch: the workload (resolved by name on the worker
/// side), the campaign configuration, and the coordinator's session
/// fingerprint the worker must independently reproduce.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Workload name (e.g. `"adpcm"`); the worker's resolver maps it to a
    /// [`certa_fault::Target`].
    pub workload: String,
    /// The campaign configuration (sabotage excluded — see
    /// [`certa_fault::wire`]).
    pub config: CampaignConfig,
    /// The coordinator session's
    /// [`certa_fault::CampaignSession::fingerprint`].
    pub fingerprint: u64,
    /// Worker threads each worker process should run trials with.
    pub worker_threads: u32,
}

/// Worker → coordinator messages.
#[derive(Debug)]
pub enum Request {
    /// Introduce this worker process and negotiate the protocol version.
    Hello {
        /// Must equal [`PROTOCOL_VERSION`].
        version: u32,
        /// Human-readable worker name for the ledger.
        name: String,
        /// [`auth_token`] over the shared secret and `name`; zero when
        /// the worker has no secret configured. A coordinator configured
        /// with a secret rejects mismatches.
        token: u64,
        /// Fresh random nonce; the coordinator's [`Response::Welcome`]
        /// must answer with [`auth_proof`] over it.
        challenge: u64,
    },
    /// Ask for a chunk lease.
    Lease {
        /// Worker id from [`Response::Welcome`].
        worker: u32,
        /// The worker's independently computed session fingerprint.
        fingerprint: u64,
    },
    /// Renew a lease's expiry (sent on a short-lived side connection so
    /// it never interleaves with an in-flight request).
    Heartbeat {
        /// Worker id from [`Response::Welcome`].
        worker: u32,
        /// The lease being renewed.
        lease: u64,
        /// The coordinator epoch the lease was granted under; a renewal
        /// from a dead incarnation's epoch is refused.
        epoch: u64,
    },
    /// Deliver a completed chunk's records and stat deltas.
    Complete {
        /// Worker id from [`Response::Welcome`].
        worker: u32,
        /// The lease the chunk was run under (possibly already expired —
        /// completion of a not-yet-completed chunk is accepted anyway,
        /// because re-execution is idempotent).
        lease: u64,
        /// The chunk id.
        chunk: u32,
        /// The coordinator epoch the lease was granted under; a delivery
        /// stamped with another epoch is rejected as stale and counted,
        /// never merged.
        epoch: u64,
        /// `(trial id, record)` pairs, one per trial of the chunk.
        records: Vec<(u32, TrialRecord)>,
        /// Harness-counter delta attributable to this chunk.
        harness: HarnessStats,
        /// Restore-counter delta attributable to this chunk.
        restores: RestoreStats,
    },
}

/// Coordinator → worker messages.
#[derive(Debug)]
pub enum Response {
    /// Reply to [`Request::Hello`].
    Welcome {
        /// The worker id to present in subsequent requests.
        worker: u32,
        /// The job to build a session for.
        job: JobSpec,
        /// The coordinator incarnation's epoch. A worker observing a new
        /// epoch on re-`Hello` must drop any leases and undelivered
        /// completions from the old one.
        epoch: u64,
        /// [`auth_proof`] over the `Hello`'s challenge; zero when the
        /// coordinator has no secret configured. A worker configured with
        /// a secret treats a mismatch as fatal.
        proof: u64,
    },
    /// A chunk lease.
    Grant {
        /// Lease id (unique per grant, including re-grants of one chunk).
        /// The id namespace is per-epoch: a restarted coordinator reuses
        /// ids, which is why completions carry the epoch.
        lease: u64,
        /// Chunk id to report back in [`Request::Complete`].
        chunk: u32,
        /// The chunk's trial ids.
        trials: Vec<u32>,
        /// Lease time-to-live; heartbeat well within it.
        ttl_ms: u64,
        /// The epoch this lease is valid under; echo it in
        /// [`Request::Heartbeat`] and [`Request::Complete`].
        epoch: u64,
    },
    /// Nothing leasable right now (everything is leased out); poll again
    /// after `poll_ms`.
    Wait {
        /// Suggested delay before the next [`Request::Lease`].
        poll_ms: u64,
    },
    /// Every chunk is completed; the worker can exit.
    Drained,
    /// Reply to [`Request::Heartbeat`] and [`Request::Complete`]:
    /// whether the renewal/delivery was accepted (`false` = lease
    /// unknown/expired for heartbeats, duplicate or stale-epoch
    /// completion for completes — all harmless by idempotency).
    Ack {
        /// Whether the request took effect.
        accepted: bool,
        /// The coordinator's *current* epoch — lets a worker learn it was
        /// fenced without waiting for the next re-`Hello`.
        epoch: u64,
    },
    /// The request cannot be served (version, fingerprint, or shared
    /// secret mismatch, malformed chunk). The worker should give up, not
    /// retry.
    Reject {
        /// Human-readable reason.
        reason: String,
    },
}

fn encode_job_spec(w: &mut ByteWriter, job: &JobSpec) {
    w.str(&job.workload);
    encode_campaign_config(w, &job.config);
    w.u64(job.fingerprint);
    w.u32(job.worker_threads);
}

fn decode_job_spec(r: &mut ByteReader<'_>) -> Result<JobSpec, WireError> {
    Ok(JobSpec {
        workload: r.str()?,
        config: decode_campaign_config(r)?,
        fingerprint: r.u64()?,
        worker_threads: r.u32()?,
    })
}

/// Cap on `Vec::with_capacity` pre-allocation while decoding adversarial
/// counts: large honest collections still decode (the loop pushes past
/// the capacity), but a forged count cannot reserve more than this many
/// elements up front.
const DECODE_PREALLOC_CAP: usize = 4096;

impl Request {
    /// Encodes this request as one frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Request::Hello {
                version,
                name,
                token,
                challenge,
            } => {
                w.u8(0);
                w.u32(*version);
                w.str(name);
                w.u64(*token);
                w.u64(*challenge);
            }
            Request::Lease {
                worker,
                fingerprint,
            } => {
                w.u8(1);
                w.u32(*worker);
                w.u64(*fingerprint);
            }
            Request::Heartbeat {
                worker,
                lease,
                epoch,
            } => {
                w.u8(2);
                w.u32(*worker);
                w.u64(*lease);
                w.u64(*epoch);
            }
            Request::Complete {
                worker,
                lease,
                chunk,
                epoch,
                records,
                harness,
                restores,
            } => {
                w.u8(3);
                w.u32(*worker);
                w.u64(*lease);
                w.u32(*chunk);
                w.u64(*epoch);
                w.u32(u32::try_from(records.len()).expect("chunk fits in u32"));
                for (trial, record) in records {
                    w.u32(*trial);
                    encode_trial_record(&mut w, record);
                }
                encode_harness_stats(&mut w, harness);
                encode_restore_stats(&mut w, restores);
            }
        }
        w.finish()
    }

    /// Decodes one frame payload.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncation, bad tags, or trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Request, WireError> {
        let mut r = ByteReader::new(payload);
        let request = match r.u8()? {
            0 => Request::Hello {
                version: r.u32()?,
                name: r.str()?,
                token: r.u64()?,
                challenge: r.u64()?,
            },
            1 => Request::Lease {
                worker: r.u32()?,
                fingerprint: r.u64()?,
            },
            2 => Request::Heartbeat {
                worker: r.u32()?,
                lease: r.u64()?,
                epoch: r.u64()?,
            },
            3 => {
                let worker = r.u32()?;
                let lease = r.u64()?;
                let chunk = r.u32()?;
                let epoch = r.u64()?;
                let count = r.u32()? as usize;
                let mut records = Vec::with_capacity(count.min(DECODE_PREALLOC_CAP));
                for _ in 0..count {
                    let trial = r.u32()?;
                    records.push((trial, decode_trial_record(&mut r)?));
                }
                Request::Complete {
                    worker,
                    lease,
                    chunk,
                    epoch,
                    records,
                    harness: decode_harness_stats(&mut r)?,
                    restores: decode_restore_stats(&mut r)?,
                }
            }
            _ => return Err(WireError::Malformed("request tag")),
        };
        r.expect_end()?;
        Ok(request)
    }
}

impl Response {
    /// Encodes this response as one frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Response::Welcome {
                worker,
                job,
                epoch,
                proof,
            } => {
                w.u8(0);
                w.u32(*worker);
                encode_job_spec(&mut w, job);
                w.u64(*epoch);
                w.u64(*proof);
            }
            Response::Grant {
                lease,
                chunk,
                trials,
                ttl_ms,
                epoch,
            } => {
                w.u8(1);
                w.u64(*lease);
                w.u32(*chunk);
                w.u32(u32::try_from(trials.len()).expect("chunk fits in u32"));
                for trial in trials {
                    w.u32(*trial);
                }
                w.u64(*ttl_ms);
                w.u64(*epoch);
            }
            Response::Wait { poll_ms } => {
                w.u8(2);
                w.u64(*poll_ms);
            }
            Response::Drained => w.u8(3),
            Response::Ack { accepted, epoch } => {
                w.u8(4);
                w.bool(*accepted);
                w.u64(*epoch);
            }
            Response::Reject { reason } => {
                w.u8(5);
                w.str(reason);
            }
        }
        w.finish()
    }

    /// Decodes one frame payload.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncation, bad tags, or trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Response, WireError> {
        let mut r = ByteReader::new(payload);
        let response = match r.u8()? {
            0 => Response::Welcome {
                worker: r.u32()?,
                job: decode_job_spec(&mut r)?,
                epoch: r.u64()?,
                proof: r.u64()?,
            },
            1 => {
                let lease = r.u64()?;
                let chunk = r.u32()?;
                let count = r.u32()? as usize;
                let mut trials = Vec::with_capacity(count.min(DECODE_PREALLOC_CAP));
                for _ in 0..count {
                    trials.push(r.u32()?);
                }
                Response::Grant {
                    lease,
                    chunk,
                    trials,
                    ttl_ms: r.u64()?,
                    epoch: r.u64()?,
                }
            }
            2 => Response::Wait { poll_ms: r.u64()? },
            3 => Response::Drained,
            4 => Response::Ack {
                accepted: r.bool()?,
                epoch: r.u64()?,
            },
            5 => Response::Reject { reason: r.str()? },
            _ => return Err(WireError::Malformed("response tag")),
        };
        r.expect_end()?;
        Ok(response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certa_fault::{TrialResult, TrialStatus};

    #[test]
    fn requests_roundtrip() {
        let record = TrialRecord {
            status: TrialStatus::Completed(TrialResult {
                outcome: certa_sim::Outcome::Halted,
                output: Some(vec![1, 2, 3]),
                instructions: 42,
                injected: 2,
            }),
            retries: 0,
        };
        let requests = [
            Request::Hello {
                version: PROTOCOL_VERSION,
                name: "w1".into(),
                token: auth_token("s3cret", "w1"),
                challenge: 0xfeed_beef,
            },
            Request::Lease {
                worker: 3,
                fingerprint: 0xABCD,
            },
            Request::Heartbeat {
                worker: 3,
                lease: 17,
                epoch: 2,
            },
            Request::Complete {
                worker: 3,
                lease: 17,
                chunk: 5,
                epoch: 2,
                records: vec![(9, record.clone()), (11, record)],
                harness: HarnessStats {
                    panics: 1,
                    ..HarnessStats::default()
                },
                restores: RestoreStats {
                    dirty_page: 4,
                    ..RestoreStats::default()
                },
            },
        ];
        for request in &requests {
            let bytes = request.encode();
            let back = Request::decode(&bytes).expect("decodes");
            assert_eq!(format!("{back:?}"), format!("{request:?}"));
        }
    }

    #[test]
    fn responses_roundtrip() {
        let responses = [
            Response::Welcome {
                worker: 1,
                job: JobSpec {
                    workload: "sum".into(),
                    config: CampaignConfig::default(),
                    fingerprint: 99,
                    worker_threads: 2,
                },
                epoch: 3,
                proof: auth_proof("s3cret", 0xfeed_beef),
            },
            Response::Grant {
                lease: 8,
                chunk: 2,
                trials: vec![1, 5, 9],
                ttl_ms: 5000,
                epoch: 3,
            },
            Response::Wait { poll_ms: 100 },
            Response::Drained,
            Response::Ack {
                accepted: true,
                epoch: 3,
            },
            Response::Reject {
                reason: "fingerprint mismatch".into(),
            },
        ];
        for response in &responses {
            let bytes = response.encode();
            let back = Response::decode(&bytes).expect("decodes");
            assert_eq!(format!("{back:?}"), format!("{response:?}"));
        }
    }

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let payload = Request::Lease {
            worker: 1,
            fingerprint: 2,
        }
        .encode();
        let mut writer = FrameCodec::new();
        let mut reader = FrameCodec::new();
        let mut buf = Vec::new();
        writer.write_frame(&mut buf, &payload).unwrap();
        writer.write_frame(&mut buf, b"second").unwrap();
        let mut cursor = &buf[..];
        assert_eq!(reader.read_frame(&mut cursor).unwrap(), payload);
        assert_eq!(reader.read_frame(&mut cursor).unwrap(), b"second");
        assert!(cursor.is_empty());
        assert_eq!(reader.duplicates_dropped, 0);
    }

    #[test]
    fn oversize_length_prefix_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_le_bytes());
        buf.extend_from_slice(&[0u8; 16]);
        let mut cursor = &buf[..];
        let err = FrameCodec::new().read_frame(&mut cursor).unwrap_err();
        assert!(matches!(err, FrameError::Corrupt(_)), "{err}");
    }

    #[test]
    fn oversize_payload_is_rejected_before_narrowing() {
        // A payload whose length only overflows after `u32` truncation:
        // 5 GiB reports as ~1 GiB if narrowed first. The guard must
        // compare in usize space (satellite: the old guard saturated
        // `u32::try_from(...).unwrap_or(u32::MAX)` and could not tell
        // 4 GiB + 1 from u32::MAX).
        let huge = 5usize << 30;
        assert!(matches!(
            check_frame_len(huge),
            Err(FrameError::Oversize(len)) if len == huge
        ));
        assert!(check_frame_len(MAX_FRAME_BYTES as usize).is_ok());
        assert!(matches!(
            check_frame_len(MAX_FRAME_BYTES as usize + 1),
            Err(FrameError::Oversize(_))
        ));
    }

    #[test]
    fn corrupt_payload_fails_the_checksum() {
        let mut writer = FrameCodec::new();
        let mut buf = Vec::new();
        writer.write_frame(&mut buf, b"hello world").unwrap();
        let victim = FRAME_HEADER_BYTES + 3;
        buf[victim] ^= 0x40;
        let mut cursor = &buf[..];
        let err = FrameCodec::new().read_frame(&mut cursor).unwrap_err();
        assert!(
            matches!(err, FrameError::Corrupt("frame checksum mismatch")),
            "{err}"
        );
    }

    #[test]
    fn corrupt_sequence_number_fails_the_checksum() {
        let mut writer = FrameCodec::new();
        let mut buf = Vec::new();
        writer.write_frame(&mut buf, b"payload").unwrap();
        // The checksum covers the sequence number, so flipping seq bits
        // cannot smuggle a replay past the duplicate filter.
        buf[5] ^= 0x01;
        let mut cursor = &buf[..];
        let err = FrameCodec::new().read_frame(&mut cursor).unwrap_err();
        assert!(matches!(err, FrameError::Corrupt(_)), "{err}");
    }

    #[test]
    fn duplicated_frames_are_dropped_and_counted() {
        let mut writer = FrameCodec::new();
        let mut first = Vec::new();
        writer.write_frame(&mut first, b"frame zero").unwrap();
        let mut second = Vec::new();
        writer.write_frame(&mut second, b"frame one").unwrap();

        // The transport delivers frame zero twice, then frame one.
        let mut buf = Vec::new();
        buf.extend_from_slice(&first);
        buf.extend_from_slice(&first);
        buf.extend_from_slice(&second);

        let mut reader = FrameCodec::new();
        let mut cursor = &buf[..];
        assert_eq!(reader.read_frame(&mut cursor).unwrap(), b"frame zero");
        assert_eq!(reader.read_frame(&mut cursor).unwrap(), b"frame one");
        assert!(cursor.is_empty());
        assert_eq!(reader.duplicates_dropped, 1);
    }

    #[test]
    fn sequence_gaps_are_rejected() {
        let mut writer = FrameCodec::new();
        let mut skipped = Vec::new();
        writer.write_frame(&mut skipped, b"frame zero").unwrap();
        let mut buf = Vec::new();
        writer.write_frame(&mut buf, b"frame one").unwrap();

        // The receiver sees frame one without ever seeing frame zero.
        let mut cursor = &buf[..];
        let err = FrameCodec::new().read_frame(&mut cursor).unwrap_err();
        assert!(
            matches!(err, FrameError::Corrupt("frame sequence gap")),
            "{err}"
        );
    }

    #[test]
    fn auth_token_and_proof_depend_on_every_input() {
        assert_ne!(auth_token("a", "w1"), auth_token("b", "w1"));
        assert_ne!(auth_token("a", "w1"), auth_token("a", "w2"));
        assert_ne!(auth_proof("a", 1), auth_proof("b", 1));
        assert_ne!(auth_proof("a", 1), auth_proof("a", 2));
        // Token and proof domains are separated: same secret, same data
        // shape, different hashes.
        assert_ne!(auth_token("a", ""), auth_proof("a", 0));
    }
}

//! Wire protocol between coordinator and workers.
//!
//! Transport: one TCP connection per worker command stream (plus
//! short-lived connections for heartbeats), carrying length-prefixed
//! frames — a little-endian `u32` payload length followed by the payload,
//! capped at [`MAX_FRAME_BYTES`]. Payloads are encoded with the
//! hand-rolled bincode-style format of [`certa_fault::wire`]; every
//! message starts with a one-byte message tag.
//!
//! The exchange is strictly request/response, worker-initiated (the
//! coordinator never pushes), which keeps the coordinator's per-connection
//! state machine trivial and makes worker loss indistinguishable from
//! worker silence — exactly the failure model the lease table handles.
//!
//! ```text
//! worker                         coordinator
//!   | -- Hello{version,name} --->  |  register worker
//!   | <-- Welcome{worker,job,ep} -  |  job spec + worker id + epoch
//!   | -- Lease{worker,fp} ------>  |  expire stale leases, grant
//!   | <-- Grant{lease,chunk,ep,.} -  |    (or Wait / Drained / Reject)
//!   | -- Heartbeat{lease,ep} --->  |  renew expiry     (own connection)
//!   | -- Complete{lease,ep,recs}>  |  accept (fresh) or drop (stale)
//!   | <-- Ack{accepted,ep} ------  |
//! ```
//!
//! ## Epoch fencing
//!
//! Every coordinator incarnation runs under a monotonic **epoch**
//! (persisted in the durable journal — see `certa-dist`'s `journal`
//! module). [`Response::Welcome`], [`Response::Grant`], and
//! [`Response::Ack`] carry it; [`Request::Heartbeat`] and
//! [`Request::Complete`] must echo it. A completion stamped with a
//! pre-restart epoch is rejected (`Ack { accepted: false }`) and counted
//! as stale: lease ids restart from zero in a restarted coordinator, so
//! without the fence a chunk executed against the dead incarnation could
//! collide with a live lease id and double-merge after recovery.

use std::io::{Read, Write};

use certa_fault::wire::{
    decode_campaign_config, decode_harness_stats, decode_restore_stats, decode_trial_record,
    encode_campaign_config, encode_harness_stats, encode_restore_stats, encode_trial_record,
    ByteReader, ByteWriter, WireError,
};
use certa_fault::{CampaignConfig, HarnessStats, RestoreStats, TrialRecord};

/// Protocol version; a [`Request::Hello`] with any other version is
/// rejected. Bump on any frame-format change.
///
/// Version history: 1 = initial lease protocol; 2 = epoch fencing
/// (`Welcome`/`Grant`/`Ack` carry the coordinator epoch,
/// `Heartbeat`/`Complete` echo it).
pub const PROTOCOL_VERSION: u32 = 2;

/// Upper bound on one frame's payload. Generous — the largest real frame
/// is a [`Request::Complete`] carrying one chunk's trial records — but
/// finite, so a corrupt length prefix cannot make a peer allocate
/// unboundedly.
pub const MAX_FRAME_BYTES: u32 = 64 << 20;

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates socket errors; rejects payloads over [`MAX_FRAME_BYTES`].
pub fn write_frame(stream: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len()).unwrap_or(u32::MAX);
    if len > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame exceeds MAX_FRAME_BYTES",
        ));
    }
    stream.write_all(&len.to_le_bytes())?;
    stream.write_all(payload)?;
    stream.flush()
}

/// Reads one length-prefixed frame.
///
/// # Errors
///
/// Propagates socket errors (including read timeouts, surfaced as
/// [`std::io::ErrorKind::WouldBlock`] / `TimedOut`); rejects frames over
/// [`MAX_FRAME_BYTES`] with [`std::io::ErrorKind::InvalidData`].
pub fn read_frame(stream: &mut impl Read) -> std::io::Result<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    stream.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame exceeds MAX_FRAME_BYTES",
        ));
    }
    let mut payload = vec![0u8; len as usize];
    stream.read_exact(&mut payload)?;
    Ok(payload)
}

/// Everything a worker needs to rebuild the coordinator's campaign
/// session from scratch: the workload (resolved by name on the worker
/// side), the campaign configuration, and the coordinator's session
/// fingerprint the worker must independently reproduce.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Workload name (e.g. `"adpcm"`); the worker's resolver maps it to a
    /// [`certa_fault::Target`].
    pub workload: String,
    /// The campaign configuration (sabotage excluded — see
    /// [`certa_fault::wire`]).
    pub config: CampaignConfig,
    /// The coordinator session's
    /// [`certa_fault::CampaignSession::fingerprint`].
    pub fingerprint: u64,
    /// Worker threads each worker process should run trials with.
    pub worker_threads: u32,
}

/// Worker → coordinator messages.
#[derive(Debug)]
pub enum Request {
    /// Introduce this worker process and negotiate the protocol version.
    Hello {
        /// Must equal [`PROTOCOL_VERSION`].
        version: u32,
        /// Human-readable worker name for the ledger.
        name: String,
    },
    /// Ask for a chunk lease.
    Lease {
        /// Worker id from [`Response::Welcome`].
        worker: u32,
        /// The worker's independently computed session fingerprint.
        fingerprint: u64,
    },
    /// Renew a lease's expiry (sent on a short-lived side connection so
    /// it never interleaves with an in-flight request).
    Heartbeat {
        /// Worker id from [`Response::Welcome`].
        worker: u32,
        /// The lease being renewed.
        lease: u64,
        /// The coordinator epoch the lease was granted under; a renewal
        /// from a dead incarnation's epoch is refused.
        epoch: u64,
    },
    /// Deliver a completed chunk's records and stat deltas.
    Complete {
        /// Worker id from [`Response::Welcome`].
        worker: u32,
        /// The lease the chunk was run under (possibly already expired —
        /// completion of a not-yet-completed chunk is accepted anyway,
        /// because re-execution is idempotent).
        lease: u64,
        /// The chunk id.
        chunk: u32,
        /// The coordinator epoch the lease was granted under; a delivery
        /// stamped with another epoch is rejected as stale and counted,
        /// never merged.
        epoch: u64,
        /// `(trial id, record)` pairs, one per trial of the chunk.
        records: Vec<(u32, TrialRecord)>,
        /// Harness-counter delta attributable to this chunk.
        harness: HarnessStats,
        /// Restore-counter delta attributable to this chunk.
        restores: RestoreStats,
    },
}

/// Coordinator → worker messages.
#[derive(Debug)]
pub enum Response {
    /// Reply to [`Request::Hello`].
    Welcome {
        /// The worker id to present in subsequent requests.
        worker: u32,
        /// The job to build a session for.
        job: JobSpec,
        /// The coordinator incarnation's epoch. A worker observing a new
        /// epoch on re-`Hello` must drop any leases and undelivered
        /// completions from the old one.
        epoch: u64,
    },
    /// A chunk lease.
    Grant {
        /// Lease id (unique per grant, including re-grants of one chunk).
        /// The id namespace is per-epoch: a restarted coordinator reuses
        /// ids, which is why completions carry the epoch.
        lease: u64,
        /// Chunk id to report back in [`Request::Complete`].
        chunk: u32,
        /// The chunk's trial ids.
        trials: Vec<u32>,
        /// Lease time-to-live; heartbeat well within it.
        ttl_ms: u64,
        /// The epoch this lease is valid under; echo it in
        /// [`Request::Heartbeat`] and [`Request::Complete`].
        epoch: u64,
    },
    /// Nothing leasable right now (everything is leased out); poll again
    /// after `poll_ms`.
    Wait {
        /// Suggested delay before the next [`Request::Lease`].
        poll_ms: u64,
    },
    /// Every chunk is completed; the worker can exit.
    Drained,
    /// Reply to [`Request::Heartbeat`] and [`Request::Complete`]:
    /// whether the renewal/delivery was accepted (`false` = lease
    /// unknown/expired for heartbeats, duplicate or stale-epoch
    /// completion for completes — all harmless by idempotency).
    Ack {
        /// Whether the request took effect.
        accepted: bool,
        /// The coordinator's *current* epoch — lets a worker learn it was
        /// fenced without waiting for the next re-`Hello`.
        epoch: u64,
    },
    /// The request cannot be served (version or fingerprint mismatch,
    /// malformed chunk). The worker should give up, not retry.
    Reject {
        /// Human-readable reason.
        reason: String,
    },
}

fn encode_job_spec(w: &mut ByteWriter, job: &JobSpec) {
    w.str(&job.workload);
    encode_campaign_config(w, &job.config);
    w.u64(job.fingerprint);
    w.u32(job.worker_threads);
}

fn decode_job_spec(r: &mut ByteReader<'_>) -> Result<JobSpec, WireError> {
    Ok(JobSpec {
        workload: r.str()?,
        config: decode_campaign_config(r)?,
        fingerprint: r.u64()?,
        worker_threads: r.u32()?,
    })
}

impl Request {
    /// Encodes this request as one frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Request::Hello { version, name } => {
                w.u8(0);
                w.u32(*version);
                w.str(name);
            }
            Request::Lease {
                worker,
                fingerprint,
            } => {
                w.u8(1);
                w.u32(*worker);
                w.u64(*fingerprint);
            }
            Request::Heartbeat {
                worker,
                lease,
                epoch,
            } => {
                w.u8(2);
                w.u32(*worker);
                w.u64(*lease);
                w.u64(*epoch);
            }
            Request::Complete {
                worker,
                lease,
                chunk,
                epoch,
                records,
                harness,
                restores,
            } => {
                w.u8(3);
                w.u32(*worker);
                w.u64(*lease);
                w.u32(*chunk);
                w.u64(*epoch);
                w.u32(u32::try_from(records.len()).expect("chunk fits in u32"));
                for (trial, record) in records {
                    w.u32(*trial);
                    encode_trial_record(&mut w, record);
                }
                encode_harness_stats(&mut w, harness);
                encode_restore_stats(&mut w, restores);
            }
        }
        w.finish()
    }

    /// Decodes one frame payload.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncation, bad tags, or trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Request, WireError> {
        let mut r = ByteReader::new(payload);
        let request = match r.u8()? {
            0 => Request::Hello {
                version: r.u32()?,
                name: r.str()?,
            },
            1 => Request::Lease {
                worker: r.u32()?,
                fingerprint: r.u64()?,
            },
            2 => Request::Heartbeat {
                worker: r.u32()?,
                lease: r.u64()?,
                epoch: r.u64()?,
            },
            3 => {
                let worker = r.u32()?;
                let lease = r.u64()?;
                let chunk = r.u32()?;
                let epoch = r.u64()?;
                let count = r.u32()? as usize;
                let mut records = Vec::with_capacity(count.min(1 << 20));
                for _ in 0..count {
                    let trial = r.u32()?;
                    records.push((trial, decode_trial_record(&mut r)?));
                }
                Request::Complete {
                    worker,
                    lease,
                    chunk,
                    epoch,
                    records,
                    harness: decode_harness_stats(&mut r)?,
                    restores: decode_restore_stats(&mut r)?,
                }
            }
            _ => return Err(WireError::Malformed("request tag")),
        };
        r.expect_end()?;
        Ok(request)
    }
}

impl Response {
    /// Encodes this response as one frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Response::Welcome { worker, job, epoch } => {
                w.u8(0);
                w.u32(*worker);
                encode_job_spec(&mut w, job);
                w.u64(*epoch);
            }
            Response::Grant {
                lease,
                chunk,
                trials,
                ttl_ms,
                epoch,
            } => {
                w.u8(1);
                w.u64(*lease);
                w.u32(*chunk);
                w.u32(u32::try_from(trials.len()).expect("chunk fits in u32"));
                for trial in trials {
                    w.u32(*trial);
                }
                w.u64(*ttl_ms);
                w.u64(*epoch);
            }
            Response::Wait { poll_ms } => {
                w.u8(2);
                w.u64(*poll_ms);
            }
            Response::Drained => w.u8(3),
            Response::Ack { accepted, epoch } => {
                w.u8(4);
                w.bool(*accepted);
                w.u64(*epoch);
            }
            Response::Reject { reason } => {
                w.u8(5);
                w.str(reason);
            }
        }
        w.finish()
    }

    /// Decodes one frame payload.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncation, bad tags, or trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Response, WireError> {
        let mut r = ByteReader::new(payload);
        let response = match r.u8()? {
            0 => Response::Welcome {
                worker: r.u32()?,
                job: decode_job_spec(&mut r)?,
                epoch: r.u64()?,
            },
            1 => {
                let lease = r.u64()?;
                let chunk = r.u32()?;
                let count = r.u32()? as usize;
                let mut trials = Vec::with_capacity(count.min(1 << 20));
                for _ in 0..count {
                    trials.push(r.u32()?);
                }
                Response::Grant {
                    lease,
                    chunk,
                    trials,
                    ttl_ms: r.u64()?,
                    epoch: r.u64()?,
                }
            }
            2 => Response::Wait { poll_ms: r.u64()? },
            3 => Response::Drained,
            4 => Response::Ack {
                accepted: r.bool()?,
                epoch: r.u64()?,
            },
            5 => Response::Reject { reason: r.str()? },
            _ => return Err(WireError::Malformed("response tag")),
        };
        r.expect_end()?;
        Ok(response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certa_fault::{TrialResult, TrialStatus};

    #[test]
    fn requests_roundtrip() {
        let record = TrialRecord {
            status: TrialStatus::Completed(TrialResult {
                outcome: certa_sim::Outcome::Halted,
                output: Some(vec![1, 2, 3]),
                instructions: 42,
                injected: 2,
            }),
            retries: 0,
        };
        let requests = [
            Request::Hello {
                version: PROTOCOL_VERSION,
                name: "w1".into(),
            },
            Request::Lease {
                worker: 3,
                fingerprint: 0xABCD,
            },
            Request::Heartbeat {
                worker: 3,
                lease: 17,
                epoch: 2,
            },
            Request::Complete {
                worker: 3,
                lease: 17,
                chunk: 5,
                epoch: 2,
                records: vec![(9, record.clone()), (11, record)],
                harness: HarnessStats {
                    panics: 1,
                    ..HarnessStats::default()
                },
                restores: RestoreStats {
                    dirty_page: 4,
                    ..RestoreStats::default()
                },
            },
        ];
        for request in &requests {
            let bytes = request.encode();
            let back = Request::decode(&bytes).expect("decodes");
            assert_eq!(format!("{back:?}"), format!("{request:?}"));
        }
    }

    #[test]
    fn responses_roundtrip() {
        let responses = [
            Response::Welcome {
                worker: 1,
                job: JobSpec {
                    workload: "sum".into(),
                    config: CampaignConfig::default(),
                    fingerprint: 99,
                    worker_threads: 2,
                },
                epoch: 3,
            },
            Response::Grant {
                lease: 8,
                chunk: 2,
                trials: vec![1, 5, 9],
                ttl_ms: 5000,
                epoch: 3,
            },
            Response::Wait { poll_ms: 100 },
            Response::Drained,
            Response::Ack {
                accepted: true,
                epoch: 3,
            },
            Response::Reject {
                reason: "fingerprint mismatch".into(),
            },
        ];
        for response in &responses {
            let bytes = response.encode();
            let back = Response::decode(&bytes).expect("decodes");
            assert_eq!(format!("{back:?}"), format!("{response:?}"));
        }
    }

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let payload = Request::Lease {
            worker: 1,
            fingerprint: 2,
        }
        .encode();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_frame(&mut cursor).unwrap(), payload);
        assert!(cursor.is_empty());
    }

    #[test]
    fn oversize_frames_are_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_le_bytes());
        let mut cursor = &buf[..];
        assert_eq!(
            read_frame(&mut cursor).unwrap_err().kind(),
            std::io::ErrorKind::InvalidData
        );
    }
}

//! The campaign coordinator: owns the [`CampaignSession`] (golden run +
//! checkpoint set), leases checkpoint-grouped trial chunks to workers,
//! and assembles the globally reconciled [`CampaignResult`].
//!
//! Threading model: the caller's thread drives lease expiry, inline
//! fallback, and the drain condition; one scoped acceptor thread takes
//! connections off the listener; and each connection gets a scoped
//! handler thread running a trivial request/response loop. All state the
//! handlers touch lives in one `Shared` struct behind short-lived mutexes
//! — no lock is ever held across trial execution or socket I/O.

use std::collections::HashSet;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use certa_fault::{
    CampaignResult, CampaignSession, HarnessStats, RestoreStats, TrialChunk, TrialRecord,
};

use crate::lease::{Completion, LeaseTable};
use crate::protocol::{
    read_frame, write_frame, JobSpec, Request, Response, PROTOCOL_VERSION,
};
use crate::DistError;

/// Tuning knobs of a distributed campaign run.
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// How long a granted lease lives without a heartbeat. Must comfortably
    /// exceed the worker heartbeat interval; a SIGKILLed worker's chunks
    /// come back after at most this long.
    pub lease_ttl: Duration,
    /// Suggested worker poll delay when every open chunk is leased out.
    pub worker_poll: Duration,
    /// Degrade to in-process execution when zero workers ever attach
    /// within [`DistConfig::fallback_grace`] — a campaign should complete
    /// even if every worker binary is missing.
    pub fallback_inline: bool,
    /// How long to wait for a first worker before the inline fallback
    /// kicks in.
    pub fallback_grace: Duration,
    /// Trial threads each worker process runs with (advertised in the
    /// [`JobSpec`]).
    pub worker_threads: u32,
    /// Target chunk count for [`CampaignSession::chunk_plan`] — more
    /// parts mean finer-grained redelivery after a worker loss, at more
    /// round trips.
    pub chunk_parts: usize,
    /// Hard wall-clock bound on draining the chunk queue (golden run
    /// excluded); exceeding it is [`DistError::Incomplete`]. A backstop
    /// so a coordinator with no workers and no fallback cannot hang CI
    /// forever.
    pub drain_timeout: Duration,
    /// After the last chunk completes, keep answering requests (`Lease` →
    /// `Drained`, late `Complete`s → stale `Ack`s) until every attached
    /// worker has been told `Drained`, or this long passes with no
    /// incoming request — a coordinator that goes silent the instant the
    /// queue drains strands any worker whose request was in flight.
    pub shutdown_linger: Duration,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            lease_ttl: Duration::from_secs(5),
            worker_poll: Duration::from_millis(100),
            fallback_inline: true,
            fallback_grace: Duration::from_secs(2),
            worker_threads: 1,
            chunk_parts: 16,
            drain_timeout: Duration::from_secs(600),
            shutdown_linger: Duration::from_secs(5),
        }
    }
}

/// Per-worker attribution: what each attached worker (or the inline
/// fallback, ledgered under the name `coordinator-inline`) contributed.
#[derive(Debug, Clone)]
pub struct WorkerLedger {
    /// Name from the worker's `Hello`.
    pub name: String,
    /// Leases granted to this worker (including ones it later lost).
    pub leases: u32,
    /// Chunks whose completion was accepted from this worker.
    pub chunks_completed: u32,
    /// Trials inside those accepted chunks.
    pub trials_completed: u64,
    /// Duplicate completions dropped (the chunk was already done).
    pub stale_completions: u32,
    /// Heartbeats received.
    pub heartbeats: u64,
    /// Harness-counter deltas merged from accepted chunks.
    pub harness: HarnessStats,
    /// Restore-counter deltas merged from accepted chunks.
    pub restores: RestoreStats,
}

impl WorkerLedger {
    fn new(name: String) -> Self {
        WorkerLedger {
            name,
            leases: 0,
            chunks_completed: 0,
            trials_completed: 0,
            stale_completions: 0,
            heartbeats: 0,
            harness: HarnessStats::default(),
            restores: RestoreStats::default(),
        }
    }
}

/// Live progress counters a driver (e.g. the `campaign_dist` bench) can
/// watch from another thread — for instance to SIGKILL a worker once it
/// is provably mid-campaign.
#[derive(Debug, Default)]
pub struct DistProgress {
    chunks_total: AtomicUsize,
    chunks_done: AtomicUsize,
    workers_attached: AtomicUsize,
    leases_granted: AtomicUsize,
}

impl DistProgress {
    /// Total chunks in the campaign (0 until the run starts).
    #[must_use]
    pub fn chunks_total(&self) -> usize {
        self.chunks_total.load(Ordering::Relaxed)
    }

    /// Chunks whose completion has been accepted so far.
    #[must_use]
    pub fn chunks_done(&self) -> usize {
        self.chunks_done.load(Ordering::Relaxed)
    }

    /// Workers that have said `Hello` so far.
    #[must_use]
    pub fn workers_attached(&self) -> usize {
        self.workers_attached.load(Ordering::Relaxed)
    }

    /// Leases granted so far (including re-grants).
    #[must_use]
    pub fn leases_granted(&self) -> usize {
        self.leases_granted.load(Ordering::Relaxed)
    }
}

/// A distributed campaign's outcome: the globally assembled (and
/// reconciliation-checked) campaign result plus distribution-level
/// accounting.
#[derive(Debug)]
pub struct DistResult {
    /// The assembled campaign result — per-trial records bit-identical to
    /// an in-process run of the same configuration.
    pub campaign: CampaignResult,
    /// Per-worker attribution, in attach order.
    pub workers: Vec<WorkerLedger>,
    /// Lease expiries (chunks returned to the queue) over the whole run.
    pub redeliveries: u64,
    /// Whether the inline fallback executed any chunks.
    pub fallback_used: bool,
}

/// Shared coordinator state, borrowed by every handler thread.
struct Shared<'s, 'a> {
    session: &'s CampaignSession<'a>,
    workload: String,
    fingerprint: u64,
    dist: DistConfig,
    chunks: Vec<TrialChunk>,
    started: Instant,
    table: Mutex<LeaseTable>,
    records: Mutex<Vec<Option<TrialRecord>>>,
    harness: Mutex<HarnessStats>,
    restores: Mutex<RestoreStats>,
    workers: Mutex<Vec<WorkerLedger>>,
    /// Worker ids that said `Hello` over the wire (the inline fallback
    /// never appears here).
    remote_workers: Mutex<HashSet<u32>>,
    /// Remote workers that have been answered with `Drained`.
    drained_workers: Mutex<HashSet<u32>>,
    /// Coordinator-clock timestamp of the last incoming request.
    last_request_ms: AtomicU64,
    ever_attached: AtomicBool,
    fallback_used: AtomicBool,
    shutdown: AtomicBool,
    progress: &'s DistProgress,
}

impl Shared<'_, '_> {
    fn now_ms(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    fn with_ledger(&self, worker: u32, update: impl FnOnce(&mut WorkerLedger)) {
        let mut workers = self.workers.lock().expect("ledger lock");
        if let Some(ledger) = workers.get_mut(worker as usize) {
            update(ledger);
        }
    }

    fn handle(&self, request: Request) -> Response {
        self.last_request_ms.store(self.now_ms(), Ordering::SeqCst);
        match request {
            Request::Hello { version, name } => {
                if version != PROTOCOL_VERSION {
                    return Response::Reject {
                        reason: format!(
                            "protocol version {version} != {PROTOCOL_VERSION}"
                        ),
                    };
                }
                let worker = {
                    let mut workers = self.workers.lock().expect("ledger lock");
                    workers.push(WorkerLedger::new(name));
                    (workers.len() - 1) as u32
                };
                self.remote_workers
                    .lock()
                    .expect("remote lock")
                    .insert(worker);
                self.ever_attached.store(true, Ordering::SeqCst);
                self.progress.workers_attached.fetch_add(1, Ordering::Relaxed);
                Response::Welcome {
                    worker,
                    job: JobSpec {
                        workload: self.workload.clone(),
                        config: self.session.config().clone(),
                        fingerprint: self.fingerprint,
                        worker_threads: self.dist.worker_threads,
                    },
                }
            }
            Request::Lease {
                worker,
                fingerprint,
            } => {
                if fingerprint != self.fingerprint {
                    return Response::Reject {
                        reason: format!(
                            "session fingerprint mismatch: worker {fingerprint:#x} != coordinator {:#x}",
                            self.fingerprint
                        ),
                    };
                }
                let now = self.now_ms();
                let granted = {
                    let mut table = self.table.lock().expect("lease lock");
                    table.expire(now);
                    table
                        .lease(worker, now)
                        .map(Ok)
                        .unwrap_or_else(|| Err(table.is_drained()))
                };
                match granted {
                    Ok((lease, chunk, trials)) => {
                        self.with_ledger(worker, |l| l.leases += 1);
                        self.progress.leases_granted.fetch_add(1, Ordering::Relaxed);
                        Response::Grant {
                            lease,
                            chunk,
                            trials,
                            ttl_ms: u64::try_from(self.dist.lease_ttl.as_millis())
                                .unwrap_or(u64::MAX),
                        }
                    }
                    Err(true) => {
                        self.drained_workers
                            .lock()
                            .expect("drained lock")
                            .insert(worker);
                        Response::Drained
                    }
                    Err(false) => Response::Wait {
                        poll_ms: u64::try_from(self.dist.worker_poll.as_millis())
                            .unwrap_or(u64::MAX),
                    },
                }
            }
            Request::Heartbeat { worker, lease } => {
                let now = self.now_ms();
                let accepted = self.table.lock().expect("lease lock").heartbeat(lease, now);
                self.with_ledger(worker, |l| l.heartbeats += 1);
                Response::Ack { accepted }
            }
            Request::Complete {
                worker,
                lease: _,
                chunk,
                records,
                harness,
                restores,
            } => match self.accept_completion(worker, chunk, records, &harness, &restores) {
                Ok(accepted) => Response::Ack { accepted },
                Err(reason) => Response::Reject { reason },
            },
        }
    }

    /// Validates and merges one chunk delivery. `Ok(true)` = fresh
    /// (merged), `Ok(false)` = stale duplicate (dropped). Only fresh
    /// completions touch the global records and stat sums — that is what
    /// keeps the global reconciliation exact under redelivery.
    fn accept_completion(
        &self,
        worker: u32,
        chunk: u32,
        records: Vec<(u32, TrialRecord)>,
        harness: &HarnessStats,
        restores: &RestoreStats,
    ) -> Result<bool, String> {
        let Some(expected) = self.chunks.get(chunk as usize) else {
            return Err(format!("unknown chunk {chunk}"));
        };
        let mut got: Vec<u32> = records.iter().map(|(t, _)| *t).collect();
        got.sort_unstable();
        let mut want = expected.trials.clone();
        want.sort_unstable();
        if got != want {
            return Err(format!("chunk {chunk} delivery does not match its trial ids"));
        }
        let completion = {
            let mut table = self.table.lock().expect("lease lock");
            table.complete(chunk, worker)
        };
        match completion {
            None => Err(format!("unknown chunk {chunk}")),
            Some(Completion::Stale) => {
                self.with_ledger(worker, |l| l.stale_completions += 1);
                Ok(false)
            }
            Some(Completion::Fresh) => {
                {
                    let mut slots = self.records.lock().expect("records lock");
                    for (trial, record) in records {
                        slots[trial as usize] = Some(record);
                    }
                }
                self.harness.lock().expect("harness lock").merge(harness);
                self.restores.lock().expect("restores lock").merge(restores);
                let trials = expected.trials.len() as u64;
                self.with_ledger(worker, |l| {
                    l.chunks_completed += 1;
                    l.trials_completed += trials;
                    l.harness.merge(harness);
                    l.restores.merge(restores);
                });
                self.progress.chunks_done.fetch_add(1, Ordering::Relaxed);
                Ok(true)
            }
        }
    }

    /// The inline degradation path: the coordinator leases chunks to
    /// itself and runs them on its own session, through the *same*
    /// completion accounting as a remote delivery. Runs until nothing is
    /// leasable (drained, or a late worker holds the remainder).
    fn run_inline_fallback(&self) {
        let worker = {
            let mut workers = self.workers.lock().expect("ledger lock");
            workers.push(WorkerLedger::new("coordinator-inline".into()));
            (workers.len() - 1) as u32
        };
        self.fallback_used.store(true, Ordering::SeqCst);
        loop {
            let now = self.now_ms();
            let granted = {
                let mut table = self.table.lock().expect("lease lock");
                table.expire(now);
                table.lease(worker, now)
            };
            let Some((_lease, chunk, trials)) = granted else {
                return;
            };
            self.with_ledger(worker, |l| l.leases += 1);
            self.progress.leases_granted.fetch_add(1, Ordering::Relaxed);
            let harness_before = self.session.harness_stats();
            let restores_before = self.session.restore_stats();
            let records = self.session.run_subset(&trials);
            let harness = self.session.harness_stats().saturating_sub(&harness_before);
            let restores = self.session.restore_stats().saturating_sub(&restores_before);
            let pairs: Vec<(u32, TrialRecord)> =
                trials.iter().copied().zip(records).collect();
            if let Err(reason) = self.accept_completion(worker, chunk, pairs, &harness, &restores)
            {
                // Can only happen on a coordinator bug; surface loudly.
                panic!("inline fallback delivery rejected: {reason}");
            }
        }
    }
}

/// Reads one frame from a handler connection, idling in short timeouts so
/// the shutdown flag stays responsive. `Ok(None)` means shutdown was
/// requested while idle; `Err` means the connection is gone.
fn read_frame_idle(
    stream: &mut TcpStream,
    shutdown: &AtomicBool,
) -> std::io::Result<Option<Vec<u8>>> {
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(None);
        }
        // Peek with the short read timeout: only once at least one byte
        // is available do we commit to a blocking frame read, so an idle
        // poll can never desynchronize a partially read length prefix.
        let mut probe = [0u8; 1];
        match stream.peek(&mut probe) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "peer closed",
                ))
            }
            Ok(_) => {
                stream.set_read_timeout(Some(Duration::from_secs(10)))?;
                let frame = read_frame(stream);
                stream.set_read_timeout(Some(Duration::from_millis(50)))?;
                return frame.map(Some);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => return Err(e),
        }
    }
}

/// One connection's request/response loop.
fn handle_connection(shared: &Shared<'_, '_>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    if stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .is_err()
    {
        return;
    }
    let mut helloed: Vec<u32> = Vec::new();
    while let Ok(Some(payload)) = read_frame_idle(&mut stream, &shared.shutdown) {
        let response = match Request::decode(&payload) {
            Ok(request) => shared.handle(request),
            Err(e) => Response::Reject {
                reason: format!("undecodable request: {e}"),
            },
        };
        if let Response::Welcome { worker, .. } = &response {
            helloed.push(*worker);
        }
        if write_frame(&mut stream, &response.encode()).is_err() {
            break;
        }
    }
    // A closed connection can never be told `Drained`; release the
    // post-drain linger from waiting on the workers it carried.
    if !helloed.is_empty() {
        shared
            .drained_workers
            .lock()
            .expect("drained lock")
            .extend(helloed);
    }
}

/// The campaign coordinator: a bound listener plus the drive loop that
/// leases chunks, expires lost workers, and assembles the global result.
#[derive(Debug)]
pub struct Coordinator {
    listener: TcpListener,
}

impl Coordinator {
    /// Binds the coordinator's listener (pass port 0 to let the OS pick).
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration failures.
    pub fn bind(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Coordinator { listener })
    }

    /// The bound address (workers connect here).
    ///
    /// # Errors
    ///
    /// Propagates the OS query failure.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs a distributed campaign to completion (see
    /// [`Coordinator::run_with_progress`]).
    ///
    /// # Errors
    ///
    /// See [`Coordinator::run_with_progress`].
    pub fn run(
        &self,
        session: &CampaignSession<'_>,
        workload: &str,
        dist: &DistConfig,
    ) -> Result<DistResult, DistError> {
        let progress = DistProgress::default();
        self.run_with_progress(session, workload, dist, &progress)
    }

    /// Runs a distributed campaign to completion: serves worker requests
    /// until every chunk is completed, then assembles the global
    /// [`CampaignResult`] and checks
    /// [`CampaignResult::verify_reconciliation`] across everything that
    /// arrived over the wire. `progress` is updated live.
    ///
    /// # Errors
    ///
    /// [`DistError::Incomplete`] if the drain timeout expires or a record
    /// is missing after drain (coordinator bugs or an abandoned
    /// campaign); [`DistError::Reconciliation`] if the assembled result
    /// fails the global invariants; [`DistError::Io`] on listener
    /// failures.
    ///
    /// # Panics
    ///
    /// Panics if an internal lock is poisoned (a handler thread
    /// panicked), or if the inline fallback's own delivery is rejected —
    /// both coordinator bugs.
    pub fn run_with_progress(
        &self,
        session: &CampaignSession<'_>,
        workload: &str,
        dist: &DistConfig,
        progress: &DistProgress,
    ) -> Result<DistResult, DistError> {
        let chunks = session.chunk_plan(dist.chunk_parts);
        let ttl_ms = u64::try_from(dist.lease_ttl.as_millis()).unwrap_or(u64::MAX);
        let table = LeaseTable::new(chunks.iter().map(|c| c.trials.clone()).collect(), ttl_ms);
        progress.chunks_total.store(chunks.len(), Ordering::Relaxed);
        let shared = Shared {
            session,
            workload: workload.to_string(),
            fingerprint: session.fingerprint(),
            dist: dist.clone(),
            chunks,
            started: Instant::now(),
            table: Mutex::new(table),
            records: Mutex::new(vec![None; session.config().trials]),
            harness: Mutex::new(HarnessStats::default()),
            restores: Mutex::new(RestoreStats::default()),
            workers: Mutex::new(Vec::new()),
            remote_workers: Mutex::new(HashSet::new()),
            drained_workers: Mutex::new(HashSet::new()),
            last_request_ms: AtomicU64::new(0),
            ever_attached: AtomicBool::new(false),
            fallback_used: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            progress,
        };

        let mut drain_error: Option<DistError> = None;
        std::thread::scope(|scope| {
            let acceptor = scope.spawn(|| {
                loop {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    match self.listener.accept() {
                        Ok((stream, _)) => {
                            scope.spawn(|| handle_connection(&shared, stream));
                        }
                        Err(e)
                            if e.kind() == std::io::ErrorKind::WouldBlock
                                || e.kind() == std::io::ErrorKind::TimedOut =>
                        {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(5)),
                    }
                }
            });

            // The drive loop: expire lost leases, watch for drain, and
            // degrade to inline execution if no worker ever shows up.
            loop {
                let drained = {
                    let mut table = shared.table.lock().expect("lease lock");
                    table.expire(shared.now_ms());
                    table.is_drained()
                };
                if drained {
                    break;
                }
                if shared.started.elapsed() >= dist.drain_timeout {
                    drain_error = Some(DistError::Incomplete(format!(
                        "drain timeout ({:?}) expired with chunks outstanding",
                        dist.drain_timeout
                    )));
                    break;
                }
                if dist.fallback_inline
                    && !shared.ever_attached.load(Ordering::SeqCst)
                    && shared.started.elapsed() >= dist.fallback_grace
                {
                    shared.run_inline_fallback();
                    continue;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            // Linger after drain: a worker whose request was in flight (or
            // still rebuilding its session) would otherwise see the
            // coordinator go silent and burn its whole reconnect budget.
            // Keep serving until every `Hello`'d worker has either been
            // answered `Drained` or dropped its connection, bounded by a
            // no-incoming-request window for workers that died without
            // closing cleanly (SIGKILL leaves the peer OS to close the
            // socket, which still unblocks us via the connection path).
            if drain_error.is_none() {
                shared.last_request_ms.store(shared.now_ms(), Ordering::SeqCst);
                loop {
                    let all_notified = {
                        let remote = shared.remote_workers.lock().expect("remote lock");
                        let drained = shared.drained_workers.lock().expect("drained lock");
                        remote.iter().all(|w| drained.contains(w))
                    };
                    let idle = shared
                        .now_ms()
                        .saturating_sub(shared.last_request_ms.load(Ordering::SeqCst));
                    if all_notified
                        || Duration::from_millis(idle) >= dist.shutdown_linger
                        || shared.started.elapsed() >= dist.drain_timeout
                    {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
            shared.shutdown.store(true, Ordering::SeqCst);
            acceptor.join().expect("acceptor thread panicked");
        });

        if let Some(error) = drain_error {
            return Err(error);
        }

        let records = shared.records.into_inner().expect("records lock");
        let mut trials = Vec::with_capacity(records.len());
        for (trial, record) in records.into_iter().enumerate() {
            match record {
                Some(record) => trials.push(record),
                None => {
                    return Err(DistError::Incomplete(format!(
                        "trial {trial} has no record after drain"
                    )))
                }
            }
        }
        let campaign = CampaignResult {
            golden: session.golden().clone(),
            trials,
            restore_stats: shared.restores.into_inner().expect("restores lock"),
            harness_stats: shared.harness.into_inner().expect("harness lock"),
            checkpoint_capture_bytes: session.checkpoint_capture_bytes(),
            elapsed: session.elapsed(),
        };
        campaign
            .verify_reconciliation()
            .map_err(DistError::Reconciliation)?;
        Ok(DistResult {
            campaign,
            workers: shared.workers.into_inner().expect("ledger lock"),
            redeliveries: shared.table.into_inner().expect("lease lock").redeliveries(),
            fallback_used: shared.fallback_used.load(Ordering::SeqCst),
        })
    }
}

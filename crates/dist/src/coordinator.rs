//! The campaign coordinator: owns the [`CampaignSession`] (golden run +
//! checkpoint set), leases checkpoint-grouped trial chunks to workers,
//! and assembles the globally reconciled [`CampaignResult`].
//!
//! Threading model: the caller's thread drives lease expiry, inline
//! fallback, and the drain condition; one scoped acceptor thread takes
//! connections off the listener; and each connection gets a scoped
//! handler thread running a trivial request/response loop. All state the
//! handlers touch lives in one `Shared` struct behind short-lived mutexes
//! — no lock is ever held across trial execution or socket I/O.

use std::collections::HashSet;
use std::net::{TcpListener, ToSocketAddrs};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use certa_fault::{
    CampaignResult, CampaignSession, HarnessStats, OutcomeCounts, RestoreStats, TrialChunk,
    TrialRecord,
};
use certa_fidelity::verdict::{TrialVerdict, VerdictCounts};

use crate::chaos::{Chaos, ChaosConfig, ChaosCounts, NetStream};
use crate::journal::{ChunkRecord, Journal, JournalIdentity};
use crate::lease::{Completion, LeaseTable};
use crate::protocol::{
    auth_proof, auth_token, FrameCodec, FrameError, JobSpec, Request, Response, PROTOCOL_VERSION,
};
use crate::DistError;

/// Classifies one trial record into the paper's verdict taxonomy.
/// Supplied by the driver (it needs the workload's fidelity judge, which
/// does not cross the coordinator seam); when present, per-chunk
/// [`VerdictCounts`] ride along in the durable journal and the final
/// [`DistResult`].
pub type VerdictClassifier = dyn Fn(&TrialRecord) -> TrialVerdict + Sync;

/// Ledger name under which a resumed coordinator attributes chunks
/// replayed from the journal (keeping "every trial is attributed to
/// exactly one worker" true across restarts).
pub const REPLAY_LEDGER_NAME: &str = "journal-replay";

/// Tuning knobs of a distributed campaign run.
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// How long a granted lease lives without a heartbeat. Must comfortably
    /// exceed the worker heartbeat interval; a SIGKILLed worker's chunks
    /// come back after at most this long.
    pub lease_ttl: Duration,
    /// Suggested worker poll delay when every open chunk is leased out.
    pub worker_poll: Duration,
    /// Degrade to in-process execution when zero workers ever attach
    /// within [`DistConfig::fallback_grace`] — a campaign should complete
    /// even if every worker binary is missing.
    pub fallback_inline: bool,
    /// How long to wait for a first worker before the inline fallback
    /// kicks in.
    pub fallback_grace: Duration,
    /// Trial threads each worker process runs with (advertised in the
    /// [`JobSpec`]).
    pub worker_threads: u32,
    /// Target chunk count for [`CampaignSession::chunk_plan`] — more
    /// parts mean finer-grained redelivery after a worker loss, at more
    /// round trips.
    pub chunk_parts: usize,
    /// Hard wall-clock bound on draining the chunk queue (golden run
    /// excluded); exceeding it is [`DistError::Incomplete`]. A backstop
    /// so a coordinator with no workers and no fallback cannot hang CI
    /// forever.
    pub drain_timeout: Duration,
    /// After the last chunk completes, keep answering requests (`Lease` →
    /// `Drained`, late `Complete`s → stale `Ack`s) until every attached
    /// worker has been told `Drained`, or this long passes with no
    /// incoming request — a coordinator that goes silent the instant the
    /// queue drains strands any worker whose request was in flight.
    pub shutdown_linger: Duration,
    /// Read/write timeout for every accepted connection: how long a
    /// handler thread will block on one mid-frame read or one response
    /// write before declaring the peer gone. A stalled peer can
    /// therefore never wedge a handler thread.
    pub io_timeout: Duration,
    /// Shared secret for the `Hello`/`Welcome` challenge/response. When
    /// set, a `Hello` with the wrong token is rejected (counted in
    /// [`WireStats::auth_rejects`], never served). **Required** for
    /// non-loopback listeners — [`Coordinator::run`] refuses to serve a
    /// routable address without one.
    pub secret: Option<String>,
    /// Wire-fault injection applied to every accepted connection
    /// (tests; the network analogue of
    /// [`crate::JournalFaultInjection`]).
    pub chaos: Option<ChaosConfig>,
    /// Test-only coordinator sabotage (the analogue of
    /// `WorkerSabotage`): lets the crash-recovery differential tests
    /// kill the coordinator at a provable point.
    pub sabotage: CoordinatorSabotage,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            lease_ttl: Duration::from_secs(5),
            worker_poll: Duration::from_millis(100),
            fallback_inline: true,
            fallback_grace: Duration::from_secs(2),
            worker_threads: 1,
            chunk_parts: 16,
            drain_timeout: Duration::from_secs(600),
            shutdown_linger: Duration::from_secs(5),
            io_timeout: Duration::from_secs(10),
            secret: None,
            chaos: None,
            sabotage: CoordinatorSabotage::default(),
        }
    }
}

/// Test-only sabotage of the coordinator itself.
#[derive(Debug, Clone, Default)]
pub struct CoordinatorSabotage {
    /// Abort the drive loop — simulating coordinator death — once this
    /// many **Fresh** completions have been accepted by this
    /// incarnation (journal replays excluded). The run returns
    /// [`DistError::Crashed`]; with a journal, a subsequent
    /// [`Coordinator::run_durable`] resumes from the accepted chunks.
    /// Everything in-memory is dropped exactly as a SIGKILL would drop
    /// it; the bound listener survives only because the test holds the
    /// same [`Coordinator`], which is what lets loopback tests restart
    /// on the same address without `SO_REUSEADDR`.
    pub die_after_fresh: Option<usize>,
}

/// Per-worker attribution: what each attached worker (or the inline
/// fallback, ledgered under the name `coordinator-inline`) contributed.
#[derive(Debug, Clone)]
pub struct WorkerLedger {
    /// Name from the worker's `Hello`.
    pub name: String,
    /// Leases granted to this worker (including ones it later lost).
    pub leases: u32,
    /// Chunks whose completion was accepted from this worker.
    pub chunks_completed: u32,
    /// Trials inside those accepted chunks.
    pub trials_completed: u64,
    /// Duplicate completions dropped (the chunk was already done).
    pub stale_completions: u32,
    /// Heartbeats received.
    pub heartbeats: u64,
    /// Harness-counter deltas merged from accepted chunks.
    pub harness: HarnessStats,
    /// Restore-counter deltas merged from accepted chunks.
    pub restores: RestoreStats,
}

impl WorkerLedger {
    fn new(name: String) -> Self {
        WorkerLedger {
            name,
            leases: 0,
            chunks_completed: 0,
            trials_completed: 0,
            stale_completions: 0,
            heartbeats: 0,
            harness: HarnessStats::default(),
            restores: RestoreStats::default(),
        }
    }
}

/// Live progress counters a driver (e.g. the `campaign_dist` bench) can
/// watch from another thread — for instance to SIGKILL a worker once it
/// is provably mid-campaign.
#[derive(Debug, Default)]
pub struct DistProgress {
    chunks_total: AtomicUsize,
    chunks_done: AtomicUsize,
    workers_attached: AtomicUsize,
    leases_granted: AtomicUsize,
}

impl DistProgress {
    /// Total chunks in the campaign (0 until the run starts).
    #[must_use]
    pub fn chunks_total(&self) -> usize {
        self.chunks_total.load(Ordering::Relaxed)
    }

    /// Chunks whose completion has been accepted so far.
    #[must_use]
    pub fn chunks_done(&self) -> usize {
        self.chunks_done.load(Ordering::Relaxed)
    }

    /// Workers that have said `Hello` so far.
    #[must_use]
    pub fn workers_attached(&self) -> usize {
        self.workers_attached.load(Ordering::Relaxed)
    }

    /// Leases granted so far (including re-grants).
    #[must_use]
    pub fn leases_granted(&self) -> usize {
        self.leases_granted.load(Ordering::Relaxed)
    }
}

/// Wire-hardening counters for one coordinator run: what the protocol's
/// integrity and authentication layers caught and refused to act on.
#[derive(Debug, Clone, Copy, Default)]
pub struct WireStats {
    /// Connections dropped because a received frame failed an integrity
    /// check (checksum mismatch, sequence gap, oversize length prefix).
    /// The offending payload was never decoded, let alone merged.
    pub corrupt_frames: u64,
    /// Duplicated frames the framing layer silently absorbed.
    pub duplicate_frames: u64,
    /// `Hello`s rejected for a bad shared-secret token.
    pub auth_rejects: u64,
}

/// A distributed campaign's outcome: the globally assembled (and
/// reconciliation-checked) campaign result plus distribution-level
/// accounting.
#[derive(Debug)]
pub struct DistResult {
    /// The assembled campaign result — per-trial records bit-identical to
    /// an in-process run of the same configuration.
    pub campaign: CampaignResult,
    /// Per-worker attribution, in attach order (a resumed run leads with
    /// the [`REPLAY_LEDGER_NAME`] ledger).
    pub workers: Vec<WorkerLedger>,
    /// Lease expiries (chunks returned to the queue) over the whole run.
    pub redeliveries: u64,
    /// Whether the inline fallback executed any chunks.
    pub fallback_used: bool,
    /// Durability accounting (all-default for non-durable runs).
    pub resume: ResumeStats,
    /// Verdict counts summed over every chunk, when a
    /// [`VerdictClassifier`] was supplied (journaled chunks contribute
    /// their journaled counts).
    pub verdicts: VerdictCounts,
    /// What the frame-integrity and authentication layers caught on the
    /// coordinator's side of the wire.
    pub wire: WireStats,
    /// Faults the coordinator's own chaos domain injected (zero without
    /// [`DistConfig::chaos`]).
    pub chaos: ChaosCounts,
}

/// What crash recovery did for one coordinator incarnation.
#[derive(Debug, Clone, Default)]
pub struct ResumeStats {
    /// Whether this run used a write-ahead journal at all.
    pub durable: bool,
    /// Whether a pre-existing journal was found and replayed.
    pub resumed: bool,
    /// The epoch this incarnation ran under (1 for a fresh journal,
    /// `0` for non-durable runs).
    pub epoch: u64,
    /// Chunks replayed from the journal instead of re-executed.
    pub replayed_chunks: u64,
    /// Trials inside those replayed chunks.
    pub replayed_trials: u64,
    /// Duplicate journal records dropped during replay.
    pub journal_duplicates: u64,
    /// Bytes cut from the journal's torn tail.
    pub torn_tail_bytes: u64,
    /// Completions rejected because they carried another incarnation's
    /// epoch (counted, never merged).
    pub stale_epoch_completions: u64,
}

/// Shared coordinator state, borrowed by every handler thread.
struct Shared<'s, 'a> {
    session: &'s CampaignSession<'a>,
    workload: String,
    fingerprint: u64,
    dist: DistConfig,
    chunks: Vec<TrialChunk>,
    started: Instant,
    /// This incarnation's fencing epoch (from the journal; 0 when not
    /// durable — non-durable coordinators cannot restart, so no
    /// completion can ever carry a different epoch).
    epoch: u64,
    /// The write-ahead journal; appended (and synced) under this lock
    /// *before* a Fresh completion is merged anywhere.
    journal: Mutex<Option<Journal>>,
    classify: Option<&'s VerdictClassifier>,
    table: Mutex<LeaseTable>,
    records: Mutex<Vec<Option<TrialRecord>>>,
    harness: Mutex<HarnessStats>,
    restores: Mutex<RestoreStats>,
    verdicts: Mutex<VerdictCounts>,
    workers: Mutex<Vec<WorkerLedger>>,
    /// Worker ids that said `Hello` over the wire (the inline fallback
    /// never appears here).
    remote_workers: Mutex<HashSet<u32>>,
    /// Remote workers that have been answered with `Drained`.
    drained_workers: Mutex<HashSet<u32>>,
    /// Coordinator-clock timestamp of the last incoming request.
    last_request_ms: AtomicU64,
    ever_attached: AtomicBool,
    fallback_used: AtomicBool,
    shutdown: AtomicBool,
    /// Fresh completions accepted by this incarnation (journal replays
    /// excluded) — the sabotage trigger.
    fresh_accepted: AtomicUsize,
    /// Completions rejected for carrying another incarnation's epoch.
    stale_epoch: AtomicU64,
    /// Connections dropped for a corrupt frame (payload never decoded).
    corrupt_frames: AtomicU64,
    /// Duplicated frames absorbed by handler-connection codecs.
    duplicate_frames: AtomicU64,
    /// `Hello`s rejected for a bad shared-secret token.
    auth_rejects: AtomicU64,
    progress: &'s DistProgress,
}

impl Shared<'_, '_> {
    fn now_ms(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    fn with_ledger(&self, worker: u32, update: impl FnOnce(&mut WorkerLedger)) {
        let mut workers = self.workers.lock().expect("ledger lock");
        if let Some(ledger) = workers.get_mut(worker as usize) {
            update(ledger);
        }
    }

    fn handle(&self, request: Request) -> Response {
        self.last_request_ms.store(self.now_ms(), Ordering::SeqCst);
        match request {
            Request::Hello {
                version,
                name,
                token,
                challenge,
            } => {
                if version != PROTOCOL_VERSION {
                    return Response::Reject {
                        reason: format!(
                            "protocol version {version} != {PROTOCOL_VERSION}"
                        ),
                    };
                }
                if let Some(secret) = self.dist.secret.as_deref() {
                    if token != auth_token(secret, &name) {
                        // Wrong or missing secret: never registered, never
                        // served, only counted.
                        self.auth_rejects.fetch_add(1, Ordering::Relaxed);
                        return Response::Reject {
                            reason: "shared-secret authentication failed".into(),
                        };
                    }
                }
                let proof = self
                    .dist
                    .secret
                    .as_deref()
                    .map_or(0, |secret| auth_proof(secret, challenge));
                let worker = {
                    let mut workers = self.workers.lock().expect("ledger lock");
                    workers.push(WorkerLedger::new(name));
                    (workers.len() - 1) as u32
                };
                self.remote_workers
                    .lock()
                    .expect("remote lock")
                    .insert(worker);
                self.ever_attached.store(true, Ordering::SeqCst);
                self.progress.workers_attached.fetch_add(1, Ordering::Relaxed);
                Response::Welcome {
                    worker,
                    job: JobSpec {
                        workload: self.workload.clone(),
                        config: self.session.config().clone(),
                        fingerprint: self.fingerprint,
                        worker_threads: self.dist.worker_threads,
                    },
                    epoch: self.epoch,
                    proof,
                }
            }
            Request::Lease {
                worker,
                fingerprint,
            } => {
                if fingerprint != self.fingerprint {
                    return Response::Reject {
                        reason: format!(
                            "session fingerprint mismatch: worker {fingerprint:#x} != coordinator {:#x}",
                            self.fingerprint
                        ),
                    };
                }
                let now = self.now_ms();
                let granted = {
                    let mut table = self.table.lock().expect("lease lock");
                    table.expire(now);
                    table
                        .lease(worker, now)
                        .map(Ok)
                        .unwrap_or_else(|| Err(table.is_drained()))
                };
                match granted {
                    Ok((lease, chunk, trials)) => {
                        self.with_ledger(worker, |l| l.leases += 1);
                        self.progress.leases_granted.fetch_add(1, Ordering::Relaxed);
                        Response::Grant {
                            lease,
                            chunk,
                            trials,
                            ttl_ms: u64::try_from(self.dist.lease_ttl.as_millis())
                                .unwrap_or(u64::MAX),
                            epoch: self.epoch,
                        }
                    }
                    Err(true) => {
                        self.drained_workers
                            .lock()
                            .expect("drained lock")
                            .insert(worker);
                        Response::Drained
                    }
                    Err(false) => Response::Wait {
                        poll_ms: u64::try_from(self.dist.worker_poll.as_millis())
                            .unwrap_or(u64::MAX),
                    },
                }
            }
            Request::Heartbeat {
                worker,
                lease,
                epoch,
            } => {
                // A lease from another epoch does not exist in this
                // incarnation's table — even if the id collides with a
                // live lease, renewing it would fence the wrong chunk.
                if epoch != self.epoch {
                    return Response::Ack {
                        accepted: false,
                        epoch: self.epoch,
                    };
                }
                let now = self.now_ms();
                let accepted = self.table.lock().expect("lease lock").heartbeat(lease, now);
                self.with_ledger(worker, |l| l.heartbeats += 1);
                Response::Ack {
                    accepted,
                    epoch: self.epoch,
                }
            }
            Request::Complete {
                worker,
                lease: _,
                chunk,
                epoch,
                records,
                harness,
                restores,
            } => {
                // The fence: a chunk executed against a dead incarnation
                // is already covered either by the journal (it was
                // accepted before the crash) or by re-queueing (it was
                // not) — merging it here could double-count. Reject and
                // tally; the worker drops its stale payload on seeing
                // the current epoch in the Ack.
                if epoch != self.epoch {
                    self.stale_epoch.fetch_add(1, Ordering::Relaxed);
                    return Response::Ack {
                        accepted: false,
                        epoch: self.epoch,
                    };
                }
                match self.accept_completion(worker, chunk, records, &harness, &restores) {
                    Ok(accepted) => Response::Ack {
                        accepted,
                        epoch: self.epoch,
                    },
                    Err(reason) => Response::Reject { reason },
                }
            }
        }
    }

    /// Validates and merges one chunk delivery. `Ok(true)` = fresh
    /// (merged), `Ok(false)` = stale duplicate (dropped). Only fresh
    /// completions touch the global records and stat sums — that is what
    /// keeps the global reconciliation exact under redelivery.
    fn accept_completion(
        &self,
        worker: u32,
        chunk: u32,
        records: Vec<(u32, TrialRecord)>,
        harness: &HarnessStats,
        restores: &RestoreStats,
    ) -> Result<bool, String> {
        let Some(expected) = self.chunks.get(chunk as usize) else {
            return Err(format!("unknown chunk {chunk}"));
        };
        let mut got: Vec<u32> = records.iter().map(|(t, _)| *t).collect();
        got.sort_unstable();
        let mut want = expected.trials.clone();
        want.sort_unstable();
        if got != want {
            return Err(format!("chunk {chunk} delivery does not match its trial ids"));
        }
        let completion = {
            let mut table = self.table.lock().expect("lease lock");
            table.complete(chunk, worker)
        };
        match completion {
            None => Err(format!("unknown chunk {chunk}")),
            Some(Completion::Stale) => {
                self.with_ledger(worker, |l| l.stale_completions += 1);
                Ok(false)
            }
            Some(Completion::Fresh) => {
                let verdicts = self.classify.map_or_else(VerdictCounts::default, |classify| {
                    let mut counts = VerdictCounts::default();
                    for (_, record) in &records {
                        counts.record(&classify(record));
                    }
                    counts
                });
                let delta = ChunkRecord {
                    chunk,
                    outcomes: OutcomeCounts::of(records.iter().map(|(_, r)| r)),
                    records,
                    harness: *harness,
                    restores: *restores,
                    verdicts,
                };
                // The write-ahead barrier: the delta must be durable
                // before it becomes visible anywhere in memory. An
                // append failure is fatal by design — continuing would
                // let the campaign diverge from its own journal.
                {
                    let mut journal = self.journal.lock().expect("journal lock");
                    if let Some(journal) = journal.as_mut() {
                        journal
                            .append_chunk(&delta)
                            .expect("write-ahead journal append failed");
                    }
                }
                {
                    let mut slots = self.records.lock().expect("records lock");
                    for (trial, record) in delta.records {
                        slots[trial as usize] = Some(record);
                    }
                }
                self.harness.lock().expect("harness lock").merge(harness);
                self.restores.lock().expect("restores lock").merge(restores);
                self.verdicts
                    .lock()
                    .expect("verdicts lock")
                    .merge(&delta.verdicts);
                let trials = expected.trials.len() as u64;
                self.with_ledger(worker, |l| {
                    l.chunks_completed += 1;
                    l.trials_completed += trials;
                    l.harness.merge(harness);
                    l.restores.merge(restores);
                });
                self.fresh_accepted.fetch_add(1, Ordering::SeqCst);
                self.progress.chunks_done.fetch_add(1, Ordering::Relaxed);
                Ok(true)
            }
        }
    }

    /// The inline degradation path: the coordinator leases chunks to
    /// itself and runs them on its own session, through the *same*
    /// completion accounting as a remote delivery. Runs until nothing is
    /// leasable (drained, or a late worker holds the remainder).
    fn run_inline_fallback(&self) {
        let worker = {
            let mut workers = self.workers.lock().expect("ledger lock");
            workers.push(WorkerLedger::new("coordinator-inline".into()));
            (workers.len() - 1) as u32
        };
        self.fallback_used.store(true, Ordering::SeqCst);
        loop {
            let now = self.now_ms();
            let granted = {
                let mut table = self.table.lock().expect("lease lock");
                table.expire(now);
                table.lease(worker, now)
            };
            let Some((_lease, chunk, trials)) = granted else {
                return;
            };
            self.with_ledger(worker, |l| l.leases += 1);
            self.progress.leases_granted.fetch_add(1, Ordering::Relaxed);
            let harness_before = self.session.harness_stats();
            let restores_before = self.session.restore_stats();
            let records = self.session.run_subset(&trials);
            let harness = self.session.harness_stats().saturating_sub(&harness_before);
            let restores = self.session.restore_stats().saturating_sub(&restores_before);
            let pairs: Vec<(u32, TrialRecord)> =
                trials.iter().copied().zip(records).collect();
            if let Err(reason) = self.accept_completion(worker, chunk, pairs, &harness, &restores)
            {
                // Can only happen on a coordinator bug; surface loudly.
                panic!("inline fallback delivery rejected: {reason}");
            }
        }
    }
}

/// Reads one frame from a handler connection, idling in short timeouts so
/// the shutdown flag stays responsive. `Ok(None)` means shutdown was
/// requested while idle; `Err` means the connection is gone — or sent
/// garbage ([`FrameError::Corrupt`]) and can no longer be trusted.
/// `io_timeout` bounds the mid-frame read once bytes have started
/// arriving, so a stalled peer cannot wedge the handler thread.
fn read_frame_idle(
    stream: &mut NetStream,
    codec: &mut FrameCodec,
    shutdown: &AtomicBool,
    io_timeout: Duration,
) -> Result<Option<Vec<u8>>, FrameError> {
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(None);
        }
        // Peek with the short read timeout: only once at least one byte
        // is available do we commit to a bounded frame read, so an idle
        // poll can never desynchronize a partially read frame header.
        let mut probe = [0u8; 1];
        match stream.peek(&mut probe) {
            Ok(0) => {
                return Err(FrameError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "peer closed",
                )))
            }
            Ok(_) => {
                stream.set_read_timeout(Some(io_timeout))?;
                let frame = codec.read_frame(stream);
                stream.set_read_timeout(Some(Duration::from_millis(50)))?;
                return frame.map(Some);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
}

/// One connection's request/response loop. A frame that fails an
/// integrity check kills the connection on the spot — its payload is
/// never decoded, never answered, only counted; the worker re-attaches
/// through the same machinery as any connection loss.
fn handle_connection(shared: &Shared<'_, '_>, mut stream: NetStream) {
    let _ = stream.set_nodelay(true);
    // Full-duplex timeouts before the first byte moves: a socket that
    // refuses them is dropped rather than trusted to never stall.
    if stream
        .set_write_timeout(Some(shared.dist.io_timeout))
        .is_err()
        || stream
            .set_read_timeout(Some(Duration::from_millis(50)))
            .is_err()
    {
        return;
    }
    let mut codec = FrameCodec::new();
    let mut helloed: Vec<u32> = Vec::new();
    loop {
        let payload = match read_frame_idle(
            &mut stream,
            &mut codec,
            &shared.shutdown,
            shared.dist.io_timeout,
        ) {
            Ok(Some(payload)) => payload,
            Ok(None) => break,
            Err(FrameError::Corrupt(_) | FrameError::Oversize(_)) => {
                shared.corrupt_frames.fetch_add(1, Ordering::Relaxed);
                break;
            }
            Err(FrameError::Io(_)) => break,
        };
        let response = match Request::decode(&payload) {
            Ok(request) => shared.handle(request),
            Err(e) => Response::Reject {
                reason: format!("undecodable request: {e}"),
            },
        };
        if let Response::Welcome { worker, .. } = &response {
            helloed.push(*worker);
        }
        if codec.write_frame(&mut stream, &response.encode()).is_err() {
            break;
        }
    }
    shared
        .duplicate_frames
        .fetch_add(codec.duplicates_dropped, Ordering::Relaxed);
    // A closed connection can never be told `Drained`; release the
    // post-drain linger from waiting on the workers it carried.
    if !helloed.is_empty() {
        shared
            .drained_workers
            .lock()
            .expect("drained lock")
            .extend(helloed);
    }
}

/// The campaign coordinator: a bound listener plus the drive loop that
/// leases chunks, expires lost workers, and assembles the global result.
#[derive(Debug)]
pub struct Coordinator {
    listener: TcpListener,
}

impl Coordinator {
    /// Binds the coordinator's listener (pass port 0 to let the OS pick).
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration failures.
    pub fn bind(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Coordinator { listener })
    }

    /// The bound address (workers connect here).
    ///
    /// # Errors
    ///
    /// Propagates the OS query failure.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs a distributed campaign to completion (see
    /// [`Coordinator::run_with_progress`]).
    ///
    /// # Errors
    ///
    /// See [`Coordinator::run_with_progress`].
    pub fn run(
        &self,
        session: &CampaignSession<'_>,
        workload: &str,
        dist: &DistConfig,
    ) -> Result<DistResult, DistError> {
        let progress = DistProgress::default();
        self.run_with_progress(session, workload, dist, &progress)
    }

    /// Runs a distributed campaign to completion: serves worker requests
    /// until every chunk is completed, then assembles the global
    /// [`CampaignResult`] and checks
    /// [`CampaignResult::verify_reconciliation`] across everything that
    /// arrived over the wire. `progress` is updated live.
    ///
    /// # Errors
    ///
    /// [`DistError::Incomplete`] if the drain timeout expires or a record
    /// is missing after drain (coordinator bugs or an abandoned
    /// campaign); [`DistError::Reconciliation`] if the assembled result
    /// fails the global invariants; [`DistError::Io`] on listener
    /// failures; [`DistError::Auth`] when the listener is bound to a
    /// non-loopback address without [`DistConfig::secret`] configured.
    ///
    /// # Panics
    ///
    /// Panics if an internal lock is poisoned (a handler thread
    /// panicked), or if the inline fallback's own delivery is rejected —
    /// both coordinator bugs.
    pub fn run_with_progress(
        &self,
        session: &CampaignSession<'_>,
        workload: &str,
        dist: &DistConfig,
        progress: &DistProgress,
    ) -> Result<DistResult, DistError> {
        self.run_internal(session, workload, dist, progress, None, None)
    }

    /// Runs a **durable** distributed campaign: every Fresh chunk
    /// completion is appended (and synced) to the write-ahead journal at
    /// `journal_path` before it is merged, so a coordinator killed
    /// mid-campaign can be restarted on the same journal and resume from
    /// its completed chunks instead of from zero. If the journal already
    /// holds a valid prefix for *this* campaign (same workload,
    /// fingerprint, and chunk plan), it is replayed through the ordinary
    /// completion merge under the [`REPLAY_LEDGER_NAME`] ledger, a torn
    /// tail is cut, and the run continues under the next epoch —
    /// completions from earlier incarnations are fenced off (counted in
    /// [`ResumeStats::stale_epoch_completions`], never merged).
    ///
    /// `classify` optionally maps each trial record to the paper's
    /// verdict taxonomy; the per-chunk [`VerdictCounts`] then ride along
    /// in the journal and sum into [`DistResult::verdicts`].
    ///
    /// # Errors
    ///
    /// Everything [`Coordinator::run_with_progress`] returns, plus
    /// [`DistError::Journal`] when the journal cannot be opened or
    /// belongs to a different campaign, and [`DistError::Crashed`] when
    /// [`CoordinatorSabotage::die_after_fresh`] fires.
    ///
    /// # Panics
    ///
    /// Additionally panics if a journal *append* fails mid-run: merging
    /// an unjournaled delta would break the write-ahead invariant.
    pub fn run_durable(
        &self,
        session: &CampaignSession<'_>,
        workload: &str,
        dist: &DistConfig,
        progress: &DistProgress,
        journal_path: &Path,
        classify: Option<&VerdictClassifier>,
    ) -> Result<DistResult, DistError> {
        self.run_internal(session, workload, dist, progress, Some(journal_path), classify)
    }

    fn run_internal(
        &self,
        session: &CampaignSession<'_>,
        workload: &str,
        dist: &DistConfig,
        progress: &DistProgress,
        journal_path: Option<&Path>,
        classify: Option<&VerdictClassifier>,
    ) -> Result<DistResult, DistError> {
        // Identity gate before a single frame is served: a listener
        // reachable from off-host must not hand the campaign to whoever
        // connects first.
        let local = self.listener.local_addr()?;
        if !local.ip().is_loopback() && dist.secret.is_none() {
            return Err(DistError::Auth(format!(
                "refusing to serve non-loopback listener {local} without a shared secret"
            )));
        }
        let chaos = dist.chaos.clone().map(Chaos::new);
        let chunks = session.chunk_plan(dist.chunk_parts);
        let fingerprint = session.fingerprint();
        let (journal, recovery) = match journal_path {
            Some(path) => {
                let identity = JournalIdentity {
                    workload,
                    fingerprint,
                    config: session.config(),
                    chunks: &chunks,
                };
                let (journal, recovery) = Journal::open(path, &identity)
                    .map_err(|e| DistError::Journal(e.to_string()))?;
                (Some(journal), Some(recovery))
            }
            None => (None, None),
        };
        let mut resume = ResumeStats {
            durable: journal.is_some(),
            resumed: recovery.as_ref().is_some_and(|r| r.resumed),
            epoch: recovery.as_ref().map_or(0, |r| r.epoch),
            journal_duplicates: recovery.as_ref().map_or(0, |r| r.duplicates),
            torn_tail_bytes: recovery.as_ref().map_or(0, |r| r.torn_tail_bytes),
            ..ResumeStats::default()
        };

        let ttl_ms = u64::try_from(dist.lease_ttl.as_millis()).unwrap_or(u64::MAX);
        let table = LeaseTable::new(chunks.iter().map(|c| c.trials.clone()).collect(), ttl_ms);
        progress.chunks_total.store(chunks.len(), Ordering::Relaxed);
        let shared = Shared {
            session,
            workload: workload.to_string(),
            fingerprint,
            dist: dist.clone(),
            chunks,
            started: Instant::now(),
            epoch: resume.epoch,
            journal: Mutex::new(journal),
            classify,
            table: Mutex::new(table),
            records: Mutex::new(vec![None; session.config().trials]),
            harness: Mutex::new(HarnessStats::default()),
            restores: Mutex::new(RestoreStats::default()),
            verdicts: Mutex::new(VerdictCounts::default()),
            workers: Mutex::new(Vec::new()),
            remote_workers: Mutex::new(HashSet::new()),
            drained_workers: Mutex::new(HashSet::new()),
            last_request_ms: AtomicU64::new(0),
            ever_attached: AtomicBool::new(false),
            fallback_used: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            fresh_accepted: AtomicUsize::new(0),
            stale_epoch: AtomicU64::new(0),
            corrupt_frames: AtomicU64::new(0),
            duplicate_frames: AtomicU64::new(0),
            auth_rejects: AtomicU64::new(0),
            progress,
        };

        // Replay the journal's completed chunks through the same merge a
        // live delivery takes, before serving a single request: the
        // lease table then re-queues exactly the chunks with no durable
        // record. Attribution goes to a synthetic ledger so "every trial
        // is attributed to exactly one worker" survives the restart.
        if let Some(recovery) = recovery.filter(|r| !r.completed.is_empty()) {
            let replay_worker = {
                let mut workers = shared.workers.lock().expect("ledger lock");
                workers.push(WorkerLedger::new(REPLAY_LEDGER_NAME.into()));
                (workers.len() - 1) as u32
            };
            for delta in recovery.completed {
                let chunk_trials = delta.records.len() as u64;
                resume.replayed_chunks += 1;
                resume.replayed_trials += chunk_trials;
                let completion = shared
                    .table
                    .lock()
                    .expect("lease lock")
                    .complete(delta.chunk, replay_worker);
                assert_eq!(
                    completion,
                    Some(Completion::Fresh),
                    "journal recovery already deduplicated chunk records"
                );
                {
                    let mut slots = shared.records.lock().expect("records lock");
                    for (trial, record) in delta.records {
                        slots[trial as usize] = Some(record);
                    }
                }
                shared.harness.lock().expect("harness lock").merge(&delta.harness);
                shared
                    .restores
                    .lock()
                    .expect("restores lock")
                    .merge(&delta.restores);
                shared
                    .verdicts
                    .lock()
                    .expect("verdicts lock")
                    .merge(&delta.verdicts);
                shared.with_ledger(replay_worker, |l| {
                    l.chunks_completed += 1;
                    l.trials_completed += chunk_trials;
                    l.harness.merge(&delta.harness);
                    l.restores.merge(&delta.restores);
                });
                progress.chunks_done.fetch_add(1, Ordering::Relaxed);
            }
        }

        let mut drain_error: Option<DistError> = None;
        std::thread::scope(|scope| {
            let acceptor = scope.spawn(|| {
                loop {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    match self.listener.accept() {
                        Ok((stream, _)) => {
                            let stream = match &chaos {
                                Some(chaos) => NetStream::Chaos(chaos.wrap(stream)),
                                None => NetStream::Plain(stream),
                            };
                            scope.spawn(|| handle_connection(&shared, stream));
                        }
                        Err(e)
                            if e.kind() == std::io::ErrorKind::WouldBlock
                                || e.kind() == std::io::ErrorKind::TimedOut =>
                        {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(5)),
                    }
                }
            });

            // The drive loop: expire lost leases, watch for drain, and
            // degrade to inline execution if no worker ever shows up.
            loop {
                // Sabotage first: if the test asked this incarnation to
                // die after N fresh completions, it must die even if the
                // campaign would drain in the same tick — "crashed
                // provably mid-campaign" is the whole point.
                if let Some(limit) = dist.sabotage.die_after_fresh {
                    if shared.fresh_accepted.load(Ordering::SeqCst) >= limit {
                        drain_error = Some(DistError::Crashed(format!(
                            "sabotage: coordinator died after {} fresh completions",
                            shared.fresh_accepted.load(Ordering::SeqCst)
                        )));
                        break;
                    }
                }
                let drained = {
                    let mut table = shared.table.lock().expect("lease lock");
                    table.expire(shared.now_ms());
                    table.is_drained()
                };
                if drained {
                    break;
                }
                if shared.started.elapsed() >= dist.drain_timeout {
                    drain_error = Some(DistError::Incomplete(format!(
                        "drain timeout ({:?}) expired with chunks outstanding",
                        dist.drain_timeout
                    )));
                    break;
                }
                if dist.fallback_inline
                    && !shared.ever_attached.load(Ordering::SeqCst)
                    && shared.started.elapsed() >= dist.fallback_grace
                {
                    shared.run_inline_fallback();
                    continue;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            // Linger after drain: a worker whose request was in flight (or
            // still rebuilding its session) would otherwise see the
            // coordinator go silent and burn its whole reconnect budget.
            // Keep serving until every `Hello`'d worker has either been
            // answered `Drained` or dropped its connection, bounded by a
            // no-incoming-request window for workers that died without
            // closing cleanly (SIGKILL leaves the peer OS to close the
            // socket, which still unblocks us via the connection path).
            if drain_error.is_none() {
                shared.last_request_ms.store(shared.now_ms(), Ordering::SeqCst);
                loop {
                    let all_notified = {
                        let remote = shared.remote_workers.lock().expect("remote lock");
                        let drained = shared.drained_workers.lock().expect("drained lock");
                        remote.iter().all(|w| drained.contains(w))
                    };
                    let idle = shared
                        .now_ms()
                        .saturating_sub(shared.last_request_ms.load(Ordering::SeqCst));
                    if all_notified
                        || Duration::from_millis(idle) >= dist.shutdown_linger
                        || shared.started.elapsed() >= dist.drain_timeout
                    {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
            shared.shutdown.store(true, Ordering::SeqCst);
            acceptor.join().expect("acceptor thread panicked");
        });

        if let Some(error) = drain_error {
            return Err(error);
        }

        let records = shared.records.into_inner().expect("records lock");
        let mut trials = Vec::with_capacity(records.len());
        for (trial, record) in records.into_iter().enumerate() {
            match record {
                Some(record) => trials.push(record),
                None => {
                    return Err(DistError::Incomplete(format!(
                        "trial {trial} has no record after drain"
                    )))
                }
            }
        }
        let campaign = CampaignResult {
            golden: session.golden().clone(),
            trials,
            restore_stats: shared.restores.into_inner().expect("restores lock"),
            harness_stats: shared.harness.into_inner().expect("harness lock"),
            checkpoint_capture_bytes: session.checkpoint_capture_bytes(),
            elapsed: session.elapsed(),
        };
        campaign
            .verify_reconciliation()
            .map_err(DistError::Reconciliation)?;
        resume.stale_epoch_completions = shared.stale_epoch.load(Ordering::Relaxed);
        let wire = WireStats {
            corrupt_frames: shared.corrupt_frames.load(Ordering::Relaxed),
            duplicate_frames: shared.duplicate_frames.load(Ordering::Relaxed),
            auth_rejects: shared.auth_rejects.load(Ordering::Relaxed),
        };
        Ok(DistResult {
            campaign,
            workers: shared.workers.into_inner().expect("ledger lock"),
            redeliveries: shared.table.into_inner().expect("lease lock").redeliveries(),
            fallback_used: shared.fallback_used.load(Ordering::SeqCst),
            resume,
            verdicts: shared.verdicts.into_inner().expect("verdicts lock"),
            wire,
            chaos: chaos.as_ref().map_or_else(ChaosCounts::default, |c| c.counts()),
        })
    }
}

//! Byte-exact (de)serialization of campaign types for the distributed
//! service (`certa-dist`).
//!
//! The workspace is dependency-free, so this is a tiny hand-rolled,
//! bincode-style little-endian format: fixed-width integers, `u32`
//! length-prefixed byte strings, and one tag byte per enum variant. Two
//! properties matter:
//!
//! * **Round-trip exactness** — `decode(encode(x)) == x` for every value
//!   (the distributed differential tests compare [`TrialRecord`]s that
//!   crossed the wire byte-for-byte against in-process ones).
//! * **Total decoding** — a decoder never panics on malformed input; it
//!   returns [`WireError`], and the peer drops the connection.
//!
//! [`HarnessFaultInjection`] deliberately does not cross the wire: it
//! decodes to its (empty) default, so sabotage configured on one process
//! — the worker-loss differential tests kill workers, not trials — never
//! leaks into another process's trials.

use std::fmt;
use std::time::Duration;

use certa_fidelity::verdict::VerdictCounts;
use certa_sim::{CrashKind, Outcome};

use crate::campaign::{
    CampaignConfig, HarnessFailure, HarnessFaultInjection, HarnessStats, OutcomeCounts,
    RestoreStats, TrialRecord, TrialResult, TrialStatus,
};
use crate::injector::ErrorModel;
use crate::regime::{FaultTarget, Protection};

/// Why a decode failed. Either way the input did not come from a healthy
/// peer speaking this protocol version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value did.
    Truncated,
    /// A tag byte or invariant did not match any encodable value.
    Malformed(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire value truncated"),
            WireError::Malformed(what) => write!(f, "malformed wire value: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Append-only little-endian byte sink.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` length prefix followed by the raw bytes.
    ///
    /// # Panics
    ///
    /// Panics if `v` is longer than `u32::MAX` bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(u32::try_from(v.len()).expect("wire byte string fits in u32"));
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// Cursor over an encoded buffer; every read is bounds-checked.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() < n {
            return Err(WireError::Truncated);
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool (rejecting anything but 0 or 1).
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed("bool")),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads a `u32` length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireError> {
        String::from_utf8(self.bytes()?.to_vec()).map_err(|_| WireError::Malformed("utf-8"))
    }

    /// Whether the reader has consumed every byte.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Asserts the buffer is fully consumed — trailing garbage means the
    /// peer and we disagree about the format.
    pub fn expect_end(&self) -> Result<(), WireError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes"))
        }
    }
}

/// Encodes a simulator [`Outcome`].
pub fn encode_outcome(w: &mut ByteWriter, outcome: &Outcome) {
    match outcome {
        Outcome::Halted => w.u8(0),
        Outcome::Crashed(CrashKind::MemOutOfBounds { addr, size }) => {
            w.u8(1);
            w.u32(*addr);
            w.u32(*size);
        }
        Outcome::Crashed(CrashKind::Misaligned { addr, size }) => {
            w.u8(2);
            w.u32(*addr);
            w.u32(*size);
        }
        Outcome::Crashed(CrashKind::PcOutOfRange { pc }) => {
            w.u8(3);
            w.u64(*pc);
        }
        Outcome::InfiniteRun => w.u8(4),
    }
}

/// Decodes a simulator [`Outcome`].
///
/// # Errors
///
/// Returns [`WireError`] on a truncated buffer or unknown tag.
pub fn decode_outcome(r: &mut ByteReader<'_>) -> Result<Outcome, WireError> {
    Ok(match r.u8()? {
        0 => Outcome::Halted,
        1 => Outcome::Crashed(CrashKind::MemOutOfBounds {
            addr: r.u32()?,
            size: r.u32()?,
        }),
        2 => Outcome::Crashed(CrashKind::Misaligned {
            addr: r.u32()?,
            size: r.u32()?,
        }),
        3 => Outcome::Crashed(CrashKind::PcOutOfRange { pc: r.u64()? }),
        4 => Outcome::InfiniteRun,
        _ => return Err(WireError::Malformed("outcome tag")),
    })
}

/// Encodes a [`TrialRecord`] (status, result payload, retry count).
pub fn encode_trial_record(w: &mut ByteWriter, record: &TrialRecord) {
    match &record.status {
        TrialStatus::Completed(result) => {
            w.u8(0);
            encode_outcome(w, &result.outcome);
            match &result.output {
                Some(output) => {
                    w.bool(true);
                    w.bytes(output);
                }
                None => w.bool(false),
            }
            w.u64(result.instructions);
            w.u32(result.injected);
        }
        TrialStatus::HarnessError(HarnessFailure::Panic) => w.u8(1),
        TrialStatus::HarnessError(HarnessFailure::Timeout) => w.u8(2),
    }
    w.u32(record.retries);
}

/// Decodes a [`TrialRecord`].
///
/// # Errors
///
/// Returns [`WireError`] on a truncated buffer or unknown tag.
pub fn decode_trial_record(r: &mut ByteReader<'_>) -> Result<TrialRecord, WireError> {
    let status = match r.u8()? {
        0 => {
            let outcome = decode_outcome(r)?;
            let output = if r.bool()? {
                Some(r.bytes()?.to_vec())
            } else {
                None
            };
            TrialStatus::Completed(TrialResult {
                outcome,
                output,
                instructions: r.u64()?,
                injected: r.u32()?,
            })
        }
        1 => TrialStatus::HarnessError(HarnessFailure::Panic),
        2 => TrialStatus::HarnessError(HarnessFailure::Timeout),
        _ => return Err(WireError::Malformed("trial status tag")),
    };
    Ok(TrialRecord {
        status,
        retries: r.u32()?,
    })
}

/// Encodes a [`HarnessStats`] counter block.
pub fn encode_harness_stats(w: &mut ByteWriter, stats: &HarnessStats) {
    w.u64(stats.panics);
    w.u64(stats.timeouts);
    w.u64(stats.retries);
    w.u64(stats.rebuilds);
    w.u64(stats.harness_errors);
}

/// Decodes a [`HarnessStats`] counter block.
///
/// # Errors
///
/// Returns [`WireError::Truncated`] on a short buffer.
pub fn decode_harness_stats(r: &mut ByteReader<'_>) -> Result<HarnessStats, WireError> {
    Ok(HarnessStats {
        panics: r.u64()?,
        timeouts: r.u64()?,
        retries: r.u64()?,
        rebuilds: r.u64()?,
        harness_errors: r.u64()?,
    })
}

/// Encodes a [`RestoreStats`] counter block.
pub fn encode_restore_stats(w: &mut ByteWriter, stats: &RestoreStats) {
    w.u64(stats.dirty_page);
    w.u64(stats.diff_hop);
    w.u64(stats.diff_union_cache_hits);
    w.u64(stats.full_image);
}

/// Decodes a [`RestoreStats`] counter block.
///
/// # Errors
///
/// Returns [`WireError::Truncated`] on a short buffer.
pub fn decode_restore_stats(r: &mut ByteReader<'_>) -> Result<RestoreStats, WireError> {
    Ok(RestoreStats {
        dirty_page: r.u64()?,
        diff_hop: r.u64()?,
        diff_union_cache_hits: r.u64()?,
        full_image: r.u64()?,
    })
}

/// Encodes an [`OutcomeCounts`] counter block.
pub fn encode_outcome_counts(w: &mut ByteWriter, counts: &OutcomeCounts) {
    w.u64(counts.halted as u64);
    w.u64(counts.crashed as u64);
    w.u64(counts.infinite as u64);
    w.u64(counts.harness_error as u64);
}

/// Decodes an [`OutcomeCounts`] counter block.
///
/// # Errors
///
/// Returns [`WireError`] on a short buffer or a count that does not fit
/// the host's `usize`.
pub fn decode_outcome_counts(r: &mut ByteReader<'_>) -> Result<OutcomeCounts, WireError> {
    let as_usize =
        |v: u64| usize::try_from(v).map_err(|_| WireError::Malformed("count exceeds usize"));
    Ok(OutcomeCounts {
        halted: as_usize(r.u64()?)?,
        crashed: as_usize(r.u64()?)?,
        infinite: as_usize(r.u64()?)?,
        harness_error: as_usize(r.u64()?)?,
    })
}

/// Encodes a [`VerdictCounts`] counter block, in
/// [`VerdictCounts::labeled`] order.
pub fn encode_verdict_counts(w: &mut ByteWriter, counts: &VerdictCounts) {
    w.u64(counts.masked as u64);
    w.u64(counts.tolerable as u64);
    w.u64(counts.silent_corruption as u64);
    w.u64(counts.detected_crash as u64);
    w.u64(counts.hang as u64);
    w.u64(counts.detected_by_check as u64);
    w.u64(counts.harness_error as u64);
}

/// Decodes a [`VerdictCounts`] counter block.
///
/// # Errors
///
/// Returns [`WireError`] on a short buffer or a count that does not fit
/// the host's `usize`.
pub fn decode_verdict_counts(r: &mut ByteReader<'_>) -> Result<VerdictCounts, WireError> {
    let as_usize =
        |v: u64| usize::try_from(v).map_err(|_| WireError::Malformed("count exceeds usize"));
    Ok(VerdictCounts {
        masked: as_usize(r.u64()?)?,
        tolerable: as_usize(r.u64()?)?,
        silent_corruption: as_usize(r.u64()?)?,
        detected_crash: as_usize(r.u64()?)?,
        hang: as_usize(r.u64()?)?,
        detected_by_check: as_usize(r.u64()?)?,
        harness_error: as_usize(r.u64()?)?,
    })
}

fn encode_protection(w: &mut ByteWriter, protection: Protection) {
    w.u8(match protection {
        Protection::None => 0,
        Protection::ControlOnly => 1,
        Protection::DataOnly => 2,
        Protection::Full => 3,
    });
}

fn decode_protection(r: &mut ByteReader<'_>) -> Result<Protection, WireError> {
    Ok(match r.u8()? {
        0 => Protection::None,
        1 => Protection::ControlOnly,
        2 => Protection::DataOnly,
        3 => Protection::Full,
        _ => return Err(WireError::Malformed("protection tag")),
    })
}

fn encode_error_model(w: &mut ByteWriter, model: ErrorModel) {
    match model {
        ErrorModel::SingleBitFlip => {
            w.u8(0);
            w.u8(0);
        }
        ErrorModel::AdjacentDoubleBitFlip => {
            w.u8(1);
            w.u8(0);
        }
        ErrorModel::BurstFlip { len } => {
            w.u8(2);
            w.u8(len);
        }
        ErrorModel::StuckAtZero => {
            w.u8(3);
            w.u8(0);
        }
        ErrorModel::StuckAtOne => {
            w.u8(4);
            w.u8(0);
        }
    }
}

fn decode_error_model(r: &mut ByteReader<'_>) -> Result<ErrorModel, WireError> {
    let tag = r.u8()?;
    let param = r.u8()?;
    Ok(match tag {
        0 => ErrorModel::SingleBitFlip,
        1 => ErrorModel::AdjacentDoubleBitFlip,
        2 => ErrorModel::BurstFlip { len: param },
        3 => ErrorModel::StuckAtZero,
        4 => ErrorModel::StuckAtOne,
        _ => return Err(WireError::Malformed("error model tag")),
    })
}

/// Encodes a [`CampaignConfig`]. [`CampaignConfig::harness_faults`] is
/// **not** encoded (see the module docs); everything else round-trips
/// exactly, including the fields that only shape scheduling.
pub fn encode_campaign_config(w: &mut ByteWriter, config: &CampaignConfig) {
    w.u64(config.trials as u64);
    w.u64(config.errors);
    encode_protection(w, config.protection);
    w.u8(match config.target {
        FaultTarget::Registers => 0,
        FaultTarget::MemoryCells => 1,
    });
    w.u64(config.seed);
    w.u64(config.watchdog_factor);
    w.u64(config.threads as u64);
    encode_error_model(w, config.model);
    w.bool(config.checkpointing);
    w.u64(config.checkpoint_budget_bytes as u64);
    w.u64(config.checkpoint_stride);
    w.u64(u64::try_from(config.trial_timeout.as_millis()).unwrap_or(u64::MAX));
}

/// Decodes a [`CampaignConfig`] (with an empty
/// [`CampaignConfig::harness_faults`]).
///
/// # Errors
///
/// Returns [`WireError`] on a truncated buffer, unknown tag, or a count
/// that does not fit the host's `usize`.
pub fn decode_campaign_config(r: &mut ByteReader<'_>) -> Result<CampaignConfig, WireError> {
    let as_usize =
        |v: u64| usize::try_from(v).map_err(|_| WireError::Malformed("count exceeds usize"));
    Ok(CampaignConfig {
        trials: as_usize(r.u64()?)?,
        errors: r.u64()?,
        protection: decode_protection(r)?,
        target: match r.u8()? {
            0 => FaultTarget::Registers,
            1 => FaultTarget::MemoryCells,
            _ => return Err(WireError::Malformed("fault target tag")),
        },
        seed: r.u64()?,
        watchdog_factor: r.u64()?,
        threads: as_usize(r.u64()?)?,
        model: decode_error_model(r)?,
        checkpointing: r.bool()?,
        checkpoint_budget_bytes: as_usize(r.u64()?)?,
        checkpoint_stride: r.u64()?,
        trial_timeout: Duration::from_millis(r.u64()?),
        harness_faults: HarnessFaultInjection::default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_record(record: &TrialRecord) {
        let mut w = ByteWriter::new();
        encode_trial_record(&mut w, record);
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        let back = decode_trial_record(&mut r).expect("decodes");
        r.expect_end().expect("fully consumed");
        assert_eq!(&back, record);
    }

    #[test]
    fn trial_records_roundtrip() {
        let outcomes = [
            Outcome::Halted,
            Outcome::Crashed(CrashKind::MemOutOfBounds { addr: 7, size: 4 }),
            Outcome::Crashed(CrashKind::Misaligned {
                addr: 0xFFFF_0001,
                size: 2,
            }),
            Outcome::Crashed(CrashKind::PcOutOfRange { pc: u64::MAX }),
            Outcome::InfiniteRun,
        ];
        for (i, outcome) in outcomes.iter().enumerate() {
            roundtrip_record(&TrialRecord {
                status: TrialStatus::Completed(TrialResult {
                    outcome: *outcome,
                    output: (i % 2 == 0).then(|| vec![0u8, 1, 255, i as u8]),
                    instructions: 123_456_789 + i as u64,
                    injected: i as u32,
                }),
                retries: i as u32,
            });
        }
        roundtrip_record(&TrialRecord {
            status: TrialStatus::HarnessError(HarnessFailure::Panic),
            retries: 1,
        });
        roundtrip_record(&TrialRecord {
            status: TrialStatus::HarnessError(HarnessFailure::Timeout),
            retries: 1,
        });
    }

    #[test]
    fn stats_roundtrip() {
        let harness = HarnessStats {
            panics: 1,
            timeouts: 2,
            retries: 3,
            rebuilds: 4,
            harness_errors: 5,
        };
        let mut w = ByteWriter::new();
        encode_harness_stats(&mut w, &harness);
        let restores = RestoreStats {
            dirty_page: 10,
            diff_hop: 11,
            diff_union_cache_hits: 12,
            full_image: 13,
        };
        encode_restore_stats(&mut w, &restores);
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(decode_harness_stats(&mut r).unwrap(), harness);
        assert_eq!(decode_restore_stats(&mut r).unwrap(), restores);
        r.expect_end().unwrap();
    }

    #[test]
    fn count_blocks_roundtrip() {
        let outcomes = OutcomeCounts {
            halted: 100,
            crashed: 20,
            infinite: 3,
            harness_error: 1,
        };
        let verdicts = VerdictCounts {
            masked: 60,
            tolerable: 25,
            silent_corruption: 9,
            detected_crash: 20,
            hang: 3,
            detected_by_check: 6,
            harness_error: 1,
        };
        let mut w = ByteWriter::new();
        encode_outcome_counts(&mut w, &outcomes);
        encode_verdict_counts(&mut w, &verdicts);
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(decode_outcome_counts(&mut r).unwrap(), outcomes);
        assert_eq!(decode_verdict_counts(&mut r).unwrap(), verdicts);
        r.expect_end().unwrap();
        let mut r = ByteReader::new(&bytes[..11]);
        assert_eq!(decode_outcome_counts(&mut r), Err(WireError::Truncated));
    }

    #[test]
    fn campaign_config_roundtrips_without_sabotage() {
        let mut config = CampaignConfig {
            trials: 12_345,
            errors: 7,
            protection: Protection::DataOnly,
            target: FaultTarget::MemoryCells,
            seed: 0xDEAD_BEEF,
            watchdog_factor: 3,
            threads: 9,
            model: ErrorModel::BurstFlip { len: 5 },
            checkpointing: false,
            checkpoint_budget_bytes: 1 << 20,
            checkpoint_stride: 4096,
            trial_timeout: Duration::from_millis(1500),
            ..CampaignConfig::default()
        };
        config.harness_faults.panic_trials.push((3, 1));
        let mut w = ByteWriter::new();
        encode_campaign_config(&mut w, &config);
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        let back = decode_campaign_config(&mut r).expect("decodes");
        r.expect_end().unwrap();
        // Sabotage must not cross the wire.
        assert!(back.harness_faults.is_empty());
        let mut expected = config.clone();
        expected.harness_faults = HarnessFaultInjection::default();
        assert_eq!(format!("{back:?}"), format!("{expected:?}"));
    }

    #[test]
    fn malformed_input_is_rejected_not_panicked() {
        let mut r = ByteReader::new(&[9]);
        assert_eq!(
            decode_outcome(&mut r),
            Err(WireError::Malformed("outcome tag"))
        );
        let mut r = ByteReader::new(&[0, 0, 0]);
        assert_eq!(decode_trial_record(&mut r), Err(WireError::Truncated));
        // Completed + halted outcome, then a bool byte of 2: malformed.
        let mut w = ByteWriter::new();
        w.u8(0);
        encode_outcome(&mut w, &Outcome::Halted);
        w.u8(2); // invalid bool
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(
            decode_trial_record(&mut r),
            Err(WireError::Malformed("bool"))
        );
    }
}

//! Small statistics helpers for campaign post-processing.

/// Arithmetic mean. Returns 0.0 for an empty slice.
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Sample standard deviation (n-1 denominator). Returns 0.0 for fewer than
/// two values.
#[must_use]
pub fn stddev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / (values.len() - 1) as f64;
    var.sqrt()
}

/// 95% Wilson score interval for a binomial proportion: returns
/// `(lower, upper)` for `successes` out of `n`.
///
/// Edge cases are well-defined:
/// - `n = 0` carries no information, so the interval is the vacuous
///   `(0.0, 1.0)`.
/// - `successes = 0` returns a lower bound of exactly `0.0`; the upper
///   bound is the Wilson "rule of three"-style bound, strictly below 1.
/// - `successes = n` returns an upper bound of exactly `1.0` (floating-
///   point rounding in the Wilson formula is pinned here); the lower
///   bound is strictly above 0.
/// - `successes > n` is clamped to `n` rather than producing an interval
///   outside `[0, 1]`.
///
/// Used to attach confidence intervals to campaign failure rates and
/// per-verdict tolerance profiles.
#[must_use]
pub fn proportion_ci95(successes: usize, n: usize) -> (f64, f64) {
    if n == 0 {
        return (0.0, 1.0);
    }
    let successes = successes.min(n);
    let z = 1.959_963_984_540_054_f64;
    let n_f = n as f64;
    let p = successes as f64 / n_f;
    let z2 = z * z;
    let denom = 1.0 + z2 / n_f;
    let centre = p + z2 / (2.0 * n_f);
    let margin = z * (p * (1.0 - p) / n_f + z2 / (4.0 * n_f * n_f)).sqrt();
    let lo = if successes == 0 {
        0.0
    } else {
        ((centre - margin) / denom).max(0.0)
    };
    let hi = if successes == n {
        1.0
    } else {
        ((centre + margin) / denom).min(1.0)
    };
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(stddev(&[5.0]), 0.0);
        let s = stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s - 2.138_089_935).abs() < 1e-6);
    }

    #[test]
    fn wilson_interval_contains_point_estimate() {
        for (k, n) in [(0usize, 10usize), (5, 10), (10, 10), (1, 1000)] {
            let (lo, hi) = proportion_ci95(k, n);
            let p = k as f64 / n as f64;
            assert!(lo <= p + 1e-12 && p <= hi + 1e-12, "({k},{n}): {lo} {p} {hi}");
            assert!((0.0..=1.0).contains(&lo));
            assert!((0.0..=1.0).contains(&hi));
        }
    }

    #[test]
    fn wilson_interval_narrows_with_n() {
        let (lo1, hi1) = proportion_ci95(5, 10);
        let (lo2, hi2) = proportion_ci95(500, 1000);
        assert!(hi2 - lo2 < hi1 - lo1);
    }

    #[test]
    fn wilson_empty_sample() {
        assert_eq!(proportion_ci95(0, 0), (0.0, 1.0));
    }

    #[test]
    fn wilson_zero_successes_pins_lower_bound() {
        for n in [1usize, 7, 100, 4096] {
            let (lo, hi) = proportion_ci95(0, n);
            assert_eq!(lo, 0.0, "n={n}");
            assert!(hi > 0.0 && hi < 1.0, "n={n}: hi={hi}");
        }
    }

    #[test]
    fn wilson_all_successes_pins_upper_bound() {
        for n in [1usize, 7, 100, 4096] {
            let (lo, hi) = proportion_ci95(n, n);
            assert_eq!(hi, 1.0, "n={n}");
            assert!(lo > 0.0 && lo < 1.0, "n={n}: lo={lo}");
        }
        // The lower bound tightens toward 1 as evidence accumulates.
        let (lo_small, _) = proportion_ci95(10, 10);
        let (lo_large, _) = proportion_ci95(1000, 1000);
        assert!(lo_large > lo_small);
    }

    #[test]
    fn wilson_clamps_excess_successes() {
        assert_eq!(proportion_ci95(15, 10), proportion_ci95(10, 10));
    }
}

//! Small statistics helpers for campaign post-processing.

/// Arithmetic mean. Returns 0.0 for an empty slice.
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Sample standard deviation (n-1 denominator). Returns 0.0 for fewer than
/// two values.
#[must_use]
pub fn stddev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / (values.len() - 1) as f64;
    var.sqrt()
}

/// 95% Wilson score interval for a binomial proportion: returns
/// `(lower, upper)` for `successes` out of `n`.
///
/// Used to attach confidence intervals to campaign failure rates.
#[must_use]
pub fn proportion_ci95(successes: usize, n: usize) -> (f64, f64) {
    if n == 0 {
        return (0.0, 1.0);
    }
    let z = 1.959_963_984_540_054_f64;
    let n_f = n as f64;
    let p = successes as f64 / n_f;
    let z2 = z * z;
    let denom = 1.0 + z2 / n_f;
    let centre = p + z2 / (2.0 * n_f);
    let margin = z * (p * (1.0 - p) / n_f + z2 / (4.0 * n_f * n_f)).sqrt();
    (
        ((centre - margin) / denom).max(0.0),
        ((centre + margin) / denom).min(1.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(stddev(&[5.0]), 0.0);
        let s = stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s - 2.138_089_935).abs() < 1e-6);
    }

    #[test]
    fn wilson_interval_contains_point_estimate() {
        for (k, n) in [(0usize, 10usize), (5, 10), (10, 10), (1, 1000)] {
            let (lo, hi) = proportion_ci95(k, n);
            let p = k as f64 / n as f64;
            assert!(lo <= p + 1e-12 && p <= hi + 1e-12, "({k},{n}): {lo} {p} {hi}");
            assert!((0.0..=1.0).contains(&lo));
            assert!((0.0..=1.0).contains(&hi));
        }
    }

    #[test]
    fn wilson_interval_narrows_with_n() {
        let (lo1, hi1) = proportion_ci95(5, 10);
        let (lo2, hi2) = proportion_ci95(500, 1000);
        assert!(hi2 - lo2 < hi1 - lo1);
    }

    #[test]
    fn wilson_empty_sample() {
        assert_eq!(proportion_ci95(0, 0), (0.0, 1.0));
    }
}

//! Monte-Carlo fault-injection campaigns.
//!
//! # Checkpoint acceleration
//!
//! A naive campaign re-executes every trial from instruction zero, even
//! though everything before a trial's first bit flip is bit-identical to
//! the golden run. With [`CampaignConfig::checkpointing`] (the default),
//! the campaign instead:
//!
//! 1. **Checkpoints the golden run**: while the fault-free reference
//!    executes, the campaign records up to 32 [`certa_sim::Snapshot`]s
//!    (count auto-tuned from [`CampaignConfig::checkpoint_budget_bytes`]),
//!    doubling the spacing whenever the budget would be exceeded, and
//!    remembers how many *eligible* writebacks each snapshot had seen.
//! 2. **Fast-forwards each trial**: a trial restores the latest checkpoint
//!    at or before its earliest planned flip — by eligible-writeback count
//!    for register plans ([`FaultPlan`]), by dynamic instruction count for
//!    memory-cell plans ([`MemoryFaultPlan`]) — so the skipped prefix,
//!    which carries no flips, is never re-executed.
//! 3. **Detects reconvergence adaptively**: probing is only meaningful
//!    once every planned flip has been applied, so after its last flip's
//!    checkpoint the trial runs *straight through* the intermediate
//!    checkpoints without pausing (pauses also force the simulator out of
//!    its superblock traces, so fewer pauses mean faster trial
//!    execution). The first probe lands at the first checkpoint past the
//!    plan's latest injection point; if the states are bit-identical
//!    ([`Machine::state_eq`] — O(dirty pages) via copy-on-write page
//!    sharing and per-page hashes) the rest of the run *is* the golden
//!    run, and the golden outcome/output are spliced in without executing
//!    the suffix. A trial that has not reconverged backs off
//!    exponentially (probe gaps 1, 2, 4, … checkpoints): masked flips —
//!    the common case under protection — splice at the first probe, while
//!    persistently divergent trials stop paying per-checkpoint pauses.
//! 4. **Schedules for incremental restore**: worker threads
//!    ([`std::thread::scope`]) each own one reusable [`Machine`]. Trials
//!    are sorted by restore checkpoint and injection point, then handed
//!    out in contiguous *chunks*, so a worker's consecutive trials
//!    restore the very checkpoint the machine is already based on —
//!    O(pages the previous trial wrote) of pointer swaps — and the hops
//!    that remain (between chunk groups) recur across workers, keeping
//!    the bounded hop-union MRU cache hot. Restores never copy page
//!    bytes and never allocate: copy-on-write page sharing swaps page
//!    pointers and recycles displaced pages.
//! 5. **Decodes once**: the program is lowered to the simulator's micro-op
//!    form ([`certa_sim::DecodedProgram`]) a single time per campaign and
//!    shared by the golden run and every trial machine.
//!
//! **Determinism contract**: checkpointed trials are bit-identical —
//! outcome, output, instruction count, and injected count — to running the
//! same seed from scratch. Before the earliest flip a trial equals the
//! golden run, so restoring a golden checkpoint there is exact; after the
//! last flip, splicing only happens when the full architectural state
//! equals the golden state, which makes the suffix exact too. The
//! workspace property suite (`tests/property.rs`) verifies this
//! equivalence across random seeds and workload sizes.
//!
//! # Harness fault containment
//!
//! At paper scale a campaign must survive its own harness: a trial whose
//! hook panics, or one that wedges past any reasonable wall-clock bound,
//! must not take down the worker thread and the campaign with it. Every
//! trial attempt therefore runs under [`std::panic::catch_unwind`] with a
//! wall-clock deadline ([`CampaignConfig::trial_timeout`]) checked
//! between instruction slices. A failed attempt (panic or timeout)
//! discards the possibly-poisoned machine state — checkpointed workers
//! are rebuilt from checkpoint 0 via [`Machine::restore_full`], scratch
//! workers build a fresh machine anyway — and the trial is retried once.
//! A trial that fails the harness twice is recorded as
//! [`TrialStatus::HarnessError`], never silently dropped, and
//! [`CampaignResult::verify_reconciliation`] (asserted by
//! [`run_campaign`]) checks that scheduled = completed + retried-out and
//! that every failure, retry, and rebuild is accounted for.
//! [`CampaignConfig::harness_faults`] lets tests sabotage specific trials
//! with deliberate panics and hangs to prove all of this end to end.

use certa_core::TagMap;
use certa_isa::Program;
use certa_sim::{
    AotProgram, BoundedRun, DecodedProgram, Machine, MachineConfig, NoHook, Outcome, RunResult,
    Snapshot, SuperblockPolicy, WritebackHook, DATA_BASE,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::injector::{EligibleCounter, ErrorModel, FaultPlan, Injector};
use crate::regime::{FaultTarget, MemoryFaultPlan, Protection};

/// Hard cap on golden-run checkpoints, regardless of memory budget.
const MAX_CHECKPOINTS: usize = 32;

/// Bounds on the per-slice instruction count between wall-clock deadline
/// checks (see [`derive_run_slice`]).
const MIN_RUN_SLICE: u64 = 1 << 12;
const MAX_RUN_SLICE: u64 = 1 << 20;

/// Instructions executed between wall-clock deadline checks on otherwise
/// unbounded run segments, derived from the golden run's dynamic
/// instruction count: a sixty-fourth of the golden length, clamped to
/// [`MIN_RUN_SLICE`]`..=`[`MAX_RUN_SLICE`]. Short workloads get tight
/// hang detection (a wedged trial is caught within a small multiple of a
/// healthy run), while long workloads keep the pause overhead (which
/// forces the simulator out of its superblock traces near the boundary)
/// negligible.
fn derive_run_slice(golden_icount: u64) -> u64 {
    (golden_icount / 64).clamp(MIN_RUN_SLICE, MAX_RUN_SLICE)
}

/// Harness attempts per trial: the first run plus one retry. A trial that
/// fails the harness this many times is reported as
/// [`TrialStatus::HarnessError`].
const MAX_ATTEMPTS: u32 = 2;

/// Something that can be fault-injected: a program plus the harness logic
/// that stages its input into guest memory and extracts its output.
///
/// Implemented by every workload in `certa-workloads`.
pub trait Target: Sync {
    /// The program to execute.
    fn program(&self) -> &Program;

    /// Stages input data into guest memory before a run.
    fn prepare(&self, machine: &mut Machine<'_>);

    /// Extracts the output bytes after a halted run. `None` means the
    /// output region was unreadable/malformed (treated as a completed run
    /// with zero-fidelity output by callers that care).
    fn extract(&self, machine: &Machine<'_>) -> Option<Vec<u8>>;

    /// Data memory size required (defaults to 4 MiB).
    fn mem_size(&self) -> u32 {
        4 << 20
    }
}

/// Deliberate harness sabotage for containment tests: which trials'
/// attempts are poisoned with a panicking hook or a wall-clock hang.
///
/// Each entry is `(trial index, number of leading attempts to poison)`:
/// `(3, 1)` makes trial 3's first attempt fail and its retry succeed,
/// `(3, 2)` retries trial 3 out into a [`TrialStatus::HarnessError`].
/// Empty by default — production campaigns never sabotage themselves.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HarnessFaultInjection {
    /// Trials whose leading attempts panic before the run starts.
    pub panic_trials: Vec<(usize, u32)>,
    /// Trials whose leading attempts stall past the wall-clock deadline.
    pub hang_trials: Vec<(usize, u32)>,
}

impl HarnessFaultInjection {
    /// Whether no sabotage is configured (the production case).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.panic_trials.is_empty() && self.hang_trials.is_empty()
    }

    fn panic_attempts(&self, trial: usize) -> u32 {
        self.panic_trials
            .iter()
            .find(|&&(t, _)| t == trial)
            .map_or(0, |&(_, n)| n)
    }

    fn hang_attempts(&self, trial: usize) -> u32 {
        self.hang_trials
            .iter()
            .find(|&&(t, _)| t == trial)
            .map_or(0, |&(_, n)| n)
    }
}

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Number of Monte-Carlo trials.
    pub trials: usize,
    /// Bit flips injected per trial (the paper's "errors inserted").
    pub errors: u64,
    /// Protection regime (the control-vs-data axis; see [`Protection`]).
    pub protection: Protection,
    /// Where faults land: register writebacks or resident memory cells.
    pub target: FaultTarget,
    /// Base seed; trial `t` uses a seed derived from `(seed, t)`.
    pub seed: u64,
    /// Watchdog budget as a multiple of the golden instruction count.
    /// Exceeding it is the experiment's "infinite execution" outcome.
    pub watchdog_factor: u64,
    /// Worker threads (0 = one per available core).
    pub threads: usize,
    /// Value-corruption model (defaults to the paper's single bit flip).
    pub model: ErrorModel,
    /// Accelerate trials with golden-run checkpoints (see the module docs).
    /// Results are bit-identical either way; turning this off exists for
    /// benchmarking and for double-checking the determinism contract.
    pub checkpointing: bool,
    /// Memory budget for golden-run checkpoints in bytes. The checkpoint
    /// count is `budget / snapshot size`, clamped to `1..=32`.
    pub checkpoint_budget_bytes: usize,
    /// Initial checkpoint spacing in dynamic instructions. Spacing doubles
    /// (and existing checkpoints are thinned) whenever the count would
    /// exceed the budget, so any golden length ends up with a bounded,
    /// roughly even checkpoint set.
    pub checkpoint_stride: u64,
    /// Wall-clock deadline per trial attempt — the escalation above the
    /// instruction-budget watchdog. A watchdog trip is an experimental
    /// outcome ([`certa_sim::Outcome::InfiniteRun`]); blowing the
    /// wall-clock deadline is a *harness* failure, handled by the
    /// containment policy (retry once, then [`TrialStatus::HarnessError`]).
    pub trial_timeout: Duration,
    /// Deliberate sabotage for containment tests (empty in production).
    pub harness_faults: HarnessFaultInjection,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            trials: 100,
            errors: 1,
            protection: Protection::ControlOnly,
            target: FaultTarget::Registers,
            seed: 0xCE27A,
            watchdog_factor: 10,
            threads: 0,
            model: ErrorModel::default(),
            checkpointing: true,
            checkpoint_budget_bytes: 256 << 20,
            checkpoint_stride: 1 << 16,
            trial_timeout: Duration::from_secs(60),
            harness_faults: HarnessFaultInjection::default(),
        }
    }
}

/// The fault-free reference run.
#[derive(Debug, Clone)]
pub struct GoldenRun {
    /// Output captured from the golden run.
    pub output: Vec<u8>,
    /// Dynamic instructions executed.
    pub instructions: u64,
    /// Size of the eligible-injection population under the campaign's
    /// protection regime.
    pub eligible_population: u64,
    /// Per-instruction execution counts (for Table 3 dynamic statistics).
    pub exec_counts: Vec<u64>,
}

/// One trial's result.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialResult {
    /// How the run ended.
    pub outcome: Outcome,
    /// Output bytes, if the run halted and the output region was readable.
    pub output: Option<Vec<u8>>,
    /// Dynamic instructions executed.
    pub instructions: u64,
    /// Bit flips actually applied (≤ requested when the run dies early).
    pub injected: u32,
}

impl TrialResult {
    /// Whether this trial ended in one of the paper's catastrophic failures
    /// (crash or infinite run).
    #[must_use]
    pub fn is_catastrophic(&self) -> bool {
        self.outcome.is_catastrophic()
    }
}

/// Which harness-level failure mode an attempt (or a retried-out trial)
/// hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HarnessFailure {
    /// The trial panicked (caught by the per-trial `catch_unwind`).
    Panic,
    /// The trial blew its wall-clock deadline.
    Timeout,
}

/// How one scheduled trial ended, harness-wise.
#[derive(Debug, Clone, PartialEq)]
pub enum TrialStatus {
    /// The trial ran to an experimental outcome.
    Completed(TrialResult),
    /// The trial failed the harness [`MAX_ATTEMPTS`] times and was
    /// retried out. Reported, never silently dropped.
    HarnessError(HarnessFailure),
}

/// One scheduled trial's record: its status plus how many harness retries
/// it consumed.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialRecord {
    /// How the trial ended.
    pub status: TrialStatus,
    /// Harness retries consumed (0 for a first-attempt completion).
    pub retries: u32,
}

impl TrialRecord {
    /// The experimental result, if the trial completed.
    #[must_use]
    pub fn result(&self) -> Option<&TrialResult> {
        match &self.status {
            TrialStatus::Completed(result) => Some(result),
            TrialStatus::HarnessError(_) => None,
        }
    }

    /// Whether the trial was retried out as a harness error.
    #[must_use]
    pub fn is_harness_error(&self) -> bool {
        matches!(self.status, TrialStatus::HarnessError(_))
    }
}

/// Campaign-level containment accounting (see the module docs): every
/// failed attempt, retry, machine rebuild, and retried-out trial is
/// counted, and [`CampaignResult::verify_reconciliation`] checks they
/// balance against the per-trial records.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HarnessStats {
    /// Attempts that panicked (caught and contained).
    pub panics: u64,
    /// Attempts that blew the wall-clock deadline.
    pub timeouts: u64,
    /// Retries granted after failed attempts.
    pub retries: u64,
    /// Machine rebuilds after failed attempts (restore-from-checkpoint-0
    /// for checkpointed workers, fresh construction for scratch workers).
    pub rebuilds: u64,
    /// Trials retried out into [`TrialStatus::HarnessError`].
    pub harness_errors: u64,
}

impl HarnessStats {
    /// Adds every counter of `other` into `self`. Merging is commutative
    /// and associative with [`HarnessStats::default`] as identity, which
    /// is what lets a distributed campaign sum per-chunk deltas in any
    /// arrival order (see the workspace merge-algebra property suite).
    pub fn merge(&mut self, other: &HarnessStats) {
        self.panics += other.panics;
        self.timeouts += other.timeouts;
        self.retries += other.retries;
        self.rebuilds += other.rebuilds;
        self.harness_errors += other.harness_errors;
    }

    /// The counter-wise delta `self - earlier`, saturating at zero. Used
    /// to attribute a monotone shared counter snapshot to one chunk of
    /// work: snapshot before, run, snapshot after, subtract.
    #[must_use]
    pub fn saturating_sub(&self, earlier: &HarnessStats) -> HarnessStats {
        HarnessStats {
            panics: self.panics.saturating_sub(earlier.panics),
            timeouts: self.timeouts.saturating_sub(earlier.timeouts),
            retries: self.retries.saturating_sub(earlier.retries),
            rebuilds: self.rebuilds.saturating_sub(earlier.rebuilds),
            harness_errors: self.harness_errors.saturating_sub(earlier.harness_errors),
        }
    }
}

/// Shared atomic counterpart of [`HarnessStats`], bumped by workers.
#[derive(Default)]
struct HarnessCounters {
    panics: AtomicU64,
    timeouts: AtomicU64,
    retries: AtomicU64,
    rebuilds: AtomicU64,
    harness_errors: AtomicU64,
}

impl HarnessCounters {
    fn snapshot(&self) -> HarnessStats {
        HarnessStats {
            panics: self.panics.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            rebuilds: self.rebuilds.load(Ordering::Relaxed),
            harness_errors: self.harness_errors.load(Ordering::Relaxed),
        }
    }
}

/// How the campaign's trial restores broke down by path (see
/// [`certa_sim::Machine::restore`] /
/// [`certa_sim::Machine::restore_with_diff`]): the cheap dirty-page path,
/// the checkpoint-hopping page-diff path, and the full-image fallback.
/// All zero for campaigns that run without checkpointing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RestoreStats {
    /// Same-checkpoint restores: only the pages the previous trial
    /// dirtied were copied.
    pub dirty_page: u64,
    /// Checkpoint-hopping restores through page-diff unions (dirty pages
    /// plus the pages differing along the hop, walked through aligned
    /// segment waypoints).
    pub diff_hop: u64,
    /// Hop segments whose page-diff union came from the bounded
    /// hop-union MRU cache instead of being re-unioned from adjacent
    /// diffs. Counted per segment, so a single long diff-hop restore can
    /// contribute several hits; aligned segment keys recur across
    /// workers, which is what keeps this nonzero at paper scale (gated
    /// in CI).
    pub diff_union_cache_hits: u64,
    /// Full-image `memcpy` fallbacks (hop too wide, or the machine's base
    /// was not a checkpoint of this set).
    pub full_image: u64,
}

impl RestoreStats {
    /// Total trial restores across all paths.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.dirty_page + self.diff_hop + self.full_image
    }

    /// Adds every counter of `other` into `self` (commutative/associative
    /// with the default as identity — see [`HarnessStats::merge`]).
    pub fn merge(&mut self, other: &RestoreStats) {
        self.dirty_page += other.dirty_page;
        self.diff_hop += other.diff_hop;
        self.diff_union_cache_hits += other.diff_union_cache_hits;
        self.full_image += other.full_image;
    }

    /// The counter-wise delta `self - earlier`, saturating at zero (see
    /// [`HarnessStats::saturating_sub`]).
    #[must_use]
    pub fn saturating_sub(&self, earlier: &RestoreStats) -> RestoreStats {
        RestoreStats {
            dirty_page: self.dirty_page.saturating_sub(earlier.dirty_page),
            diff_hop: self.diff_hop.saturating_sub(earlier.diff_hop),
            diff_union_cache_hits: self
                .diff_union_cache_hits
                .saturating_sub(earlier.diff_union_cache_hits),
            full_image: self.full_image.saturating_sub(earlier.full_image),
        }
    }
}

/// Counts of completed trials by raw simulator outcome, plus the trials
/// the harness retried out. Replaces the old positional
/// `(halted, crashed, infinite)` tuple — with a six-way verdict taxonomy
/// layered on top (see `certa_fidelity::verdict`), positional counts are
/// an accident waiting to happen.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeCounts {
    /// Trials that ran to a clean halt.
    pub halted: usize,
    /// Trials that crashed (memory violation, misalignment, control
    /// derailment).
    pub crashed: usize,
    /// Trials that tripped the instruction-budget watchdog.
    pub infinite: usize,
    /// Trials retried out as [`TrialStatus::HarnessError`].
    pub harness_error: usize,
}

impl OutcomeCounts {
    /// Counts the outcomes of a record sequence — the same bucketing as
    /// [`CampaignResult::outcome_counts`], usable on a chunk's records
    /// before they are merged into a campaign (the write-ahead journal
    /// stores per-chunk counts and cross-checks them against the decoded
    /// records on replay).
    pub fn of<'a>(records: impl IntoIterator<Item = &'a TrialRecord>) -> OutcomeCounts {
        let mut counts = OutcomeCounts::default();
        for record in records {
            match &record.status {
                TrialStatus::Completed(t) => match t.outcome {
                    Outcome::Halted => counts.halted += 1,
                    Outcome::Crashed(_) => counts.crashed += 1,
                    Outcome::InfiniteRun => counts.infinite += 1,
                },
                TrialStatus::HarnessError(_) => counts.harness_error += 1,
            }
        }
        counts
    }

    /// Total scheduled trials accounted for.
    #[must_use]
    pub fn total(&self) -> usize {
        self.halted + self.crashed + self.infinite + self.harness_error
    }

    /// Adds every bucket of `other` into `self` (commutative/associative
    /// with the default as identity — see [`HarnessStats::merge`]).
    pub fn merge(&mut self, other: &OutcomeCounts) {
        self.halted += other.halted;
        self.crashed += other.crashed;
        self.infinite += other.infinite;
        self.harness_error += other.harness_error;
    }
}

/// Aggregated campaign results.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// The fault-free reference run.
    pub golden: GoldenRun,
    /// Per-trial records, in trial order.
    pub trials: Vec<TrialRecord>,
    /// Restore-path breakdown of the checkpointed trial scheduler.
    pub restore_stats: RestoreStats,
    /// Containment accounting (all zero for an unsabotaged, healthy run).
    pub harness_stats: HarnessStats,
    /// Bytes actually materialized capturing the golden checkpoints: under
    /// copy-on-write page sharing a capture copies only the pages written
    /// since the previous checkpoint, so this is far below
    /// `checkpoints × memory size`. Zero for campaigns run without
    /// checkpointing.
    pub checkpoint_capture_bytes: u64,
    /// Wall-clock time of the whole campaign (golden run, checkpoint
    /// capture, and all trials).
    pub elapsed: std::time::Duration,
}

impl CampaignResult {
    /// Completed trials per wall-clock second — the paper-scale campaign
    /// throughput number (golden-run time is included in the denominator,
    /// as a campaign cannot run without it).
    #[must_use]
    pub fn trials_per_second(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.trials.len() as f64 / secs
    }

    /// Iterates over the results of trials that completed (skipping
    /// harness errors).
    pub fn completed(&self) -> impl Iterator<Item = &TrialResult> + '_ {
        self.trials.iter().filter_map(TrialRecord::result)
    }

    /// Fraction of completed trials that ended catastrophically (Table
    /// 2's "% failures").
    #[must_use]
    pub fn failure_rate(&self) -> f64 {
        let mut completed = 0usize;
        let mut failures = 0usize;
        for trial in self.completed() {
            completed += 1;
            failures += usize::from(trial.is_catastrophic());
        }
        if completed == 0 {
            return 0.0;
        }
        failures as f64 / completed as f64
    }

    /// Iterates over the outputs of completed (halted) trials.
    pub fn completed_outputs(&self) -> impl Iterator<Item = &[u8]> + '_ {
        self.completed().filter_map(|t| t.output.as_deref())
    }

    /// Counts every scheduled trial by raw outcome (see
    /// [`OutcomeCounts`]).
    #[must_use]
    pub fn outcome_counts(&self) -> OutcomeCounts {
        OutcomeCounts::of(&self.trials)
    }

    /// Checks the campaign-level containment invariants: every scheduled
    /// trial is either completed or a harness error, the per-trial retry
    /// counts sum to the campaign retry counter, every failed attempt was
    /// either retried or retried out, and every failed attempt rebuilt
    /// its worker machine.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    /// [`run_campaign`] asserts this before returning, so a violation is
    /// a harness bug, not an experimental outcome.
    pub fn verify_reconciliation(&self) -> Result<(), String> {
        let completed = self.completed().count();
        let errors = self.trials.iter().filter(|r| r.is_harness_error()).count();
        if completed + errors != self.trials.len() {
            return Err(format!(
                "trial records do not partition: {completed} completed + {errors} errors != {} scheduled",
                self.trials.len()
            ));
        }
        let stats = &self.harness_stats;
        if errors as u64 != stats.harness_errors {
            return Err(format!(
                "harness-error records ({errors}) disagree with the campaign counter ({})",
                stats.harness_errors
            ));
        }
        let retry_sum: u64 = self.trials.iter().map(|r| u64::from(r.retries)).sum();
        if retry_sum != stats.retries {
            return Err(format!(
                "per-trial retries ({retry_sum}) disagree with the campaign counter ({})",
                stats.retries
            ));
        }
        let failed_attempts = stats.panics + stats.timeouts;
        if failed_attempts != stats.retries + stats.harness_errors {
            return Err(format!(
                "failed attempts ({failed_attempts}) != retries ({}) + harness errors ({})",
                stats.retries, stats.harness_errors
            ));
        }
        if stats.rebuilds != failed_attempts {
            return Err(format!(
                "rebuilds ({}) != failed attempts ({failed_attempts})",
                stats.rebuilds
            ));
        }
        Ok(())
    }
}

fn trial_seed(base: u64, trial: usize) -> u64 {
    // SplitMix64 finalizer: decorrelates consecutive trial indices.
    let mut z = base ^ (trial as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs the golden (fault-free) reference for `target`, also measuring the
/// eligible population under `protection`.
///
/// # Panics
///
/// Panics if the golden run does not halt cleanly — the guest program itself
/// is broken, which is a harness bug, not an experimental outcome.
#[must_use]
pub fn golden_run(
    target: &dyn Target,
    tags: &TagMap,
    protection: Protection,
    watchdog: u64,
) -> GoldenRun {
    // Zero budget keeps only the mandatory instruction-zero checkpoint and
    // the maximal stride means the run is never paused: this is exactly the
    // plain golden run, sharing one implementation with the checkpointed
    // path so the two can never diverge.
    let decoded = Arc::new(DecodedProgram::new(target.program()));
    let (golden, _, _) =
        golden_run_checkpointed(target, &decoded, tags, protection, watchdog, 0, u64::MAX, None);
    golden
}

/// A golden-run snapshot plus the number of eligible writebacks it had
/// seen — the unit the checkpointed scheduler fast-forwards trials to.
struct Checkpoint {
    snapshot: Snapshot,
    eligible_seen: u64,
}

/// One cached hop union: the `(lo, hi)` checkpoint index pair and the
/// sorted, deduplicated union of adjacent page diffs along it.
type HopUnion = ((usize, usize), Arc<Vec<u32>>);

/// Capacity of the hop-union cache: with segmented hops (see
/// [`CheckpointSet::hop_step`]) the working key set is the
/// [`HOP_SEGMENT`]-aligned segments of the ≤ [`MAX_CHECKPOINTS`]
/// checkpoint range plus short partial edges, so a small MRU list covers
/// it without ever growing with trial count.
const HOP_CACHE_CAPACITY: usize = 16;

/// Base segment length (in checkpoints) of the aligned waypoints long
/// hops walk through (see [`CheckpointSet::hop_step`]).
const HOP_SEGMENT: usize = 4;

/// Largest aligned span a single hop step may cover. Spans double from
/// [`HOP_SEGMENT`] while they stay aligned and inside the hop (a buddy
/// decomposition), so a long walk crosses O(log distance) canonical
/// spans instead of distance/[`HOP_SEGMENT`] segments — and every one of
/// those spans is a cache key shared by *any* other hop crossing the
/// same region. Sixteen base segments comfortably covers the
/// [`MAX_CHECKPOINTS`]-bounded index range.
const MAX_HOP_SPAN: usize = HOP_SEGMENT << 4;

/// The golden checkpoints plus precomputed page diffs between adjacent
/// pairs, so a worker machine hopping from one checkpoint to another
/// copies only the pages that actually differ along the hop (plus its own
/// dirty pages) instead of the whole memory image.
struct CheckpointSet {
    checkpoints: Vec<Checkpoint>,
    /// `adjacent_diffs[i]`: pages on which checkpoints `i` and `i + 1`
    /// differ ([`Snapshot::diff_pages`] — byte-exact, diffs are a restore
    /// correctness contract).
    adjacent_diffs: Vec<Vec<u32>>,
    /// Bounded MRU cache of hop page-diff unions keyed by `(lo, hi)`
    /// checkpoint index pairs: trial clusters on late checkpoints would
    /// otherwise re-union the same adjacent diffs once per trial. Shared
    /// across workers; accessed with `try_lock` so a contended cache
    /// degrades to per-hop unioning, never to serialization.
    hop_cache: Mutex<Vec<HopUnion>>,
    /// Restore-path counters (see [`RestoreStats`]), relaxed — they are
    /// diagnostics, aggregated after the scheduler joins.
    dirty_restores: AtomicU64,
    diff_restores: AtomicU64,
    diff_cache_hits: AtomicU64,
    full_restores: AtomicU64,
}

impl CheckpointSet {
    fn new(checkpoints: Vec<Checkpoint>) -> Self {
        let adjacent_diffs = checkpoints
            .windows(2)
            .map(|w| {
                w[0].snapshot
                    .diff_pages(&w[1].snapshot)
                    .expect("golden checkpoints share one memory size")
            })
            .collect();
        CheckpointSet {
            checkpoints,
            adjacent_diffs,
            hop_cache: Mutex::new(Vec::with_capacity(HOP_CACHE_CAPACITY)),
            dirty_restores: AtomicU64::new(0),
            diff_restores: AtomicU64::new(0),
            diff_cache_hits: AtomicU64::new(0),
            full_restores: AtomicU64::new(0),
        }
    }

    /// The union of adjacent page diffs along the hop `lo..hi`, from the
    /// bounded MRU cache when available; the flag reports whether it was
    /// a cache hit (the caller counts hits only for unions it actually
    /// uses). Unions of at least `cache_page_limit` pages are not cached
    /// — the caller will take the full-image path anyway, and an
    /// unusable union must not occupy an MRU slot. Falls back to
    /// unioning into `diff_scratch` (returning `None`) when the cache
    /// lock is contended — correctness never depends on the cache, only
    /// the re-union work does.
    fn hop_union(
        &self,
        lo: usize,
        hi: usize,
        cache_page_limit: usize,
        diff_scratch: &mut Vec<u32>,
    ) -> (Option<Arc<Vec<u32>>>, bool) {
        if let Ok(mut cache) = self.hop_cache.try_lock() {
            if let Some(pos) = cache.iter().position(|(key, _)| *key == (lo, hi)) {
                let entry = cache.remove(pos);
                let union = Arc::clone(&entry.1);
                cache.insert(0, entry); // MRU to the front
                return (Some(union), true);
            }
            let mut union: Vec<u32> = Vec::new();
            for diff in &self.adjacent_diffs[lo..hi] {
                union.extend_from_slice(diff);
            }
            union.sort_unstable();
            union.dedup();
            let union = Arc::new(union);
            if union.len() < cache_page_limit {
                cache.insert(0, ((lo, hi), Arc::clone(&union)));
                cache.truncate(HOP_CACHE_CAPACITY);
            }
            return (Some(union), false);
        }
        diff_scratch.clear();
        for diff in &self.adjacent_diffs[lo..hi] {
            diff_scratch.extend_from_slice(diff);
        }
        diff_scratch.sort_unstable();
        diff_scratch.dedup();
        (None, false)
    }

    /// The next checkpoint index on the segmented walk from `cur` toward
    /// `dest`. An unaligned position first steps to the nearest
    /// [`HOP_SEGMENT`] boundary in that direction (clamped to `dest`);
    /// an aligned one covers the largest power-of-two span (from
    /// [`HOP_SEGMENT`] up to [`MAX_HOP_SPAN`]) that both starts aligned
    /// to twice its length — the buddy condition that keeps every span
    /// at a canonical `(k·2ⁿS, (k+1)·2ⁿS)` position — and still fits
    /// inside the hop. Walking through aligned waypoints gives long hops
    /// *canonical* cache keys — every worker crossing the same region
    /// reuses the same span unions, no matter where its own hop started
    /// (a 1→N walk hits the spans an unrelated 3→N walk cached) — where
    /// a direct `(from, index)` key would be unique to one worker's
    /// momentary position and never hit the cache. Doubling spans also
    /// shortens long walks to O(log distance) restore steps.
    fn hop_step(cur: usize, dest: usize) -> usize {
        const S: usize = HOP_SEGMENT;
        if dest > cur {
            if !cur.is_multiple_of(S) {
                return ((cur / S + 1) * S).min(dest);
            }
            let mut span = S;
            while span < MAX_HOP_SPAN
                && cur.is_multiple_of(span << 1)
                && cur + (span << 1) <= dest
            {
                span <<= 1;
            }
            if cur + span <= dest {
                cur + span
            } else {
                dest
            }
        } else {
            if !cur.is_multiple_of(S) {
                return ((cur / S) * S).max(dest);
            }
            let mut span = S;
            while span < MAX_HOP_SPAN
                && cur.is_multiple_of(span << 1)
                && cur >= (span << 1)
                && cur - (span << 1) >= dest
            {
                span <<= 1;
            }
            if cur >= span && cur - span >= dest {
                cur - span
            } else {
                dest
            }
        }
    }

    /// Restores `machine` to checkpoint `index` as cheaply as the
    /// machine's current base allows: dirty-page restore when it is
    /// already based on that checkpoint; otherwise, when it is based on
    /// another checkpoint of this set, a walk of page-diff restores
    /// through [`Self::hop_step`] waypoints (each segment an
    /// O(segment-diff) pointer-swap restore, with segment unions served
    /// from the MRU cache); and the plain full-restore fallback when the
    /// base is foreign or a segment union blows past half the image. All
    /// paths are bit-identical: every waypoint restore lands the machine
    /// exactly on that checkpoint's state.
    fn restore(&self, machine: &mut Machine<'_>, index: usize, diff_scratch: &mut Vec<u32>) {
        let target = &self.checkpoints[index];
        let base = machine.base_snapshot_id();
        if base == target.snapshot.id() {
            self.dirty_restores.fetch_add(1, Ordering::Relaxed);
            machine
                .restore(&target.snapshot)
                .expect("checkpoint memory image matches the trial machine");
            return;
        }
        if let Some(from) = self
            .checkpoints
            .iter()
            .position(|c| c.snapshot.id() == base)
        {
            let limit = target.snapshot.page_count() / 2;
            let mut cache_hits = 0u64;
            let mut cur = from;
            loop {
                let next = Self::hop_step(cur, index);
                // Adjacent diffs are symmetric, so backward segments
                // reuse the forward segment's key and union.
                let (lo, hi) = (cur.min(next), cur.max(next));
                let (cached, cache_hit) = self.hop_union(lo, hi, limit, diff_scratch);
                let union: &[u32] = cached.as_deref().map_or(&diff_scratch[..], |u| &u[..]);
                if union.len() >= limit {
                    // Degenerate segment (most of the image changed):
                    // swapping every page is cheaper than walking diffs.
                    // Hits from segments already walked still count — the
                    // liveness gate must see every real cache use.
                    self.full_restores.fetch_add(1, Ordering::Relaxed);
                    self.diff_cache_hits.fetch_add(cache_hits, Ordering::Relaxed);
                    machine
                        .restore(&target.snapshot)
                        .expect("checkpoint memory image matches the trial machine");
                    return;
                }
                machine
                    .restore_with_diff(&self.checkpoints[next].snapshot, union)
                    .expect("checkpoint memory image matches the trial machine");
                if cache_hit {
                    cache_hits += 1;
                }
                if next == index {
                    break;
                }
                cur = next;
            }
            self.diff_restores.fetch_add(1, Ordering::Relaxed);
            self.diff_cache_hits.fetch_add(cache_hits, Ordering::Relaxed);
            return;
        }
        self.full_restores.fetch_add(1, Ordering::Relaxed);
        machine
            .restore(&target.snapshot)
            .expect("checkpoint memory image matches the trial machine");
    }

    /// Snapshot of the restore-path counters.
    fn stats(&self) -> RestoreStats {
        RestoreStats {
            dirty_page: self.dirty_restores.load(Ordering::Relaxed),
            diff_hop: self.diff_restores.load(Ordering::Relaxed),
            diff_union_cache_hits: self.diff_cache_hits.load(Ordering::Relaxed),
            full_image: self.full_restores.load(Ordering::Relaxed),
        }
    }
}

/// Per-instruction indicator of the eligible-writeback population: `1`
/// where instruction `i` produces a value and `protection`'s mask admits
/// it, else `0`. Dotting this with a profiled run's execution counts
/// yields exactly what an [`EligibleCounter`] hook counts over the same
/// run — every value-producing instruction performs one hook-visible
/// writeback per execution — which is how the native golden path
/// (hook-free by construction, see [`certa_sim::Machine::run_aot`])
/// recovers `eligible_seen` at checkpoint boundaries.
fn eligible_units(program: &Program, tags: &TagMap, protection: Protection) -> Vec<u64> {
    let mask = protection.eligibility_mask(program, tags);
    program
        .code
        .iter()
        .enumerate()
        .map(|(i, instr)| u64::from(instr.def().is_some() && mask.as_ref().is_none_or(|m| m[i])))
        .collect()
}

/// The eligible-writeback count implied by a profile (see
/// [`eligible_units`]).
fn eligible_from_counts(units: &[u64], exec_counts: &[u64]) -> u64 {
    units.iter().zip(exec_counts).map(|(u, c)| u * c).sum()
}

/// Runs the golden reference like [`golden_run`], additionally recording
/// checkpoints: snapshots spaced `stride` dynamic instructions apart,
/// thinned (keep every other, double the stride) whenever the count would
/// exceed the memory budget. Checkpoint 0 is always the post-`prepare`
/// state at instruction zero, so every trial has a restore point. The
/// third return value is the bytes actually materialized by the captures
/// (see [`certa_sim::Machine::capture_bytes`]).
///
/// With `aot` supplied, the run executes on the tier-4 native regions
/// ([`certa_sim::Machine::run_until_aot`]) instead of the hooked
/// interpreter, and eligible-writeback counts are recovered from the
/// profile ([`eligible_units`]) — bit-identical state, counts, and
/// checkpoints either way, just faster.
#[allow(clippy::too_many_arguments)]
fn golden_run_checkpointed(
    target: &dyn Target,
    decoded: &Arc<DecodedProgram>,
    tags: &TagMap,
    protection: Protection,
    watchdog: u64,
    budget_bytes: usize,
    stride: u64,
    aot: Option<&AotProgram>,
) -> (GoldenRun, Vec<Checkpoint>, u64) {
    let program = target.program();
    let config = MachineConfig {
        mem_size: target.mem_size(),
        max_instructions: watchdog,
        profile: true,
    };
    let mut machine = Machine::try_new_with_decoded(program, decoded, &config)
        .unwrap_or_else(|e| panic!("machine configuration rejected: {e}"));
    target.prepare(&mut machine);
    let mut counter = EligibleCounter::new(program, tags, protection);
    let units = aot.map(|_| eligible_units(program, tags, protection));
    let eligible_seen = |machine: &Machine<'_>, counter: &EligibleCounter| match &units {
        Some(units) => eligible_from_counts(units, machine.exec_counts()),
        None => counter.count,
    };

    let mut checkpoints = vec![Checkpoint {
        snapshot: machine.snapshot(),
        eligible_seen: 0,
    }];
    let max_snapshots =
        (budget_bytes / checkpoints[0].snapshot.size_bytes().max(1)).clamp(1, MAX_CHECKPOINTS);
    let mut stride = stride.max(1);

    let result = loop {
        let next_at = machine.instructions().saturating_add(stride);
        let bounded = match aot {
            Some(aot) => machine.run_until_aot(&mut NoHook, aot, next_at),
            None => machine.run_until(&mut counter, next_at),
        };
        match bounded {
            BoundedRun::Finished(result) => break result,
            BoundedRun::Paused => {
                if checkpoints.len() >= max_snapshots {
                    // Keep every other checkpoint (0 always survives) and
                    // double the spacing: the count stays bounded with
                    // O(log golden_len) thinning rounds overall.
                    let mut keep = false;
                    checkpoints.retain(|_| {
                        keep = !keep;
                        keep
                    });
                    stride = stride.saturating_mul(2);
                }
                let last = checkpoints.last().expect("checkpoint 0 is never thinned");
                if machine.instructions() - last.snapshot.instructions() >= stride {
                    checkpoints.push(Checkpoint {
                        snapshot: machine.snapshot(),
                        eligible_seen: eligible_seen(&machine, &counter),
                    });
                }
            }
        }
    };

    assert_eq!(
        result.outcome,
        Outcome::Halted,
        "golden run must halt cleanly, got {}",
        result.outcome
    );
    let eligible_population = eligible_seen(&machine, &counter);
    debug_assert_eq!(
        eligible_population,
        eligible_from_counts(
            &eligible_units(program, tags, protection),
            machine.exec_counts()
        ),
        "hook-counted and profile-derived eligible populations must agree"
    );
    let output = target
        .extract(&machine)
        .expect("golden run must produce readable output");
    let golden = GoldenRun {
        output,
        instructions: result.instructions,
        eligible_population,
        exec_counts: machine.exec_counts().to_vec(),
    };
    let capture_bytes = machine.capture_bytes();
    (golden, checkpoints, capture_bytes)
}

/// One trial's pre-sampled fault plan, dispatched by the campaign's
/// [`FaultTarget`].
#[derive(Debug, Clone)]
enum TrialPlan {
    /// Register-writeback flips, keyed by eligible-execution index.
    Reg(FaultPlan),
    /// Memory-cell flips, keyed by dynamic instruction count.
    Mem(MemoryFaultPlan),
}

impl TrialPlan {
    fn is_empty(&self) -> bool {
        match self {
            TrialPlan::Reg(p) => p.is_empty(),
            TrialPlan::Mem(p) => p.is_empty(),
        }
    }

    fn earliest_injection(&self) -> Option<u64> {
        match self {
            TrialPlan::Reg(p) => p.earliest_injection(),
            TrialPlan::Mem(p) => p.earliest_injection(),
        }
    }
}

/// The latest checkpoint a trial with this plan can restore from:
/// register plans compare against the checkpoint's eligible-writeback
/// count, memory plans against its dynamic instruction count (strictly
/// below the earliest flip boundary, which is where the flip *pauses*,
/// so restoring there would skip it).
fn restore_checkpoint_index(checkpoints: &[Checkpoint], plan: &TrialPlan) -> usize {
    match plan {
        TrialPlan::Reg(p) => {
            let earliest = p.earliest_injection().expect("plan is non-empty");
            checkpoints
                .partition_point(|c| c.eligible_seen <= earliest)
                .saturating_sub(1)
        }
        TrialPlan::Mem(p) => {
            let earliest = p.earliest_injection().expect("plan is non-empty");
            checkpoints
                .partition_point(|c| c.snapshot.instructions() < earliest)
                .saturating_sub(1)
        }
    }
}

/// How a trial attempt ended, harness-wise: an experimental result, or a
/// blown wall-clock deadline (the containment wrapper decides retry vs.
/// [`TrialStatus::HarnessError`]).
enum TrialExec {
    Done(TrialResult),
    TimedOut,
}

/// Runs `machine` to completion in `slice`-instruction slices (see
/// [`derive_run_slice`]), checking the wall-clock `deadline` between
/// slices. `None` means the deadline passed with the run still going — a
/// harness failure, distinct from the instruction-budget watchdog (which
/// finishes the run with [`Outcome::InfiniteRun`], an experimental
/// outcome).
fn run_sliced<H: WritebackHook>(
    machine: &mut Machine<'_>,
    hook: &mut H,
    deadline: Instant,
    slice: u64,
) -> Option<RunResult> {
    loop {
        let bound = machine.instructions().saturating_add(slice.max(1));
        match machine.run_until(hook, bound) {
            BoundedRun::Finished(result) => return Some(result),
            BoundedRun::Paused => {
                if Instant::now() >= deadline {
                    return None;
                }
            }
        }
    }
}

/// Applies a memory-cell plan's flips at their instruction boundaries:
/// runs to each boundary, flips the planned data-segment bit through the
/// copy-on-write store, and counts the flips that landed. Returns the
/// run's result if it finished before (or at) some boundary, `Ok(None)`
/// if all boundaries were passed with the run still going, and
/// `Err(TrialExec::TimedOut)` on a blown deadline.
fn apply_memory_flips(
    machine: &mut Machine<'_>,
    plan: &MemoryFaultPlan,
    injected: &mut u32,
    deadline: Instant,
) -> Result<Option<RunResult>, TrialExec> {
    let mut hook = NoHook;
    for &(at, offset, bit) in plan.triples() {
        if at <= machine.instructions() {
            // Resumed past this boundary (cannot happen from the campaign
            // scheduler, which restores strictly below the earliest flip,
            // but explicit plans could): the flip is missed, exactly as a
            // hook attached late would miss it.
            continue;
        }
        match machine.run_until(&mut hook, at) {
            BoundedRun::Finished(result) => return Ok(Some(result)),
            BoundedRun::Paused => {
                if Instant::now() >= deadline {
                    return Err(TrialExec::TimedOut);
                }
                if machine
                    .flip_memory_bit(DATA_BASE.saturating_add(offset), bit)
                    .is_ok()
                {
                    *injected += 1;
                }
            }
        }
    }
    Ok(None)
}

/// Runs one trial the slow way: fresh machine, staged input, execute from
/// instruction zero. This is the reference path (`checkpointing: false`)
/// the accelerated path must match bit-for-bit.
fn run_trial_scratch(
    session: &CampaignSession<'_>,
    plan: &TrialPlan,
    deadline: Instant,
) -> TrialExec {
    let target = session.target;
    let config = &session.config;
    let program = target.program();
    let mut machine =
        Machine::try_new_with_decoded(program, &session.trial_decoded, &session.machine_config)
            .unwrap_or_else(|e| panic!("machine configuration rejected: {e}"));
    target.prepare(&mut machine);
    let (result, injected) = match plan {
        TrialPlan::Reg(plan) => {
            let mut injector = Injector::with_model(
                program,
                session.tags,
                config.protection,
                plan.clone(),
                config.model,
            );
            let Some(result) =
                run_sliced(&mut machine, &mut injector, deadline, session.run_slice)
            else {
                return TrialExec::TimedOut;
            };
            (result, injector.injected())
        }
        TrialPlan::Mem(plan) => {
            let mut injected = 0u32;
            let early = match apply_memory_flips(&mut machine, plan, &mut injected, deadline) {
                Ok(early) => early,
                Err(timed_out) => return timed_out,
            };
            let result = match early {
                Some(result) => result,
                None => match run_sliced(&mut machine, &mut NoHook, deadline, session.run_slice) {
                    Some(result) => result,
                    None => return TrialExec::TimedOut,
                },
            };
            (result, injected)
        }
    };
    let output = if result.outcome == Outcome::Halted {
        target.extract(&machine)
    } else {
        None
    };
    TrialExec::Done(TrialResult {
        outcome: result.outcome,
        output,
        instructions: result.instructions,
        injected,
    })
}

/// Largest reconvergence-probe gap (in checkpoints) the exponential
/// backoff reaches. Bounded so a trial that diverges early but heals late
/// still splices within a few probes of healing, while a persistently
/// divergent trial pays at most O(log checkpoints) pauses.
const MAX_PROBE_GAP: usize = 8;

/// Runs one trial from the nearest golden checkpoint at or before its
/// earliest injection point, reusing `machine`'s buffers (restore is
/// pointer swaps into existing page slots, never an allocation).
///
/// Reconvergence probing is adaptive: the first probe lands at the first
/// checkpoint past the plan's *latest* injection point — probing earlier
/// can never splice (some planned flip has not fired), so the trial runs
/// straight through earlier checkpoints without pausing, which also keeps
/// the simulator inside its superblock traces (a pause boundary forces
/// per-op dispatch near it). On a failed probe the gap to the next probe
/// doubles (1, 2, 4, … up to [`MAX_PROBE_GAP`] checkpoints). On a
/// bit-identical match the golden result is spliced in and the suffix is
/// skipped — probing later than the actual reconvergence point only costs
/// execution time, never correctness, because a reconverged trial stays
/// bit-identical to golden at every later checkpoint too. See the module
/// docs for why both directions are exact.
///
/// Memory-cell plans follow the identical structure with instruction
/// counts in place of eligible-writeback counts: run to each flip
/// boundary, flip the planned bit through the copy-on-write store, then
/// probe for reconvergence past the last boundary.
fn run_trial_checkpointed(
    session: &CampaignSession<'_>,
    machine: &mut Machine<'_>,
    diff_scratch: &mut Vec<u32>,
    plan: &TrialPlan,
    deadline: Instant,
) -> TrialExec {
    let target = session.target;
    let config = &session.config;
    let golden = &session.golden;
    let checkpoint_set = session
        .checkpoints
        .as_ref()
        .expect("checkpointed trial runner requires a checkpoint set");
    let checkpoints = &checkpoint_set.checkpoints;
    if plan.is_empty() {
        // No flips will ever fire, so the trial *is* the golden run.
        return TrialExec::Done(TrialResult {
            outcome: Outcome::Halted,
            output: Some(golden.output.clone()),
            instructions: golden.instructions,
            injected: 0,
        });
    }

    let cp_index = restore_checkpoint_index(checkpoints, plan);
    let checkpoint = &checkpoints[cp_index];
    checkpoint_set.restore(machine, cp_index, diff_scratch);

    // Stage 1: apply every planned flip, then find the first probe index.
    // Register plans inject through the writeback hook while running;
    // memory plans pause at each flip boundary and flip the stored bit.
    enum Stage1 {
        Probing { next_index: usize },
        Finished(RunResult),
    }
    let planned;
    let mut injector = None;
    let mut mem_injected = 0u32;
    let stage1 = match plan {
        TrialPlan::Reg(plan) => {
            planned = plan.len() as u32;
            let latest = plan.latest_injection().expect("plan is non-empty");
            injector = Some(
                Injector::with_model(
                    target.program(),
                    session.tags,
                    config.protection,
                    plan.clone(),
                    config.model,
                )
                .resume_from(checkpoint.eligible_seen),
            );
            // First checkpoint whose eligible count is past every planned
            // flip (on the golden path; a control-divergent trial cannot
            // splice anyway and the injected == planned guard below stays
            // authoritative).
            Stage1::Probing {
                next_index: checkpoints.partition_point(|c| c.eligible_seen <= latest),
            }
        }
        TrialPlan::Mem(plan) => {
            planned = plan.len() as u32;
            let latest = plan.latest_injection().expect("plan is non-empty");
            match apply_memory_flips(machine, plan, &mut mem_injected, deadline) {
                Ok(None) => Stage1::Probing {
                    next_index: checkpoints
                        .partition_point(|c| c.snapshot.instructions() <= latest),
                },
                Ok(Some(result)) => Stage1::Finished(result),
                Err(timed_out) => return timed_out,
            }
        }
    };

    // Stage 2: run toward completion, pausing at probe checkpoints to
    // test for reconvergence with the golden run.
    let injected_now = |injector: &Option<Injector>, mem_injected: u32| match injector {
        Some(inj) => inj.injected(),
        None => mem_injected,
    };
    let result = match stage1 {
        Stage1::Finished(result) => result,
        Stage1::Probing { mut next_index } => {
            let mut probe_gap = 1usize;
            let mut mem_hook = NoHook;
            loop {
                let Some(next_cp) = checkpoints.get(next_index) else {
                    // Past the last probe point: run out the remainder in
                    // deadline-checked slices.
                    let finished = match &mut injector {
                        Some(inj) => run_sliced(machine, inj, deadline, session.run_slice),
                        None => run_sliced(machine, &mut mem_hook, deadline, session.run_slice),
                    };
                    match finished {
                        Some(result) => break result,
                        None => return TrialExec::TimedOut,
                    }
                };
                let bound = next_cp.snapshot.instructions();
                let paused = match &mut injector {
                    Some(inj) => machine.run_until(inj, bound),
                    None => machine.run_until(&mut mem_hook, bound),
                };
                match paused {
                    BoundedRun::Finished(result) => break result,
                    BoundedRun::Paused => {
                        if Instant::now() >= deadline {
                            return TrialExec::TimedOut;
                        }
                        if injected_now(&injector, mem_injected) == planned
                            && machine.state_eq(&next_cp.snapshot)
                        {
                            // Every planned flip is applied and the state
                            // has reconverged with the golden run (the
                            // flips were masked): the remainder is
                            // bit-identical to golden.
                            return TrialExec::Done(TrialResult {
                                outcome: Outcome::Halted,
                                output: Some(golden.output.clone()),
                                instructions: golden.instructions,
                                injected: planned,
                            });
                        }
                        next_index += probe_gap;
                        probe_gap = (probe_gap * 2).min(MAX_PROBE_GAP);
                    }
                }
            }
        }
    };
    let output = if result.outcome == Outcome::Halted {
        target.extract(machine)
    } else {
        None
    };
    TrialExec::Done(TrialResult {
        outcome: result.outcome,
        output,
        instructions: result.instructions,
        injected: injected_now(&injector, mem_injected),
    })
}

/// The per-trial containment wrapper: runs up to [`MAX_ATTEMPTS`]
/// attempts of `attempt_run` under `catch_unwind` with a fresh wall-clock
/// deadline each, applying any configured sabotage
/// ([`CampaignConfig::harness_faults`]) at attempt entry, rebuilding the
/// worker after every failed attempt, and bumping the shared containment
/// counters so [`CampaignResult::verify_reconciliation`] can balance the
/// books.
fn contain<W>(
    trial: usize,
    config: &CampaignConfig,
    counters: &HarnessCounters,
    worker: &mut W,
    rebuild: impl Fn(&mut W),
    attempt_run: impl Fn(&mut W, Instant) -> TrialExec,
) -> TrialRecord {
    let mut retries = 0u32;
    let mut last_failure = None;
    for attempt in 0..MAX_ATTEMPTS {
        let deadline = Instant::now() + config.trial_timeout;
        let exec = catch_unwind(AssertUnwindSafe(|| {
            if attempt < config.harness_faults.panic_attempts(trial) {
                // `resume_unwind` skips the global panic hook: injected
                // faults are expected and must not spam stderr.
                std::panic::resume_unwind(Box::new("injected harness fault: panicking hook"));
            }
            if attempt < config.harness_faults.hang_attempts(trial) {
                // Simulate a wedged trial: stall past the deadline.
                std::thread::sleep(config.trial_timeout + Duration::from_millis(20));
            }
            if Instant::now() >= deadline {
                return TrialExec::TimedOut;
            }
            attempt_run(&mut *worker, deadline)
        }));
        match exec {
            Ok(TrialExec::Done(result)) => {
                return TrialRecord {
                    status: TrialStatus::Completed(result),
                    retries,
                };
            }
            Ok(TrialExec::TimedOut) => {
                counters.timeouts.fetch_add(1, Ordering::Relaxed);
                last_failure = Some(HarnessFailure::Timeout);
            }
            Err(_) => {
                counters.panics.fetch_add(1, Ordering::Relaxed);
                last_failure = Some(HarnessFailure::Panic);
            }
        }
        // The attempt failed: whatever state the machine was left in is
        // suspect, so discard it before any retry.
        rebuild(&mut *worker);
        counters.rebuilds.fetch_add(1, Ordering::Relaxed);
        if attempt + 1 < MAX_ATTEMPTS {
            retries += 1;
            counters.retries.fetch_add(1, Ordering::Relaxed);
        }
    }
    counters.harness_errors.fetch_add(1, Ordering::Relaxed);
    TrialRecord {
        status: TrialStatus::HarnessError(
            last_failure.expect("at least one attempt ran and failed"),
        ),
        retries,
    }
}

/// Runs `order`'s trials across `threads` scoped workers, each owning one
/// reusable worker state (for checkpointed campaigns, a [`Machine`] whose
/// page slots are recycled across trials). Trials are handed out in
/// `order` through an atomic cursor in contiguous chunks of `chunk`
/// trials: with `order` sorted by restore checkpoint, a worker's
/// consecutive trials then restore the checkpoint its machine is already
/// based on (the O(previous trial's written pages) fast path) instead of
/// interleaving checkpoint groups across workers. Results land at their
/// trial index, so the output is independent of the handout. `chunk = 1`
/// degrades to the plain work-stealing cursor.
fn schedule_trials<R, W, G, F>(
    order: &[usize],
    threads: usize,
    chunk: usize,
    mk_worker: G,
    run: F,
) -> Vec<R>
where
    R: Send,
    W: Send,
    G: Fn() -> W + Sync,
    F: Fn(&mut W, usize) -> R + Sync,
{
    let n = order.len();
    let chunk = chunk.max(1);
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let threads = threads.min(n);
    if threads <= 1 || n <= 1 {
        let mut worker = mk_worker();
        for &t in order {
            results[t] = Some(run(&mut worker, t));
        }
    } else {
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut worker = mk_worker();
                        let mut local = Vec::new();
                        loop {
                            let k = next.fetch_add(1, Ordering::Relaxed);
                            let start = k.saturating_mul(chunk);
                            if start >= n {
                                break;
                            }
                            for &t in &order[start..(start + chunk).min(n)] {
                                local.push((t, run(&mut worker, t)));
                            }
                        }
                        local
                    })
                })
                .collect();
            for handle in handles {
                for (t, result) in handle.join().expect("campaign worker panicked") {
                    results[t] = Some(result);
                }
            }
        });
    }
    results
        .into_iter()
        .map(|r| r.expect("every trial filled"))
        .collect()
}

/// Runs a full campaign: golden run, then `config.trials` parallel
/// fault-injection trials (checkpoint-accelerated by default — see the
/// module docs; results are bit-identical to from-scratch execution),
/// each contained by the harness-fault policy (panic isolation,
/// wall-clock timeout, bounded retry).
///
/// # Panics
///
/// Panics if the golden run fails (see [`golden_run`]) or if the
/// campaign's trial accounting does not reconcile (a harness bug — see
/// [`CampaignResult::verify_reconciliation`]).
#[must_use]
pub fn run_campaign(target: &dyn Target, tags: &TagMap, config: &CampaignConfig) -> CampaignResult {
    let session = CampaignSession::new(target, tags, config);
    let trials = session.run_all();
    session.finish(trials)
}

/// [`run_campaign`] with the golden run (and checkpoint capture)
/// executed on tier-4 native code (see
/// [`CampaignSession::new_with_aot`]). Fault trials stay on the
/// interpreter — hooks observe every writeback there — so results are
/// bit-identical to [`run_campaign`]; only the golden-run wall clock
/// changes.
///
/// # Panics
///
/// Panics as [`run_campaign`] does, and additionally if `aot` was not
/// generated from `target`'s program.
#[must_use]
pub fn run_campaign_with_aot(
    target: &dyn Target,
    tags: &TagMap,
    config: &CampaignConfig,
    aot: Option<&AotProgram>,
) -> CampaignResult {
    let session = CampaignSession::new_with_aot(target, tags, config, aot);
    let trials = session.run_all();
    session.finish(trials)
}

/// A contiguous, checkpoint-grouped batch of trial ids — the unit of work
/// the distributed coordinator (`certa-dist`) leases to workers.
/// [`CampaignSession::chunk_plan`] cuts the session's sorted trial order
/// into these, so a worker's consecutive trials within one chunk restore
/// incrementally, exactly as the in-process scheduler's chunked handout
/// does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialChunk {
    /// Dense chunk id (`0..chunk_count`).
    pub id: u32,
    /// Global trial ids, in scheduling order.
    pub trials: Vec<u32>,
}

/// A fully prepared campaign: the golden run, its checkpoint set, the
/// predecoded trial program, and every trial's pre-sampled fault plan —
/// everything [`run_campaign`] builds before scheduling, held open so
/// trials can be executed in arbitrary subsets.
///
/// This is the seam the distributed service (`certa-dist`) splits the
/// campaign along: a coordinator and each worker process independently
/// build a session from the same `(target, config)` pair — construction
/// is deterministic, and [`CampaignSession::fingerprint`] guards against
/// mismatch — and then any party can run any subset of trial ids with
/// [`CampaignSession::run_subset`], bit-identical to the same trials of
/// an in-process [`run_campaign`]. Trial ids are deterministic (the
/// per-trial seed depends only on `(config.seed, id)`), so re-executing a
/// chunk after a lost worker overwrites the same records instead of
/// double-counting.
pub struct CampaignSession<'a> {
    target: &'a dyn Target,
    tags: &'a TagMap,
    config: CampaignConfig,
    /// Resolved worker-thread count (`config.threads` with 0 = per-core).
    threads: usize,
    /// Wall-clock deadline check interval in instructions (see
    /// [`derive_run_slice`]).
    run_slice: u64,
    golden: GoldenRun,
    checkpoints: Option<CheckpointSet>,
    checkpoint_capture_bytes: u64,
    trial_decoded: Arc<DecodedProgram>,
    machine_config: MachineConfig,
    plans: Vec<TrialPlan>,
    counters: HarnessCounters,
    started: Instant,
}

impl<'a> CampaignSession<'a> {
    /// Prepares a campaign: golden run (with checkpoints when configured),
    /// trial program lowering, and plan pre-sampling. Deterministic for a
    /// given `(target, config)` pair.
    ///
    /// # Panics
    ///
    /// Panics if the golden run fails (see [`golden_run`]).
    #[must_use]
    pub fn new(target: &'a dyn Target, tags: &'a TagMap, config: &CampaignConfig) -> Self {
        Self::new_with_aot(target, tags, config, None)
    }

    /// [`CampaignSession::new`], with the golden run executed on tier-4
    /// native regions when `aot` is supplied (it must have been generated
    /// from `target`'s program). Checkpoints, eligible-writeback counts,
    /// and the seeded trial lowering are bit-identical to the interpreted
    /// golden run — the native tier matches the reference on every
    /// observable, including profile counts — so sessions built either
    /// way are interchangeable (same [`CampaignSession::fingerprint`]).
    ///
    /// # Panics
    ///
    /// Panics if the golden run fails (see [`golden_run`]) or on an
    /// `aot`/program length mismatch.
    #[must_use]
    pub fn new_with_aot(
        target: &'a dyn Target,
        tags: &'a TagMap,
        config: &CampaignConfig,
        aot: Option<&AotProgram>,
    ) -> Self {
        assert!(
            u32::try_from(config.trials).is_ok(),
            "trial ids must fit in u32"
        );
        let started = std::time::Instant::now();
        // One decode per session: the golden run and every trial machine
        // share the same micro-op lowering.
        let decoded = Arc::new(DecodedProgram::new(target.program()));
        // Large budget for the golden run; the trial watchdog derives
        // from it.
        let golden_budget = u64::MAX / 2;
        let (golden, checkpoints, checkpoint_capture_bytes) = if config.checkpointing {
            let (golden, checkpoints, capture_bytes) = golden_run_checkpointed(
                target,
                &decoded,
                tags,
                config.protection,
                golden_budget,
                config.checkpoint_budget_bytes,
                config.checkpoint_stride,
                aot,
            );
            (golden, Some(CheckpointSet::new(checkpoints)), capture_bytes)
        } else {
            let (golden, _, _) = golden_run_checkpointed(
                target,
                &decoded,
                tags,
                config.protection,
                golden_budget,
                0,
                u64::MAX,
                aot,
            );
            (golden, None, 0)
        };
        let watchdog = golden
            .instructions
            .saturating_mul(config.watchdog_factor)
            .max(golden.instructions + 1_000_000);

        let threads = if config.threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            config.threads
        };

        let program = target.program();
        let machine_config = MachineConfig {
            mem_size: target.mem_size(),
            max_instructions: watchdog,
            profile: false,
        };
        // Trials re-lower the program with the golden run's execution
        // counts seeding the superblock policy: only blocks the golden run
        // actually reached get trace bodies, which is where trials spend
        // nearly all of their time (they diverge from golden only after a
        // flip lands). Decoded once, shared by every worker machine.
        let trial_decoded = Arc::new(DecodedProgram::with_policy(
            program,
            &SuperblockPolicy::seeded(golden.exec_counts.clone()),
        ));

        // Pre-sample every trial's plan. This matches sampling inside the
        // trial exactly — the per-trial RNG is used for nothing else — and
        // the scheduler needs the injection points up front to sort
        // trials.
        let plans: Vec<TrialPlan> = (0..config.trials)
            .map(|t| {
                let mut rng = SmallRng::seed_from_u64(trial_seed(config.seed, t));
                match config.target {
                    FaultTarget::Registers => TrialPlan::Reg(FaultPlan::sample(
                        &mut rng,
                        golden.eligible_population,
                        config.errors,
                    )),
                    FaultTarget::MemoryCells => TrialPlan::Mem(MemoryFaultPlan::sample(
                        &mut rng,
                        golden.instructions,
                        program.data.len(),
                        config.errors,
                    )),
                }
            })
            .collect();

        CampaignSession {
            target,
            tags,
            config: config.clone(),
            threads,
            run_slice: derive_run_slice(golden.instructions),
            golden,
            checkpoints,
            checkpoint_capture_bytes,
            trial_decoded,
            machine_config,
            plans,
            counters: HarnessCounters::default(),
            started,
        }
    }

    /// The fault-free reference run.
    #[must_use]
    pub fn golden(&self) -> &GoldenRun {
        &self.golden
    }

    /// The campaign configuration this session was built from.
    #[must_use]
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Bytes materialized capturing the golden checkpoints (see
    /// [`CampaignResult::checkpoint_capture_bytes`]).
    #[must_use]
    pub fn checkpoint_capture_bytes(&self) -> u64 {
        self.checkpoint_capture_bytes
    }

    /// Wall-clock time since session construction began (includes the
    /// golden run, like [`CampaignResult::elapsed`]).
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Snapshot of the cumulative harness containment counters across
    /// every trial this session has run so far. Monotone — callers
    /// attributing stats to one batch take before/after snapshots and
    /// [`HarnessStats::saturating_sub`] them.
    #[must_use]
    pub fn harness_stats(&self) -> HarnessStats {
        self.counters.snapshot()
    }

    /// Snapshot of the cumulative restore-path counters (all zero without
    /// checkpointing). Monotone, like [`CampaignSession::harness_stats`].
    #[must_use]
    pub fn restore_stats(&self) -> RestoreStats {
        self.checkpoints
            .as_ref()
            .map_or_else(RestoreStats::default, CheckpointSet::stats)
    }

    /// A deterministic digest of everything that shapes trial results:
    /// the result-affecting configuration fields and the golden run
    /// (output, instruction count, eligible population). Two processes
    /// that independently built sessions from the same `(target, config)`
    /// pair agree on every trial's record **iff** their fingerprints
    /// match — the distributed service refuses to hand out work across a
    /// mismatch.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut hash = fnv1a_u64(FNV_OFFSET, self.config.trials as u64);
        hash = fnv1a_u64(hash, self.config.errors);
        hash = fnv1a_u64(hash, self.config.seed);
        hash = fnv1a_u64(hash, self.config.watchdog_factor);
        hash = fnv1a_bytes(hash, self.config.protection.label().as_bytes());
        hash = fnv1a_bytes(hash, self.config.target.label().as_bytes());
        let (model_tag, model_param) = match self.config.model {
            ErrorModel::SingleBitFlip => (0u64, 0u64),
            ErrorModel::AdjacentDoubleBitFlip => (1, 0),
            ErrorModel::BurstFlip { len } => (2, u64::from(len)),
            ErrorModel::StuckAtZero => (3, 0),
            ErrorModel::StuckAtOne => (4, 0),
        };
        hash = fnv1a_u64(hash, model_tag);
        hash = fnv1a_u64(hash, model_param);
        hash = fnv1a_u64(hash, self.golden.instructions);
        hash = fnv1a_u64(hash, self.golden.eligible_population);
        hash = fnv1a_u64(hash, self.golden.output.len() as u64);
        fnv1a_bytes(hash, &self.golden.output)
    }

    /// The scheduling sort key of one trial: its restore checkpoint group
    /// and earliest injection point (empty plans sort last — they splice
    /// the golden run and restore nothing).
    fn sort_key(&self, trial: u32) -> (usize, u64) {
        let plan = &self.plans[trial as usize];
        match (&self.checkpoints, plan.earliest_injection()) {
            (Some(set), Some(earliest)) => {
                (restore_checkpoint_index(&set.checkpoints, plan), earliest)
            }
            _ => (usize::MAX, u64::MAX),
        }
    }

    /// Cuts the full trial population into at most roughly `parts`
    /// equal-size chunks along the scheduling order, never splitting a
    /// chunk across a checkpoint-group boundary (a chunk that restores
    /// one checkpoint stays cheap for whichever worker leases it). Every
    /// trial id appears in exactly one chunk.
    #[must_use]
    pub fn chunk_plan(&self, parts: usize) -> Vec<TrialChunk> {
        let n = self.config.trials;
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by_key(|&t| self.sort_key(t));
        let max_len = n.div_ceil(parts.max(1)).max(1);
        let mut chunks: Vec<TrialChunk> = Vec::new();
        let mut current: Vec<u32> = Vec::new();
        let mut current_group = usize::MAX;
        for trial in order {
            let group = self.sort_key(trial).0;
            if !current.is_empty() && (current.len() >= max_len || group != current_group) {
                chunks.push(TrialChunk {
                    id: chunks.len() as u32,
                    trials: std::mem::take(&mut current),
                });
            }
            current_group = group;
            current.push(trial);
        }
        if !current.is_empty() {
            chunks.push(TrialChunk {
                id: chunks.len() as u32,
                trials: current,
            });
        }
        chunks
    }

    /// Runs every trial of the campaign (equivalent to
    /// [`CampaignSession::run_subset`] over `0..trials`).
    #[must_use]
    pub fn run_all(&self) -> Vec<TrialRecord> {
        let ids: Vec<u32> = (0..self.config.trials as u32).collect();
        self.run_subset(&ids)
    }

    /// Runs the given trials across this session's worker threads,
    /// returning one record per id, aligned with `ids`. Each record is
    /// bit-identical to the same trial of a full in-process campaign —
    /// subsets only select *which* trials run, never what they compute —
    /// so re-running an id (e.g. a re-leased distributed chunk) always
    /// reproduces the same record.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of range.
    #[must_use]
    pub fn run_subset(&self, ids: &[u32]) -> Vec<TrialRecord> {
        for &id in ids {
            assert!(
                (id as usize) < self.config.trials,
                "trial id {id} out of range (campaign has {} trials)",
                self.config.trials
            );
        }
        let n = ids.len();
        match &self.checkpoints {
            Some(checkpoint_set) => {
                // Sort by (restore checkpoint, injection point): trials of
                // one checkpoint group sit contiguously, ordered by how
                // early they diverge. Chunked handout (see
                // `schedule_trials`) then gives each worker a run of
                // same-checkpoint trials — consecutive trials restore
                // incrementally from the previous trial's start state —
                // and the chunk-boundary hops recur across workers, so the
                // bounded hop-union MRU cache serves them warm.
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by_key(|&pos| self.sort_key(ids[pos]));
                // Chunks sized so each worker lands several chunks in
                // every checkpoint group: within a group a worker's
                // consecutive chunks restore on the dirty-page fast path,
                // while every worker still crosses every group boundary —
                // so the adjacent checkpoint hops recur once per worker
                // and the hop-union MRU serves all but the first from
                // cache. (One giant chunk per worker would minimize hops
                // but leave every hop key unique — a cold cache and a
                // load-balance cliff.)
                let groups = checkpoint_set.checkpoints.len().max(1);
                let chunk = (n / (groups * self.threads * 2).max(1)).clamp(1, 64);
                schedule_trials(
                    &order,
                    self.threads,
                    chunk,
                    || {
                        let machine = Machine::from_snapshot_with_decoded(
                            self.target.program(),
                            &self.trial_decoded,
                            &checkpoint_set.checkpoints[0].snapshot,
                            &self.machine_config,
                        )
                        .expect("checkpoint matches the campaign machine config");
                        (machine, Vec::new())
                    },
                    |worker: &mut (Machine<'_>, Vec<u32>), pos| {
                        let trial = ids[pos] as usize;
                        contain(
                            trial,
                            &self.config,
                            &self.counters,
                            worker,
                            |w| {
                                w.0.restore_full(&checkpoint_set.checkpoints[0].snapshot)
                                    .expect("checkpoint matches the campaign machine config");
                            },
                            |w, deadline| {
                                run_trial_checkpointed(
                                    self,
                                    &mut w.0,
                                    &mut w.1,
                                    &self.plans[trial],
                                    deadline,
                                )
                            },
                        )
                    },
                )
            }
            None => {
                let order: Vec<usize> = (0..n).collect();
                schedule_trials(
                    &order,
                    self.threads,
                    1,
                    || (),
                    |worker, pos| {
                        let trial = ids[pos] as usize;
                        contain(
                            trial,
                            &self.config,
                            &self.counters,
                            worker,
                            |_| {
                                // Scratch trials build a fresh machine per
                                // attempt; the "rebuild" is that
                                // construction.
                            },
                            |_, deadline| {
                                run_trial_scratch(self, &self.plans[trial], deadline)
                            },
                        )
                    },
                )
            }
        }
    }

    /// Assembles the final [`CampaignResult`] from this session and a
    /// complete, trial-ordered record vector (normally
    /// [`CampaignSession::run_all`]'s output).
    ///
    /// # Panics
    ///
    /// Panics if the trial accounting does not reconcile (a harness bug —
    /// see [`CampaignResult::verify_reconciliation`]).
    #[must_use]
    pub fn finish(self, trials: Vec<TrialRecord>) -> CampaignResult {
        let restore_stats = self.restore_stats();
        let harness_stats = self.counters.snapshot();
        let result = CampaignResult {
            golden: self.golden,
            trials,
            restore_stats,
            harness_stats,
            checkpoint_capture_bytes: self.checkpoint_capture_bytes,
            elapsed: self.started.elapsed(),
        };
        if let Err(violation) = result.verify_reconciliation() {
            panic!("campaign trial accounting must reconcile: {violation}");
        }
        result
    }
}

/// FNV-1a offset basis (the fingerprint's seed).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a_bytes(hash: u64, bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(hash, |h, &b| (h ^ u64::from(b)).wrapping_mul(FNV_PRIME))
}

fn fnv1a_u64(hash: u64, value: u64) -> u64 {
    fnv1a_bytes(hash, &value.to_le_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use certa_asm::Asm;
    use certa_core::analyze;
    use certa_isa::reg::{T0, T1, T2, T3};

    /// A tiny workload: sums an input array of 64 bytes into a 32-bit output.
    struct SumTarget {
        program: Program,
        input_addr: u32,
        output_addr: u32,
    }

    impl SumTarget {
        fn new() -> Self {
            let mut a = Asm::new();
            let input_addr = a.data_zero(64);
            let output_addr = a.data_zero(4);
            a.func("sum", true);
            a.la(T0, input_addr);
            a.li(T1, 0);
            a.li(T2, 0);
            a.label("loop");
            a.add(T3, T0, T1);
            a.lbu(T3, 0, T3);
            a.add(T2, T2, T3);
            a.addi(T1, T1, 1);
            a.slti(T3, T1, 64);
            a.bnez(T3, "loop");
            a.la(T0, output_addr);
            a.sw(T2, 0, T0);
            a.ret();
            a.endfunc();
            a.func("main", false);
            a.call("sum");
            a.halt();
            a.endfunc();
            SumTarget {
                program: a.assemble().unwrap(),
                input_addr,
                output_addr,
            }
        }
    }

    impl Target for SumTarget {
        fn program(&self) -> &Program {
            &self.program
        }

        fn prepare(&self, machine: &mut Machine<'_>) {
            let input: Vec<u8> = (0..64u8).collect();
            machine.write_bytes(self.input_addr, &input).unwrap();
        }

        fn extract(&self, machine: &Machine<'_>) -> Option<Vec<u8>> {
            machine.read_bytes(self.output_addr, 4).ok()
        }
    }

    #[test]
    fn golden_run_captures_reference() {
        let t = SumTarget::new();
        let tags = analyze(&t.program);
        let g = golden_run(&t, &tags, Protection::ControlOnly, 1_000_000);
        let sum = u32::from_le_bytes(g.output.clone().try_into().unwrap());
        assert_eq!(sum, (0..64u32).sum::<u32>());
        assert!(g.eligible_population > 0);
        assert!(g.instructions > 64 * 6);
    }

    #[test]
    fn zero_errors_campaign_matches_golden() {
        let t = SumTarget::new();
        let tags = analyze(&t.program);
        let cfg = CampaignConfig {
            trials: 4,
            errors: 0,
            ..CampaignConfig::default()
        };
        let r = run_campaign(&t, &tags, &cfg);
        assert_eq!(r.failure_rate(), 0.0);
        assert_eq!(r.completed().count(), 4);
        for trial in r.completed() {
            assert_eq!(trial.output.as_deref(), Some(&r.golden.output[..]));
            assert_eq!(trial.injected, 0);
        }
    }

    #[test]
    fn protected_campaign_never_crashes_this_kernel() {
        // With control data protected, faults hit only the accumulator
        // chain: outputs may differ but control never derails.
        let t = SumTarget::new();
        let tags = analyze(&t.program);
        let cfg = CampaignConfig {
            trials: 50,
            errors: 2,
            protection: Protection::ControlOnly,
            threads: 2,
            ..CampaignConfig::default()
        };
        let r = run_campaign(&t, &tags, &cfg);
        assert_eq!(
            r.failure_rate(),
            0.0,
            "protected sum kernel must not fail catastrophically"
        );
        // ... and at least one trial should actually corrupt the sum.
        let corrupted = r
            .completed_outputs()
            .filter(|o| *o != &r.golden.output[..])
            .count();
        assert!(corrupted > 0, "faults should perturb some outputs");
    }

    #[test]
    fn unprotected_campaign_fails_sometimes() {
        let t = SumTarget::new();
        let tags = analyze(&t.program);
        let cfg = CampaignConfig {
            trials: 60,
            errors: 4,
            protection: Protection::None,
            threads: 2,
            ..CampaignConfig::default()
        };
        let r = run_campaign(&t, &tags, &cfg);
        assert!(
            r.failure_rate() > 0.0,
            "unprotected injection into addresses/branches should crash sometimes"
        );
    }

    #[test]
    fn full_protection_campaign_is_all_masked() {
        // The all-shielded sanity pole: no instruction is eligible, every
        // plan is empty, every trial splices as the golden run.
        let t = SumTarget::new();
        let tags = analyze(&t.program);
        let cfg = CampaignConfig {
            trials: 12,
            errors: 3,
            protection: Protection::Full,
            threads: 2,
            ..CampaignConfig::default()
        };
        let r = run_campaign(&t, &tags, &cfg);
        assert_eq!(r.golden.eligible_population, 0);
        assert_eq!(r.completed().count(), 12);
        for trial in r.completed() {
            assert_eq!(trial.output.as_deref(), Some(&r.golden.output[..]));
            assert_eq!(trial.injected, 0);
        }
    }

    #[test]
    fn campaign_is_deterministic_for_fixed_seed() {
        let t = SumTarget::new();
        let tags = analyze(&t.program);
        let cfg = CampaignConfig {
            trials: 10,
            errors: 1,
            threads: 2,
            ..CampaignConfig::default()
        };
        let a = run_campaign(&t, &tags, &cfg);
        let b = run_campaign(&t, &tags, &cfg);
        assert_eq!(a.trials, b.trials);
    }

    #[test]
    fn injected_count_matches_errors_when_run_completes() {
        let t = SumTarget::new();
        let tags = analyze(&t.program);
        let cfg = CampaignConfig {
            trials: 8,
            errors: 3,
            protection: Protection::ControlOnly,
            threads: 1,
            ..CampaignConfig::default()
        };
        let r = run_campaign(&t, &tags, &cfg);
        for trial in r.completed().filter(|t| !t.is_catastrophic()) {
            assert_eq!(trial.injected, 3);
        }
    }

    /// The determinism contract: checkpointed and from-scratch campaigns
    /// must agree on every per-trial observable, under every protection
    /// regime, with a stride small enough to exercise multi-checkpoint
    /// restore, reconvergence splicing, and the unbounded tail.
    #[test]
    fn checkpointed_trials_match_scratch_exactly() {
        let t = SumTarget::new();
        let tags = analyze(&t.program);
        for protection in Protection::all() {
            for threads in [1, 3] {
                let fast_cfg = CampaignConfig {
                    trials: 24,
                    errors: 2,
                    protection,
                    threads,
                    checkpoint_stride: 50,
                    ..CampaignConfig::default()
                };
                let slow_cfg = CampaignConfig {
                    checkpointing: false,
                    ..fast_cfg.clone()
                };
                let fast = run_campaign(&t, &tags, &fast_cfg);
                let slow = run_campaign(&t, &tags, &slow_cfg);
                assert_eq!(fast.golden.output, slow.golden.output);
                assert_eq!(fast.golden.instructions, slow.golden.instructions);
                assert_eq!(
                    fast.golden.eligible_population,
                    slow.golden.eligible_population
                );
                for (i, (a, b)) in fast.trials.iter().zip(&slow.trials).enumerate() {
                    assert_eq!(a, b, "trial {i} record ({protection:?})");
                }
            }
        }
    }

    /// The determinism contract holds for memory-cell campaigns too: the
    /// instruction-count-keyed flip boundaries make checkpointed memory
    /// trials exactly as splice-able as register trials.
    #[test]
    fn memory_target_checkpointed_matches_scratch() {
        let t = SumTarget::new();
        let tags = analyze(&t.program);
        for threads in [1, 3] {
            let fast_cfg = CampaignConfig {
                trials: 24,
                errors: 2,
                target: FaultTarget::MemoryCells,
                threads,
                checkpoint_stride: 50,
                ..CampaignConfig::default()
            };
            let slow_cfg = CampaignConfig {
                checkpointing: false,
                ..fast_cfg.clone()
            };
            let fast = run_campaign(&t, &tags, &fast_cfg);
            let slow = run_campaign(&t, &tags, &slow_cfg);
            for (i, (a, b)) in fast.trials.iter().zip(&slow.trials).enumerate() {
                assert_eq!(a, b, "memory trial {i} record");
            }
            // Memory flips into live input data must perturb some sums.
            let corrupted = fast
                .completed_outputs()
                .filter(|o| *o != &fast.golden.output[..])
                .count();
            assert!(corrupted > 0, "memory faults should perturb some outputs");
        }
    }

    /// Checkpointing during the golden run must not perturb the golden
    /// observables (pauses are invisible to the simulated program).
    #[test]
    fn golden_run_is_unchanged_by_checkpointing() {
        let t = SumTarget::new();
        let tags = analyze(&t.program);
        let plain = golden_run(&t, &tags, Protection::ControlOnly, 1_000_000);
        let decoded = Arc::new(DecodedProgram::new(&t.program));
        let (checkpointed, cps, _) = golden_run_checkpointed(
            &t,
            &decoded,
            &tags,
            Protection::ControlOnly,
            1_000_000,
            256 << 20,
            50,
            None,
        );
        assert_eq!(plain.output, checkpointed.output);
        assert_eq!(plain.instructions, checkpointed.instructions);
        assert_eq!(plain.eligible_population, checkpointed.eligible_population);
        assert_eq!(plain.exec_counts, checkpointed.exec_counts);
        assert!(cps.len() > 2, "stride 50 must yield several checkpoints");
        assert!(cps.len() <= MAX_CHECKPOINTS);
        assert_eq!(cps[0].snapshot.instructions(), 0);
        assert!(cps
            .windows(2)
            .all(|w| w[0].snapshot.instructions() < w[1].snapshot.instructions()));
        assert!(cps.windows(2).all(|w| w[0].eligible_seen <= w[1].eligible_seen));
    }

    /// Tiny budgets degrade gracefully to a single instruction-zero
    /// checkpoint (equivalent to re-running with reused buffers).
    #[test]
    fn single_checkpoint_budget_still_matches_scratch() {
        let t = SumTarget::new();
        let tags = analyze(&t.program);
        let fast_cfg = CampaignConfig {
            trials: 10,
            errors: 3,
            protection: Protection::None,
            threads: 2,
            checkpoint_budget_bytes: 1, // clamps to one snapshot
            ..CampaignConfig::default()
        };
        let slow_cfg = CampaignConfig {
            checkpointing: false,
            ..fast_cfg.clone()
        };
        let fast = run_campaign(&t, &tags, &fast_cfg);
        let slow = run_campaign(&t, &tags, &slow_cfg);
        assert_eq!(fast.trials, slow.trials);
    }

    /// Checkpoint-hopping restores (forward and backward, through the
    /// precomputed adjacent page diffs) must land on bit-identical state.
    #[test]
    fn checkpoint_set_hops_are_bit_identical() {
        let t = SumTarget::new();
        let tags = analyze(&t.program);
        let decoded = Arc::new(DecodedProgram::new(&t.program));
        let (_, checkpoints, _) = golden_run_checkpointed(
            &t,
            &decoded,
            &tags,
            Protection::ControlOnly,
            1_000_000,
            256 << 20,
            40,
            None,
        );
        assert!(checkpoints.len() >= 4, "need several checkpoints to hop");
        let set = CheckpointSet::new(checkpoints);
        assert_eq!(set.adjacent_diffs.len(), set.checkpoints.len() - 1);

        let config = MachineConfig {
            mem_size: t.mem_size(),
            max_instructions: 1_000_000,
            profile: false,
        };
        let mut machine = Machine::from_snapshot_with_decoded(
            &t.program,
            &decoded,
            &set.checkpoints[0].snapshot,
            &config,
        )
        .unwrap();
        let mut scratch = Vec::new();
        // Forward hops (adjacent and multi-step), with dirty state in
        // between; then a backward hop.
        for &index in &[1usize, 3, 2, 0, 3] {
            machine.run_until_simple(machine.instructions() + 17);
            set.restore(&mut machine, index, &mut scratch);
            assert!(
                machine.state_eq(&set.checkpoints[index].snapshot),
                "hop to checkpoint {index} must be exact"
            );
        }
    }

    /// Repeated hops between the same checkpoint pair must be served from
    /// the hop-union cache (after the first), and the restore-path
    /// counters must partition the restores.
    #[test]
    fn hop_union_cache_hits_on_repeated_hops() {
        let t = SumTarget::new();
        let tags = analyze(&t.program);
        let decoded = Arc::new(DecodedProgram::new(&t.program));
        let (_, checkpoints, _) = golden_run_checkpointed(
            &t,
            &decoded,
            &tags,
            Protection::ControlOnly,
            1_000_000,
            256 << 20,
            40,
            None,
        );
        assert!(checkpoints.len() >= 4);
        let set = CheckpointSet::new(checkpoints);
        let config = MachineConfig {
            mem_size: t.mem_size(),
            max_instructions: 1_000_000,
            profile: false,
        };
        let mut machine = Machine::from_snapshot_with_decoded(
            &t.program,
            &decoded,
            &set.checkpoints[0].snapshot,
            &config,
        )
        .unwrap();
        let mut scratch = Vec::new();
        // Ping-pong over the same pair: hop 0→3 unions once, every
        // further 0↔3 hop (diffs are symmetric) is a cache hit.
        for &index in &[3usize, 0, 3, 0, 3] {
            set.restore(&mut machine, index, &mut scratch);
            assert!(machine.state_eq(&set.checkpoints[index].snapshot));
        }
        let stats = set.stats();
        assert_eq!(stats.diff_hop, 5, "every ping-pong hop is diff-based");
        assert_eq!(
            stats.diff_union_cache_hits, 4,
            "all but the first (0,3) union come from the cache"
        );
        assert_eq!(stats.dirty_page, 0);
        assert_eq!(stats.full_image, 0);
        assert_eq!(stats.total(), 5);
    }

    /// A machine whose base snapshot is foreign to the checkpoint set must
    /// take (and count) the full-image path, completing the
    /// dirty/diff/cache/full partition of [`RestoreStats`]; a follow-up
    /// restore of the same checkpoint is back on the dirty-page path.
    #[test]
    fn foreign_base_takes_the_full_image_path() {
        let t = SumTarget::new();
        let tags = analyze(&t.program);
        let decoded = Arc::new(DecodedProgram::new(&t.program));
        let (_, checkpoints, _) = golden_run_checkpointed(
            &t,
            &decoded,
            &tags,
            Protection::ControlOnly,
            1_000_000,
            256 << 20,
            40,
            None,
        );
        let set = CheckpointSet::new(checkpoints);
        let config = MachineConfig {
            mem_size: t.mem_size(),
            max_instructions: 1_000_000,
            profile: false,
        };
        // A snapshot that is not part of the checkpoint set.
        let mut foreign = Machine::try_new_with_decoded(&t.program, &decoded, &config).unwrap();
        t.prepare(&mut foreign);
        foreign.run_until_simple(13);
        let foreign_snap = foreign.snapshot();

        let mut machine =
            Machine::from_snapshot_with_decoded(&t.program, &decoded, &foreign_snap, &config)
                .unwrap();
        let mut scratch = Vec::new();
        set.restore(&mut machine, 2, &mut scratch);
        assert!(machine.state_eq(&set.checkpoints[2].snapshot));
        set.restore(&mut machine, 2, &mut scratch);
        let stats = set.stats();
        assert_eq!(stats.full_image, 1, "foreign base cannot hop by diff");
        assert_eq!(stats.dirty_page, 1, "second restore is same-base");
        assert_eq!(stats.diff_hop, 0);
        assert_eq!(stats.diff_union_cache_hits, 0);
        assert_eq!(stats.total(), 2);
    }

    /// The campaign reports wall-clock throughput and the bytes its
    /// checkpoint captures actually materialized (zero without
    /// checkpointing — there are no checkpoints to pay for).
    #[test]
    fn campaign_reports_throughput_and_capture_bytes() {
        let t = SumTarget::new();
        let tags = analyze(&t.program);
        let cfg = CampaignConfig {
            trials: 8,
            errors: 1,
            checkpoint_stride: 50,
            ..CampaignConfig::default()
        };
        let r = run_campaign(&t, &tags, &cfg);
        assert!(r.elapsed > std::time::Duration::ZERO);
        assert!(r.trials_per_second() > 0.0);
        assert!(
            r.checkpoint_capture_bytes > 0,
            "checkpoint captures must account for the pages they materialize"
        );
        let scratch = run_campaign(
            &t,
            &tags,
            &CampaignConfig {
                checkpointing: false,
                ..cfg
            },
        );
        assert_eq!(scratch.checkpoint_capture_bytes, 0);
        assert!(scratch.trials_per_second() > 0.0);
    }

    /// The campaign surfaces the restore breakdown, and it accounts for
    /// every checkpointed trial restore (scratch campaigns report zeros).
    #[test]
    fn campaign_reports_restore_stats() {
        let t = SumTarget::new();
        let tags = analyze(&t.program);
        let cfg = CampaignConfig {
            trials: 16,
            errors: 2,
            threads: 2,
            checkpoint_stride: 50,
            ..CampaignConfig::default()
        };
        let r = run_campaign(&t, &tags, &cfg);
        assert!(
            r.restore_stats.total() >= 1,
            "checkpointed trials must restore at least once: {:?}",
            r.restore_stats
        );
        let scratch = run_campaign(
            &t,
            &tags,
            &CampaignConfig {
                checkpointing: false,
                ..cfg
            },
        );
        assert_eq!(scratch.restore_stats, RestoreStats::default());
    }

    #[test]
    fn outcome_counts_partition_trials() {
        let t = SumTarget::new();
        let tags = analyze(&t.program);
        let cfg = CampaignConfig {
            trials: 30,
            errors: 5,
            protection: Protection::None,
            threads: 2,
            ..CampaignConfig::default()
        };
        let r = run_campaign(&t, &tags, &cfg);
        let counts = r.outcome_counts();
        assert_eq!(counts.total(), 30);
        assert_eq!(counts.harness_error, 0, "healthy campaigns never retry out");
        assert_eq!(r.harness_stats, HarnessStats::default());
    }

    /// Sabotaged trials (one panicking attempt, one hung attempt) are
    /// contained, retried, and completed; a trial sabotaged on every
    /// attempt is retried out as a harness error; and the books balance.
    #[test]
    fn harness_faults_are_contained_and_reconciled() {
        let t = SumTarget::new();
        let tags = analyze(&t.program);
        let cfg = CampaignConfig {
            trials: 10,
            errors: 2,
            threads: 1,
            trial_timeout: Duration::from_millis(100),
            harness_faults: HarnessFaultInjection {
                panic_trials: vec![(1, 1), (7, MAX_ATTEMPTS)],
                hang_trials: vec![(4, 1)],
            },
            ..CampaignConfig::default()
        };
        let r = run_campaign(&t, &tags, &cfg);
        assert_eq!(r.trials.len(), 10);
        assert_eq!(r.trials[1].retries, 1, "panicked attempt is retried");
        assert!(r.trials[1].result().is_some());
        assert_eq!(r.trials[4].retries, 1, "hung attempt is retried");
        assert!(r.trials[4].result().is_some());
        assert_eq!(
            r.trials[7].status,
            TrialStatus::HarnessError(HarnessFailure::Panic),
            "a trial failing every attempt is retried out, never dropped"
        );
        let stats = r.harness_stats;
        assert_eq!(stats.panics, 1 + u64::from(MAX_ATTEMPTS));
        assert_eq!(stats.timeouts, 1);
        assert_eq!(stats.harness_errors, 1);
        assert_eq!(r.outcome_counts().harness_error, 1);
        r.verify_reconciliation().unwrap();

        // The unaffected trials match an unsabotaged campaign exactly.
        let clean = run_campaign(
            &t,
            &tags,
            &CampaignConfig {
                harness_faults: HarnessFaultInjection::default(),
                ..cfg.clone()
            },
        );
        for (i, (a, b)) in r.trials.iter().zip(&clean.trials).enumerate() {
            if i == 7 {
                continue; // retried out under sabotage
            }
            assert_eq!(
                a.result(),
                b.result(),
                "trial {i} result must be unaffected by sabotage elsewhere"
            );
        }
    }

    /// The span-growing waypoint walk must produce canonical power-of-two
    /// aligned spans: unaligned starts step to the next base boundary,
    /// aligned starts double their span while the buddy condition holds,
    /// and the walk is symmetric (a backward hop crosses exactly the
    /// forward hop's spans, so the symmetric-diff cache keys coincide).
    #[test]
    fn hop_step_walks_power_of_two_aligned_spans() {
        let walk = |from: usize, to: usize| {
            let mut spans = Vec::new();
            let mut cur = from;
            while cur != to {
                let next = CheckpointSet::hop_step(cur, to);
                spans.push((cur.min(next), cur.max(next)));
                cur = next;
            }
            spans
        };
        assert_eq!(walk(1, 17), vec![(1, 4), (4, 8), (8, 16), (16, 17)]);
        assert_eq!(walk(3, 17), vec![(3, 4), (4, 8), (8, 16), (16, 17)]);
        assert_eq!(walk(17, 1), vec![(16, 17), (8, 16), (4, 8), (1, 4)]);
        assert_eq!(walk(0, 31), vec![(0, 16), (16, 24), (24, 28), (28, 31)]);
        assert_eq!(walk(31, 0), vec![(28, 31), (24, 28), (16, 24), (0, 16)]);
        assert_eq!(walk(0, 3), vec![(0, 3)]);
        assert_eq!(walk(6, 7), vec![(6, 7)]);
        assert_eq!(walk(7, 6), vec![(6, 7)]);
        // Spans cap at MAX_HOP_SPAN even over a fully aligned run.
        let long = walk(0, 2 * MAX_HOP_SPAN);
        assert_eq!(long[0], (0, MAX_HOP_SPAN));
        assert_eq!(long[1], (MAX_HOP_SPAN, 2 * MAX_HOP_SPAN));
        // Every span is canonical: its start is aligned to its length.
        for (lo, hi) in walk(1, 17).into_iter().chain(walk(0, 31)) {
            let span = hi - lo;
            assert!(
                !span.is_multiple_of(HOP_SEGMENT) || lo.is_multiple_of(span),
                "span ({lo}, {hi}) is not canonically aligned"
            );
        }
    }

    /// The cross-worker payoff of canonical spans: a 1→N hop must be
    /// served from span unions cached by an unrelated 3→N hop — the two
    /// walks share every span past their first partial edge.
    #[test]
    fn unrelated_hops_share_cached_span_unions() {
        let t = SumTarget::new();
        let tags = analyze(&t.program);
        let decoded = Arc::new(DecodedProgram::new(&t.program));
        let (_, checkpoints, _) = golden_run_checkpointed(
            &t,
            &decoded,
            &tags,
            Protection::ControlOnly,
            1_000_000,
            256 << 20,
            20,
            None,
        );
        assert!(
            checkpoints.len() >= 18,
            "need indices through 17, got {}",
            checkpoints.len()
        );
        let set = CheckpointSet::new(checkpoints);
        let config = MachineConfig {
            mem_size: t.mem_size(),
            max_instructions: 1_000_000,
            profile: false,
        };
        let mut scratch = Vec::new();

        // A worker based on checkpoint 3 hops to 17, caching the unions
        // of spans (3,4), (4,8), (8,16), (16,17) — all misses.
        let mut from3 = Machine::from_snapshot_with_decoded(
            &t.program,
            &decoded,
            &set.checkpoints[3].snapshot,
            &config,
        )
        .unwrap();
        set.restore(&mut from3, 17, &mut scratch);
        assert!(from3.state_eq(&set.checkpoints[17].snapshot));
        assert_eq!(set.stats().diff_union_cache_hits, 0);

        // An unrelated worker based on checkpoint 1 hops to the same
        // destination: spans (4,8), (8,16), (16,17) come from the cache;
        // only its private partial edge (1,4) is new.
        let mut from1 = Machine::from_snapshot_with_decoded(
            &t.program,
            &decoded,
            &set.checkpoints[1].snapshot,
            &config,
        )
        .unwrap();
        set.restore(&mut from1, 17, &mut scratch);
        assert!(from1.state_eq(&set.checkpoints[17].snapshot));
        let stats = set.stats();
        assert_eq!(
            stats.diff_union_cache_hits, 3,
            "1→17 must reuse the three spans the 3→17 hop cached"
        );
        assert_eq!(stats.diff_hop, 2);
        assert_eq!(stats.full_image, 0);

        // The backward hop crosses the same spans (diffs are symmetric):
        // all four of 17→1's spans are now cached, (1,4) included.
        set.restore(&mut from1, 1, &mut scratch);
        assert!(from1.state_eq(&set.checkpoints[1].snapshot));
        assert_eq!(set.stats().diff_union_cache_hits, 7);
    }

    /// Pins the zero-elapsed guard in [`CampaignResult::trials_per_second`]:
    /// a degenerate duration must read as a rate of 0.0, never `inf`/`NaN`
    /// (a coarse monotonic clock can legitimately report zero elapsed for
    /// a tiny campaign, and downstream JSON emitters cannot represent the
    /// IEEE specials). This is the only rate in the fault crate computed
    /// from wall-clock time; the bench-side ratios all divide by timings
    /// of full campaigns or multi-million-instruction runs, where a zero
    /// denominator means a broken clock rather than a reachable state.
    #[test]
    fn trials_per_second_is_pinned_to_zero_on_zero_elapsed() {
        let record = TrialRecord {
            status: TrialStatus::HarnessError(HarnessFailure::Timeout),
            retries: 1,
        };
        let result = CampaignResult {
            golden: GoldenRun {
                output: Vec::new(),
                instructions: 0,
                eligible_population: 0,
                exec_counts: Vec::new(),
            },
            trials: vec![record; 3],
            restore_stats: RestoreStats::default(),
            harness_stats: HarnessStats::default(),
            checkpoint_capture_bytes: 0,
            elapsed: Duration::ZERO,
        };
        assert_eq!(result.trials_per_second(), 0.0, "zero elapsed, nonempty trials");
        let nonzero = CampaignResult {
            elapsed: Duration::from_millis(500),
            ..result
        };
        assert_eq!(nonzero.trials_per_second(), 6.0);
    }
}

//! Monte-Carlo fault-injection campaigns.

use certa_core::TagMap;
use certa_isa::Program;
use certa_sim::{Machine, MachineConfig, Outcome};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::injector::{EligibleCounter, ErrorModel, FaultPlan, Injector, Protection};

/// Something that can be fault-injected: a program plus the harness logic
/// that stages its input into guest memory and extracts its output.
///
/// Implemented by every workload in `certa-workloads`.
pub trait Target: Sync {
    /// The program to execute.
    fn program(&self) -> &Program;

    /// Stages input data into guest memory before a run.
    fn prepare(&self, machine: &mut Machine<'_>);

    /// Extracts the output bytes after a halted run. `None` means the
    /// output region was unreadable/malformed (treated as a completed run
    /// with zero-fidelity output by callers that care).
    fn extract(&self, machine: &Machine<'_>) -> Option<Vec<u8>>;

    /// Data memory size required (defaults to 4 MiB).
    fn mem_size(&self) -> u32 {
        4 << 20
    }
}

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Number of Monte-Carlo trials.
    pub trials: usize,
    /// Bit flips injected per trial (the paper's "errors inserted").
    pub errors: u64,
    /// Protection regime.
    pub protection: Protection,
    /// Base seed; trial `t` uses a seed derived from `(seed, t)`.
    pub seed: u64,
    /// Watchdog budget as a multiple of the golden instruction count.
    pub watchdog_factor: u64,
    /// Worker threads (0 = one per available core).
    pub threads: usize,
    /// Value-corruption model (defaults to the paper's single bit flip).
    pub model: ErrorModel,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            trials: 100,
            errors: 1,
            protection: Protection::On,
            seed: 0xCE27A,
            watchdog_factor: 10,
            threads: 0,
            model: ErrorModel::default(),
        }
    }
}

/// The fault-free reference run.
#[derive(Debug, Clone)]
pub struct GoldenRun {
    /// Output captured from the golden run.
    pub output: Vec<u8>,
    /// Dynamic instructions executed.
    pub instructions: u64,
    /// Size of the eligible-injection population under the campaign's
    /// protection regime.
    pub eligible_population: u64,
    /// Per-instruction execution counts (for Table 3 dynamic statistics).
    pub exec_counts: Vec<u64>,
}

/// One trial's result.
#[derive(Debug, Clone)]
pub struct TrialResult {
    /// How the run ended.
    pub outcome: Outcome,
    /// Output bytes, if the run halted and the output region was readable.
    pub output: Option<Vec<u8>>,
    /// Dynamic instructions executed.
    pub instructions: u64,
    /// Bit flips actually applied (≤ requested when the run dies early).
    pub injected: u32,
}

impl TrialResult {
    /// Whether this trial ended in one of the paper's catastrophic failures
    /// (crash or infinite run).
    #[must_use]
    pub fn is_catastrophic(&self) -> bool {
        self.outcome.is_catastrophic()
    }
}

/// Aggregated campaign results.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// The fault-free reference run.
    pub golden: GoldenRun,
    /// Per-trial results, in trial order.
    pub trials: Vec<TrialResult>,
}

impl CampaignResult {
    /// Fraction of trials that ended catastrophically (Table 2's
    /// "% failures").
    #[must_use]
    pub fn failure_rate(&self) -> f64 {
        if self.trials.is_empty() {
            return 0.0;
        }
        let failures = self.trials.iter().filter(|t| t.is_catastrophic()).count();
        failures as f64 / self.trials.len() as f64
    }

    /// Iterates over the outputs of completed (halted) trials.
    pub fn completed_outputs(&self) -> impl Iterator<Item = &[u8]> + '_ {
        self.trials
            .iter()
            .filter_map(|t| t.output.as_deref())
    }

    /// Counts trials by outcome: `(halted, crashed, infinite)`.
    #[must_use]
    pub fn outcome_counts(&self) -> (usize, usize, usize) {
        let mut halted = 0;
        let mut crashed = 0;
        let mut infinite = 0;
        for t in &self.trials {
            match t.outcome {
                Outcome::Halted => halted += 1,
                Outcome::Crashed(_) => crashed += 1,
                Outcome::InfiniteRun => infinite += 1,
            }
        }
        (halted, crashed, infinite)
    }
}

fn trial_seed(base: u64, trial: usize) -> u64 {
    // SplitMix64 finalizer: decorrelates consecutive trial indices.
    let mut z = base ^ (trial as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs the golden (fault-free) reference for `target`, also measuring the
/// eligible population under `protection`.
///
/// # Panics
///
/// Panics if the golden run does not halt cleanly — the guest program itself
/// is broken, which is a harness bug, not an experimental outcome.
#[must_use]
pub fn golden_run(
    target: &dyn Target,
    tags: &TagMap,
    protection: Protection,
    watchdog: u64,
) -> GoldenRun {
    let program = target.program();
    let config = MachineConfig {
        mem_size: target.mem_size(),
        max_instructions: watchdog,
        profile: true,
    };
    let mut machine = Machine::new(program, &config);
    target.prepare(&mut machine);
    let mut counter = EligibleCounter::new(program, tags, protection);
    let result = machine.run(&mut counter);
    assert_eq!(
        result.outcome,
        Outcome::Halted,
        "golden run must halt cleanly, got {}",
        result.outcome
    );
    let output = target
        .extract(&machine)
        .expect("golden run must produce readable output");
    GoldenRun {
        output,
        instructions: result.instructions,
        eligible_population: counter.count,
        exec_counts: machine.exec_counts().to_vec(),
    }
}

/// Runs a full campaign: golden run, then `config.trials` parallel
/// fault-injection trials.
///
/// # Panics
///
/// Panics if the golden run fails (see [`golden_run`]).
#[must_use]
pub fn run_campaign(target: &dyn Target, tags: &TagMap, config: &CampaignConfig) -> CampaignResult {
    // Large budget for the golden run; the trial watchdog derives from it.
    let golden = golden_run(target, tags, config.protection, u64::MAX / 2);
    let watchdog = golden
        .instructions
        .saturating_mul(config.watchdog_factor)
        .max(golden.instructions + 1_000_000);

    let threads = if config.threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        config.threads
    };

    let program = target.program();
    let machine_config = MachineConfig {
        mem_size: target.mem_size(),
        max_instructions: watchdog,
        profile: false,
    };

    let run_one = |trial: usize| -> TrialResult {
        let mut rng = SmallRng::seed_from_u64(trial_seed(config.seed, trial));
        let plan = FaultPlan::sample(&mut rng, golden.eligible_population, config.errors);
        let mut machine = Machine::new(program, &machine_config);
        target.prepare(&mut machine);
        let mut injector =
            Injector::with_model(program, tags, config.protection, plan, config.model);
        let result = machine.run(&mut injector);
        let output = if result.outcome == Outcome::Halted {
            target.extract(&machine)
        } else {
            None
        };
        TrialResult {
            outcome: result.outcome,
            output,
            instructions: result.instructions,
            injected: injector.injected(),
        }
    };

    let trials: Vec<TrialResult> = if threads <= 1 || config.trials <= 1 {
        (0..config.trials).map(run_one).collect()
    } else {
        let mut results: Vec<Option<TrialResult>> = vec![None; config.trials];
        let next = std::sync::atomic::AtomicUsize::new(0);
        let chunks: Vec<&mut [Option<TrialResult>]> = {
            // Split results into per-index cells via chunks of 1 handed out
            // dynamically through the atomic counter.
            results.chunks_mut(1).collect()
        };
        let cells: Vec<std::sync::Mutex<&mut [Option<TrialResult>]>> =
            chunks.into_iter().map(std::sync::Mutex::new).collect();
        crossbeam::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|_| loop {
                    let t = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if t >= config.trials {
                        break;
                    }
                    let r = run_one(t);
                    let mut cell = cells[t].lock().expect("trial cell poisoned");
                    cell[0] = Some(r);
                });
            }
        })
        .expect("campaign worker panicked");
        drop(cells);
        results
            .into_iter()
            .map(|r| r.expect("every trial filled"))
            .collect()
    };

    CampaignResult { golden, trials }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certa_asm::Asm;
    use certa_core::analyze;
    use certa_isa::reg::{T0, T1, T2, T3};

    /// A tiny workload: sums an input array of 64 bytes into a 32-bit output.
    struct SumTarget {
        program: Program,
        input_addr: u32,
        output_addr: u32,
    }

    impl SumTarget {
        fn new() -> Self {
            let mut a = Asm::new();
            let input_addr = a.data_zero(64);
            let output_addr = a.data_zero(4);
            a.func("sum", true);
            a.la(T0, input_addr);
            a.li(T1, 0);
            a.li(T2, 0);
            a.label("loop");
            a.add(T3, T0, T1);
            a.lbu(T3, 0, T3);
            a.add(T2, T2, T3);
            a.addi(T1, T1, 1);
            a.slti(T3, T1, 64);
            a.bnez(T3, "loop");
            a.la(T0, output_addr);
            a.sw(T2, 0, T0);
            a.ret();
            a.endfunc();
            a.func("main", false);
            a.call("sum");
            a.halt();
            a.endfunc();
            SumTarget {
                program: a.assemble().unwrap(),
                input_addr,
                output_addr,
            }
        }
    }

    impl Target for SumTarget {
        fn program(&self) -> &Program {
            &self.program
        }

        fn prepare(&self, machine: &mut Machine<'_>) {
            let input: Vec<u8> = (0..64u8).collect();
            machine.write_bytes(self.input_addr, &input).unwrap();
        }

        fn extract(&self, machine: &Machine<'_>) -> Option<Vec<u8>> {
            machine.read_bytes(self.output_addr, 4).ok().map(<[u8]>::to_vec)
        }
    }

    #[test]
    fn golden_run_captures_reference() {
        let t = SumTarget::new();
        let tags = analyze(&t.program);
        let g = golden_run(&t, &tags, Protection::On, 1_000_000);
        let sum = u32::from_le_bytes(g.output.clone().try_into().unwrap());
        assert_eq!(sum, (0..64u32).sum::<u32>());
        assert!(g.eligible_population > 0);
        assert!(g.instructions > 64 * 6);
    }

    #[test]
    fn zero_errors_campaign_matches_golden() {
        let t = SumTarget::new();
        let tags = analyze(&t.program);
        let cfg = CampaignConfig {
            trials: 4,
            errors: 0,
            ..CampaignConfig::default()
        };
        let r = run_campaign(&t, &tags, &cfg);
        assert_eq!(r.failure_rate(), 0.0);
        for trial in &r.trials {
            assert_eq!(trial.output.as_deref(), Some(&r.golden.output[..]));
            assert_eq!(trial.injected, 0);
        }
    }

    #[test]
    fn protected_campaign_never_crashes_this_kernel() {
        // With protection on, faults hit only the accumulator chain: outputs
        // may differ but control never derails.
        let t = SumTarget::new();
        let tags = analyze(&t.program);
        let cfg = CampaignConfig {
            trials: 50,
            errors: 2,
            protection: Protection::On,
            threads: 2,
            ..CampaignConfig::default()
        };
        let r = run_campaign(&t, &tags, &cfg);
        assert_eq!(
            r.failure_rate(),
            0.0,
            "protected sum kernel must not fail catastrophically"
        );
        // ... and at least one trial should actually corrupt the sum.
        let corrupted = r
            .completed_outputs()
            .filter(|o| *o != &r.golden.output[..])
            .count();
        assert!(corrupted > 0, "faults should perturb some outputs");
    }

    #[test]
    fn unprotected_campaign_fails_sometimes() {
        let t = SumTarget::new();
        let tags = analyze(&t.program);
        let cfg = CampaignConfig {
            trials: 60,
            errors: 4,
            protection: Protection::Off,
            threads: 2,
            ..CampaignConfig::default()
        };
        let r = run_campaign(&t, &tags, &cfg);
        assert!(
            r.failure_rate() > 0.0,
            "unprotected injection into addresses/branches should crash sometimes"
        );
    }

    #[test]
    fn campaign_is_deterministic_for_fixed_seed() {
        let t = SumTarget::new();
        let tags = analyze(&t.program);
        let cfg = CampaignConfig {
            trials: 10,
            errors: 1,
            threads: 2,
            ..CampaignConfig::default()
        };
        let a = run_campaign(&t, &tags, &cfg);
        let b = run_campaign(&t, &tags, &cfg);
        for (x, y) in a.trials.iter().zip(&b.trials) {
            assert_eq!(x.outcome, y.outcome);
            assert_eq!(x.output, y.output);
            assert_eq!(x.instructions, y.instructions);
        }
    }

    #[test]
    fn injected_count_matches_errors_when_run_completes() {
        let t = SumTarget::new();
        let tags = analyze(&t.program);
        let cfg = CampaignConfig {
            trials: 8,
            errors: 3,
            protection: Protection::On,
            threads: 1,
            ..CampaignConfig::default()
        };
        let r = run_campaign(&t, &tags, &cfg);
        for trial in r.trials.iter().filter(|t| !t.is_catastrophic()) {
            assert_eq!(trial.injected, 3);
        }
    }

    #[test]
    fn outcome_counts_partition_trials() {
        let t = SumTarget::new();
        let tags = analyze(&t.program);
        let cfg = CampaignConfig {
            trials: 30,
            errors: 5,
            protection: Protection::Off,
            threads: 2,
            ..CampaignConfig::default()
        };
        let r = run_campaign(&t, &tags, &cfg);
        let (h, c, i) = r.outcome_counts();
        assert_eq!(h + c + i, 30);
    }
}
